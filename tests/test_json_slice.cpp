// Tests for util/json_slice: the benches' preserve-sibling-block scanner.
// The contract that matters is byte-exact round-tripping of the extracted
// value (a rewrite re-emits it verbatim) and immunity to look-alike content
// inside string literals and nested objects.
#include <gtest/gtest.h>

#include <string>

#include "util/json_slice.hpp"

namespace proxcache {
namespace {

using jsonslice::extract_top_level;

TEST(JsonSlice, ScalarStringAndNumberValues) {
  const std::string doc =
      R"({"bench": "micro_throughput", "threads": 4, "ratio": 1.5e-3,)"
      R"( "flag": true})";
  EXPECT_EQ(extract_top_level(doc, "bench"), "\"micro_throughput\"");
  EXPECT_EQ(extract_top_level(doc, "threads"), "4");
  EXPECT_EQ(extract_top_level(doc, "ratio"), "1.5e-3");
  EXPECT_EQ(extract_top_level(doc, "flag"), "true");
}

TEST(JsonSlice, BalancedObjectAndArrayValues) {
  const std::string doc = R"({
  "results": [
    {"strategy": "two-choice", "rows": [1, 2, {"k": [3]}]},
    {"strategy": "nearest"}
  ],
  "large_topology": {"note": "kept", "rows": [{"n": 1000000}]}
})";
  EXPECT_EQ(extract_top_level(doc, "large_topology"),
            R"({"note": "kept", "rows": [{"n": 1000000}]})");
  const std::string results = extract_top_level(doc, "results");
  EXPECT_EQ(results.front(), '[');
  EXPECT_EQ(results.back(), ']');
  EXPECT_NE(results.find("{\"k\": [3]}"), std::string::npos);
}

TEST(JsonSlice, BracesInsideStringsDoNotConfuseDepth) {
  const std::string doc =
      R"({"note": "a } tricky ] \" string { with [ everything",)"
      R"( "value": {"inner": "also } here"}})";
  EXPECT_EQ(extract_top_level(doc, "value"), R"({"inner": "also } here"})");
  EXPECT_EQ(extract_top_level(doc, "note"),
            R"("a } tricky ] \" string { with [ everything")");
}

TEST(JsonSlice, NestedSameNamedKeyDoesNotMatch) {
  const std::string doc =
      R"({"outer": {"target": "wrong"}, "target": "right"})";
  EXPECT_EQ(extract_top_level(doc, "target"), "\"right\"");
}

TEST(JsonSlice, MissingKeyAndNonObjectsReturnEmpty) {
  EXPECT_EQ(extract_top_level(R"({"a": 1})", "b"), "");
  EXPECT_EQ(extract_top_level("[1, 2, 3]", "a"), "");
  EXPECT_EQ(extract_top_level("", "a"), "");
  EXPECT_EQ(extract_top_level("   \n ", "a"), "");
  EXPECT_EQ(extract_top_level(R"({"a" 1})", "a"), "");  // missing colon
}

TEST(JsonSlice, ReplaceExistingKeyPreservesEveryOtherByte) {
  const std::string doc =
      "{\n  \"a\": 1,\n  \"target\": [1, 2],\n  \"z\": \"end\"\n}\n";
  EXPECT_EQ(jsonslice::replace_top_level(doc, "target", "{\"new\": true}"),
            "{\n  \"a\": 1,\n  \"target\": {\"new\": true},\n"
            "  \"z\": \"end\"\n}\n");
}

TEST(JsonSlice, ReplaceAppendsWhenAbsent) {
  EXPECT_EQ(jsonslice::replace_top_level("{\n  \"a\": 1\n}\n", "b", "[2]"),
            "{\n  \"a\": 1,\n  \"b\": [2]\n}\n");
  EXPECT_EQ(jsonslice::replace_top_level("{}", "b", "[2]"),
            "{\n  \"b\": [2]\n}");
  // Non-objects start a fresh document instead of corrupting anything.
  EXPECT_EQ(jsonslice::replace_top_level("", "b", "[2]"),
            "{\n  \"b\": [2]\n}\n");
}

TEST(JsonSlice, SplitArrayYieldsVerbatimElements) {
  const auto rows = jsonslice::split_top_level_array(
      R"([ {"a": [1, 2], "s": "x,y"} , 7, "z", [3, [4]] ])");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], R"({"a": [1, 2], "s": "x,y"})");
  EXPECT_EQ(rows[1], "7");
  EXPECT_EQ(rows[2], "\"z\"");
  EXPECT_EQ(rows[3], "[3, [4]]");
  EXPECT_TRUE(jsonslice::split_top_level_array("not an array").empty());
  EXPECT_TRUE(jsonslice::split_top_level_array("[]").empty());
}

TEST(JsonSlice, RoundTripsTheCommittedBenchShape) {
  // The real use: rewrite `results`, re-emit `large_topology` verbatim.
  const std::string block =
      "{\n    \"note\": \"million-node rows\",\n    \"rows\": [\n"
      "      {\"strategy\": \"nearest\", \"requests_per_sec\": 167171}\n"
      "    ]\n  }";
  const std::string doc =
      "{\n  \"results\": [],\n  \"large_topology\": " + block + "\n}\n";
  EXPECT_EQ(extract_top_level(doc, "large_topology"), block);
}

}  // namespace
}  // namespace proxcache
