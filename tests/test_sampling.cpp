// Tests for streaming reservoir samplers: exact counts, uniformity over the
// stream, and the small-stream edge cases Strategy II depends on.
#include "random/sampling.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "stats/gof.hpp"

namespace proxcache {
namespace {

TEST(ReservoirOne, EmptyStreamHasNoValue) {
  Rng rng(1);
  ReservoirOne reservoir(rng);
  EXPECT_EQ(reservoir.count(), 0u);
  EXPECT_FALSE(reservoir.value().has_value());
}

TEST(ReservoirOne, SingleElementIsKept) {
  Rng rng(1);
  ReservoirOne reservoir(rng);
  reservoir.offer(42);
  ASSERT_TRUE(reservoir.value().has_value());
  EXPECT_EQ(*reservoir.value(), 42u);
  EXPECT_EQ(reservoir.count(), 1u);
}

TEST(ReservoirOne, UniformOverStream) {
  Rng rng(2);
  constexpr int kStream = 6;
  constexpr int kTrials = 60000;
  std::vector<std::uint64_t> counts(kStream, 0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirOne reservoir(rng);
    for (std::uint32_t i = 0; i < kStream; ++i) reservoir.offer(i);
    ++counts[*reservoir.value()];
  }
  EXPECT_GT(chi_square_pvalue(counts,
                              std::vector<double>(kStream, 1.0 / kStream)),
            1e-4);
}

TEST(ReservoirPair, CountsTrackStreamLength) {
  Rng rng(3);
  ReservoirPair reservoir(rng);
  EXPECT_EQ(reservoir.count(), 0u);
  reservoir.offer(1);
  EXPECT_EQ(reservoir.count(), 1u);
  EXPECT_EQ(reservoir.single(), 1u);
  reservoir.offer(2);
  reservoir.offer(3);
  EXPECT_EQ(reservoir.count(), 3u);
}

TEST(ReservoirPair, UniformOverUnorderedPairs) {
  Rng rng(4);
  constexpr std::uint32_t kStream = 5;
  constexpr int kTrials = 100000;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> counts;
  for (int t = 0; t < kTrials; ++t) {
    ReservoirPair reservoir(rng);
    for (std::uint32_t i = 0; i < kStream; ++i) reservoir.offer(i);
    auto [a, b] = reservoir.pair();
    if (a > b) std::swap(a, b);
    ASSERT_NE(a, b);
    ++counts[{a, b}];
  }
  ASSERT_EQ(counts.size(), 10u);  // C(5,2)
  std::vector<std::uint64_t> observed;
  for (const auto& [key, count] : counts) observed.push_back(count);
  EXPECT_GT(chi_square_pvalue(observed, std::vector<double>(10, 0.1)), 1e-4);
}

TEST(ReservoirPair, PairOrderIsAlsoUniform) {
  Rng rng(5);
  constexpr int kTrials = 40000;
  int first_is_zero = 0;
  for (int t = 0; t < kTrials; ++t) {
    ReservoirPair reservoir(rng);
    reservoir.offer(0);
    reservoir.offer(1);
    first_is_zero += reservoir.pair().first == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(first_is_zero) / kTrials, 0.5, 0.02);
}

TEST(ReservoirK, RejectsBadK) {
  Rng rng(6);
  EXPECT_THROW(ReservoirK(rng, 0), std::invalid_argument);
  EXPECT_THROW(ReservoirK(rng, 9), std::invalid_argument);
}

TEST(ReservoirK, ShortStreamReturnsEverything) {
  Rng rng(7);
  ReservoirK reservoir(rng, 4);
  reservoir.offer(10);
  reservoir.offer(20);
  const auto sample = reservoir.sample();
  ASSERT_EQ(sample.size(), 2u);
  EXPECT_EQ(sample[0], 10u);
  EXPECT_EQ(sample[1], 20u);
}

TEST(ReservoirK, EachElementKeptWithProbabilityKOverN) {
  Rng rng(8);
  constexpr std::uint32_t kStream = 10;
  constexpr std::uint32_t kK = 3;
  constexpr int kTrials = 60000;
  std::vector<int> kept(kStream, 0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirK reservoir(rng, kK);
    for (std::uint32_t i = 0; i < kStream; ++i) reservoir.offer(i);
    for (const std::uint32_t v : reservoir.sample()) ++kept[v];
  }
  const double expected = static_cast<double>(kK) / kStream;
  for (std::uint32_t i = 0; i < kStream; ++i) {
    EXPECT_NEAR(static_cast<double>(kept[i]) / kTrials, expected, 0.01)
        << "element " << i;
  }
}

TEST(ReservoirK, SampleElementsAreDistinctPositions) {
  Rng rng(9);
  for (int t = 0; t < 1000; ++t) {
    ReservoirK reservoir(rng, 2);
    for (std::uint32_t i = 0; i < 7; ++i) reservoir.offer(100 + i);
    const auto sample = reservoir.sample();
    ASSERT_EQ(sample.size(), 2u);
    EXPECT_NE(sample[0], sample[1]);
  }
}

}  // namespace
}  // namespace proxcache
