// Tests for catalog/popularity: pmf shapes, Λ(γ), and the Theorem 3
// communication-cost reference formula.
#include "catalog/popularity.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace proxcache {
namespace {

TEST(Popularity, UniformPmf) {
  const Popularity p = Popularity::uniform(8);
  EXPECT_EQ(p.kind(), PopularityKind::Uniform);
  EXPECT_EQ(p.num_files(), 8u);
  for (FileId j = 0; j < 8; ++j) EXPECT_DOUBLE_EQ(p.pmf(j), 0.125);
  EXPECT_EQ(p.describe(), "uniform");
}

TEST(Popularity, ZipfPmfNormalizedAndMonotone) {
  const Popularity p = Popularity::zipf(100, 0.8);
  double total = 0.0;
  for (FileId j = 0; j < 100; ++j) {
    total += p.pmf(j);
    if (j > 0) {
      EXPECT_LT(p.pmf(j), p.pmf(j - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(p.describe(), "zipf(0.8)");
}

TEST(Popularity, ZipfGammaZeroIsUniform) {
  const Popularity z = Popularity::zipf(10, 0.0);
  for (FileId j = 0; j < 10; ++j) EXPECT_NEAR(z.pmf(j), 0.1, 1e-12);
}

TEST(Popularity, ZipfRatioMatchesRankPower) {
  const double gamma = 1.5;
  const Popularity p = Popularity::zipf(50, gamma);
  // p_1 / p_4 = 4^gamma.
  EXPECT_NEAR(p.pmf(0) / p.pmf(3), std::pow(4.0, gamma), 1e-9);
}

TEST(Popularity, FromName) {
  EXPECT_EQ(Popularity::from_name("uniform", 5, 0.0).kind(),
            PopularityKind::Uniform);
  EXPECT_EQ(Popularity::from_name("zipf", 5, 1.0).kind(),
            PopularityKind::Zipf);
  EXPECT_THROW(Popularity::from_name("pareto", 5, 1.0),
               std::invalid_argument);
}

TEST(Popularity, RejectsBadArgs) {
  EXPECT_THROW(Popularity::uniform(0), std::invalid_argument);
  EXPECT_THROW(Popularity::zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW(Popularity::zipf(5, -0.1), std::invalid_argument);
}

TEST(GeneralizedHarmonic, KnownValues) {
  EXPECT_NEAR(generalized_harmonic(1, 2.0), 1.0, 1e-12);
  EXPECT_NEAR(generalized_harmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(generalized_harmonic(4, 0.0), 4.0, 1e-12);
}

TEST(GeneralizedHarmonic, AsymptoticRegimes) {
  // Eq. 17: Λ(γ) = Θ(K^{1-γ}) for γ<1, Θ(log K) for γ=1, Θ(1) for γ>2.
  const double l_half_1k = generalized_harmonic(1000, 0.5);
  const double l_half_4k = generalized_harmonic(4000, 0.5);
  EXPECT_NEAR(l_half_4k / l_half_1k, 2.0, 0.1);  // K^{1/2} ratio = sqrt(4)

  const double l_one_1k = generalized_harmonic(1000, 1.0);
  const double l_one_1m = generalized_harmonic(1000000, 1.0);
  EXPECT_NEAR(l_one_1m / l_one_1k, 2.0, 0.1);  // log ratio = 6/3

  const double l_three_1k = generalized_harmonic(1000, 3.0);
  const double l_three_100k = generalized_harmonic(100000, 3.0);
  EXPECT_NEAR(l_three_100k / l_three_1k, 1.0, 0.01);  // converged
}

TEST(NearestCostReference, UniformMatchesSqrtKOverM) {
  // For uniform popularity the reference is 1/sqrt(q) with
  // q = 1 - (1 - 1/K)^M ≈ M/K, so C_ref ≈ sqrt(K/M).
  const double c = nearest_cost_reference(Popularity::uniform(1000), 10);
  EXPECT_NEAR(c, std::sqrt(1000.0 / 10.0), 0.2);
}

TEST(NearestCostReference, DecreasesWithCacheSize) {
  const Popularity p = Popularity::uniform(500);
  double last = 1e18;
  for (const std::size_t m : {1u, 2u, 5u, 20u, 100u}) {
    const double c = nearest_cost_reference(p, m);
    EXPECT_LT(c, last);
    last = c;
  }
}

TEST(NearestCostReference, ZipfCheaperThanUniform) {
  // Skew concentrates replicas on popular files, cutting expected distance.
  const std::size_t k = 1000;
  EXPECT_LT(nearest_cost_reference(Popularity::zipf(k, 1.5), 4),
            nearest_cost_reference(Popularity::uniform(k), 4));
}

TEST(NearestCostReference, RejectsZeroCache) {
  EXPECT_THROW(nearest_cost_reference(Popularity::uniform(10), 0),
               std::invalid_argument);
}

TEST(Theorem3Regime, AllBranches) {
  EXPECT_EQ(theorem3_regime(0.5), "Theta(sqrt(K/M))");
  EXPECT_EQ(theorem3_regime(1.0), "Theta(sqrt(K/(M log K)))");
  EXPECT_EQ(theorem3_regime(1.5), "Theta(K^(1-gamma/2)/sqrt(M))");
  EXPECT_EQ(theorem3_regime(2.0), "Theta(log(K)/sqrt(M))");
  EXPECT_EQ(theorem3_regime(2.5), "Theta(1/sqrt(M))");
}

}  // namespace
}  // namespace proxcache
