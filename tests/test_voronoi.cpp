// Tests for spatial/voronoi: coverage, exact nearest distances, the min-id
// tie rule, and cell-size bookkeeping.
#include "spatial/voronoi.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "catalog/placement.hpp"
#include "random/rng.hpp"

namespace proxcache {
namespace {

class VoronoiParamTest : public ::testing::TestWithParam<Wrap> {};

TEST_P(VoronoiParamTest, DistancesAndOwnersMatchBruteForce) {
  const Lattice lattice(8, GetParam());
  const std::vector<NodeId> centers = {3, 17, 42, 60};
  const VoronoiTessellation voronoi(lattice, centers);
  for (NodeId u = 0; u < lattice.size(); ++u) {
    Hop best = std::numeric_limits<Hop>::max();
    NodeId best_center = kInvalidNode;
    for (const NodeId c : centers) {
      const Hop d = lattice.distance(u, c);
      if (d < best || (d == best && c < best_center)) {
        best = d;
        best_center = c;
      }
    }
    EXPECT_EQ(voronoi.distance(u), best) << "node " << u;
    EXPECT_EQ(voronoi.owner(u), best_center) << "node " << u;
  }
}

TEST_P(VoronoiParamTest, CellSizesPartitionTheLattice) {
  const Lattice lattice(9, GetParam());
  const std::vector<NodeId> centers = {0, 8, 40, 72, 80};
  const VoronoiTessellation voronoi(lattice, centers);
  std::size_t total = 0;
  for (const NodeId c : centers) total += voronoi.cell_size(c);
  EXPECT_EQ(total, lattice.size());
  EXPECT_GE(voronoi.max_cell_size(), lattice.size() / centers.size());
}

INSTANTIATE_TEST_SUITE_P(Wraps, VoronoiParamTest,
                         ::testing::Values(Wrap::Torus, Wrap::Grid),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Voronoi, SingleCenterOwnsEverything) {
  const Lattice lattice(6, Wrap::Torus);
  const VoronoiTessellation voronoi(lattice, {14});
  EXPECT_EQ(voronoi.cell_size(14), lattice.size());
  EXPECT_EQ(voronoi.max_cell_size(), lattice.size());
  for (NodeId u = 0; u < lattice.size(); ++u) {
    EXPECT_EQ(voronoi.owner(u), 14u);
    EXPECT_EQ(voronoi.distance(u), lattice.distance(u, 14));
  }
}

TEST(Voronoi, AllNodesCentersGivesUnitCells) {
  const Lattice lattice(4, Wrap::Grid);
  std::vector<NodeId> centers(lattice.size());
  for (NodeId u = 0; u < lattice.size(); ++u) centers[u] = u;
  const VoronoiTessellation voronoi(lattice, centers);
  for (NodeId u = 0; u < lattice.size(); ++u) {
    EXPECT_EQ(voronoi.owner(u), u);
    EXPECT_EQ(voronoi.distance(u), 0u);
    EXPECT_EQ(voronoi.cell_size(u), 1u);
  }
}

TEST(Voronoi, DuplicateCentersHandled) {
  const Lattice lattice(5, Wrap::Torus);
  const VoronoiTessellation voronoi(lattice, {7, 7, 19});
  EXPECT_EQ(voronoi.cell_size(7) + voronoi.cell_size(19), lattice.size());
}

TEST(Voronoi, MeanDistanceMatchesAverage) {
  const Lattice lattice(7, Wrap::Torus);
  const std::vector<NodeId> centers = {0, 24};
  const VoronoiTessellation voronoi(lattice, centers);
  double total = 0.0;
  for (NodeId u = 0; u < lattice.size(); ++u) {
    total += voronoi.distance(u);
  }
  EXPECT_NEAR(voronoi.mean_distance(), total / lattice.size(), 1e-12);
}

TEST(Voronoi, RejectsBadCenters) {
  const Lattice lattice(4, Wrap::Torus);
  EXPECT_THROW(VoronoiTessellation(lattice, {}), std::invalid_argument);
  EXPECT_THROW(VoronoiTessellation(lattice, {99}), std::invalid_argument);
}

TEST(Voronoi, MoreCentersShrinkMaxCell) {
  const Lattice lattice(12, Wrap::Torus);
  Rng rng(3);
  std::vector<NodeId> few;
  std::vector<NodeId> many;
  for (int i = 0; i < 3; ++i) {
    few.push_back(static_cast<NodeId>(rng.below(lattice.size())));
  }
  many = few;
  for (int i = 0; i < 27; ++i) {
    many.push_back(static_cast<NodeId>(rng.below(lattice.size())));
  }
  const VoronoiTessellation sparse(lattice, few);
  const VoronoiTessellation dense(lattice, many);
  EXPECT_GE(sparse.max_cell_size(), dense.max_cell_size());
  EXPECT_GE(sparse.mean_distance(), dense.mean_distance());
}

}  // namespace
}  // namespace proxcache
