// Tests for the queueing extension: M/M/1 ground truth, stability,
// utilization, and the JSQ(2) advantage the paper's §VI conjectures.
#include "queueing/supermarket.hpp"

#include <gtest/gtest.h>

namespace proxcache {
namespace {

QueueingConfig base_config() {
  QueueingConfig config;
  config.network.num_nodes = 100;
  config.network.num_files = 20;
  config.network.cache_size = 5;
  config.network.seed = 5;
  config.network.strategy_spec = parse_strategy_spec("two-choice");
  config.arrival_rate = 0.5;
  config.service_rate = 1.0;
  config.horizon = 300.0;
  config.warmup_fraction = 0.25;
  return config;
}

TEST(Supermarket, MM1SojournMatchesTheory) {
  // Single server, single file: pure M/M/1 with λ=0.5, μ=1 → E[T] = 2.
  QueueingConfig config;
  config.network.num_nodes = 1;
  config.network.num_files = 1;
  config.network.cache_size = 1;
  config.network.strategy_spec = parse_strategy_spec("nearest");
  config.arrival_rate = 0.5;
  config.service_rate = 1.0;
  config.horizon = 20000.0;
  config.warmup_fraction = 0.2;
  const QueueingResult result = run_supermarket(config, 1);
  EXPECT_GT(result.completed, 5000u);
  EXPECT_NEAR(result.mean_sojourn, 2.0, 0.3);
  EXPECT_NEAR(result.utilization, 0.5, 0.05);
  // Little's law: E[N] = λ E[T] (per the single server).
  EXPECT_NEAR(result.mean_queue, config.arrival_rate * result.mean_sojourn,
              0.3);
}

TEST(Supermarket, StableSystemHasModestQueues) {
  const QueueingResult result = run_supermarket(base_config(), 2);
  EXPECT_GT(result.completed, 1000u);
  EXPECT_LT(result.mean_queue, 5.0);
  EXPECT_NEAR(result.utilization, 0.5, 0.12);
}

TEST(Supermarket, DeterministicInSeed) {
  const QueueingConfig config = base_config();
  const QueueingResult a = run_supermarket(config, 3);
  const QueueingResult b = run_supermarket(config, 3);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.mean_sojourn, b.mean_sojourn);
  const QueueingResult c = run_supermarket(config, 4);
  EXPECT_NE(a.completed, c.completed);
}

TEST(Supermarket, TwoChoiceBeatsOneChoiceUnderLoad) {
  // At high utilization JSQ(2) shortens queues vs a single random choice —
  // the supermarket-model phenomenon the paper invokes.
  QueueingConfig two = base_config();
  two.arrival_rate = 0.9;
  two.horizon = 1500.0;
  QueueingConfig one = two;
  one.network.strategy_spec = parse_strategy_spec("two-choice(d=1)");
  double two_q = 0.0;
  double one_q = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    two_q += run_supermarket(two, 10 + s).mean_queue;
    one_q += run_supermarket(one, 10 + s).mean_queue;
  }
  EXPECT_LT(two_q, one_q);
}

TEST(Supermarket, ProximityRadiusBoundsHops) {
  QueueingConfig config = base_config();
  config.network.strategy_spec = parse_strategy_spec("two-choice(r=3)");
  const QueueingResult result = run_supermarket(config, 7);
  EXPECT_LE(result.mean_hops, 4.0);  // fallbacks may exceed r occasionally
  EXPECT_GT(result.completed, 100u);
}

TEST(Supermarket, HigherLoadLongerQueues) {
  QueueingConfig light = base_config();
  light.arrival_rate = 0.3;
  QueueingConfig heavy = base_config();
  heavy.arrival_rate = 0.9;
  const QueueingResult l = run_supermarket(light, 8);
  const QueueingResult h = run_supermarket(heavy, 8);
  EXPECT_LT(l.mean_queue, h.mean_queue);
  EXPECT_LT(l.utilization, h.utilization);
}

TEST(Supermarket, ValidatesParameters) {
  QueueingConfig config = base_config();
  config.arrival_rate = 0.0;
  EXPECT_THROW(run_supermarket(config, 1), std::invalid_argument);
  config = base_config();
  config.service_rate = -1.0;
  EXPECT_THROW(run_supermarket(config, 1), std::invalid_argument);
  config = base_config();
  config.horizon = 0.0;
  EXPECT_THROW(run_supermarket(config, 1), std::invalid_argument);
  config = base_config();
  config.warmup_fraction = 1.0;
  EXPECT_THROW(run_supermarket(config, 1), std::invalid_argument);
}

// The queueing model cannot honor the stale-information parameter (queue
// lengths are live by construction); a spec requesting it must be rejected
// rather than silently simulating a different model.
TEST(Supermarket, RejectsStaleSpecParameter) {
  QueueingConfig config = base_config();
  config.network.strategy_spec =
      parse_strategy_spec("two-choice(r=8, stale=64)");
  EXPECT_THROW(run_supermarket(config, 1), std::invalid_argument);
  config.network.strategy_spec = parse_strategy_spec("two-choice(r=8)");
  EXPECT_NO_THROW(run_supermarket(config, 1));
  // An explicit always-fresh request is fine: stale=1 is the live model.
  config.network.strategy_spec = parse_strategy_spec("two-choice(stale=1)");
  EXPECT_NO_THROW(run_supermarket(config, 1));
}

}  // namespace
}  // namespace proxcache
