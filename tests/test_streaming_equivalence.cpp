// Equivalence sweep locking the streaming request loop to the pre-refactor
// pipeline: `run_materialized` below is a faithful reimplementation of the
// historical materialize → sanitize → iterate run_simulation (same draw
// order: all trace-generation draws, then all repair draws, on one
// trace-phase stream). For every ScenarioRegistry preset × both strategies,
// and for the policy/staleness corner cases, the streaming
// `SimulationContext::run` must reproduce its RunResult bit-for-bit.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "random/alias_sampler.hpp"

#include "core/metrics.hpp"
#include "core/nearest_replica.hpp"
#include "core/request.hpp"
#include "core/simulation.hpp"
#include "core/stale_view.hpp"
#include "core/two_choice.hpp"
#include "random/seeding.hpp"
#include "scenario/registry.hpp"
#include "scenario/trace_source.hpp"
#include "spatial/replica_index.hpp"
#include "strategy/registry.hpp"
#include "topology/registry.hpp"

namespace proxcache {
namespace {

constexpr double kInfParam = std::numeric_limits<double>::infinity();

/// The pre-refactor vector-based sanitize pass, inlined verbatim so the
/// reference pipeline stays independent of SanitizingTraceSource (which
/// the library's sanitize_trace is now a shim over — calling it here would
/// make the equivalence sweep circular).
SanitizeStats sanitize_trace_reference(std::vector<Request>& trace,
                                       const Placement& placement,
                                       const Popularity& popularity,
                                       MissingFilePolicy policy, Rng& rng) {
  SanitizeStats stats;
  const auto is_cached = [&](FileId j) {
    return placement.replica_count(j) > 0;
  };

  if (policy == MissingFilePolicy::Strict) {
    for (const Request& request : trace) {
      if (!is_cached(request.file)) {
        throw std::runtime_error(
            "request for uncached file " + std::to_string(request.file) +
            " under Strict missing-file policy");
      }
    }
    return stats;
  }

  if (policy == MissingFilePolicy::Drop) {
    std::vector<Request> kept;
    kept.reserve(trace.size());
    for (const Request& request : trace) {
      if (is_cached(request.file)) {
        kept.push_back(request);
      } else {
        ++stats.dropped;
      }
    }
    trace = std::move(kept);
    return stats;
  }

  // Resample: redraw offending files from P restricted to cached files via
  // rejection.
  const bool any_cached = placement.files_with_replicas() > 0;
  const AliasSampler sampler(popularity.pmf());
  for (Request& request : trace) {
    if (is_cached(request.file)) continue;
    if (!any_cached) {
      throw std::invalid_argument(
          "no file has any replica; cannot resample trace");
    }
    ++stats.resampled;
    do {
      request.file = sampler.sample(rng);
    } while (!is_cached(request.file));
  }
  return stats;
}

/// The pre-streaming pipeline, verbatim: materialize the full trace, run
/// the sanitize pass over the vector, then iterate. The strategy is built
/// directly from the resolved spec's parameters (nearest / two-choice
/// only), independent of the registry's factory path.
RunResult run_materialized(const ExperimentConfig& config,
                           std::uint64_t run_index) {
  config.validate();

  const std::shared_ptr<const Topology> topology =
      TopologyRegistry::global().make(config.resolved_topology());
  const std::size_t num_nodes = topology->size();
  const Popularity popularity =
      config.popularity.materialize(config.num_files);

  Rng placement_rng(
      derive_seed(config.seed, {run_index, seed_phase::kPlacement}));
  const Placement placement =
      Placement::generate(num_nodes, popularity, config.cache_size,
                          config.placement_mode, placement_rng);

  Rng trace_rng(derive_seed(config.seed, {run_index, seed_phase::kTrace}));
  const std::unique_ptr<TraceSource> source = make_trace_source(
      config, *topology, popularity, config.effective_requests());
  std::vector<Request> trace =
      materialize(*source, config.effective_requests(), trace_rng);
  const SanitizeStats sanitize = sanitize_trace_reference(
      trace, placement, popularity, config.missing, trace_rng);

  const ReplicaIndex index(*topology, placement);
  const StrategySpec spec = config.resolved_strategy();
  std::unique_ptr<Strategy> strategy;
  if (spec.name == "nearest") {
    strategy = std::make_unique<NearestReplicaStrategy>(index);
  } else {
    const double r = spec.get_or("r", kInfParam);
    TwoChoiceOptions options;
    options.radius = r >= static_cast<double>(kUnboundedRadius)
                         ? kUnboundedRadius
                         : static_cast<Hop>(r);
    options.num_choices =
        static_cast<std::uint32_t>(spec.get_or("d", 2.0));
    options.with_replacement = spec.get_or("wr", 0.0) != 0.0;
    options.fallback =
        fallback_policy_from_param(spec.get_or("fallback", 0.0));
    options.beta = spec.get_or("beta", 1.0);
    strategy = std::make_unique<TwoChoiceStrategy>(index, options);
  }

  Rng strategy_rng(
      derive_seed(config.seed, {run_index, seed_phase::kStrategy}));
  LoadTracker tracker(num_nodes);
  const auto stale_batch =
      static_cast<std::uint32_t>(spec.get_or("stale", 1.0));
  std::unique_ptr<StaleLoadView> stale;
  if (stale_batch > 1) {
    stale = std::make_unique<StaleLoadView>(tracker, stale_batch);
  }
  const LoadView& load_view = stale ? static_cast<const LoadView&>(*stale)
                                    : static_cast<const LoadView&>(tracker);
  for (const Request& request : trace) {
    const Assignment assignment =
        strategy->assign(request, load_view, strategy_rng);
    if (assignment.fallback) tracker.note_fallback();
    if (assignment.server == kInvalidNode) {
      tracker.drop();
      continue;
    }
    tracker.assign(assignment.server, assignment.hops);
    if (stale) stale->on_assignment(tracker.assigned());
  }

  RunResult result;
  result.max_load = tracker.max_load();
  result.comm_cost = tracker.comm_cost();
  result.requests = tracker.assigned();
  result.fallbacks = tracker.fallbacks();
  result.resampled = sanitize.resampled;
  result.dropped = sanitize.dropped + tracker.dropped();
  result.load_histogram = tracker.load_histogram();
  result.placement_min_distinct = placement.distinct_count(0);
  for (NodeId u = 0; u < placement.num_nodes(); ++u) {
    result.placement_min_distinct =
        std::min(result.placement_min_distinct, placement.distinct_count(u));
  }
  result.files_with_replicas = placement.files_with_replicas();
  return result;
}

/// Every RunResult field must agree exactly; EXPECT_EQ on comm_cost is
/// deliberate (both paths divide the same integer totals).
void expect_bit_identical(const RunResult& materialized,
                          const RunResult& streaming,
                          const std::string& label) {
  EXPECT_EQ(materialized.max_load, streaming.max_load) << label;
  EXPECT_EQ(materialized.comm_cost, streaming.comm_cost) << label;
  EXPECT_EQ(materialized.requests, streaming.requests) << label;
  EXPECT_EQ(materialized.fallbacks, streaming.fallbacks) << label;
  EXPECT_EQ(materialized.resampled, streaming.resampled) << label;
  EXPECT_EQ(materialized.dropped, streaming.dropped) << label;
  EXPECT_EQ(materialized.load_histogram.total(),
            streaming.load_histogram.total())
      << label;
  EXPECT_EQ(materialized.load_histogram.counts(),
            streaming.load_histogram.counts())
      << label;
  EXPECT_EQ(materialized.placement_min_distinct,
            streaming.placement_min_distinct)
      << label;
  EXPECT_EQ(materialized.files_with_replicas, streaming.files_with_replicas)
      << label;
}

void expect_equivalent(const ExperimentConfig& config,
                       const std::string& label, std::uint64_t runs = 2) {
  const SimulationContext context(config);
  for (std::uint64_t run_index = 0; run_index < runs; ++run_index) {
    expect_bit_identical(run_materialized(config, run_index),
                         context.run(run_index),
                         label + " run " + std::to_string(run_index));
    // The one-shot entry point routes through the same streaming loop.
    expect_bit_identical(run_materialized(config, run_index),
                         run_simulation(config, run_index),
                         label + " one-shot run " + std::to_string(run_index));
  }
}

// The headline sweep: every registry preset × both strategies, shrunk to a
// fast network size (the presets only set workload knobs, so the override
// keeps each preset's trace process intact).
TEST(StreamingEquivalence, EveryRegistryPresetTimesBothStrategies) {
  for (const Scenario& scenario : ScenarioRegistry::built_ins().all()) {
    for (const char* name : {"nearest", "two-choice"}) {
      ExperimentConfig config = scenario.config;
      config.num_nodes = 400;
      config.num_files = 80;
      config.cache_size = 6;
      config.strategy_spec = parse_strategy_spec(name);
      config.seed =
          0xE0 + static_cast<std::uint64_t>(config.strategy_spec.name !=
                                            "nearest");
      expect_equivalent(config, scenario.name + " / " + name);
    }
  }
}

// Resample with genuinely uncached files: n*M = 200 slots over K = 400
// files guarantees zero-replica files, so the streaming path must take the
// scout pre-advance to position its repair stream. Asserting resampled > 0
// proves that branch ran.
TEST(StreamingEquivalence, ResampleRepairStreamWithUncachedFiles) {
  ExperimentConfig config;
  config.num_nodes = 100;
  config.num_files = 400;
  config.cache_size = 2;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 1.2;
  config.seed = 77;
  for (const char* name : {"nearest", "two-choice"}) {
    config.strategy_spec = parse_strategy_spec(name);
    const RunResult result = run_simulation(config, 0);
    EXPECT_GT(result.resampled, 0u)
        << "test setup must force repairs or it proves nothing";
    expect_equivalent(config, "uncached-resample", 3);
  }
}

// Drop policy: sanitize-level drops shorten the assigned stream without
// consuming strategy draws for the dropped requests.
TEST(StreamingEquivalence, DropPolicyWithUncachedFiles) {
  ExperimentConfig config;
  config.num_nodes = 100;
  config.num_files = 300;
  config.cache_size = 2;
  config.missing = MissingFilePolicy::Drop;
  config.seed = 78;
  const RunResult result = run_simulation(config, 0);
  EXPECT_GT(result.dropped, 0u);
  EXPECT_EQ(result.requests + result.dropped, config.effective_requests());
  expect_equivalent(config, "drop-policy", 3);
}

// Strict policy: both paths throw the same std::runtime_error on the first
// uncached request.
TEST(StreamingEquivalence, StrictPolicyThrowsInBothPaths) {
  ExperimentConfig config;
  config.num_nodes = 100;
  config.num_files = 300;
  config.cache_size = 2;
  config.missing = MissingFilePolicy::Strict;
  config.seed = 79;
  EXPECT_THROW((void)run_materialized(config, 0), std::runtime_error);
  EXPECT_THROW((void)SimulationContext(config).run(0), std::runtime_error);
}

// Non-lattice topology: the reference pipeline materializes through the
// same TopologyRegistry, so streaming-vs-materialized equivalence holds on
// a ring exactly as on the paper's torus (the topology layer adds no
// hidden draws to either path).
TEST(StreamingEquivalence, RingTopologyMatchesMaterializedPipeline) {
  ExperimentConfig config;
  config.topology_spec = parse_topology_spec("ring(n=300)");
  config.num_files = 70;
  config.cache_size = 4;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 1.0;
  config.seed = 81;
  for (const char* name : {"nearest", "two-choice(r=6)"}) {
    config.strategy_spec = parse_strategy_spec(name);
    expect_equivalent(config, std::string("ring / ") + name, 3);
  }
}

// The strategy-side corner cases ride on one config: finite radius with
// Drop fallback (kInvalidNode drops), (1+β) mixing, and stale snapshots.
TEST(StreamingEquivalence, StaleBetaAndFallbackDrop) {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 60;
  config.cache_size = 3;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 1.0;
  config.strategy_spec = parse_strategy_spec(
      "two-choice(r=2, fallback=drop, beta=0.6, stale=7)");
  config.seed = 80;
  const RunResult result = run_simulation(config, 0);
  EXPECT_GT(result.dropped, 0u) << "radius 2 must provoke fallback drops";
  expect_equivalent(config, "stale-beta-fallback-drop", 3);
}

}  // namespace
}  // namespace proxcache
