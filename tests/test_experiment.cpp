// Tests for core/experiment: Monte-Carlo aggregation, thread-count
// invariance, and pooled statistics.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace proxcache {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.num_nodes = 100;
  config.num_files = 20;
  config.cache_size = 4;
  config.seed = 7;
  return config;
}

TEST(Experiment, AggregatesRunCount) {
  const ExperimentResult result = run_experiment(base_config(), 8);
  EXPECT_EQ(result.runs, 8u);
  EXPECT_EQ(result.max_load.count(), 8u);
  EXPECT_EQ(result.comm_cost.count(), 8u);
}

TEST(Experiment, PooledHistogramCoversAllServers) {
  const ExperimentResult result = run_experiment(base_config(), 5);
  EXPECT_EQ(result.pooled_load_histogram.total(), 5u * 100u);
}

TEST(Experiment, ParallelMatchesSequential) {
  const ExperimentConfig config = base_config();
  const ExperimentResult sequential = run_experiment(config, 6, nullptr);
  ThreadPool pool(4);
  const ExperimentResult parallel = run_experiment(config, 6, &pool);
  EXPECT_DOUBLE_EQ(sequential.max_load.mean(), parallel.max_load.mean());
  EXPECT_DOUBLE_EQ(sequential.comm_cost.mean(), parallel.comm_cost.mean());
  EXPECT_DOUBLE_EQ(sequential.max_load.variance(),
                   parallel.max_load.variance());
}

TEST(Experiment, RatesAreFractions) {
  ExperimentConfig config = base_config();
  config.strategy_spec =
      parse_strategy_spec("two-choice(r=1)");  // tiny radius provokes fallbacks
  const ExperimentResult result = run_experiment(config, 4);
  EXPECT_GE(result.fallback_rate, 0.0);
  EXPECT_GE(result.resample_rate, 0.0);
  EXPECT_EQ(result.drop_rate, 0.0);
}

TEST(Experiment, SeedChangesResults) {
  ExperimentConfig a = base_config();
  ExperimentConfig b = base_config();
  b.seed = 8;
  const ExperimentResult ra = run_experiment(a, 5);
  const ExperimentResult rb = run_experiment(b, 5);
  EXPECT_NE(ra.comm_cost.mean(), rb.comm_cost.mean());
}

TEST(Experiment, RequiresAtLeastOneRun) {
  EXPECT_THROW(run_experiment(base_config(), 0), std::invalid_argument);
}

TEST(Experiment, MoreRunsShrinkStandardError) {
  const ExperimentConfig config = base_config();
  const ExperimentResult few = run_experiment(config, 4);
  const ExperimentResult many = run_experiment(config, 32);
  EXPECT_LT(many.comm_cost.standard_error(),
            few.comm_cost.standard_error() + 1e-9);
}

// Chunked-submission stress: 10k tiny replications on a multi-thread pool
// must complete without allocating a future per run (submissions are
// batched per worker) and stay bit-deterministic across invocations and
// against the serial path.
TEST(Experiment, TenThousandTinyReplicationsStressThePool) {
  ExperimentConfig config;
  config.num_nodes = 16;
  config.num_files = 4;
  config.cache_size = 2;
  config.num_requests = 8;
  config.seed = 99;
  const std::size_t runs = 10'000;
  ThreadPool pool(4);
  const SimulationContext context(config);
  const ExperimentResult pooled = run_experiment(context, runs, &pool);
  EXPECT_EQ(pooled.runs, runs);
  EXPECT_EQ(pooled.max_load.count(), runs);
  EXPECT_EQ(pooled.pooled_load_histogram.total(), runs * 16u);
  const ExperimentResult again = run_experiment(context, runs, &pool);
  EXPECT_EQ(pooled.max_load.mean(), again.max_load.mean());
  EXPECT_EQ(pooled.comm_cost.mean(), again.comm_cost.mean());
  const ExperimentResult serial = run_experiment(context, runs, nullptr);
  EXPECT_EQ(pooled.max_load.mean(), serial.max_load.mean());
  EXPECT_EQ(pooled.comm_cost.variance(), serial.comm_cost.variance());
}

// --- ExperimentConfig::validate() hardening --------------------------------

TEST(ConfigValidation, RejectsBetaOutsideUnitInterval) {
  ExperimentConfig config = base_config();
  config.strategy_spec = parse_strategy_spec("two-choice(beta=1.5)");
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
  config.strategy_spec = parse_strategy_spec("two-choice(beta=-0.1)");
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
}

TEST(ConfigValidation, RejectsZeroStaleBatch) {
  ExperimentConfig config = base_config();
  config.strategy_spec = parse_strategy_spec("two-choice(stale=0)");
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
}

// validate() delegates per-strategy checks to the StrategyRegistry: the
// spec must name a registered strategy and every parameter must pass that
// entry's rules before a run starts.
TEST(ConfigValidation, RejectsUnknownStrategySpecName) {
  ExperimentConfig config = base_config();
  config.strategy_spec.name = "round-robin";
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
}

TEST(ConfigValidation, RejectsUnknownStrategySpecParam) {
  ExperimentConfig config = base_config();
  config.strategy_spec = parse_strategy_spec("nearest(d=2)");
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
}

TEST(ConfigValidation, RejectsOutOfRangeStrategySpecParams) {
  ExperimentConfig config = base_config();
  config.strategy_spec = parse_strategy_spec("two-choice(d=99)");
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
  config.strategy_spec = parse_strategy_spec("two-choice(beta=2)");
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
  config.strategy_spec = parse_strategy_spec("two-choice(r=-3)");
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
  config.strategy_spec = parse_strategy_spec("prox-weighted(alpha=-1)");
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
  config.strategy_spec = parse_strategy_spec("least-loaded(r=8)");
  EXPECT_NO_THROW(config.validate());
}

TEST(ConfigValidation, RejectsHotspotFractionOutsideUnitInterval) {
  ExperimentConfig config = base_config();
  config.origins.kind = OriginKind::Hotspot;
  config.origins.hotspot_fraction = 1.2;
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
}

TEST(ConfigValidation, RejectsHotspotRadiusReachingLatticeSide) {
  ExperimentConfig config = base_config();  // n=100, side 10
  config.origins.kind = OriginKind::Hotspot;
  config.origins.hotspot_radius = 10;
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
  config.origins.hotspot_radius = 9;
  EXPECT_NO_THROW(config.validate());
}

TEST(ConfigValidation, RejectsHotspotOriginsWithFlashCrowd) {
  // FlashCrowd defines its own time-varying origin process; a static
  // hotspot OriginSpec would be silently ignored, so it is rejected.
  ExperimentConfig config = base_config();
  config.trace.kind = TraceKind::FlashCrowd;
  config.origins.kind = OriginKind::Hotspot;
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
}

TEST(ConfigValidation, RejectsInvertedFlashWindow) {
  ExperimentConfig config = base_config();
  config.trace.kind = TraceKind::FlashCrowd;
  config.trace.flash_start = 0.8;
  config.trace.flash_end = 0.2;
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
}

TEST(ConfigValidation, RejectsDiurnalAmplitudeExceedingGamma) {
  ExperimentConfig config = base_config();
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 0.3;
  config.trace.kind = TraceKind::Diurnal;
  config.trace.diurnal_amplitude = 0.5;
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
}

TEST(ConfigValidation, RejectsDiurnalOnUniformCatalog) {
  ExperimentConfig config = base_config();
  config.trace.kind = TraceKind::Diurnal;
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
}

TEST(ConfigValidation, RejectsFullChurn) {
  ExperimentConfig config = base_config();
  config.trace.kind = TraceKind::Churn;
  config.trace.churn_offline_fraction = 1.0;
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
}

TEST(ConfigValidation, RejectsZeroLocalityDepth) {
  ExperimentConfig config = base_config();
  config.trace.kind = TraceKind::TemporalLocality;
  config.trace.locality_depth = 0;
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
}

TEST(ConfigValidation, RejectsAttackTopKBeyondLibrary) {
  ExperimentConfig config = base_config();  // K=20
  config.trace.kind = TraceKind::Adversarial;
  config.trace.attack_top_k = 21;
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
  config.trace.attack_top_k = 0;
  EXPECT_THROW(run_experiment(config, 1), std::invalid_argument);
}

}  // namespace
}  // namespace proxcache
