// Tests for core/experiment: Monte-Carlo aggregation, thread-count
// invariance, and pooled statistics.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace proxcache {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.num_nodes = 100;
  config.num_files = 20;
  config.cache_size = 4;
  config.seed = 7;
  return config;
}

TEST(Experiment, AggregatesRunCount) {
  const ExperimentResult result = run_experiment(base_config(), 8);
  EXPECT_EQ(result.runs, 8u);
  EXPECT_EQ(result.max_load.count(), 8u);
  EXPECT_EQ(result.comm_cost.count(), 8u);
}

TEST(Experiment, PooledHistogramCoversAllServers) {
  const ExperimentResult result = run_experiment(base_config(), 5);
  EXPECT_EQ(result.pooled_load_histogram.total(), 5u * 100u);
}

TEST(Experiment, ParallelMatchesSequential) {
  const ExperimentConfig config = base_config();
  const ExperimentResult sequential = run_experiment(config, 6, nullptr);
  ThreadPool pool(4);
  const ExperimentResult parallel = run_experiment(config, 6, &pool);
  EXPECT_DOUBLE_EQ(sequential.max_load.mean(), parallel.max_load.mean());
  EXPECT_DOUBLE_EQ(sequential.comm_cost.mean(), parallel.comm_cost.mean());
  EXPECT_DOUBLE_EQ(sequential.max_load.variance(),
                   parallel.max_load.variance());
}

TEST(Experiment, RatesAreFractions) {
  ExperimentConfig config = base_config();
  config.strategy.kind = StrategyKind::TwoChoice;
  config.strategy.radius = 1;  // tiny radius provokes fallbacks
  const ExperimentResult result = run_experiment(config, 4);
  EXPECT_GE(result.fallback_rate, 0.0);
  EXPECT_GE(result.resample_rate, 0.0);
  EXPECT_EQ(result.drop_rate, 0.0);
}

TEST(Experiment, SeedChangesResults) {
  ExperimentConfig a = base_config();
  ExperimentConfig b = base_config();
  b.seed = 8;
  const ExperimentResult ra = run_experiment(a, 5);
  const ExperimentResult rb = run_experiment(b, 5);
  EXPECT_NE(ra.comm_cost.mean(), rb.comm_cost.mean());
}

TEST(Experiment, RequiresAtLeastOneRun) {
  EXPECT_THROW(run_experiment(base_config(), 0), std::invalid_argument);
}

TEST(Experiment, MoreRunsShrinkStandardError) {
  const ExperimentConfig config = base_config();
  const ExperimentResult few = run_experiment(config, 4);
  const ExperimentResult many = run_experiment(config, 32);
  EXPECT_LT(many.comm_cost.standard_error(),
            few.comm_cost.standard_error() + 1e-9);
}

}  // namespace
}  // namespace proxcache
