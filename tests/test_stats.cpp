// Tests for stats/summary, stats/histogram, stats/regression and
// stats/scaling: exact identities on hand-computed data plus growth-law
// classification of synthetic series.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "stats/scaling.hpp"
#include "stats/summary.hpp"

namespace proxcache {
namespace {

TEST(Summary, HandComputedMoments) {
  Summary s = Summary::of({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.standard_error(), s.stddev() / std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(s.ci95_halfwidth(), 1.96 * s.standard_error(), 1e-12);
}

TEST(Summary, SingleObservation) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
}

TEST(Summary, EmptyThrowsOnMean) {
  const Summary s;
  EXPECT_THROW(static_cast<void>(s.mean()), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(s.min()), std::invalid_argument);
}

TEST(Summary, MergeEqualsCombinedStream) {
  Summary left;
  Summary right;
  Summary combined;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? left : right).add(x);
    combined.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary s = Summary::of({1.0, 2.0});
  const Summary empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  Summary target;
  target.merge(s);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(Histogram, BasicAccounting) {
  Histogram h;
  h.add(0, 3);
  h.add(2);
  h.add(5, 2);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.at(0), 3u);
  EXPECT_EQ(h.at(2), 1u);
  EXPECT_EQ(h.at(5), 2u);
  EXPECT_EQ(h.at(1), 0u);
  EXPECT_EQ(h.at(100), 0u);
  EXPECT_EQ(h.max_value(), 5u);
  EXPECT_NEAR(h.mean(), (0.0 * 3 + 2.0 + 5.0 * 2) / 6.0, 1e-12);
}

TEST(Histogram, TailFraction) {
  Histogram h;
  h.add(1, 5);
  h.add(3, 5);
  EXPECT_NEAR(h.tail_fraction(0), 1.0, 1e-12);
  EXPECT_NEAR(h.tail_fraction(2), 0.5, 1e-12);
  EXPECT_NEAR(h.tail_fraction(4), 0.0, 1e-12);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.5), 50u);
  EXPECT_EQ(h.quantile(0.99), 99u);
  EXPECT_EQ(h.quantile(1.0), 100u);
  EXPECT_THROW(static_cast<void>(h.quantile(0.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(h.quantile(1.1)), std::invalid_argument);
}

// The quantile boundary must be exact: the q-quantile is the smallest value
// whose cumulative count reaches ceil(q * total), computed in integers. A
// double product mis-seats exactly these cases (0.7 * 10 != 7 in binary).
TEST(Histogram, QuantileExactBoundaries) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.add(v);
  // q * total lands exactly on a cumulative count: the boundary value wins.
  EXPECT_EQ(h.quantile(0.1), 1u);
  EXPECT_EQ(h.quantile(0.2), 2u);
  EXPECT_EQ(h.quantile(0.3), 3u);
  EXPECT_EQ(h.quantile(0.4), 4u);
  EXPECT_EQ(h.quantile(0.5), 5u);
  EXPECT_EQ(h.quantile(0.6), 6u);
  EXPECT_EQ(h.quantile(0.7), 7u);  // stored 0.7 sits just below 7/10
  EXPECT_EQ(h.quantile(0.8), 8u);
  EXPECT_EQ(h.quantile(0.9), 9u);  // stored 0.9 sits just above 9/10
  // Just past a boundary: the next value must win (ceil, not round).
  EXPECT_EQ(h.quantile(0.70001), 8u);
  EXPECT_EQ(h.quantile(0.901), 10u);
  // Below the first boundary: ceil of a positive fraction is 1.
  EXPECT_EQ(h.quantile(0.05), 1u);
  EXPECT_EQ(h.quantile(1e-300), 1u);
}

// Exactness must survive totals past 2^53, where double arithmetic cannot
// even represent the cumulative counts distinctly.
TEST(Histogram, QuantileHugeTotals) {
  const std::uint64_t big = (1ull << 53) + 1;
  Histogram h;
  h.add(0, big);
  h.add(1, 1);
  h.add(2, big);
  // total = 2^54 + 3; ceil(0.5 * total) = 2^53 + 2 = count(0) + 1, so the
  // median is 1 — a double comparison collapses the +1 and answers 0.
  EXPECT_EQ(h.quantile(0.5), 1u);
  EXPECT_EQ(h.quantile(1.0), 2u);
  Histogram skew;
  skew.add(4, (1ull << 54));
  skew.add(7, 3);
  // ceil(q * total) > count(4) only in the last 3 slots of 2^54 + 3.
  EXPECT_EQ(skew.quantile(0.999999), 4u);
  EXPECT_EQ(skew.quantile(1.0), 7u);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a;
  a.add(1, 2);
  Histogram b;
  b.add(1);
  b.add(4, 3);
  a.merge(b);
  EXPECT_EQ(a.at(1), 3u);
  EXPECT_EQ(a.at(4), 3u);
  EXPECT_EQ(a.total(), 6u);
}

TEST(Regression, RecoversExactLine) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(3.0 + 2.0 * x);
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Regression, NoisyLineStillClose) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(1.0 + 0.5 * i + 0.1 * std::sin(i * 13.0));
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(Regression, ConstantResponseHasPerfectFlatFit) {
  const LinearFit fit = linear_fit({1, 2, 3}, {5, 5, 5});
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Regression, RejectsDegenerateInput) {
  EXPECT_THROW(linear_fit({1}, {1}), std::invalid_argument);
  EXPECT_THROW(linear_fit({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(linear_fit({2, 2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Regression, PearsonKnownValues) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {5, 5, 5}), 0.0, 1e-12);
}

TEST(Scaling, TransformValues) {
  EXPECT_NEAR(growth_transform(GrowthLaw::Log, std::exp(2.0)), 2.0, 1e-12);
  EXPECT_NEAR(growth_transform(GrowthLaw::Sqrt, 49.0), 7.0, 1e-12);
  EXPECT_NEAR(growth_transform(GrowthLaw::Linear, 5.0), 5.0, 1e-12);
  EXPECT_NEAR(growth_transform(GrowthLaw::Constant, 100.0), 1.0, 1e-12);
  EXPECT_THROW(growth_transform(GrowthLaw::Log, 2.0), std::invalid_argument);
}

TEST(Scaling, Names) {
  EXPECT_EQ(to_string(GrowthLaw::LogOverLogLog), "log n / log log n");
  EXPECT_EQ(to_string(GrowthLaw::LogLog), "log log n");
}

TEST(Scaling, ClassifiesSyntheticSeries) {
  std::vector<double> ns;
  for (double n = 100; n <= 1e6; n *= 3.0) ns.push_back(n);

  const auto series = [&](GrowthLaw law) {
    std::vector<double> ys;
    for (const double n : ns) {
      ys.push_back(2.0 + 1.7 * growth_transform(law, n));
    }
    return ys;
  };

  EXPECT_EQ(classify_growth(ns, series(GrowthLaw::Log)).best, GrowthLaw::Log);
  EXPECT_EQ(classify_growth(ns, series(GrowthLaw::Sqrt)).best,
            GrowthLaw::Sqrt);
  EXPECT_EQ(classify_growth(ns, series(GrowthLaw::Linear)).best,
            GrowthLaw::Linear);
  EXPECT_EQ(classify_growth(ns, series(GrowthLaw::LogLog)).best,
            GrowthLaw::LogLog);
}

TEST(Scaling, FlatSeriesIsConstant) {
  const std::vector<double> ns = {100, 1000, 10000, 100000};
  const std::vector<double> ys = {4.2, 4.2, 4.2, 4.2};
  EXPECT_EQ(classify_growth(ns, ys).best, GrowthLaw::Constant);
}

TEST(Scaling, ReportExposesAllCandidates) {
  const std::vector<double> ns = {10, 100, 1000, 10000};
  const std::vector<double> ys = {1, 2, 3, 4};  // log-ish
  const ScalingReport report = classify_growth(ns, ys);
  EXPECT_EQ(report.candidates.size(), 6u);
  EXPECT_GT(report.r2_of(GrowthLaw::Log), 0.99);
  // Candidates sorted by descending R².
  for (std::size_t i = 1; i < report.candidates.size(); ++i) {
    EXPECT_GE(report.candidates[i - 1].fit.r2, report.candidates[i].fit.r2);
  }
}

TEST(Scaling, RejectsBadInput) {
  EXPECT_THROW(classify_growth({10, 100}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(classify_growth({2, 10, 100}, {1, 2, 3}),
               std::invalid_argument);
}

}  // namespace
}  // namespace proxcache
