// Tests for stats/fairness: Jain index and coefficient of variation on
// hand-computed vectors, plus the end-to-end ordering between strategies.
#include "stats/fairness.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace proxcache {
namespace {

TEST(JainIndex, PerfectlyEvenIsOne) {
  EXPECT_NEAR(jain_fairness_index({3, 3, 3, 3}), 1.0, 1e-12);
  EXPECT_NEAR(jain_fairness_index({7}), 1.0, 1e-12);
}

TEST(JainIndex, AllOnOneServerIsOneOverN) {
  EXPECT_NEAR(jain_fairness_index({10, 0, 0, 0, 0}), 0.2, 1e-12);
}

TEST(JainIndex, HandComputedMixed) {
  // x = {1, 2, 3}: (6)^2 / (3 * 14) = 36/42.
  EXPECT_NEAR(jain_fairness_index({1, 2, 3}), 36.0 / 42.0, 1e-12);
}

TEST(JainIndex, ZeroVectorIsFairByConvention) {
  EXPECT_NEAR(jain_fairness_index({0, 0, 0}), 1.0, 1e-12);
}

TEST(JainIndex, RejectsEmpty) {
  EXPECT_THROW(jain_fairness_index({}), std::invalid_argument);
}

TEST(LoadCv, EvenVectorIsZero) {
  EXPECT_NEAR(load_cv({4, 4, 4}), 0.0, 1e-12);
}

TEST(LoadCv, HandComputed) {
  // x = {0, 4}: mean 2, population stddev 2 → cv = 1.
  EXPECT_NEAR(load_cv({0, 4}), 1.0, 1e-12);
}

TEST(LoadCv, ZeroMeanIsZero) {
  EXPECT_NEAR(load_cv({0, 0}), 0.0, 1e-12);
}

TEST(FairnessEndToEnd, TwoChoiceIsFairerThanNearest) {
  ExperimentConfig nearest;
  nearest.num_nodes = 1024;
  nearest.num_files = 16;
  nearest.cache_size = 8;
  nearest.seed = 21;
  nearest.strategy_spec = parse_strategy_spec("nearest");
  ExperimentConfig two = nearest;
  two.strategy_spec = parse_strategy_spec("two-choice");

  // Compare pooled load histograms through the per-run loads: rebuild
  // Jain's index from the histogram of one run each.
  double jain_nearest = 0.0;
  double jain_two = 0.0;
  const int runs = 5;
  for (std::uint64_t i = 0; i < runs; ++i) {
    const RunResult rn = run_simulation(nearest, i);
    const RunResult rt = run_simulation(two, i);
    // Convert histograms back to load vectors.
    const auto to_loads = [](const Histogram& h) {
      std::vector<Load> loads;
      for (std::uint64_t v = 0; v <= h.max_value(); ++v) {
        for (std::uint64_t c = 0; c < h.at(v); ++c) {
          loads.push_back(static_cast<Load>(v));
        }
      }
      return loads;
    };
    jain_nearest += jain_fairness_index(to_loads(rn.load_histogram));
    jain_two += jain_fairness_index(to_loads(rt.load_histogram));
  }
  EXPECT_GT(jain_two, jain_nearest)
      << "the two-choice allocation must be fairer on average";
}

}  // namespace
}  // namespace proxcache
