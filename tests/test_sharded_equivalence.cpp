// Differential suite for the sharded split-phase engine
// (parallel/sharded_runner.hpp), mirroring test_streaming_equivalence: for
// every scenario preset × all four strategies × torus/ring/rgg, and for the
// stale/fallback/policy corners, the sharded run must be bit-identical
// across thread counts {2, 4, 8}, across commit modes (speculative vs
// serial re-choose — validation accepts a speculation only when it is
// provably the value the serial schedule would compute), *and* to the
// engine's own serial schedule (a width-1 ShardedRunner executing the
// identical propose/commit sequence inline). That is the engine's
// determinism contract: no RunResult field may ever depend on thread
// count, batch size, speculation window, or scheduling.
//
// Note the contract boundary: the sharded engine is deliberately *not*
// bit-identical to the `threads = 1` serial loop (per-request pinned
// strategy streams vs one sequential stream — see sharded_runner.hpp); the
// serial loop's own goldens live in test_determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/simulation.hpp"
#include "parallel/sharded_runner.hpp"
#include "scenario/registry.hpp"
#include "strategy/registry.hpp"
#include "topology/registry.hpp"

namespace proxcache {
namespace {

/// Every RunResult field must agree exactly; EXPECT_EQ on comm_cost is
/// deliberate (all compared paths divide the same integer totals).
void expect_bit_identical(const RunResult& reference, const RunResult& other,
                          const std::string& label) {
  EXPECT_EQ(reference.max_load, other.max_load) << label;
  EXPECT_EQ(reference.comm_cost, other.comm_cost) << label;
  EXPECT_EQ(reference.requests, other.requests) << label;
  EXPECT_EQ(reference.fallbacks, other.fallbacks) << label;
  EXPECT_EQ(reference.resampled, other.resampled) << label;
  EXPECT_EQ(reference.dropped, other.dropped) << label;
  EXPECT_EQ(reference.load_histogram.total(), other.load_histogram.total())
      << label;
  EXPECT_EQ(reference.load_histogram.counts(), other.load_histogram.counts())
      << label;
  EXPECT_EQ(reference.placement_min_distinct, other.placement_min_distinct)
      << label;
  EXPECT_EQ(reference.files_with_replicas, other.files_with_replicas)
      << label;
}

/// Serial reference vs threads ∈ {2, 4, 8} (speculation on, the default),
/// vs the serial-commit mode (speculation off), and through the
/// SimulationContext dispatch (`config.threads`). Every differential is
/// against the same width-1 reference, so this simultaneously proves the
/// thread-invariance and the speculative-vs-serial-commit equivalence for
/// each scenario that calls it.
void expect_thread_invariant(const SimulationContext& context,
                             const std::string& label,
                             std::uint64_t runs = 2) {
  const std::size_t batch = context.config().shard_batch;
  for (std::uint64_t run_index = 0; run_index < runs; ++run_index) {
    const std::string run_label = label + " run " + std::to_string(run_index);
    const RunResult reference =
        ShardedRunner(context, {1, batch}).run(run_index);
    for (const std::uint32_t threads : {2u, 4u, 8u}) {
      const RunResult sharded =
          ShardedRunner(context, {threads, batch}).run(run_index);
      expect_bit_identical(
          reference, sharded,
          run_label + " threads=" + std::to_string(threads));
    }
    // Commit mode is a pure throughput dial: turning speculation off must
    // reproduce the identical result (here at width 4; the widths above
    // already pin the speculative side).
    expect_bit_identical(
        reference,
        ShardedRunner(context, {4, batch, /*speculate=*/false})
            .run(run_index),
        run_label + " commit=serial");
    // The config knob routes through the same engine.
    ExperimentConfig config = context.config();
    config.threads = 2;
    expect_bit_identical(reference,
                         SimulationContext(config).run(run_index),
                         run_label + " via config.threads");
  }
}

ExperimentConfig shrunk(ExperimentConfig config) {
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  return config;
}

// The headline sweep: every registry preset × all four built-in strategies
// on the paper's torus. Small batch so every run crosses many batch
// boundaries (the seams where an ordering bug would show).
TEST(ShardedEquivalence, EveryPresetTimesEveryStrategyOnTorus) {
  for (const Scenario& scenario : ScenarioRegistry::built_ins().all()) {
    for (const char* name :
         {"nearest", "two-choice", "least-loaded(r=8)",
          "prox-weighted(d=2, alpha=1)"}) {
      ExperimentConfig config = shrunk(scenario.config);
      config.strategy_spec = parse_strategy_spec(name);
      config.shard_batch = 96;
      config.seed = 0x5AD + scenario.config.seed;
      const SimulationContext context(config);
      expect_thread_invariant(context, scenario.name + " / " + name, 1);
    }
  }
}

// Non-lattice topologies: ring (closed form distances) and a random
// geometric graph (BFS distance matrix). One materialized topology shared
// across the strategy axis via the shared-topology context constructor.
TEST(ShardedEquivalence, RingAndRggTopologies) {
  for (const char* topo : {"ring(n=300)", "rgg(n=300, radius=0.12, seed=5)"}) {
    ExperimentConfig base;
    base.topology_spec = parse_topology_spec(topo);
    base.num_files = 70;
    base.cache_size = 4;
    base.popularity.kind = PopularityKind::Zipf;
    base.popularity.gamma = 1.0;
    base.shard_batch = 64;
    base.seed = 0x70B0;
    const std::shared_ptr<const Topology> topology =
        TopologyRegistry::global().make(base.resolved_topology());
    for (const char* name :
         {"nearest", "two-choice(r=6)", "least-loaded(r=6)",
          "prox-weighted(d=3, alpha=0.5)"}) {
      ExperimentConfig config = base;
      config.strategy_spec = parse_strategy_spec(name);
      const SimulationContext context(config, topology);
      expect_thread_invariant(context,
                              std::string(topo) + " / " + name, 1);
    }
  }
}

// Stale snapshots, (1+β) mixing, and Drop fallback in one config: the
// commit thread must drive StaleLoadView refreshes and drop accounting
// exactly as the serial loop regardless of batch boundaries.
TEST(ShardedEquivalence, StaleBetaAndFallbackDropCorner) {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 60;
  config.cache_size = 3;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 1.0;
  config.strategy_spec = parse_strategy_spec(
      "two-choice(r=2, fallback=drop, beta=0.6, stale=7)");
  config.shard_batch = 53;  // coprime to stale period: refreshes straddle
  config.seed = 0x5A1E;
  const SimulationContext context(config);
  const RunResult probe = context.run(0);
  EXPECT_GT(probe.dropped, 0u) << "radius 2 must provoke fallback drops";
  expect_thread_invariant(context, "stale-beta-fallback-drop", 2);
}

// Resample with genuinely uncached files: the scout pre-advance and the
// repair stream live on the producer thread; repairs must not depend on
// engine width.
TEST(ShardedEquivalence, ResampleRepairStreamWithUncachedFiles) {
  ExperimentConfig config;
  config.num_nodes = 100;
  config.num_files = 400;
  config.cache_size = 2;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 1.2;
  config.shard_batch = 32;
  config.seed = 0x9E5A;
  for (const char* name : {"nearest", "least-loaded(r=4)"}) {
    config.strategy_spec = parse_strategy_spec(name);
    const SimulationContext context(config);
    const RunResult probe = context.run(0);
    EXPECT_GT(probe.resampled, 0u)
        << "test setup must force repairs or it proves nothing";
    expect_thread_invariant(context, std::string("uncached-resample / ") +
                                         name,
                            2);
  }
}

// Sanitize-level Drop policy: dropped requests never reach the engine, so
// the admitted ordinals (and with them the pinned streams) must stay dense.
TEST(ShardedEquivalence, DropPolicyWithUncachedFiles) {
  ExperimentConfig config;
  config.num_nodes = 100;
  config.num_files = 300;
  config.cache_size = 2;
  config.missing = MissingFilePolicy::Drop;
  config.shard_batch = 17;
  config.seed = 0xD809;
  const SimulationContext context(config);
  const RunResult probe = context.run(0);
  EXPECT_GT(probe.dropped, 0u);
  expect_thread_invariant(context, "drop-policy", 2);
}

// Batch size is a pure throughput dial: every value — including a
// degenerate batch of 1 — must produce the identical RunResult.
TEST(ShardedEquivalence, BatchSizeInvariance) {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  config.strategy_spec = parse_strategy_spec("two-choice(r=8)");
  config.seed = 0xBA7C;
  const SimulationContext context(config);
  const RunResult reference = ShardedRunner(context, {1, 4096}).run(0);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{3},
                                  std::size_t{64}, std::size_t{1000}}) {
    expect_bit_identical(reference, ShardedRunner(context, {4, batch}).run(0),
                         "batch=" + std::to_string(batch));
  }
}

// The speculation window, like the batch, is a pure throughput dial: a
// degenerate window of 1 (snapshot every request), a prime 5, and the
// default 32 must all match the serial-commit result bit-for-bit. The
// config knobs route through the same engine.
TEST(ShardedEquivalence, SpecWindowInvariance) {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  config.strategy_spec = parse_strategy_spec("two-choice");
  config.shard_batch = 96;
  config.seed = 0x59EC;
  const SimulationContext context(config);
  const RunResult reference =
      ShardedRunner(context, {4, 96, /*speculate=*/false}).run(0);
  for (const std::size_t window :
       {std::size_t{1}, std::size_t{5}, std::size_t{32}}) {
    expect_bit_identical(
        reference,
        ShardedRunner(context, {4, 96, true, window}).run(0),
        "spec_window=" + std::to_string(window));
  }
  ExperimentConfig knobs = config;
  knobs.threads = 4;
  knobs.shard_speculate = true;
  knobs.shard_spec_window = 5;
  expect_bit_identical(reference, SimulationContext(knobs).run(0),
                       "via config.shard_spec_window");
  knobs.shard_speculate = false;
  expect_bit_identical(reference, SimulationContext(knobs).run(0),
                       "via config.shard_speculate=false");
}

// Forced-conflict stress: a tiny node set under a hotspot trace makes a
// candidate-load change within the staleness window near-certain, so the
// validation/re-choose path runs constantly. The result must still be
// bit-identical to the serial-commit mode at width 8 — conflicts may cost
// time, never correctness — and the run must actually provoke conflicts,
// or the stress proves nothing.
TEST(ShardedEquivalence, ForcedConflictHotspotStress) {
  ExperimentConfig config;
  config.num_nodes = 64;
  config.num_files = 10;
  config.cache_size = 4;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 2.5;  // head file takes most of the trace
  config.strategy_spec = parse_strategy_spec("two-choice");
  config.shard_batch = 256;
  config.seed = 0x5F0;
  const SimulationContext context(config);
  const RunResult reference =
      ShardedRunner(context, {8, 256, /*speculate=*/false}).run(0);
  ShardStats stats;
  const RunResult speculative =
      ShardedRunner(context, {8, 256, true, 32}).run(0, &stats);
  expect_bit_identical(reference, speculative, "hotspot width=8");
  EXPECT_GT(stats.spec_attempted, 0u) << "hotspot must engage speculation";
  EXPECT_GT(stats.spec_conflicts, 0u)
      << "hotspot must provoke conflicts or the re-choose path is untested";
  EXPECT_GT(stats.spec_hits, 0u)
      << "even a hotspot leaves some windows unchanged";
}

// The speculation counters are schedule-determined, not race-determined:
// which requests are attempted, which windows conflict, and which
// proposals bypass the cap all follow from the trace and the windowed
// snapshot schedule, so every counter must be identical at every width.
TEST(ShardedEquivalence, SpecCountersInvariantAcrossWidths) {
  ExperimentConfig config;
  config.num_nodes = 144;
  config.num_files = 40;
  config.cache_size = 5;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 1.4;
  config.strategy_spec = parse_strategy_spec("two-choice(r=4)");
  config.shard_batch = 128;
  config.seed = 0xC0DE;
  const SimulationContext context(config);
  ShardStats reference;
  const RunResult reference_result =
      ShardedRunner(context, {1, 128}).run(0, &reference);
  EXPECT_GT(reference.spec_windows, 0u);
  EXPECT_GT(reference.spec_attempted, 0u);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    const std::string label = "threads=" + std::to_string(threads);
    ShardStats stats;
    const RunResult result =
        ShardedRunner(context, {threads, 128}).run(0, &stats);
    expect_bit_identical(reference_result, result, label);
    EXPECT_EQ(stats.spec_windows, reference.spec_windows) << label;
    EXPECT_EQ(stats.spec_attempted, reference.spec_attempted) << label;
    EXPECT_EQ(stats.spec_hits, reference.spec_hits) << label;
    EXPECT_EQ(stats.spec_conflicts, reference.spec_conflicts) << label;
    EXPECT_EQ(stats.spec_decided, reference.spec_decided) << label;
    EXPECT_EQ(stats.spec_bypassed, reference.spec_bypassed) << label;
  }
}

// The commit phase now launches up to two chase tasks: the second one is
// submitted only when the pool has at least two workers (width >= 3).
// The window state machine admits any number of claimants — each window
// is claimed exactly once via CAS and every claim is value-validated —
// so one chaser, two chasers, and the serial-commit path must all land
// on the identical RunResult. Width 2 runs a single chaser, widths 3/4/8
// engage the dual-chase protocol; all compare against a width-1
// reference in speculative mode.
TEST(ShardedEquivalence, DualChaseWidthInvariance) {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 1.2;
  config.strategy_spec = parse_strategy_spec("least-loaded(r=8)");
  config.shard_batch = 64;  // small batches: many windows to claim
  config.seed = 0xD0A1;
  const SimulationContext context(config);
  ShardStats reference;
  const RunResult reference_result =
      ShardedRunner(context, {1, 64, true, 8}).run(0, &reference);
  EXPECT_GT(reference.spec_windows, 1u)
      << "need multiple windows so both chasers can claim work";
  for (const std::uint32_t threads : {2u, 3u, 4u, 8u}) {
    const std::string label = "dual-chase threads=" + std::to_string(threads);
    ShardStats stats;
    const RunResult result =
        ShardedRunner(context, {threads, 64, true, 8}).run(0, &stats);
    expect_bit_identical(reference_result, result, label);
    // Claim outcomes are schedule-determined even with two racing
    // chasers: the counters must not drift with the worker count.
    EXPECT_EQ(stats.spec_windows, reference.spec_windows) << label;
    EXPECT_EQ(stats.spec_hits, reference.spec_hits) << label;
    EXPECT_EQ(stats.spec_conflicts, reference.spec_conflicts) << label;
  }
}

// A registry extension that only implements `assign` (no split-phase
// protocol) must still run correctly and deterministically: the engine
// detects `split_phase() == false` and executes it on the commit thread
// under the same per-request stream contract.
TEST(ShardedEquivalence, NonSplitCustomStrategyRunsOnCommitPath) {
  const std::string name = "test-sharded-nonsplit";
  if (StrategyRegistry::global().find(name) == nullptr) {
    class FirstReplica final : public Strategy {
     public:
      explicit FirstReplica(const ReplicaIndex& index) : index_(&index) {}
      Assignment assign(const Request& request, const LoadView&,
                        Rng&) override {
        Assignment a;
        a.server = index_->placement().replicas(request.file)[0];
        a.hops = index_->topology().distance(request.origin, a.server);
        return a;
      }
      [[nodiscard]] std::string name() const override {
        return "first-replica";
      }

     private:
      const ReplicaIndex* index_;
    };
    StrategyRegistry::global().add(
        {name,
         "test-only: always the first replica in the list",
         {},
         [](const StrategySpec&, const ReplicaIndex& index, const Topology&,
            const ExperimentConfig&) -> std::unique_ptr<Strategy> {
           return std::make_unique<FirstReplica>(index);
         }});
  }
  ExperimentConfig config;
  config.num_nodes = 100;
  config.num_files = 40;
  config.cache_size = 4;
  config.strategy_spec = parse_strategy_spec(name);
  config.shard_batch = 16;
  config.seed = 0xC057;
  const SimulationContext context(config);
  const RunResult probe = context.run(0);
  EXPECT_GT(probe.requests, 0u);
  expect_thread_invariant(context, "non-split custom strategy", 2);
}

}  // namespace
}  // namespace proxcache
