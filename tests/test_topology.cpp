// Topology interface conformance (topology/topology.hpp): every concrete
// implementation — Lattice (torus + grid), RingTopology, TreeTopology,
// GraphTopology/rgg — must agree with a brute-force reference on the
// metric, shells, balls and neighbors, and enumerate shells exactly once
// in a deterministic order (the reservoir-sampling query layer consumes
// RNG draws per visited node, so order is part of the contract).
#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "topology/graph_topology.hpp"
#include "topology/hyperbolic.hpp"
#include "topology/lattice.hpp"
#include "topology/ring.hpp"
#include "topology/shells.hpp"
#include "topology/tree.hpp"

namespace proxcache {
namespace {

/// Cross-check every Topology query against the O(n²) definition built
/// from `distance` alone.
void expect_conforms(const Topology& topology, const std::string& label) {
  const std::size_t n = topology.size();
  ASSERT_GE(n, 1u) << label;

  // Metric sanity + true diameter.
  Hop max_distance = 0;
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(topology.distance(u, u), 0u) << label;
    for (NodeId v = 0; v < n; ++v) {
      const Hop d = topology.distance(u, v);
      EXPECT_EQ(d, topology.distance(v, u)) << label;
      max_distance = std::max(max_distance, d);
    }
  }
  EXPECT_EQ(topology.diameter(), max_distance) << label;

  for (NodeId u = 0; u < n; ++u) {
    std::map<Hop, std::set<NodeId>> reference;
    for (NodeId v = 0; v < n; ++v) {
      reference[topology.distance(u, v)].insert(v);
    }
    std::size_t ball = 0;
    double weighted = 0.0;
    for (Hop d = 0; d <= topology.diameter() + 1; ++d) {
      std::vector<NodeId> shell;
      topology.visit_shell(u, d, [&](NodeId v) { shell.push_back(v); });
      const std::set<NodeId> seen(shell.begin(), shell.end());
      EXPECT_EQ(seen.size(), shell.size())
          << label << ": duplicate visit in shell d=" << d << " of " << u;
      const std::set<NodeId> expected =
          reference.count(d) ? reference[d] : std::set<NodeId>{};
      EXPECT_EQ(seen, expected)
          << label << ": wrong shell d=" << d << " of " << u;
      EXPECT_EQ(topology.shell_size(u, d), expected.size()) << label;
      ball += expected.size();
      weighted += static_cast<double>(d) *
                  static_cast<double>(expected.size());
      EXPECT_EQ(topology.ball_size(u, d), std::min(ball, n)) << label;
    }
    EXPECT_EQ(topology.ball_size(u, topology.diameter()), n) << label;
    EXPECT_DOUBLE_EQ(topology.mean_distance_to_random_node(u),
                     weighted / static_cast<double>(n))
        << label;

    // Neighbors are exactly the shell at distance 1.
    const std::vector<NodeId> neighbors = topology.neighbors(u);
    const std::set<NodeId> neighbor_set(neighbors.begin(), neighbors.end());
    EXPECT_EQ(neighbor_set.size(), neighbors.size()) << label;
    EXPECT_EQ(neighbor_set, reference.count(1) ? reference[1]
                                               : std::set<NodeId>{})
        << label;
  }
  EXPECT_LT(topology.central_node(), n) << label;

  // Shell enumeration is deterministic: two passes agree element-wise.
  const NodeId probe = topology.central_node();
  for (Hop d = 0; d <= std::min<Hop>(topology.diameter(), 3); ++d) {
    EXPECT_EQ(collect_shell(topology, probe, d),
              collect_shell(topology, probe, d))
        << label;
  }
}

TEST(TopologyConformance, LatticeTorusAndGrid) {
  for (const std::int32_t side : {1, 2, 3, 5}) {
    for (const Wrap wrap : {Wrap::Torus, Wrap::Grid}) {
      const Lattice lattice(side, wrap);
      expect_conforms(lattice, lattice.describe());
    }
  }
}

TEST(TopologyConformance, Ring) {
  for (const std::size_t n : {1u, 2u, 3u, 8u, 9u}) {
    const RingTopology ring(n);
    expect_conforms(ring, ring.describe());
  }
}

TEST(TopologyConformance, Tree) {
  for (const auto& [branching, depth] :
       {std::pair{1u, 4u}, {2u, 3u}, {3u, 2u}, {4u, 1u}, {2u, 0u}}) {
    const TreeTopology tree(branching, depth);
    expect_conforms(tree, tree.describe());
  }
}

TEST(TopologyConformance, RandomGeometricGraph) {
  const auto rgg = make_rgg_topology(40, 0.3, 7);
  expect_conforms(*rgg, rgg->describe());
}

TEST(TopologyConformance, HyperbolicRandomGraph) {
  const auto hrg = make_hyperbolic_topology(48, 6.0, 0.8, 5);
  expect_conforms(*hrg, hrg->describe());
}

TEST(TopologyConformance, SparseOracleGraphTopology) {
  // The same conformance battery on the sparse-regime oracle (full ball
  // budget, so every query is certified-exact — including the iFUB
  // diameter, which expect_conforms checks against the true maximum).
  GraphTopology::Options options;
  options.dense_threshold = 0;
  options.distance_ball_budget = 64;
  const auto rgg = make_rgg_topology(64, 0.25, 19, options);
  ASSERT_FALSE(rgg->oracle().exact());
  expect_conforms(*rgg, "sparse " + rgg->describe());
}

TEST(LatticeTopology, ImplementsTheInterfaceBitIdentically) {
  // The virtual entry points must reproduce the lattice-typed ones exactly
  // — same values, same enumeration order (golden determinism rides on it).
  const Lattice lattice(5, Wrap::Torus);
  const Topology& topology = lattice;
  EXPECT_EQ(topology.as_lattice(), &lattice);
  for (NodeId u = 0; u < lattice.size(); ++u) {
    for (Hop d = 0; d <= lattice.diameter(); ++d) {
      std::vector<NodeId> via_interface;
      topology.visit_shell(u, d,
                           [&](NodeId v) { via_interface.push_back(v); });
      EXPECT_EQ(via_interface, collect_shell(lattice, u, d));
    }
  }
  EXPECT_EQ(topology.central_node(),
            lattice.node(Point{lattice.side() / 2, lattice.side() / 2}));
  EXPECT_EQ(topology.describe(), "torus(side=5)");
  EXPECT_EQ(Lattice(4, Wrap::Grid).describe(), "grid(side=4)");
  EXPECT_EQ(lattice.node_label(7), "(2, 1)");
}

TEST(RingTopology, ClosedFormsMatchDefinition) {
  const RingTopology ring(8);
  EXPECT_EQ(ring.diameter(), 4u);
  EXPECT_EQ(ring.distance(0, 7), 1u);
  EXPECT_EQ(ring.distance(1, 5), 4u);
  EXPECT_EQ(ring.shell_size(0, 4), 1u) << "antipode on an even ring";
  EXPECT_EQ(ring.shell_size(0, 3), 2u);
  EXPECT_EQ(ring.ball_size(3, 2), 5u);
  // Shell order mirrors the torus offsets: +d first, then -d.
  EXPECT_EQ(collect_shell(ring, 2, 1), (std::vector<NodeId>{3, 1}));
}

TEST(TreeTopology, StructureAndDistances) {
  // branching 2, depth 2: ids 0 | 1 2 | 3 4 5 6.
  const TreeTopology tree(2, 2);
  EXPECT_EQ(tree.size(), 7u);
  EXPECT_EQ(tree.diameter(), 4u);
  EXPECT_EQ(tree.level(0), 0u);
  EXPECT_EQ(tree.level(2), 1u);
  EXPECT_EQ(tree.level(6), 2u);
  EXPECT_EQ(tree.parent(5), 2u);
  EXPECT_EQ(tree.distance(3, 4), 2u) << "siblings meet at their parent";
  EXPECT_EQ(tree.distance(3, 6), 4u) << "cross-subtree goes through root";
  EXPECT_EQ(tree.distance(0, 6), 2u);
  EXPECT_EQ(tree.central_node(), 0u) << "hierarchies anchor at the root";
  EXPECT_EQ(tree.node_label(5), "2:5");
  EXPECT_EQ(tree.neighbors(1), (std::vector<NodeId>{0, 3, 4}));
  EXPECT_EQ(TreeTopology::node_count(4, 6), 5461u);
  EXPECT_EQ(TreeTopology::node_count(1, 9), 10u) << "unary tree is a path";
}

TEST(GraphTopology, BfsDistancesAndConnectivityChecks) {
  // A 4-path 0-1-2-3.
  CompactGraph path = CompactGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const GraphTopology topology(std::move(path), "path(n=4)");
  EXPECT_EQ(topology.diameter(), 3u);
  EXPECT_EQ(topology.distance(0, 3), 3u);
  EXPECT_EQ(topology.describe(), "path(n=4)");
  expect_conforms(topology, "path(n=4)");

  // Disconnected graphs are rejected loudly: every query assumes finite
  // distances.
  CompactGraph split = CompactGraph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(GraphTopology(std::move(split), "split"),
               std::invalid_argument);
}

TEST(RandomGeometricGraph, DeterministicInSeedAndAlwaysConnected) {
  const auto a = make_rgg_topology(60, 0.18, 11);
  const auto b = make_rgg_topology(60, 0.18, 11);
  EXPECT_EQ(a->graph().edges(), b->graph().edges())
      << "same seed must rebuild the identical graph";
  const auto c = make_rgg_topology(60, 0.18, 12);
  EXPECT_NE(a->graph().edges(), c->graph().edges())
      << "a different seed must move the points";

  // A radius far below the connectivity threshold exercises the stitching
  // repair: the topology still comes out connected (construction would
  // throw otherwise) with at least n-1 edges.
  const auto sparse = make_rgg_topology(50, 0.01, 3);
  EXPECT_EQ(sparse->size(), 50u);
  EXPECT_GE(sparse->graph().num_edges(), 49u);
  EXPECT_LE(sparse->distance(0, 49),
            sparse->diameter());
}

TEST(Topology, GenericBallEnumerationOrdersByDistance) {
  const RingTopology ring(9);
  std::vector<Hop> distances;
  for_each_in_ball(ring, 4, 3,
                   [&](NodeId, Hop d) { distances.push_back(d); });
  ASSERT_EQ(distances.size(), ring.ball_size(4, 3));
  EXPECT_TRUE(std::is_sorted(distances.begin(), distances.end()));
  EXPECT_EQ(collect_ball(ring, 4, 3).size(), 7u);
}

}  // namespace
}  // namespace proxcache
