// Grid-boundary audit (Wrap::Grid): `B_r(u)` balls truncated at the grid
// edges must be counted and enumerated *exactly* — never approximated by
// the u-independent torus shell sizes. These regressions pin the boundary
// behavior at edge and corner nodes against O(n²) brute force, for the
// shell/ball closed forms, the shell enumerators, the bucket grid, and the
// radius-filtered replica queries the candidate sampling normalizes over.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "catalog/placement.hpp"
#include "catalog/popularity.hpp"
#include "spatial/bucket_grid.hpp"
#include "spatial/replica_index.hpp"
#include "topology/lattice.hpp"
#include "topology/shells.hpp"

namespace proxcache {
namespace {

std::vector<NodeId> brute_shell(const Lattice& lattice, NodeId u, Hop d) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < lattice.size(); ++v) {
    if (lattice.distance(u, v) == d) out.push_back(v);
  }
  return out;
}

TEST(GridBoundary, ShellAndBallSizesAreExactAtEveryNode) {
  for (const std::int32_t side : {1, 2, 3, 4, 6}) {
    const Lattice grid(side, Wrap::Grid);
    for (NodeId u = 0; u < grid.size(); ++u) {
      std::size_t ball = 0;
      for (Hop d = 0; d <= grid.diameter() + 1; ++d) {
        const std::size_t brute = brute_shell(grid, u, d).size();
        EXPECT_EQ(grid.shell_size(u, d), brute)
            << "side=" << side << " u=" << u << " d=" << d;
        ball += brute;
        EXPECT_EQ(grid.ball_size(u, d), ball)
            << "side=" << side << " u=" << u << " r=" << d;
      }
    }
  }
}

TEST(GridBoundary, EnumerationVisitsTruncatedShellsExactlyOnce) {
  const Lattice grid(5, Wrap::Grid);
  // Corner, edge-midpoint, and center probe the three boundary regimes.
  const NodeId corner = grid.node(Point{0, 0});
  const NodeId edge = grid.node(Point{2, 0});
  const NodeId center = grid.node(Point{2, 2});
  for (const NodeId u : {corner, edge, center}) {
    for (Hop d = 0; d <= grid.diameter(); ++d) {
      const std::vector<NodeId> shell = collect_shell(grid, u, d);
      const std::set<NodeId> unique(shell.begin(), shell.end());
      EXPECT_EQ(unique.size(), shell.size())
          << "duplicate visit at u=" << u << " d=" << d;
      const std::vector<NodeId> brute = brute_shell(grid, u, d);
      EXPECT_EQ(unique, std::set<NodeId>(brute.begin(), brute.end()))
          << "u=" << u << " d=" << d;
    }
  }
}

TEST(GridBoundary, CornerBallsAreSmallerThanTorusBalls) {
  // The truncation itself: a grid corner sees roughly a quarter of the
  // torus ball. Any code path "normalizing" a corner ball by the torus
  // closed form would be off by this factor.
  const Lattice grid(9, Wrap::Grid);
  const Lattice torus(9, Wrap::Torus);
  const NodeId corner = grid.node(Point{0, 0});
  const NodeId center = grid.node(Point{4, 4});
  for (const Hop r : {1u, 2u, 3u}) {
    EXPECT_LT(grid.ball_size(corner, r), torus.ball_size(corner, r));
    EXPECT_LT(grid.ball_size(corner, r), grid.ball_size(center, r));
    // Interior nodes far from every edge agree with the torus closed form.
    EXPECT_EQ(grid.ball_size(center, r), torus.ball_size(center, r));
  }
  // Exact corner values: |B_r| = (r+1)(r+2)/2 within the quadrant.
  EXPECT_EQ(grid.ball_size(corner, 1), 3u);
  EXPECT_EQ(grid.ball_size(corner, 2), 6u);
  EXPECT_EQ(grid.ball_size(corner, 3), 10u);
}

TEST(GridBoundary, BucketGridRadiusQueriesAreExactAtTheEdges) {
  const Lattice grid(6, Wrap::Grid);
  std::vector<NodeId> all(grid.size());
  for (NodeId v = 0; v < grid.size(); ++v) all[v] = v;
  // Cell sizes that do and do not divide the side, including partial edge
  // cells (cell=4 leaves a 2-wide fringe).
  for (const std::int32_t cell : {1, 2, 4, 5, 6}) {
    const BucketGrid buckets(grid, all, cell);
    for (const NodeId u :
         {grid.node(Point{0, 0}), grid.node(Point{5, 0}),
          grid.node(Point{0, 5}), grid.node(Point{5, 5}),
          grid.node(Point{3, 0}), grid.node(Point{2, 3})}) {
      for (Hop r = 0; r <= grid.diameter() + 1; ++r) {
        std::vector<NodeId> got;
        buckets.for_each_within(u, r,
                                [&](NodeId v, Hop) { got.push_back(v); });
        std::vector<NodeId> want;
        for (NodeId v = 0; v < grid.size(); ++v) {
          if (grid.distance(u, v) <= r) want.push_back(v);
        }
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, want) << "cell=" << cell << " u=" << u << " r=" << r;
      }
    }
  }
}

TEST(GridBoundary, ReplicaCountsNeverOvercountAtCornersUnderBucketGrids) {
  // One file cached everywhere forces the bucket-grid path
  // (threshold 1 <= |S_j| = n); counts at boundary nodes must equal the
  // exact truncated ball size, not the torus size.
  const Lattice grid(7, Wrap::Grid);
  const std::size_t n = grid.size();
  Popularity popularity = Popularity::uniform(1);
  Rng rng(5);
  // Deterministic "cache file 0 everywhere" placement via generate with
  // M = 1, K = 1: every node caches the single file.
  const Placement placement = Placement::generate(
      n, popularity, 1, PlacementMode::ProportionalWithReplacement, rng);
  ASSERT_EQ(placement.replicas(0).size(), n);
  const ReplicaIndex index(grid, placement, /*bucket_threshold=*/1);
  ASSERT_TRUE(index.has_bucket_grid(0));
  const Lattice torus(7, Wrap::Torus);
  for (const NodeId u : {grid.node(Point{0, 0}), grid.node(Point{6, 6}),
                         grid.node(Point{0, 3}), grid.node(Point{3, 3})}) {
    for (Hop r = 0; r <= grid.diameter(); ++r) {
      EXPECT_EQ(index.count_replicas_within(u, 0, r), grid.ball_size(u, r))
          << "u=" << u << " r=" << r;
    }
  }
  EXPECT_LT(index.count_replicas_within(grid.node(Point{0, 0}), 0, 2),
            torus.ball_size(0, 2))
      << "corner counts must reflect the truncated ball";
}

TEST(GridBoundary, NearestQueriesAgreeAcrossAlgorithmsAtTheBoundary) {
  const Lattice grid(6, Wrap::Grid);
  Popularity popularity = Popularity::zipf(9, 1.0);
  Rng rng(17);
  const Placement placement = Placement::generate(
      grid.size(), popularity, 2,
      PlacementMode::ProportionalWithReplacement, rng);
  const ReplicaIndex index(grid, placement);
  for (const NodeId u : {grid.node(Point{0, 0}), grid.node(Point{5, 0}),
                         grid.node(Point{0, 5}), grid.node(Point{5, 5})}) {
    for (FileId j = 0; j < 9; ++j) {
      Rng r1(99);
      Rng r2(99);
      const NearestResult scan = index.nearest_by_scan(u, j, r1);
      const NearestResult shells = index.nearest_by_shells(u, j, r2);
      EXPECT_EQ(scan.server == kInvalidNode, shells.server == kInvalidNode);
      if (scan.server != kInvalidNode) {
        EXPECT_EQ(scan.distance, shells.distance) << "u=" << u << " j=" << j;
        EXPECT_EQ(scan.ties, shells.ties) << "u=" << u << " j=" << j;
      }
    }
  }
}

}  // namespace
}  // namespace proxcache
