// Tests for catalog/goodness: census correctness against brute force and the
// Lemma 2 behaviour of proportional placement.
#include "catalog/goodness.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace proxcache {
namespace {

Placement make(std::size_t n, std::size_t k, std::size_t m,
               std::uint64_t seed = 5) {
  Rng rng(seed);
  return Placement::generate(n, Popularity::uniform(k), m,
                             PlacementMode::ProportionalWithReplacement, rng);
}

TEST(Goodness, DistinctCountsMatchPlacement) {
  const Placement placement = make(50, 30, 6);
  const auto counts = distinct_counts(placement);
  ASSERT_EQ(counts.size(), 50u);
  for (NodeId u = 0; u < 50; ++u) {
    EXPECT_EQ(counts[u], placement.distinct_count(u));
  }
}

TEST(Goodness, ExactCensusMatchesBruteForce) {
  const Placement placement = make(40, 15, 5);
  const GoodnessReport report = goodness_census(placement);

  std::size_t min_t = placement.distinct_count(0);
  std::size_t max_t = min_t;
  double sum_t = 0.0;
  for (NodeId u = 0; u < 40; ++u) {
    const std::size_t t = placement.distinct_count(u);
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
    sum_t += static_cast<double>(t);
  }
  EXPECT_EQ(report.min_distinct, min_t);
  EXPECT_EQ(report.max_distinct, max_t);
  EXPECT_NEAR(report.mean_distinct, sum_t / 40.0, 1e-12);

  std::size_t max_overlap = 0;
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = u + 1; v < 40; ++v) {
      max_overlap = std::max(max_overlap, placement.overlap(u, v));
    }
  }
  EXPECT_EQ(report.max_overlap, max_overlap);
}

TEST(Goodness, SampledCensusNeverExceedsExact) {
  const Placement placement = make(60, 20, 4);
  const GoodnessReport exact = goodness_census(placement);
  Rng rng(9);
  const GoodnessReport sampled = goodness_census_sampled(placement, 500, rng);
  EXPECT_LE(sampled.max_overlap, exact.max_overlap);
  EXPECT_EQ(sampled.min_distinct, exact.min_distinct);
  EXPECT_EQ(sampled.pairs_examined, 500u);
}

TEST(Goodness, IsGoodThresholds) {
  GoodnessReport report;
  report.min_distinct = 8;
  report.max_overlap = 2;
  EXPECT_TRUE(report.is_good(0.5, 3, 16));   // 8 >= 0.5*16, 2 < 3
  EXPECT_FALSE(report.is_good(0.6, 3, 16));  // 8 < 9.6
  EXPECT_FALSE(report.is_good(0.5, 2, 16));  // 2 !< 2
}

TEST(Goodness, Lemma2RegimeIsGoodInPractice) {
  // K = n = 900, M = n^0.4 ≈ 15: Lemma 2 predicts t(u) >= δM with
  // δ = (1-α)/3 = 0.2 and small pairwise overlap (µ = O(1)).
  const std::size_t n = 900;
  const auto m = static_cast<std::size_t>(std::pow(n, 0.4));
  const Placement placement = make(n, n, m, 1234);
  const GoodnessReport report = goodness_census(placement);
  EXPECT_GE(static_cast<double>(report.min_distinct), 0.2 * static_cast<double>(m));
  EXPECT_LT(report.max_overlap, 5u);  // µ >= 5/(1-2α) would allow more; tight in practice
}

TEST(Goodness, FullReplicationHasFullOverlap) {
  // M >> K log K: every node caches (nearly) everything, overlap ≈ K.
  const Placement placement = make(10, 5, 200);
  const GoodnessReport report = goodness_census(placement);
  EXPECT_EQ(report.min_distinct, 5u);
  EXPECT_EQ(report.max_overlap, 5u);
}

TEST(Goodness, SampledRequiresTwoNodes) {
  const Placement placement = make(1, 5, 2);
  Rng rng(3);
  EXPECT_THROW(goodness_census_sampled(placement, 10, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace proxcache
