// Topology spec grammar (topology/spec.hpp): identical tolerance and
// round-trip behavior to the strategy grammar it mirrors (both ride on
// util/kvspec.hpp), plus the tolerant wrap_from_string parser that the
// legacy lattice knobs use.
#include "topology/spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "topology/lattice.hpp"

namespace proxcache {
namespace {

void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    (void)parse_topology_spec(text);
    FAIL() << "expected '" << text << "' to be rejected";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("bad topology spec"), std::string::npos)
        << message;
    EXPECT_NE(message.find(needle), std::string::npos)
        << "message '" << message << "' does not mention '" << needle << "'";
  }
}

TEST(TopologySpec, ParsesBareNameAndParameters) {
  const TopologySpec bare = parse_topology_spec("ring");
  EXPECT_EQ(bare.name, "ring");
  EXPECT_TRUE(bare.params.empty());

  const TopologySpec tree =
      parse_topology_spec("tree(branching=4, depth=6)");
  EXPECT_EQ(tree.name, "tree");
  EXPECT_EQ(tree.get_or("branching", 0.0), 4.0);
  EXPECT_EQ(tree.get_or("depth", 0.0), 6.0);
  EXPECT_FALSE(tree.has("side"));
}

TEST(TopologySpec, IsWhitespaceAndCaseTolerant) {
  const TopologySpec spec =
      parse_topology_spec("  RGG ( N = 512 ,  Radius = 0.1, SEED=9 )  ");
  EXPECT_EQ(spec.name, "rgg");
  EXPECT_EQ(spec.get_or("n", 0.0), 512.0);
  EXPECT_EQ(spec.get_or("radius", 0.0), 0.1);
  EXPECT_EQ(spec.get_or("seed", 0.0), 9.0);
}

TEST(TopologySpec, ToStringRoundTripsCanonically) {
  for (const char* text :
       {"torus(side=64)", "grid(side=3)", "ring(n=4096)",
        "tree(branching=4, depth=6)", "rgg(n=512, radius=0.03, seed=7)"}) {
    const TopologySpec spec = parse_topology_spec(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_EQ(parse_topology_spec(spec.to_string()), spec);
  }
}

TEST(TopologySpec, RejectsMalformedInputWithPreciseMessages) {
  expect_parse_error("", "expected a topology name");
  expect_parse_error("ring(n=4096", "expected ',' or ')'");
  expect_parse_error("ring(n)", "missing '=value'");
  expect_parse_error("ring(n=)", "missing a value");
  expect_parse_error("ring(n=4, n=5)", "duplicate parameter 'n'");
  expect_parse_error("ring(n=abc)", "neither a number nor a known keyword");
  expect_parse_error("ring(n=1) x", "trailing characters");
  expect_parse_error("ring{n=1}", "expected '('");
}

// ---------------------------------------------------------------------------
// wrap_from_string: the legacy lattice-knob parser must be exactly as
// tolerant as the spec grammar (bugfix: it used to be case-sensitive and
// whitespace-intolerant while every spec string was not).
// ---------------------------------------------------------------------------

TEST(WrapFromString, AcceptsCanonicalNames) {
  EXPECT_EQ(wrap_from_string("torus"), Wrap::Torus);
  EXPECT_EQ(wrap_from_string("grid"), Wrap::Grid);
}

TEST(WrapFromString, IsCaseAndWhitespaceTolerant) {
  EXPECT_EQ(wrap_from_string("Torus"), Wrap::Torus);
  EXPECT_EQ(wrap_from_string("TORUS"), Wrap::Torus);
  EXPECT_EQ(wrap_from_string("  torus  "), Wrap::Torus);
  EXPECT_EQ(wrap_from_string("\tGrid\n"), Wrap::Grid);
  EXPECT_EQ(wrap_from_string(" gRiD "), Wrap::Grid);
}

TEST(WrapFromString, RejectsUnknownNamesNamingTheToken) {
  try {
    (void)wrap_from_string("  Ring ");
    FAIL() << "expected an unknown wrap mode to throw";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("'ring'"), std::string::npos)
        << "message should echo the trimmed, lowercased token: " << message;
    EXPECT_NE(message.find("torus"), std::string::npos) << message;
  }
  EXPECT_THROW((void)wrap_from_string(""), std::invalid_argument);
  EXPECT_THROW((void)wrap_from_string("   "), std::invalid_argument);
  EXPECT_THROW((void)wrap_from_string("to rus"), std::invalid_argument);
}

TEST(WrapFromString, RoundTripsToString) {
  for (const Wrap wrap : {Wrap::Torus, Wrap::Grid}) {
    EXPECT_EQ(wrap_from_string(to_string(wrap)), wrap);
  }
}

}  // namespace
}  // namespace proxcache
