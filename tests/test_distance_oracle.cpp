// Scalable distance layer (graph/distance_oracle.hpp): the sparse regime
// (on-demand truncated BFS + landmark upper bounds) must agree with the
// dense all-pairs matrix wherever it claims exactness, answer
// history-independently (no query order, eviction, or cache effect may
// change a result), keep shells exact and id-sorted in both regimes, and
// reject over-deep graphs with a user-facing error instead of an internal
// assertion. The landmark approximation is checked against exact BFS on
// every registered topology at small n.
#include "graph/distance_oracle.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "topology/graph_topology.hpp"
#include "topology/hyperbolic.hpp"
#include "topology/registry.hpp"
#include "topology/spec.hpp"

namespace proxcache {
namespace {

/// CSR graph from any topology's distance-1 shells — lets the oracle be
/// exercised on lattices, rings and trees too, not just native graphs.
CompactGraph graph_from(const Topology& topology) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (NodeId u = 0; u < topology.size(); ++u) {
    for (const NodeId v : topology.neighbors(u)) {
      if (v > u) {
        edges.emplace_back(static_cast<std::uint32_t>(u),
                           static_cast<std::uint32_t>(v));
      }
    }
  }
  return CompactGraph::from_edges(
      static_cast<std::uint32_t>(topology.size()), std::move(edges));
}

DistanceOracle::Options sparse_exact_options(std::size_t n) {
  DistanceOracle::Options options;
  options.dense_threshold = 0;        // force the sparse machinery
  options.distance_ball_budget = n;   // ...with full exactness
  return options;
}

TEST(DistanceOracle, SparseAgreesWithDenseEverywhereWithinBudget) {
  const auto rgg = make_rgg_topology(180, 0.14, 21);
  const CompactGraph& graph = rgg->graph();
  const std::size_t n = graph.num_vertices();
  const DistanceOracle dense(graph, DistanceOracle::Options{});
  ASSERT_TRUE(dense.exact());
  const DistanceOracle sparse(graph, sparse_exact_options(n));
  ASSERT_FALSE(sparse.exact());

  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(sparse.distance(u, v), dense.distance(u, v))
          << "pair (" << u << ", " << v << ")";
      const auto certified = sparse.certified_distance(u, v);
      ASSERT_TRUE(certified.has_value()) << "budget covers the whole graph";
      EXPECT_EQ(*certified, dense.distance(u, v));
    }
  }
  EXPECT_EQ(sparse.diameter(), dense.diameter());
  EXPECT_TRUE(sparse.diameter_is_exact());
  EXPECT_EQ(sparse.stats().landmark_answers, 0u)
      << "budget >= n must never fall back to landmarks";
}

TEST(DistanceOracle, ShellsAreExactAndIdSortedInBothRegimes) {
  const auto rgg = make_rgg_topology(150, 0.16, 4);
  const CompactGraph& graph = rgg->graph();
  const std::size_t n = graph.num_vertices();
  const DistanceOracle dense(graph, DistanceOracle::Options{});
  // A *small* ball budget: shells must stay exact beyond the distance
  // horizon (they extend the row as deep as the query asks).
  DistanceOracle::Options options = sparse_exact_options(n);
  options.distance_ball_budget = 8;
  const DistanceOracle sparse(graph, options);

  for (const NodeId u : {static_cast<NodeId>(0), static_cast<NodeId>(n / 2),
                         static_cast<NodeId>(n - 1)}) {
    std::size_t ball = 0;
    for (Hop d = 0; d <= dense.diameter() + 1; ++d) {
      std::vector<NodeId> from_dense;
      std::vector<NodeId> from_sparse;
      dense.visit_shell(u, d, [&](NodeId v) { from_dense.push_back(v); });
      sparse.visit_shell(u, d, [&](NodeId v) { from_sparse.push_back(v); });
      EXPECT_EQ(from_sparse, from_dense)
          << "shell d=" << d << " of " << u
          << " must match the dense row scan element-wise";
      EXPECT_TRUE(
          std::is_sorted(from_sparse.begin(), from_sparse.end()))
          << "shells enumerate in increasing node-id order";
      EXPECT_EQ(sparse.shell_size(u, d), from_dense.size());
      ball += from_dense.size();
      EXPECT_EQ(sparse.ball_size(u, d), std::min(ball, n));
    }
  }
}

TEST(DistanceOracle, AnswersAreHistoryIndependent) {
  const auto rgg = make_rgg_topology(200, 0.12, 8);
  const CompactGraph& graph = rgg->graph();
  const std::size_t n = graph.num_vertices();
  DistanceOracle::Options options;
  options.dense_threshold = 0;
  options.distance_ball_budget = 24;  // most far pairs go to landmarks
  options.cache_entry_budget = 64;    // constant eviction churn
  const DistanceOracle churned(graph, options);

  // Warm the churned oracle through an adversarial access pattern: deep
  // shell walks (rows grown far beyond the budget ball), then scattered
  // distance queries that evict those rows repeatedly.
  for (NodeId u = 0; u < n; u += 7) {
    (void)churned.ball_size(u, churned.diameter());
  }
  for (NodeId u = 0; u < n; ++u) {
    (void)churned.distance(u, (u * 31 + 5) % n);
  }
  EXPECT_GT(churned.stats().rows_evicted, 0u)
      << "the tiny cache budget must actually churn";

  // Every answer must equal the one a *fresh* oracle gives first thing:
  // exactness is a function of the graph and the budget, never of what
  // was asked before or what the LRU kept.
  const DistanceOracle fresh(graph, options);
  for (NodeId u = 0; u < n; u += 3) {
    for (NodeId v = 0; v < n; v += 5) {
      EXPECT_EQ(churned.distance(u, v), fresh.distance(u, v))
          << "pair (" << u << ", " << v << ")";
      EXPECT_EQ(churned.certified_distance(u, v).has_value(),
                fresh.certified_distance(u, v).has_value())
          << "exactness horizon drifted for (" << u << ", " << v << ")";
    }
  }
}

TEST(DistanceOracle, CertifiedDistancesAreExactAndBoundsNeverUnderestimate) {
  const auto rgg = make_rgg_topology(220, 0.11, 13);
  const CompactGraph& graph = rgg->graph();
  const std::size_t n = graph.num_vertices();
  const DistanceOracle reference(graph, sparse_exact_options(n));
  DistanceOracle::Options options;
  options.dense_threshold = 0;
  options.distance_ball_budget = 16;
  options.num_landmarks = 8;
  const DistanceOracle oracle(graph, options);

  std::uint64_t approximated = 0;
  for (NodeId u = 0; u < n; u += 2) {
    for (NodeId v = 0; v < n; v += 3) {
      const Hop exact = reference.distance(u, v);
      const Hop answer = oracle.distance(u, v);
      const auto certified = oracle.certified_distance(u, v);
      if (certified.has_value()) {
        EXPECT_EQ(*certified, exact) << "(" << u << ", " << v << ")";
        EXPECT_EQ(answer, exact);
      } else {
        EXPECT_GE(answer, exact)
            << "landmark estimates are upper bounds, never below the truth";
        EXPECT_LE(answer, 2 * oracle.diameter());
        ++approximated;
      }
    }
  }
  EXPECT_GT(approximated, 0u)
      << "a 16-node ball budget must push far pairs to the landmark path";
  EXPECT_GE(oracle.diameter(), reference.diameter())
      << "diameter may be an upper bound but never an underestimate";
}

TEST(DistanceOracle, LandmarkBoundHoldsOnEveryRegisteredTopology) {
  // One small spec per registered topology; the completeness assertion
  // below forces this table to grow with the registry.
  const std::map<std::string, std::string> small_specs = {
      {"torus", "torus(side=6)"},
      {"grid", "grid(side=6)"},
      {"ring", "ring(n=48)"},
      {"tree", "tree(branching=3, depth=3)"},
      {"rgg", "rgg(n=64, radius=0.22, seed=3)"},
      {"hyperbolic", "hyperbolic(n=64, degree=6, alpha=0.8, seed=2)"},
      {"clique", "clique(n=24)"},
  };
  const TopologyRegistry& registry = TopologyRegistry::built_ins();
  for (const TopologyEntry& entry : registry.all()) {
    ASSERT_TRUE(small_specs.count(entry.name))
        << "new topology '" << entry.name
        << "' needs a row in the landmark-bound suite";
  }

  for (const auto& [name, spec] : small_specs) {
    const auto topology = registry.make(parse_topology_spec(spec));
    const CompactGraph graph = graph_from(*topology);
    const std::size_t n = graph.num_vertices();
    const DistanceOracle exact(graph, sparse_exact_options(n));
    DistanceOracle::Options options;
    options.dense_threshold = 0;
    options.distance_ball_budget = 4;  // landmark path for most pairs
    options.num_landmarks = 6;
    const DistanceOracle oracle(graph, options);

    double total_error = 0.0;
    std::size_t pairs = 0;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        const Hop truth = exact.distance(u, v);
        const Hop bound = oracle.landmark_upper_bound(u, v);
        ASSERT_GE(bound, truth) << spec << " (" << u << ", " << v << ")";
        ASSERT_LE(bound, 2 * exact.diameter()) << spec;
        total_error += static_cast<double>(bound - truth) /
                       static_cast<double>(truth);
        ++pairs;
      }
    }
    // Loose locked ceiling: farthest-point landmarks keep the *mean*
    // relative overestimate below one diameter-hop of slack on every
    // catalog topology. Small-diameter expanders (hyperbolic) sit highest
    // — truth 1 vs bound 2 already costs 100% — so the ceiling only
    // catches gross regressions, not model-level looseness.
    EXPECT_LE(total_error / static_cast<double>(pairs), 1.0) << spec;
  }
}

TEST(DistanceOracle, OverDeepGraphsThrowNamingTheSourceVertex) {
  // A path longer than the uint16 distance range: the old dense code
  // tripped an internal assertion; the contract is now a user-facing
  // std::invalid_argument naming the BFS source.
  const std::uint32_t n = 70'000;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n - 1);
  for (std::uint32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  CompactGraph path = CompactGraph::from_edges(n, std::move(edges));
  try {
    const DistanceOracle oracle(path, DistanceOracle::Options{});
    FAIL() << "a 70k-vertex path exceeds uint16 distances and must throw";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("vertex 0"), std::string::npos)
        << "message must name the offending source: " << message;
    EXPECT_NE(message.find("65534"), std::string::npos)
        << "message must state the storage limit: " << message;
  }
}

TEST(DistanceOracle, DisconnectedGraphsAreRejectedInBothRegimes) {
  CompactGraph split_small = CompactGraph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(DistanceOracle(split_small, DistanceOracle::Options{}),
               std::invalid_argument);
  CompactGraph split_again = CompactGraph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(DistanceOracle(split_again, sparse_exact_options(4)),
               std::invalid_argument);
}

TEST(DistanceOracle, LruEvictionKeepsMemoryBoundedWithoutChangingAnswers) {
  const auto rgg = make_rgg_topology(160, 0.15, 30);
  const CompactGraph& graph = rgg->graph();
  const std::size_t n = graph.num_vertices();
  DistanceOracle::Options options = sparse_exact_options(n);
  options.cache_entry_budget = 2 * n;  // room for ~2 full rows
  const DistanceOracle oracle(graph, options);
  const DistanceOracle reference(graph, sparse_exact_options(n));

  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(oracle.distance(u, (u + n / 2) % n),
              reference.distance(u, (u + n / 2) % n));
  }
  const DistanceOracle::Stats stats = oracle.stats();
  EXPECT_EQ(stats.rows_built, static_cast<std::uint64_t>(n));
  EXPECT_GT(stats.rows_evicted, 0u);
  EXPECT_EQ(stats.landmark_answers, 0u);
}

TEST(DistanceOracle, DeepBallWalksStreamWithoutGrowingResidentRows) {
  const auto rgg = make_rgg_topology(200, 0.12, 13);
  const CompactGraph& graph = rgg->graph();
  const std::size_t n = graph.num_vertices();
  const DistanceOracle dense(graph, DistanceOracle::Options{});
  DistanceOracle::Options options;
  options.dense_threshold = 0;
  options.distance_ball_budget = 16;
  // Roomy for budget-truncated rows but far below what n full BFS rows
  // would need — if a deep walk ever materialized whole rows again, the
  // LRU would fire and the eviction counter below would catch it.
  options.cache_entry_budget = n * 64;
  const DistanceOracle sparse(graph, options);

  // A diameter-deep ball walk from every source stays exact (every node
  // visited exactly once per source across the shells)...
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_EQ(sparse.ball_size(u, dense.diameter()), n) << "source " << u;
  }
  for (const NodeId u : {static_cast<NodeId>(0), static_cast<NodeId>(n / 3)}) {
    std::size_t visited = 0;
    for (Hop d = 0; d <= dense.diameter(); ++d) {
      std::vector<NodeId> from_dense;
      std::vector<NodeId> from_sparse;
      dense.visit_shell(u, d, [&](NodeId v) { from_dense.push_back(v); });
      sparse.visit_shell(u, d, [&](NodeId v) { from_sparse.push_back(v); });
      EXPECT_EQ(from_sparse, from_dense) << "shell d=" << d << " of " << u;
      visited += from_sparse.size();
    }
    EXPECT_EQ(visited, n) << "shells of " << u << " must partition the graph";
  }

  // ...while resident memory stays at the budget horizon: streamed levels
  // never enter the cache, so no row exceeds the ball budget and nothing
  // is ever evicted.
  EXPECT_LE(sparse.cached_entries(), n * options.distance_ball_budget);
  EXPECT_EQ(sparse.stats().rows_built, static_cast<std::uint64_t>(n));
  EXPECT_EQ(sparse.stats().rows_evicted, 0u)
      << "deep ball walks must not blow the row cache past its budget";
}

}  // namespace
}  // namespace proxcache
