// Tests for the two distributed-implementation extensions of §VI:
// stale load information (periodic polling) and the (1+β) partial-choice
// process.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "core/stale_view.hpp"
#include "core/two_choice.hpp"
#include "parallel/sharded_runner.hpp"

namespace proxcache {
namespace {

TEST(StaleLoadView, SnapshotLagsUntilRefresh) {
  LoadTracker tracker(4);
  StaleLoadView view(tracker, 3);
  tracker.assign(2, 0);
  tracker.assign(2, 0);
  EXPECT_EQ(view.load(2), 0u) << "snapshot must not see live updates";
  view.refresh();
  EXPECT_EQ(view.load(2), 2u);
}

TEST(StaleLoadView, OnAssignmentRefreshesAtThePeriod) {
  LoadTracker tracker(2);
  StaleLoadView view(tracker, 2);
  tracker.assign(0, 0);
  view.on_assignment(tracker.assigned());  // 1 % 2 != 0: stale
  EXPECT_EQ(view.load(0), 0u);
  tracker.assign(0, 0);
  view.on_assignment(tracker.assigned());  // 2 % 2 == 0: refresh
  EXPECT_EQ(view.load(0), 2u);
}

TEST(StaleLoadView, RejectsZeroPeriod) {
  LoadTracker tracker(1);
  EXPECT_THROW(StaleLoadView(tracker, 0), std::invalid_argument);
}

// Refresh boundary, exactly: with period p the snapshot refreshes on the
// p-th, 2p-th, … assignment and at no other point — off-by-one here would
// silently shift every stale-information experiment.
TEST(StaleLoadView, RefreshBoundaryIsExact) {
  LoadTracker tracker(1);
  StaleLoadView view(tracker, 3);
  const std::vector<Load> expected_after = {0, 0, 3, 3, 3, 6, 6, 6, 9};
  for (std::size_t step = 0; step < expected_after.size(); ++step) {
    tracker.assign(0, 0);
    view.on_assignment(tracker.assigned());
    EXPECT_EQ(view.load(0), expected_after[step])
        << "after assignment " << (step + 1);
  }
}

// period == trace length: the only refresh lands on the very last
// assignment, after every comparison already happened — so a run behaves
// exactly like one whose snapshot never refreshes at all.
TEST(StaleSimulation, PeriodEqualToTraceLengthMatchesNeverRefreshed) {
  ExperimentConfig config;
  config.num_nodes = 225;
  config.num_files = 30;
  config.cache_size = 5;
  config.seed = 11;
  config.strategy_spec = parse_strategy_spec("two-choice");
  config.strategy_spec.params["stale"] =
      static_cast<double>(config.effective_requests());
  const RunResult at_length = run_simulation(config, 0);
  config.strategy_spec.params["stale"] = 1u << 30;  // never refreshes
  const RunResult never = run_simulation(config, 0);
  EXPECT_EQ(at_length.max_load, never.max_load);
  EXPECT_EQ(at_length.comm_cost, never.comm_cost);
  EXPECT_EQ(at_length.requests, never.requests);
}

// Fallback/drop events are not assignments: a run that only drops must
// never advance the staleness clock (on_assignment is keyed to
// tracker.assigned(), which stays 0).
TEST(StaleLoadView, FallbacksAndDropsDoNotAdvanceTheClock) {
  LoadTracker tracker(2);
  StaleLoadView view(tracker, 1);
  tracker.note_fallback();
  tracker.drop();
  tracker.note_fallback();
  EXPECT_EQ(tracker.assigned(), 0u);
  EXPECT_EQ(view.load(0), 0u);
  EXPECT_EQ(view.load(1), 0u);
  EXPECT_EQ(tracker.fallbacks(), 2u);
  EXPECT_EQ(tracker.dropped(), 1u);
}

// End-to-end: a stale two-choice run where the tiny radius forces fallback
// drops must complete with a consistent request ledger — every generated
// request is either assigned or counted dropped.
TEST(StaleSimulation, StaleRunWithFallbackDropsKeepsTheLedger) {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 60;
  config.cache_size = 2;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 1.1;
  config.strategy_spec =
      parse_strategy_spec("two-choice(r=1, fallback=drop, stale=5)");
  config.seed = 12;
  const RunResult result = run_simulation(config, 0);
  EXPECT_GT(result.dropped, 0u) << "radius 1 must provoke drops";
  EXPECT_EQ(result.requests + result.dropped, config.effective_requests());
}

TEST(StaleSimulation, FreshEqualsPeriodOne) {
  ExperimentConfig fresh;
  fresh.num_nodes = 225;
  fresh.num_files = 30;
  fresh.cache_size = 5;
  fresh.seed = 5;
  fresh.strategy_spec = parse_strategy_spec("two-choice");
  ExperimentConfig period_one = fresh;
  period_one.strategy_spec = parse_strategy_spec("two-choice(stale=1)");
  // stale_batch = 1 keeps the plain tracker path; results identical.
  const RunResult a = run_simulation(fresh, 0);
  const RunResult b = run_simulation(period_one, 0);
  EXPECT_EQ(a.max_load, b.max_load);
  EXPECT_DOUBLE_EQ(a.comm_cost, b.comm_cost);
}

TEST(StaleSimulation, ExtremeStalenessDegradesTowardOneChoice) {
  // Never-refreshed loads (period >> m) make the comparison vacuous (all
  // zeros → uniform tie break), i.e. effectively one uniform choice.
  ExperimentConfig base;
  base.num_nodes = 1024;
  base.num_files = 16;
  base.cache_size = 8;
  base.seed = 6;
  base.strategy_spec = parse_strategy_spec("two-choice");

  ExperimentConfig stale = base;
  stale.strategy_spec = parse_strategy_spec("two-choice");
  stale.strategy_spec.params["stale"] = 1 << 30;

  double fresh_load = 0.0;
  double stale_load = 0.0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    fresh_load += run_simulation(base, i).max_load;
    stale_load += run_simulation(stale, i).max_load;
  }
  EXPECT_GT(stale_load, fresh_load + 4.0)
      << "useless load information must cost balance";
}

TEST(StaleSimulation, ModerateStalenessDegradesGracefully) {
  ExperimentConfig config;
  config.num_nodes = 1024;
  config.num_files = 16;
  config.cache_size = 8;
  config.seed = 7;
  config.strategy_spec = parse_strategy_spec("two-choice");

  double last = 0.0;
  for (const std::uint32_t period : {1u, 64u, 1u << 30}) {
    config.strategy_spec.params["stale"] = period;
    double total = 0.0;
    for (std::uint64_t i = 0; i < 6; ++i) {
      total += run_simulation(config, i).max_load;
    }
    EXPECT_GE(total + 1.0, last)
        << "staleness must not *improve* balance (period " << period << ")";
    last = total;
  }
}

// Speculation must validate against the view choose() actually reads, not
// the live tracker. With a staleness period >= the trace length the
// snapshot never refreshes before the final assignment: every candidate
// load choose() compares is the frozen all-zero snapshot, so no speculation
// can ever be invalidated — spec_conflicts must be exactly 0 even though
// the live loads diverge throughout the run. An engine that validated
// against the live tracker would report near-constant conflicts here and
// silently serialize every stale experiment.
TEST(StaleSimulation, SpeculationValidatesAgainstTheStaleView) {
  ExperimentConfig config;
  config.num_nodes = 225;
  config.num_files = 30;
  config.cache_size = 5;
  config.seed = 13;
  config.strategy_spec = parse_strategy_spec("two-choice");
  config.strategy_spec.params["stale"] =
      static_cast<double>(config.effective_requests());
  config.shard_batch = 64;
  const SimulationContext context(config);
  ShardStats stats;
  const RunResult speculative =
      ShardedRunner(context, {4, 64, /*speculate=*/true, 32}).run(0, &stats);
  EXPECT_GT(stats.spec_attempted, 0u);
  EXPECT_EQ(stats.spec_conflicts, 0u)
      << "a frozen snapshot can never invalidate a speculation";
  EXPECT_EQ(stats.spec_hits, stats.spec_attempted);
  // And the result still matches the serial-commit schedule bit-for-bit.
  const RunResult serial =
      ShardedRunner(context, {4, 64, /*speculate=*/false}).run(0);
  EXPECT_EQ(speculative.max_load, serial.max_load);
  EXPECT_EQ(speculative.comm_cost, serial.comm_cost);
  EXPECT_EQ(speculative.requests, serial.requests);
  EXPECT_EQ(speculative.load_histogram.counts(),
            serial.load_histogram.counts());
}

// The refreshing corner: a short staleness period means snapshots *do*
// change mid-run, exactly at refresh boundaries — speculations straddling
// a refresh are the only ones that can conflict, and the commit must
// re-choose them against the refreshed view. The run must stay
// bit-identical across commit modes while actually exercising that path.
TEST(StaleSimulation, RefreshingStaleViewStaysBitIdenticalAcrossCommitModes) {
  ExperimentConfig config;
  config.num_nodes = 64;
  config.num_files = 20;
  config.cache_size = 4;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 1.5;
  config.seed = 14;
  config.strategy_spec = parse_strategy_spec("two-choice(stale=7)");
  config.shard_batch = 53;  // coprime to the period: refreshes straddle
  const SimulationContext context(config);
  ShardStats stats;
  const RunResult speculative =
      ShardedRunner(context, {4, 53, /*speculate=*/true, 16}).run(0, &stats);
  EXPECT_GT(stats.spec_attempted, 0u);
  EXPECT_GT(stats.spec_conflicts, 0u)
      << "period 7 refreshes inside nearly every window; some speculation "
         "must be invalidated or the corner is untested";
  const RunResult serial =
      ShardedRunner(context, {4, 53, /*speculate=*/false}).run(0);
  EXPECT_EQ(speculative.max_load, serial.max_load);
  EXPECT_EQ(speculative.comm_cost, serial.comm_cost);
  EXPECT_EQ(speculative.requests, serial.requests);
  EXPECT_EQ(speculative.load_histogram.counts(),
            serial.load_histogram.counts());
}

TEST(OnePlusBeta, BetaOneIsTheDefaultProcess) {
  ExperimentConfig a;
  a.num_nodes = 225;
  a.num_files = 10;
  a.cache_size = 5;
  a.seed = 8;
  a.strategy_spec = parse_strategy_spec("two-choice");
  ExperimentConfig b = a;
  b.strategy_spec = parse_strategy_spec("two-choice(beta=1)");
  EXPECT_EQ(run_simulation(a, 0).max_load, run_simulation(b, 0).max_load);
}

TEST(OnePlusBeta, BetaZeroMatchesOneChoiceLevel) {
  ExperimentConfig one_choice;
  one_choice.num_nodes = 1024;
  one_choice.num_files = 16;
  one_choice.cache_size = 8;
  one_choice.seed = 9;
  one_choice.strategy_spec = parse_strategy_spec("two-choice(d=1)");
  ExperimentConfig beta_zero = one_choice;
  beta_zero.strategy_spec = parse_strategy_spec("two-choice(d=2, beta=0)");

  double l_one = 0.0;
  double l_beta = 0.0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    l_one += run_simulation(one_choice, i).max_load;
    l_beta += run_simulation(beta_zero, i).max_load;
  }
  EXPECT_NEAR(l_one / 8.0, l_beta / 8.0, 1.0);
}

TEST(OnePlusBeta, LoadDecreasesInBeta) {
  ExperimentConfig config;
  config.num_nodes = 1024;
  config.num_files = 16;
  config.cache_size = 8;
  config.seed = 10;
  config.strategy_spec = parse_strategy_spec("two-choice");

  std::vector<double> loads;
  for (const double beta : {0.0, 0.5, 1.0}) {
    config.strategy_spec.params["beta"] = beta;
    double total = 0.0;
    for (std::uint64_t i = 0; i < 8; ++i) {
      total += run_simulation(config, i).max_load;
    }
    loads.push_back(total / 8.0);
  }
  EXPECT_GT(loads[0], loads[1] - 0.3);
  EXPECT_GT(loads[1], loads[2] - 0.3);
  EXPECT_GT(loads[0], loads[2] + 0.5) << "beta=1 must clearly beat beta=0";
}

TEST(OnePlusBeta, RejectsBadBeta) {
  const Lattice lattice(5, Wrap::Torus);
  Rng rng(1);
  const Placement placement = Placement::generate(
      25, Popularity::uniform(4), 2,
      PlacementMode::ProportionalWithReplacement, rng);
  const ReplicaIndex index(lattice, placement);
  TwoChoiceOptions options;
  options.beta = -0.1;
  EXPECT_THROW(TwoChoiceStrategy(index, options), std::invalid_argument);
  options.beta = 1.1;
  EXPECT_THROW(TwoChoiceStrategy(index, options), std::invalid_argument);
}

}  // namespace
}  // namespace proxcache
