// Tests for core/cost_model: the exact finite-torus nearest-replica
// distance law against brute-force probability enumeration and against the
// Monte-Carlo simulator.
#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"

namespace proxcache {
namespace {

TEST(ExpectedNearestDistance, MatchesBruteForceEnumeration) {
  // E[D | available] = sum_d P(D > d | available) with
  // P(D > d) = (1-q)^{|B_d|}; verify against a direct evaluation from the
  // survival probabilities on a small torus.
  const Lattice lattice(7, Wrap::Torus);
  for (const double q : {0.05, 0.2, 0.5, 0.9}) {
    const std::size_t n = lattice.size();
    const double p_empty = std::pow(1.0 - q, static_cast<double>(n));
    double expected = 0.0;
    for (Hop d = 0; d < lattice.diameter(); ++d) {
      const double survivor =
          std::pow(1.0 - q, static_cast<double>(lattice.ball_size(0, d)));
      expected += (survivor - p_empty) / (1.0 - p_empty);
    }
    EXPECT_NEAR(expected_nearest_distance(lattice, q), expected, 1e-9)
        << "q=" << q;
  }
}

TEST(ExpectedNearestDistance, CertainCacheMeansZeroDistance) {
  const Lattice lattice(9, Wrap::Torus);
  EXPECT_NEAR(expected_nearest_distance(lattice, 1.0), 0.0, 1e-12);
}

TEST(ExpectedNearestDistance, MonotoneDecreasingInQ) {
  const Lattice lattice(15, Wrap::Torus);
  double last = 1e18;
  for (const double q : {0.01, 0.05, 0.1, 0.3, 0.7}) {
    const double d = expected_nearest_distance(lattice, q);
    EXPECT_LT(d, last);
    last = d;
  }
}

TEST(ExpectedNearestDistance, SparseRegimeScalesAsInverseSqrtQ) {
  // On a large torus with q small, E[D] ≈ c/sqrt(q): quartering q doubles
  // the distance.
  const Lattice lattice(201, Wrap::Torus);
  const double d1 = expected_nearest_distance(lattice, 0.004);
  const double d2 = expected_nearest_distance(lattice, 0.001);
  EXPECT_NEAR(d2 / d1, 2.0, 0.1);
}

TEST(ExpectedNearestDistance, RejectsBadQ) {
  const Lattice lattice(5, Wrap::Torus);
  EXPECT_THROW(expected_nearest_distance(lattice, 0.0),
               std::invalid_argument);
  EXPECT_THROW(expected_nearest_distance(lattice, 1.5),
               std::invalid_argument);
}

TEST(NearestCostModel, MatchesMonteCarloUniform) {
  // The model is exact for the simulated process (independent caching,
  // uniform origins, Resample policy); simulation must agree within a few
  // percent at modest replication.
  const Lattice lattice = Lattice::from_node_count(625, Wrap::Torus);
  const Popularity popularity = Popularity::uniform(80);
  const double predicted = nearest_cost_model(lattice, popularity, 4);

  ExperimentConfig config;
  config.num_nodes = 625;
  config.num_files = 80;
  config.cache_size = 4;
  config.strategy_spec = parse_strategy_spec("nearest");
  config.seed = 77;
  const ExperimentResult measured = run_experiment(config, 40);
  EXPECT_NEAR(measured.comm_cost.mean(), predicted,
              0.05 * predicted + 3.0 * measured.comm_cost.standard_error());
}

TEST(NearestCostModel, MatchesMonteCarloZipf) {
  const Lattice lattice = Lattice::from_node_count(625, Wrap::Torus);
  const Popularity popularity = Popularity::zipf(200, 1.2);
  const double predicted = nearest_cost_model(lattice, popularity, 2);

  ExperimentConfig config;
  config.num_nodes = 625;
  config.num_files = 200;
  config.cache_size = 2;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 1.2;
  config.strategy_spec = parse_strategy_spec("nearest");
  config.seed = 78;
  const ExperimentResult measured = run_experiment(config, 40);
  EXPECT_NEAR(measured.comm_cost.mean(), predicted,
              0.06 * predicted + 3.0 * measured.comm_cost.standard_error());
}

TEST(NearestCostModel, DecreasesWithCacheSize) {
  const Lattice lattice = Lattice::from_node_count(400, Wrap::Torus);
  const Popularity popularity = Popularity::uniform(50);
  double last = 1e18;
  for (const std::size_t m : {1u, 2u, 5u, 20u}) {
    const double c = nearest_cost_model(lattice, popularity, m);
    EXPECT_LT(c, last);
    last = c;
  }
}

TEST(NearestCostModel, SkewIsCheaper) {
  const Lattice lattice = Lattice::from_node_count(900, Wrap::Torus);
  EXPECT_LT(nearest_cost_model(lattice, Popularity::zipf(300, 1.5), 3),
            nearest_cost_model(lattice, Popularity::uniform(300), 3));
}

TEST(NearestCostReferenceFinite, ApproachesPlainReferenceForLargeN) {
  // With abundant nodes and well-replicated files, the finite correction
  // vanishes.
  const Popularity popularity = Popularity::uniform(20);
  const double plain = nearest_cost_reference(popularity, 4);
  const double finite =
      nearest_cost_reference_finite(popularity, 4, 4000000);
  EXPECT_NEAR(finite / plain, 1.0, 0.05);
}

TEST(NearestCostReferenceFinite, FlattensAtHighSkew) {
  // For gamma=1.5 with tiny M the asymptotic reference grows in K while
  // the finite one saturates (absent tail files are resampled).
  const std::size_t n = 2025;
  const double small_k =
      nearest_cost_reference_finite(Popularity::zipf(250, 1.5), 2, n);
  const double large_k =
      nearest_cost_reference_finite(Popularity::zipf(2000, 1.5), 2, n);
  const double asym_small = nearest_cost_reference(Popularity::zipf(250, 1.5), 2);
  const double asym_large =
      nearest_cost_reference(Popularity::zipf(2000, 1.5), 2);
  EXPECT_LT(large_k / small_k, asym_large / asym_small)
      << "finite reference must grow slower than the asymptotic one";
}

}  // namespace
}  // namespace proxcache
