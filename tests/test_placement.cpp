// Tests for catalog/placement: structural invariants (sorted distinct CSR,
// replica-list/node-list duality), distributional marginals, and the
// distinct-mode ablation.
#include "catalog/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace proxcache {
namespace {

Placement make(std::size_t n, std::size_t k, std::size_t m,
               PlacementMode mode = PlacementMode::ProportionalWithReplacement,
               std::uint64_t seed = 11) {
  Rng rng(seed);
  return Placement::generate(n, Popularity::uniform(k), m, mode, rng);
}

TEST(Placement, ModeParsing) {
  EXPECT_EQ(placement_mode_from_string("replacement"),
            PlacementMode::ProportionalWithReplacement);
  EXPECT_EQ(placement_mode_from_string("distinct"),
            PlacementMode::DistinctProportional);
  EXPECT_THROW(placement_mode_from_string("x"), std::invalid_argument);
}

TEST(Placement, NodeListsAreSortedDistinctAndBounded) {
  const Placement placement = make(100, 50, 8);
  for (NodeId u = 0; u < 100; ++u) {
    const auto files = placement.files_of(u);
    EXPECT_GE(files.size(), 1u);
    EXPECT_LE(files.size(), 8u);
    EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
    EXPECT_EQ(std::adjacent_find(files.begin(), files.end()), files.end());
    for (const FileId j : files) EXPECT_LT(j, 50u);
  }
}

TEST(Placement, ReplicaListsAreTheExactInverse) {
  const Placement placement = make(64, 30, 5);
  // node -> file implies file -> node and vice versa.
  for (NodeId u = 0; u < 64; ++u) {
    for (const FileId j : placement.files_of(u)) {
      const auto replicas = placement.replicas(j);
      EXPECT_TRUE(std::binary_search(replicas.begin(), replicas.end(), u));
    }
  }
  std::size_t total_from_replicas = 0;
  for (FileId j = 0; j < 30; ++j) {
    const auto replicas = placement.replicas(j);
    EXPECT_TRUE(std::is_sorted(replicas.begin(), replicas.end()));
    total_from_replicas += replicas.size();
    for (const NodeId u : replicas) EXPECT_TRUE(placement.caches(u, j));
  }
  std::size_t total_from_nodes = 0;
  for (NodeId u = 0; u < 64; ++u) total_from_nodes += placement.distinct_count(u);
  EXPECT_EQ(total_from_nodes, total_from_replicas);
}

TEST(Placement, CachesAgreesWithFileLists) {
  const Placement placement = make(40, 20, 3);
  for (NodeId u = 0; u < 40; ++u) {
    const auto files = placement.files_of(u);
    for (FileId j = 0; j < 20; ++j) {
      const bool expected =
          std::find(files.begin(), files.end(), j) != files.end();
      EXPECT_EQ(placement.caches(u, j), expected);
    }
  }
}

TEST(Placement, DeterministicGivenSeed) {
  const Placement a = make(50, 25, 4, PlacementMode::ProportionalWithReplacement, 7);
  const Placement b = make(50, 25, 4, PlacementMode::ProportionalWithReplacement, 7);
  const Placement c = make(50, 25, 4, PlacementMode::ProportionalWithReplacement, 8);
  bool all_same_ab = true;
  bool any_diff_ac = false;
  for (NodeId u = 0; u < 50; ++u) {
    const auto fa = a.files_of(u);
    const auto fb = b.files_of(u);
    const auto fc = c.files_of(u);
    if (!std::equal(fa.begin(), fa.end(), fb.begin(), fb.end())) {
      all_same_ab = false;
    }
    if (!std::equal(fa.begin(), fa.end(), fc.begin(), fc.end())) {
      any_diff_ac = true;
    }
  }
  EXPECT_TRUE(all_same_ab);
  EXPECT_TRUE(any_diff_ac);
}

TEST(Placement, WithReplacementMarginalMatchesTheory) {
  // P(node caches file j) = 1 - (1 - 1/K)^M under uniform popularity.
  const std::size_t n = 4000;
  const std::size_t k = 20;
  const std::size_t m = 5;
  const Placement placement = make(n, k, m, PlacementMode::ProportionalWithReplacement, 21);
  const double q = 1.0 - std::pow(1.0 - 1.0 / static_cast<double>(k),
                                  static_cast<double>(m));
  for (FileId j = 0; j < k; ++j) {
    const double fraction = static_cast<double>(placement.replica_count(j)) /
                            static_cast<double>(n);
    // 4 sigma tolerance: sigma = sqrt(q(1-q)/n) ≈ 0.0066.
    EXPECT_NEAR(fraction, q, 4.0 * std::sqrt(q * (1 - q) / n))
        << "file " << j;
  }
}

TEST(Placement, DistinctModeGivesExactlyM) {
  const Placement placement = make(80, 40, 6, PlacementMode::DistinctProportional);
  for (NodeId u = 0; u < 80; ++u) {
    EXPECT_EQ(placement.distinct_count(u), 6u);
  }
}

TEST(Placement, DistinctModeCachesWholeLibraryWhenMGeK) {
  const Placement placement = make(10, 4, 9, PlacementMode::DistinctProportional);
  for (NodeId u = 0; u < 10; ++u) {
    EXPECT_EQ(placement.distinct_count(u), 4u);
    for (FileId j = 0; j < 4; ++j) EXPECT_TRUE(placement.caches(u, j));
  }
  EXPECT_EQ(placement.files_with_replicas(), 4u);
}

TEST(Placement, FullLibraryModeMK) {
  // M = K with replacement: every node holds a large subset; with distinct
  // mode it holds everything (Example 1 substrate).
  const Placement placement = make(25, 12, 12, PlacementMode::DistinctProportional);
  for (NodeId u = 0; u < 25; ++u) {
    EXPECT_EQ(placement.distinct_count(u), 12u);
  }
}

TEST(Placement, FilesWithReplicasCountsSupport) {
  const Placement placement = make(9, 2000, 1);
  // 9 draws over 2000 files: at most 9 distinct files cached.
  EXPECT_LE(placement.files_with_replicas(), 9u);
  EXPECT_GE(placement.files_with_replicas(), 1u);
}

TEST(Placement, OverlapMatchesBruteForce) {
  const Placement placement = make(30, 10, 4, PlacementMode::ProportionalWithReplacement, 3);
  for (NodeId u = 0; u < 30; u += 3) {
    for (NodeId v = 0; v < 30; v += 4) {
      const auto a = placement.files_of(u);
      std::size_t brute = 0;
      for (const FileId j : a) {
        if (placement.caches(v, j)) ++brute;
      }
      EXPECT_EQ(placement.overlap(u, v), brute);
      EXPECT_EQ(placement.overlap(v, u), brute);
    }
  }
}

TEST(Placement, DistinctModeHandlesHeavySkewNearFullLibrary) {
  // M = K - 1 under Zipf(2.5): a rejection sampler would stall waiting for
  // the tail files; Efraimidis–Spirakis finishes instantly and still
  // returns M distinct files.
  Rng rng(31);
  const Placement placement = Placement::generate(
      20, Popularity::zipf(50, 2.5), 49, PlacementMode::DistinctProportional,
      rng);
  for (NodeId u = 0; u < 20; ++u) {
    EXPECT_EQ(placement.distinct_count(u), 49u);
  }
}

TEST(Placement, DistinctModeMarginalsFavorPopularFiles) {
  // With M distinct slots the inclusion probability must still increase
  // with popularity (exact marginals are complex; ordering must hold).
  Rng rng(32);
  const Placement placement = Placement::generate(
      3000, Popularity::zipf(30, 1.5), 5, PlacementMode::DistinctProportional,
      rng);
  EXPECT_GT(placement.replica_count(0), placement.replica_count(10));
  EXPECT_GT(placement.replica_count(10), placement.replica_count(29));
}

TEST(Placement, ZipfPlacementSkewsTowardPopularFiles) {
  Rng rng(77);
  const Placement placement = Placement::generate(
      2000, Popularity::zipf(100, 1.2), 3,
      PlacementMode::ProportionalWithReplacement, rng);
  // Rank-1 file should have many more replicas than rank-100.
  EXPECT_GT(placement.replica_count(0), 4 * placement.replica_count(99));
}

TEST(Placement, RejectsBadArgs) {
  Rng rng(1);
  EXPECT_THROW(Placement::generate(0, Popularity::uniform(5), 1,
                                   PlacementMode::ProportionalWithReplacement,
                                   rng),
               std::invalid_argument);
  EXPECT_THROW(Placement::generate(5, Popularity::uniform(5), 0,
                                   PlacementMode::ProportionalWithReplacement,
                                   rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace proxcache
