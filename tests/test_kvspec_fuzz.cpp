// Property/fuzz suite for the shared `name(key=value, ...)` grammar
// (util/kvspec.hpp) through *both* of its clients — strategy specs and
// topology specs — in one place:
//
//  1. seeded random round trips driven by the registries' own parameter
//     rules (every legal key, values across each rule's range, integral and
//     symbolic-keyword values, `inf` where the range allows it);
//  2. raw-grammar round trips over arbitrary names/keys/values (negatives,
//     exponents, huge integers past the bare-print cutoff);
//  3. a malformed-input corpus locking the exact error messages — the
//     parser's diagnostics are API (CLIs print them verbatim), so a rewording
//     is a breaking change this test makes visible.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "event/cache_policy.hpp"
#include "random/rng.hpp"
#include "strategy/registry.hpp"
#include "strategy/spec.hpp"
#include "topology/registry.hpp"
#include "topology/spec.hpp"

namespace proxcache {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Draw a legal value for one rule: integral rules get whole numbers near
/// the low end of the range (huge ranges stay finite), real rules get a
/// uniform draw over the (clamped) range, and an unbounded rule
/// occasionally yields `inf`.
double draw_value(Rng& rng, double min_value, double max_value,
                  bool integral) {
  if (std::isinf(max_value) && rng.below(4) == 0) return kInf;
  const double lo = min_value;
  const double hi = std::isinf(max_value)
                        ? lo + 1000.0
                        : std::min(max_value, lo + 1.0e9);
  if (integral) {
    const double lo_int = std::ceil(lo);
    const auto span = static_cast<std::uint64_t>(
        std::min(1000.0, std::floor(hi) - lo_int));
    return lo_int + static_cast<double>(rng.below(span + 1));
  }
  return lo + rng.uniform() * (hi - lo);
}

// Registry-driven round trips: for every registered strategy, random
// subsets of its legal parameters with in-range values must survive
// to_string → parse exactly (doubles bit-equal — the formatter promises
// round-trip precision).
TEST(KvSpecFuzz, StrategyRegistryRoundTrips) {
  Rng rng(0xF022);
  for (const StrategyEntry& entry : StrategyRegistry::built_ins().all()) {
    for (int iteration = 0; iteration < 64; ++iteration) {
      StrategySpec spec;
      spec.name = entry.name;
      for (const StrategyParamRule& rule : entry.params) {
        if (rng.below(2) == 0) continue;  // random subset of keys
        spec.params[rule.key] =
            draw_value(rng, rule.min_value, rule.max_value, rule.integral);
      }
      const std::string text = spec.to_string();
      EXPECT_EQ(parse_strategy_spec(text), spec) << text;
    }
  }
}

TEST(KvSpecFuzz, TopologyRegistryRoundTrips) {
  Rng rng(0xF023);
  for (const TopologyEntry& entry : TopologyRegistry::built_ins().all()) {
    for (int iteration = 0; iteration < 64; ++iteration) {
      TopologySpec spec;
      spec.name = entry.name;
      for (const TopologyParamRule& rule : entry.params) {
        if (rng.below(2) == 0) continue;
        spec.params[rule.key] =
            draw_value(rng, rule.min_value, rule.max_value, rule.integral);
      }
      const std::string text = spec.to_string();
      EXPECT_EQ(parse_topology_spec(text), spec) << text;
    }
  }
}

TEST(KvSpecFuzz, CachePolicyRegistryRoundTrips) {
  Rng rng(0xF025);
  for (const CachePolicyEntry& entry : CachePolicyRegistry::built_ins().all()) {
    for (int iteration = 0; iteration < 64; ++iteration) {
      CachePolicySpec spec;
      spec.name = entry.name;
      for (const CachePolicyParamRule& rule : entry.params) {
        if (rng.below(2) == 0) continue;
        spec.params[rule.key] =
            draw_value(rng, rule.min_value, rule.max_value, rule.integral);
      }
      const std::string text = spec.to_string();
      EXPECT_EQ(parse_cache_policy_spec(text), spec) << text;
    }
  }
}

// Raw-grammar round trips past the registries: arbitrary lowercase names
// and keys, values spanning negatives, exponent-range doubles, integers
// past the bare-print cutoff, and inf. Both spec kinds share one scanner,
// so exercising either exercises both; we alternate anyway.
TEST(KvSpecFuzz, ArbitraryValueRoundTrips) {
  Rng rng(0xF024);
  const auto random_word = [&](std::size_t min_len) {
    static constexpr char alphabet[] = "abcdefghijklmnopqrstuvwxyz";
    std::string word;
    const std::size_t len = min_len + rng.below(6);
    for (std::size_t i = 0; i < len; ++i) {
      word.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
    }
    return word;
  };
  const auto random_value = [&]() -> double {
    switch (rng.below(5)) {
      case 0:  // small integer, negative half the time
        return (rng.below(2) == 0 ? -1.0 : 1.0) *
               static_cast<double>(rng.below(1000));
      case 1:  // integer past the bare-print cutoff (1e15)
        return 1.0e15 + static_cast<double>(rng.below(1u << 20));
      case 2:  // tiny magnitude (exponent formatting)
        return (rng.uniform() - 0.5) * 1e-7;
      case 3:
        return kInf;
      default:  // generic double
        return (rng.uniform() - 0.5) * 2.0e6;
    }
  };
  for (int iteration = 0; iteration < 512; ++iteration) {
    StrategySpec spec;
    spec.name = random_word(1);
    const std::size_t keys = rng.below(4);
    for (std::size_t k = 0; k < keys; ++k) {
      spec.params[random_word(1)] = random_value();
    }
    const std::string text = spec.to_string();
    EXPECT_EQ(parse_strategy_spec(text), spec) << text;
    // The identical grammar backs topology specs.
    TopologySpec topo;
    topo.name = spec.name;
    topo.params = spec.params;
    EXPECT_EQ(parse_topology_spec(text), topo) << text;
  }
}

// Whitespace and case insensitivity; symbolic keywords canonicalize.
TEST(KvSpecFuzz, WhitespaceCaseAndKeywords) {
  EXPECT_EQ(parse_strategy_spec("  TWO-CHOICE ( D = 2 , R = Inf )  "),
            parse_strategy_spec("two-choice(d=2,r=inf)"));
  const StrategySpec spec =
      parse_strategy_spec("two-choice(fallback=Drop)");
  EXPECT_EQ(spec.params.at("fallback"), kSpecFallbackDrop);
  EXPECT_EQ(spec.to_string(), "two-choice(fallback=drop)");
  EXPECT_EQ(parse_strategy_spec("two-choice(fallback=2)").to_string(),
            "two-choice(fallback=drop)");
}

/// Assert `parse(text)` throws std::invalid_argument with exactly
/// `expected` — the diagnostics contract.
template <typename ParseFn>
void expect_error(ParseFn parse, const std::string& text,
                  const std::string& expected) {
  try {
    (void)parse(text);
    FAIL() << "expected parse failure for: " << text;
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string(error.what()), expected) << text;
  }
}

TEST(KvSpecFuzz, MalformedStrategyCorpusLocksMessages) {
  const auto parse = [](const std::string& text) {
    return parse_strategy_spec(text);
  };
  expect_error(parse, "", "bad strategy spec '': expected a strategy name");
  expect_error(parse, "(d=2)",
               "bad strategy spec '(d=2)': expected a strategy name");
  expect_error(parse, "two-choice]",
               "bad strategy spec 'two-choice]': unexpected character ']' "
               "after the strategy name (expected '(')");
  expect_error(parse, "two-choice(",
               "bad strategy spec 'two-choice(': expected a parameter key");
  expect_error(parse, "two-choice(d)",
               "bad strategy spec 'two-choice(d)': parameter 'd' is missing "
               "'=value'");
  expect_error(parse, "two-choice(d=)",
               "bad strategy spec 'two-choice(d=)': parameter 'd' is missing "
               "a value");
  expect_error(parse, "two-choice(d=2, d=3)",
               "bad strategy spec 'two-choice(d=2, d=3)': duplicate "
               "parameter 'd'");
  expect_error(parse, "two-choice(d=zz)",
               "bad strategy spec 'two-choice(d=zz)': value 'zz' for key 'd' "
               "is neither a number nor a known keyword");
  expect_error(parse, "two-choice(d=2",
               "bad strategy spec 'two-choice(d=2': expected ',' or ')' "
               "after parameter 'd'");
  expect_error(parse, "two-choice() tail",
               "bad strategy spec 'two-choice() tail': trailing characters "
               "after ')': 't...'");
}

TEST(KvSpecFuzz, MalformedTopologyCorpusLocksMessages) {
  const auto parse = [](const std::string& text) {
    return parse_topology_spec(text);
  };
  expect_error(parse, "", "bad topology spec '': expected a topology name");
  expect_error(parse, "ring n=4",
               "bad topology spec 'ring n=4': unexpected character 'n' after "
               "the topology name (expected '(')");
  expect_error(parse, "ring(n",
               "bad topology spec 'ring(n': parameter 'n' is missing "
               "'=value'");
  expect_error(parse, "ring(n=4)x",
               "bad topology spec 'ring(n=4)x': trailing characters after "
               "')': 'x...'");
  expect_error(parse, "ring(n=4,n=5)",
               "bad topology spec 'ring(n=4,n=5)': duplicate parameter 'n'");
}

TEST(KvSpecFuzz, MalformedCachePolicyCorpusLocksMessages) {
  const auto parse = [](const std::string& text) {
    return parse_cache_policy_spec(text);
  };
  expect_error(parse, "",
               "bad cache-policy spec '': expected a cache-policy name");
  expect_error(parse, "(capacity=4)",
               "bad cache-policy spec '(capacity=4)': expected a cache-policy "
               "name");
  expect_error(parse, "lru capacity=4",
               "bad cache-policy spec 'lru capacity=4': unexpected character "
               "'c' after the cache-policy name (expected '(')");
  expect_error(parse, "lru(capacity",
               "bad cache-policy spec 'lru(capacity': parameter 'capacity' is "
               "missing '=value'");
  expect_error(parse, "lru(capacity=)",
               "bad cache-policy spec 'lru(capacity=)': parameter 'capacity' "
               "is missing a value");
  expect_error(parse, "lru(capacity=4, capacity=5)",
               "bad cache-policy spec 'lru(capacity=4, capacity=5)': "
               "duplicate parameter 'capacity'");
  expect_error(parse, "lru(capacity=big)",
               "bad cache-policy spec 'lru(capacity=big)': value 'big' for "
               "key 'capacity' is neither a number nor a known keyword");
  expect_error(parse, "lru(capacity=4",
               "bad cache-policy spec 'lru(capacity=4': expected ',' or ')' "
               "after parameter 'capacity'");
  expect_error(parse, "lru() tail",
               "bad cache-policy spec 'lru() tail': trailing characters "
               "after ')': 't...'");
}

TEST(KvSpecFuzz, TruncatedCachePolicySpecsAlwaysThrow) {
  const std::string full = "ewma(capacity=8, decay=0.25)";
  for (std::size_t len = full.find('(') + 1; len < full.size(); ++len) {
    const std::string prefix = full.substr(0, len);
    EXPECT_THROW((void)parse_cache_policy_spec(prefix), std::invalid_argument)
        << prefix;
  }
}

// Fuzzed malformed inputs: truncating any valid spec string inside the
// parenthesized section must throw std::invalid_argument (never crash,
// never accept). This sweeps the scanner's error branches with arbitrary
// prefixes.
TEST(KvSpecFuzz, TruncatedSpecsAlwaysThrow) {
  const std::string full = "two-choice(beta=0.7, d=2, fallback=nearest, r=16)";
  for (std::size_t len = full.find('(') + 1; len < full.size(); ++len) {
    const std::string prefix = full.substr(0, len);
    EXPECT_THROW((void)parse_strategy_spec(prefix), std::invalid_argument)
        << prefix;
  }
}

}  // namespace
}  // namespace proxcache
