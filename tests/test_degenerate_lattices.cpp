// Degenerate-network sweep (bugfix batch): the smallest legal lattices —
// side 1 (a single server) and side 2 (every node adjacent to every other)
// — exercise the radius-0 shells, empty fallback schedules, and
// single-candidate paths that production sizes never hit. Every strategy ×
// wrap × policy combination must be total and conserve requests. The ASan
// preset runs this suite too, so out-of-bounds shell arithmetic at these
// corners cannot hide.
#include <gtest/gtest.h>

#include <string>

#include "core/simulation.hpp"
#include "queueing/supermarket.hpp"
#include "spatial/voronoi.hpp"
#include "topology/lattice.hpp"
#include "topology/shells.hpp"

namespace proxcache {
namespace {

TEST(DegenerateLattice, SideOneAnswersEveryQuery) {
  for (const Wrap wrap : {Wrap::Torus, Wrap::Grid}) {
    const Lattice lattice(1, wrap);
    EXPECT_EQ(lattice.size(), 1u);
    EXPECT_EQ(lattice.diameter(), 0u);
    EXPECT_EQ(lattice.distance(0, 0), 0u);
    EXPECT_EQ(lattice.shell_size(0, 0), 1u);
    EXPECT_EQ(lattice.shell_size(0, 1), 0u);
    EXPECT_EQ(lattice.ball_size(0, 0), 1u);
    EXPECT_EQ(lattice.ball_size(0, 1000), 1u);
    EXPECT_TRUE(lattice.neighbors(0).empty());
    EXPECT_EQ(lattice.central_node(), 0u);
    EXPECT_DOUBLE_EQ(lattice.mean_distance_to_random_node(0), 0.0);
    EXPECT_EQ(collect_ball(lattice, 0, 5), std::vector<NodeId>{0});
  }
}

TEST(DegenerateLattice, SideTwoShellsAndNeighbors) {
  // Torus side 2: both axis directions wrap onto the same node, so each
  // node has exactly 2 distinct neighbors (not 4) and the diameter is 2.
  const Lattice torus(2, Wrap::Torus);
  EXPECT_EQ(torus.diameter(), 2u);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(torus.neighbors(u).size(), 2u) << "u=" << u;
    EXPECT_EQ(torus.shell_size(u, 1), 2u);
    EXPECT_EQ(torus.shell_size(u, 2), 1u) << "the antipodal corner";
    EXPECT_EQ(torus.ball_size(u, 2), 4u);
  }
  const Lattice grid(2, Wrap::Grid);
  EXPECT_EQ(grid.diameter(), 2u);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(grid.neighbors(u).size(), 2u);
    EXPECT_EQ(grid.ball_size(u, 2), 4u);
  }
}

class DegenerateSimulationTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, Wrap>> {};

TEST_P(DegenerateSimulationTest, EveryStrategyAndPolicyIsTotal) {
  const auto [num_nodes, wrap] = GetParam();
  for (const char* spec :
       {"nearest", "two-choice", "two-choice(r=0)",
        "two-choice(r=1, fallback=drop)", "two-choice(r=0, fallback=nearest)",
        "two-choice(d=4, wr=1)", "two-choice(beta=0.5, stale=2)",
        "least-loaded(r=0)", "least-loaded(r=1)",
        "prox-weighted(d=2, alpha=2)"}) {
    for (const MissingFilePolicy missing :
         {MissingFilePolicy::Resample, MissingFilePolicy::Drop}) {
      ExperimentConfig config;
      config.num_nodes = num_nodes;
      config.wrap = wrap;
      config.num_files = 5;
      config.cache_size = 2;
      config.missing = missing;
      config.strategy_spec = parse_strategy_spec(spec);
      config.seed = 0xD11;
      const RunResult result = run_simulation(config, 0);
      EXPECT_EQ(result.requests + result.dropped,
                config.effective_requests())
          << spec << " missing=" << static_cast<int>(missing);
      EXPECT_LE(result.comm_cost,
                static_cast<double>(
                    Lattice::from_node_count(num_nodes, wrap).diameter()))
          << spec;
      // Rerun determinism holds at the degenerate sizes too.
      const RunResult again = run_simulation(config, 0);
      EXPECT_EQ(result.max_load, again.max_load) << spec;
      EXPECT_EQ(result.comm_cost, again.comm_cost) << spec;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallestLegalLattices, DegenerateSimulationTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{4}),
                       ::testing::Values(Wrap::Torus, Wrap::Grid)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, Wrap>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Wrap::Torus ? "_torus" : "_grid");
    });

TEST(DegenerateLattice, SingleNodeSimulationServesEverythingLocally) {
  ExperimentConfig config;
  config.num_nodes = 1;
  config.num_files = 3;
  config.cache_size = 2;
  config.strategy_spec = parse_strategy_spec("two-choice");
  const RunResult result = run_simulation(config, 0);
  EXPECT_EQ(result.requests, 1u);
  EXPECT_EQ(result.comm_cost, 0.0) << "the only server is the origin";
  EXPECT_EQ(result.max_load, 1u);
}

TEST(DegenerateLattice, HotspotAtMaximumLegalRadius) {
  // side 2: the largest radius validate() admits is 1, whose disc on the
  // grid is truncated by both edges around the central node.
  for (const Wrap wrap : {Wrap::Torus, Wrap::Grid}) {
    ExperimentConfig config;
    config.num_nodes = 4;
    config.wrap = wrap;
    config.num_files = 4;
    config.cache_size = 2;
    config.origins.kind = OriginKind::Hotspot;
    config.origins.hotspot_fraction = 1.0;
    config.origins.hotspot_radius = 1;
    config.strategy_spec = parse_strategy_spec("two-choice(r=1)");
    const RunResult result = run_simulation(config, 0);
    EXPECT_EQ(result.requests, 4u);
    // And radius = side is rejected, exactly as at production sizes.
    config.origins.hotspot_radius = 2;
    EXPECT_THROW(run_simulation(config, 0), std::invalid_argument);
  }
}

TEST(DegenerateLattice, VoronoiOnSingleNode) {
  const Lattice lattice(1, Wrap::Torus);
  const VoronoiTessellation cells(lattice, {0});
  EXPECT_EQ(cells.owner(0), 0u);
  EXPECT_EQ(cells.distance(0), 0u);
}

TEST(DegenerateLattice, SupermarketQueueOnSingleNode) {
  QueueingConfig config;
  config.network.num_nodes = 1;
  config.network.num_files = 1;
  config.network.cache_size = 1;
  config.network.strategy_spec = parse_strategy_spec("nearest");
  config.arrival_rate = 0.5;
  config.service_rate = 1.0;
  config.horizon = 200.0;
  config.warmup_fraction = 0.1;
  const QueueingResult result = run_supermarket(config, 1);
  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.mean_hops, 0.0);
}

}  // namespace
}  // namespace proxcache
