// Tests for Strategy II (proximity-aware two choices): candidate validity,
// the radius constraint, least-load selection, fallback policies, and the
// observer instrumentation.
#include "core/two_choice.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace proxcache {
namespace {

struct Fixture {
  Fixture(std::size_t n, std::size_t k, std::size_t m, std::uint64_t seed,
          Wrap wrap = Wrap::Torus)
      : lattice(Lattice::from_node_count(n, wrap)),
        placement([&] {
          Rng rng(seed);
          return Placement::generate(
              n, Popularity::uniform(k), m,
              PlacementMode::ProportionalWithReplacement, rng);
        }()),
        index(lattice, placement) {}

  Lattice lattice;
  Placement placement;
  ReplicaIndex index;
};

TEST(TwoChoiceStrategy, ServerAlwaysCachesTheFile) {
  Fixture f(100, 10, 4, 5);
  TwoChoiceOptions options;
  options.radius = 6;
  TwoChoiceStrategy strategy(f.index, options);
  LoadTracker tracker(100);
  Rng rng(1);
  for (NodeId u = 0; u < 100; u += 3) {
    for (FileId j = 0; j < 10; ++j) {
      if (f.placement.replica_count(j) == 0) continue;
      const Assignment a = strategy.assign({u, j}, tracker, rng);
      ASSERT_NE(a.server, kInvalidNode);
      EXPECT_TRUE(f.placement.caches(a.server, j));
      EXPECT_EQ(a.hops, f.lattice.distance(u, a.server));
      tracker.assign(a.server, a.hops);
    }
  }
}

TEST(TwoChoiceStrategy, RespectsRadiusUnlessFallback) {
  Fixture f(144, 6, 2, 9);
  TwoChoiceOptions options;
  options.radius = 4;
  TwoChoiceStrategy strategy(f.index, options);
  LoadTracker tracker(144);
  Rng rng(2);
  for (NodeId u = 0; u < 144; u += 5) {
    for (FileId j = 0; j < 6; ++j) {
      if (f.placement.replica_count(j) == 0) continue;
      const Assignment a = strategy.assign({u, j}, tracker, rng);
      if (!a.fallback) {
        EXPECT_LE(a.hops, 4u) << "non-fallback assignment beyond radius";
      }
    }
  }
}

TEST(TwoChoiceStrategy, PicksTheLessLoadedCandidate) {
  // Force a two-replica file, preload one replica, and confirm the light
  // one is always chosen (no ties → deterministic).
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Fixture f(36, 12, 1, seed);
    for (FileId j = 0; j < 12; ++j) {
      if (f.placement.replica_count(j) != 2) continue;
      const auto replicas = f.placement.replicas(j);
      const NodeId heavy = replicas[0];
      const NodeId light = replicas[1];
      TwoChoiceOptions options;  // r = ∞
      TwoChoiceStrategy strategy(f.index, options);
      LoadTracker tracker(36);
      for (int i = 0; i < 5; ++i) tracker.assign(heavy, 0);
      Rng rng(3);
      for (int i = 0; i < 20; ++i) {
        const Assignment a = strategy.assign({0, j}, tracker, rng);
        EXPECT_EQ(a.server, light);
      }
      return;
    }
  }
  FAIL() << "no two-replica file found across seeds";
}

TEST(TwoChoiceStrategy, TieBreaksUniformly) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Fixture f(36, 12, 1, seed);
    for (FileId j = 0; j < 12; ++j) {
      if (f.placement.replica_count(j) != 2) continue;
      TwoChoiceOptions options;  // r = ∞, equal (zero) loads → pure tie
      TwoChoiceStrategy strategy(f.index, options);
      const LoadTracker tracker(36);
      Rng rng(4);
      int first = 0;
      constexpr int kTrials = 4000;
      const NodeId a0 = f.placement.replicas(j)[0];
      for (int i = 0; i < kTrials; ++i) {
        first += strategy.assign({0, j}, tracker, rng).server == a0 ? 1 : 0;
      }
      EXPECT_NEAR(static_cast<double>(first) / kTrials, 0.5, 0.04);
      return;
    }
  }
  FAIL() << "no two-replica file found across seeds";
}

TEST(TwoChoiceStrategy, SingleReplicaIsUsedDirectly) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Fixture f(25, 30, 1, seed);
    for (FileId j = 0; j < 30; ++j) {
      if (f.placement.replica_count(j) != 1) continue;
      TwoChoiceOptions options;
      TwoChoiceStrategy strategy(f.index, options);
      const LoadTracker tracker(25);
      Rng rng(5);
      const Assignment a = strategy.assign({3, j}, tracker, rng);
      EXPECT_EQ(a.server, f.placement.replicas(j)[0]);
      EXPECT_FALSE(a.fallback);
      return;
    }
  }
  FAIL() << "no single-replica file found across seeds";
}

TEST(TwoChoiceStrategy, ExpandRadiusFallbackFindsRemoteReplica) {
  // Radius 1 around a node that is far from every replica of some file:
  // the strategy must expand and still serve, flagging the fallback.
  Fixture f(400, 50, 1, 21);
  TwoChoiceOptions options;
  options.radius = 1;
  options.fallback = FallbackPolicy::ExpandRadius;
  TwoChoiceStrategy strategy(f.index, options);
  const LoadTracker tracker(400);
  Rng rng(6);
  bool fallback_seen = false;
  for (NodeId u = 0; u < 400; u += 7) {
    for (FileId j = 0; j < 50; ++j) {
      if (f.placement.replica_count(j) == 0) continue;
      const Assignment a = strategy.assign({u, j}, tracker, rng);
      ASSERT_NE(a.server, kInvalidNode);
      EXPECT_TRUE(f.placement.caches(a.server, j));
      fallback_seen |= a.fallback;
    }
  }
  EXPECT_TRUE(fallback_seen) << "radius 1 should miss sometimes at M=1";
}

TEST(TwoChoiceStrategy, NearestFallbackDelegatesToStrategyI) {
  Fixture f(400, 50, 1, 22);
  TwoChoiceOptions options;
  options.radius = 1;
  options.fallback = FallbackPolicy::NearestReplica;
  TwoChoiceStrategy strategy(f.index, options);
  const LoadTracker tracker(400);
  Rng rng(7);
  for (NodeId u = 0; u < 400; u += 11) {
    for (FileId j = 0; j < 50; ++j) {
      if (f.placement.replica_count(j) == 0) continue;
      const Assignment a = strategy.assign({u, j}, tracker, rng);
      if (a.fallback) {
        // Must be the true nearest distance.
        Hop best = f.lattice.diameter() + 1;
        for (const NodeId v : f.placement.replicas(j)) {
          best = std::min(best, f.lattice.distance(u, v));
        }
        EXPECT_EQ(a.hops, best);
      }
    }
  }
}

TEST(TwoChoiceStrategy, DropFallbackReturnsInvalid) {
  Fixture f(400, 50, 1, 23);
  TwoChoiceOptions options;
  options.radius = 1;
  options.fallback = FallbackPolicy::Drop;
  TwoChoiceStrategy strategy(f.index, options);
  const LoadTracker tracker(400);
  Rng rng(8);
  bool dropped = false;
  for (NodeId u = 0; u < 400 && !dropped; u += 3) {
    for (FileId j = 0; j < 50; ++j) {
      if (f.placement.replica_count(j) == 0) continue;
      const Assignment a = strategy.assign({u, j}, tracker, rng);
      if (a.server == kInvalidNode) {
        EXPECT_TRUE(a.fallback);
        dropped = true;
        break;
      }
    }
  }
  EXPECT_TRUE(dropped);
}

TEST(TwoChoiceStrategy, ObserverSeesDistinctInRadiusCandidates) {
  Fixture f(100, 5, 5, 31);
  TwoChoiceOptions options;
  options.radius = 8;
  TwoChoiceStrategy strategy(f.index, options);
  const LoadTracker tracker(100);
  Rng rng(9);
  int observed = 0;
  FileId current_file = 0;
  NodeId current_origin = 0;
  strategy.set_observer([&](std::span<const NodeId> candidates) {
    ++observed;
    ASSERT_EQ(candidates.size(), 2u);
    EXPECT_NE(candidates[0], candidates[1]);
    for (const NodeId c : candidates) {
      EXPECT_TRUE(f.placement.caches(c, current_file));
      EXPECT_LE(f.lattice.distance(current_origin, c), 8u);
    }
  });
  for (NodeId u = 0; u < 100; u += 9) {
    current_origin = u;
    for (FileId j = 0; j < 5; ++j) {
      if (f.placement.replica_count(j) == 0) continue;
      current_file = j;
      (void)strategy.assign({u, j}, tracker, rng);
    }
  }
  EXPECT_GT(observed, 0);
}

TEST(TwoChoiceStrategy, DChoicesReduceMaxLoadFurther) {
  // Full replication (M=K effectively): more choices → flatter allocation.
  Fixture f(256, 1, 1, 41);  // K=1: every node caches the one file
  const LoadTracker empty(256);
  auto run = [&](std::uint32_t d) {
    TwoChoiceOptions options;
    options.num_choices = d;
    TwoChoiceStrategy strategy(f.index, options);
    LoadTracker tracker(256);
    Rng rng(10);
    for (int i = 0; i < 256; ++i) {
      const NodeId origin = static_cast<NodeId>(rng.below(256));
      const Assignment a = strategy.assign({origin, 0}, tracker, rng);
      tracker.assign(a.server, a.hops);
    }
    return tracker.max_load();
  };
  // Averages over a few seeds would be smoother, but the ordering
  // one-choice >= four-choice holds with margin at n=256.
  EXPECT_GE(run(1), run(4));
}

TEST(TwoChoiceStrategy, WithReplacementModeRuns) {
  Fixture f(49, 4, 2, 51);
  TwoChoiceOptions options;
  options.with_replacement = true;
  options.radius = 5;
  TwoChoiceStrategy strategy(f.index, options);
  const LoadTracker tracker(49);
  Rng rng(11);
  for (FileId j = 0; j < 4; ++j) {
    if (f.placement.replica_count(j) == 0) continue;
    const Assignment a = strategy.assign({0, j}, tracker, rng);
    EXPECT_NE(a.server, kInvalidNode);
    EXPECT_TRUE(f.placement.caches(a.server, j));
  }
}

TEST(TwoChoiceStrategy, NameEncodesConfig) {
  Fixture f(9, 2, 1, 1);
  TwoChoiceOptions options;
  EXPECT_EQ(TwoChoiceStrategy(f.index, options).name(), "two-choice(r=inf)");
  options.radius = 7;
  EXPECT_EQ(TwoChoiceStrategy(f.index, options).name(), "two-choice(r=7)");
  options.num_choices = 3;
  EXPECT_EQ(TwoChoiceStrategy(f.index, options).name(), "3-choice(r=7)");
}

TEST(TwoChoiceStrategy, RejectsBadChoiceCount) {
  Fixture f(9, 2, 1, 1);
  TwoChoiceOptions options;
  options.num_choices = 0;
  EXPECT_THROW(TwoChoiceStrategy(f.index, options), std::invalid_argument);
  options.num_choices = 9;
  EXPECT_THROW(TwoChoiceStrategy(f.index, options), std::invalid_argument);
}

}  // namespace
}  // namespace proxcache
