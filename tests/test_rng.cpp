// Tests for the RNG substrate: determinism, bound correctness, unbiasedness
// (chi-square), pair sampling and child-stream independence.
#include "random/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "random/seeding.hpp"
#include "random/splitmix64.hpp"
#include "random/xoshiro256.hpp"
#include "stats/gof.hpp"

namespace proxcache {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values for seed 0 (published SplitMix64 test vector).
  std::uint64_t state = 0;
  EXPECT_EQ(rng::splitmix64_next(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(rng::splitmix64_next(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(rng::splitmix64_next(state), 0x06C45D188009454FULL);
}

TEST(SplitMix64, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(rng::mix64(42), rng::mix64(42));
  EXPECT_NE(rng::mix64(42), rng::mix64(43));
  // Consecutive inputs should differ in many bits (avalanche smoke check).
  const std::uint64_t x = rng::mix64(1000) ^ rng::mix64(1001);
  EXPECT_GE(__builtin_popcountll(x), 16);
}

TEST(Xoshiro256, DeterministicPerSeed) {
  rng::Xoshiro256 a(7);
  rng::Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  rng::Xoshiro256 c(8);
  bool all_equal = true;
  rng::Xoshiro256 d(7);
  for (int i = 0; i < 10; ++i) {
    if (c() != d()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Xoshiro256, JumpChangesStream) {
  rng::Xoshiro256 a(7);
  rng::Xoshiro256 b(7);
  b.jump();
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a() != b()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(1);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowIsUnbiasedChiSquare) {
  Rng rng(2024);
  constexpr std::uint64_t kBound = 7;
  constexpr int kDraws = 70000;
  std::vector<std::uint64_t> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
  const std::vector<double> expected(kBound, 1.0 / kBound);
  EXPECT_GT(chi_square_pvalue(counts, expected), 1e-4);
}

TEST(Rng, BetweenCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(rng.between(4, 4), 4);
  EXPECT_THROW(rng.between(5, 4), std::invalid_argument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(4);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, DistinctPairIsDistinctAndUniform) {
  Rng rng(6);
  constexpr std::uint64_t kN = 5;
  std::vector<std::uint64_t> pair_counts(kN * kN, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto [a, b] = rng.distinct_pair(kN);
    ASSERT_NE(a, b);
    ASSERT_LT(a, kN);
    ASSERT_LT(b, kN);
    ++pair_counts[a * kN + b];
  }
  // All ordered pairs with a != b equally likely: 20 categories.
  std::vector<std::uint64_t> observed;
  for (std::uint64_t a = 0; a < kN; ++a) {
    for (std::uint64_t b = 0; b < kN; ++b) {
      if (a == b) {
        EXPECT_EQ(pair_counts[a * kN + b], 0u);
      } else {
        observed.push_back(pair_counts[a * kN + b]);
      }
    }
  }
  const std::vector<double> expected(observed.size(),
                                     1.0 / static_cast<double>(observed.size()));
  EXPECT_GT(chi_square_pvalue(observed, expected), 1e-4);
  EXPECT_THROW(rng.distinct_pair(1), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(7);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ChildStreamsAreDeterministicAndDistinct) {
  const Rng parent(99);
  Rng child_a = parent.child(1);
  Rng child_a2 = parent.child(1);
  Rng child_b = parent.child(2);
  bool same = true;
  bool differs = false;
  for (int i = 0; i < 20; ++i) {
    const auto va = child_a.bits();
    if (va != child_a2.bits()) same = false;
    if (va != child_b.bits()) differs = true;
  }
  EXPECT_TRUE(same);
  EXPECT_TRUE(differs);
}

TEST(Rng, ChildrenOfDifferentParentsDiffer) {
  Rng a = Rng(1).child(0);
  Rng b = Rng(2).child(0);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.bits() != b.bits()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Seeding, DeriveSeedSeparatesPaths) {
  const std::uint64_t root = 0xABCDEF;
  EXPECT_EQ(derive_seed(root, {1, 2}), derive_seed(root, {1, 2}));
  EXPECT_NE(derive_seed(root, {1, 2}), derive_seed(root, {2, 1}));
  EXPECT_NE(derive_seed(root, {1}), derive_seed(root, {1, 0}));
  EXPECT_NE(derive_seed(root, {}), derive_seed(root + 1, {}));
}

// The batched-derivation identity seeding.hpp promises: splitting the path
// at its last element — prefix hashed once, leaf folded per ordinal — must
// reproduce the full derivation exactly. The sharded producer relies on
// this to pin one strategy stream per request at two mixes per ordinal.
TEST(Seeding, PrefixPlusLeafEqualsFullDerivation) {
  const std::uint64_t root = 0x5EED;
  for (const std::uint64_t run : {0ull, 1ull, 7ull, 0xFFFFFFFFULL}) {
    const std::uint64_t prefix =
        derive_seed_prefix(root, {run, seed_phase::kStrategy});
    for (const std::uint64_t ordinal :
         {0ull, 1ull, 12345ull, ~0ull}) {
      EXPECT_EQ(derive_seed_leaf(prefix, ordinal),
                derive_seed(root, {run, seed_phase::kStrategy, ordinal}))
          << "run " << run << " ordinal " << ordinal;
    }
  }
  // The identity holds for any split point, including a length-1 path.
  EXPECT_EQ(derive_seed_leaf(derive_seed_prefix(root, {}), 9),
            derive_seed(root, {9}));
}

TEST(Seeding, PhaseConstantsAreDistinct) {
  const std::set<std::uint64_t> phases = {
      seed_phase::kPlacement, seed_phase::kTrace, seed_phase::kStrategy,
      seed_phase::kQueueing};
  EXPECT_EQ(phases.size(), 4u);
}

}  // namespace
}  // namespace proxcache
