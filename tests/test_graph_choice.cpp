// Tests for ballsbins/graph_choice: the Kenthapadi–Panigrahy process on
// dense vs sparse graphs, weighted edge sampling, and the convenience
// constructions.
#include "ballsbins/graph_choice.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ballsbins/processes.hpp"
#include "stats/summary.hpp"

namespace proxcache::ballsbins {
namespace {

TEST(GraphChoice, ConservesBalls) {
  Rng rng(1);
  const EdgeList edges = complete_graph_edges(16);
  const GraphAllocationResult result = graph_choice(16, edges, 160, rng);
  std::uint64_t total = 0;
  for (const Load l : result.loads) total += l;
  EXPECT_EQ(total, 160u);
}

TEST(GraphChoice, CompleteGraphMatchesClassicalTwoChoice) {
  // On K_n, picking a random edge = picking two distinct uniform bins.
  Summary graph;
  Summary classic;
  const EdgeList edges = complete_graph_edges(256);
  for (std::uint64_t s = 0; s < 30; ++s) {
    Rng rng_a(10 + s);
    Rng rng_b(10 + s);
    graph.add(graph_choice(256, edges, 256, rng_a).max_load);
    classic.add(d_choice(256, 256, 2, rng_b).max_load);
  }
  EXPECT_NEAR(graph.mean(), classic.mean(), 0.5);
}

TEST(GraphChoice, CycleIsWorseThanCompleteGraph) {
  // Sparse graphs lose the power of two choices (the paper's Theorem 5
  // dichotomy). The cycle's max load exceeds the complete graph's.
  Summary cycle;
  Summary complete;
  const EdgeList cycle_edges = cycle_graph_edges(1024);
  const EdgeList complete_edges = complete_graph_edges(256);
  for (std::uint64_t s = 0; s < 20; ++s) {
    Rng rng_a(30 + s);
    Rng rng_b(30 + s);
    cycle.add(graph_choice(1024, cycle_edges, 1024, rng_a).max_load);
    complete.add(graph_choice(256, complete_edges, 256, rng_b).max_load);
  }
  EXPECT_GT(cycle.mean(), complete.mean());
}

TEST(GraphChoice, BallsOnlyLandOnEdgeEndpoints) {
  Rng rng(2);
  // Star-ish graph: balls can only land on {0, 1, 2}.
  const EdgeList edges = {{0, 1}, {0, 2}};
  const GraphAllocationResult result = graph_choice(10, edges, 100, rng);
  for (std::uint32_t v = 3; v < 10; ++v) EXPECT_EQ(result.loads[v], 0u);
  EXPECT_EQ(result.loads[0] + result.loads[1] + result.loads[2], 100u);
}

TEST(GraphChoice, LesserLoadedEndpointWins) {
  Rng rng(3);
  // Single edge: loads must stay within 1 of each other at all times.
  const EdgeList edges = {{0, 1}};
  const GraphAllocationResult result = graph_choice(2, edges, 101, rng);
  const auto a = result.loads[0];
  const auto b = result.loads[1];
  EXPECT_EQ(a + b, 101u);
  EXPECT_LE(a > b ? a - b : b - a, 1u);
}

TEST(GraphChoiceWeighted, ZeroWeightEdgesNeverSampled) {
  Rng rng(4);
  const EdgeList edges = {{0, 1}, {2, 3}};
  const std::vector<double> weights = {1.0, 0.0};
  const GraphAllocationResult result =
      graph_choice_weighted(4, edges, weights, 50, rng);
  EXPECT_EQ(result.loads[2], 0u);
  EXPECT_EQ(result.loads[3], 0u);
  EXPECT_EQ(result.loads[0] + result.loads[1], 50u);
}

TEST(GraphChoiceWeighted, RequiresMatchingWeights) {
  Rng rng(5);
  const EdgeList edges = {{0, 1}};
  EXPECT_THROW(graph_choice_weighted(2, edges, {1.0, 2.0}, 10, rng),
               std::invalid_argument);
}

TEST(GraphChoice, RejectsBadInput) {
  Rng rng(6);
  EXPECT_THROW(graph_choice(4, {}, 10, rng), std::invalid_argument);
  EXPECT_THROW(graph_choice(2, {{0, 5}}, 10, rng), std::invalid_argument);
}

TEST(ConvenienceGraphs, CompleteGraphShape) {
  const EdgeList edges = complete_graph_edges(5);
  EXPECT_EQ(edges.size(), 10u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> unique(edges.begin(),
                                                           edges.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(ConvenienceGraphs, CycleGraphShape) {
  const EdgeList edges = cycle_graph_edges(6);
  EXPECT_EQ(edges.size(), 6u);
  std::vector<int> degree(6, 0);
  for (const auto& [a, b] : edges) {
    ++degree[a];
    ++degree[b];
  }
  for (const int d : degree) EXPECT_EQ(d, 2);
}

}  // namespace
}  // namespace proxcache::ballsbins
