// Differential regression suite for the supermarket shim: run_supermarket
// is now a thin wrapper over the event engine (static policy, zero hop
// latency, uniform origins); every field of its result must match the
// frozen pre-engine loop (`run_supermarket_reference`) bit-for-bit across
// strategies, topologies, popularity laws, and load levels. This is the
// lock that lets the old loop stay deprecated instead of deleted.
#include <gtest/gtest.h>

#include <cstdint>

#include "event/engine.hpp"
#include "queueing/supermarket.hpp"

namespace proxcache {
namespace {

QueueingConfig base_config() {
  QueueingConfig config;
  config.network.num_nodes = 100;
  config.network.num_files = 20;
  config.network.cache_size = 5;
  config.network.seed = 5;
  config.network.strategy_spec = parse_strategy_spec("two-choice");
  config.arrival_rate = 0.5;
  config.service_rate = 1.0;
  config.horizon = 300.0;
  config.warmup_fraction = 0.25;
  return config;
}

void expect_bit_identical(const QueueingConfig& config, std::uint64_t seed) {
  const QueueingResult shim = run_supermarket(config, seed);
  const QueueingResult reference = run_supermarket_reference(config, seed);
  EXPECT_EQ(shim.completed, reference.completed);
  EXPECT_EQ(shim.max_queue, reference.max_queue);
  // Exact double equality on purpose: the engine replays the reference
  // loop's draw and accumulation order, so these are the same bits, not
  // merely close values.
  EXPECT_EQ(shim.mean_sojourn, reference.mean_sojourn);
  EXPECT_EQ(shim.mean_queue, reference.mean_queue);
  EXPECT_EQ(shim.mean_hops, reference.mean_hops);
  EXPECT_EQ(shim.utilization, reference.utilization);
}

TEST(EventSupermarket, MatchesReferenceTwoChoice) {
  expect_bit_identical(base_config(), 3);
}

TEST(EventSupermarket, MatchesReferenceAcrossStrategies) {
  for (const char* strategy :
       {"nearest", "two-choice(d=2, r=8)", "least-loaded(r=8)",
        "prox-weighted(d=2, alpha=1)"}) {
    QueueingConfig config = base_config();
    config.network.strategy_spec = parse_strategy_spec(strategy);
    SCOPED_TRACE(strategy);
    expect_bit_identical(config, 11);
  }
}

TEST(EventSupermarket, MatchesReferenceAcrossTopologies) {
  for (const char* topology :
       {"ring(n=100)", "tree(branching=3, depth=4)",
        "rgg(n=100, radius=0.2, seed=7)"}) {
    QueueingConfig config = base_config();
    config.network.topology_spec = parse_topology_spec(topology);
    SCOPED_TRACE(topology);
    expect_bit_identical(config, 17);
  }
}

TEST(EventSupermarket, MatchesReferenceUnderHighLoadAndZipf) {
  QueueingConfig config = base_config();
  config.arrival_rate = 0.9;
  config.network.popularity.kind = PopularityKind::Zipf;
  config.network.popularity.gamma = 0.8;
  expect_bit_identical(config, 23);
}

TEST(EventSupermarket, MatchesReferenceWithSparsePlacement) {
  // A small cache over a larger library leaves files with few (or zero)
  // replicas, exercising the lost-arrival path on both sides.
  QueueingConfig config = base_config();
  config.network.num_files = 200;
  config.network.cache_size = 2;
  expect_bit_identical(config, 29);
}

TEST(EventSupermarket, ShimReportsStaticPolicyAsAllHits) {
  // The same special case through the engine's own API: static policy at
  // zero latency serves every completion from the frozen placement.
  DynamicConfig config;
  config.network = base_config().network;
  config.network.trace.arrival_rate = 0.5;
  config.horizon = 100.0;
  const DynamicResult result = run_dynamic(config, 3);
  EXPECT_GT(result.hits, 0u);
  EXPECT_EQ(result.misses, 0u);
  EXPECT_EQ(result.hit_rate, 1.0);
  EXPECT_EQ(result.inserts, 0u);
  EXPECT_EQ(result.evictions, 0u);
}

}  // namespace
}  // namespace proxcache
