// Statistical validation of Strategy II's core sampling claim: the two
// candidates are a uniform random pair from F_j(u) — the set of replicas
// within radius r — regardless of which query path (list scan, bucket
// grid, global list) produced them. Lemma 3(b)'s proof depends on this.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/two_choice.hpp"
#include "stats/gof.hpp"

namespace proxcache {
namespace {

struct Fixture {
  Fixture(std::size_t n, std::size_t k, std::size_t m, std::uint64_t seed,
          std::size_t bucket_threshold)
      : lattice(Lattice::from_node_count(n, Wrap::Torus)),
        placement([&] {
          Rng rng(seed);
          return Placement::generate(
              n, Popularity::uniform(k), m,
              PlacementMode::ProportionalWithReplacement, rng);
        }()),
        index(lattice, placement, bucket_threshold) {}

  Lattice lattice;
  Placement placement;
  ReplicaIndex index;
};

// Find a (u, j) with a moderate F_j(u) and chi-square the sampled pairs.
void check_pair_uniformity(const Fixture& fixture, Hop radius,
                           std::uint64_t seed) {
  TwoChoiceOptions options;
  options.radius = radius;
  TwoChoiceStrategy strategy(fixture.index, options);
  const LoadTracker tracker(fixture.lattice.size());

  for (NodeId u = 0; u < fixture.lattice.size(); u += 3) {
    for (FileId j = 0; j < fixture.placement.num_files(); ++j) {
      std::vector<NodeId> candidates;
      fixture.index.for_each_replica_within(
          u, j, radius, [&](NodeId v, Hop) { candidates.push_back(v); });
      if (candidates.size() < 4 || candidates.size() > 6) continue;

      std::sort(candidates.begin(), candidates.end());
      std::map<std::pair<NodeId, NodeId>, std::uint64_t> counts;
      strategy.set_observer([&](std::span<const NodeId> pair) {
        NodeId a = pair[0];
        NodeId b = pair[1];
        if (a > b) std::swap(a, b);
        ++counts[{a, b}];
      });
      Rng rng(seed);
      constexpr int kTrials = 30000;
      for (int t = 0; t < kTrials; ++t) {
        (void)strategy.assign({u, j}, tracker, rng);
      }
      // Every unordered pair of F_j(u) must appear, uniformly.
      const std::size_t f = candidates.size();
      const std::size_t num_pairs = f * (f - 1) / 2;
      ASSERT_EQ(counts.size(), num_pairs);
      std::vector<std::uint64_t> observed;
      for (const auto& [pair, count] : counts) observed.push_back(count);
      const std::vector<double> expected(num_pairs,
                                         1.0 / static_cast<double>(num_pairs));
      EXPECT_GT(chi_square_pvalue(observed, expected), 1e-4)
          << "pair sampling is not uniform for |F|=" << f;
      return;
    }
  }
  GTEST_SKIP() << "no candidate set of size 4-6 found";
}

TEST(CandidateUniformity, RadiusConstrainedListScan) {
  // bucket_threshold = 0 disables bucket grids → list-scan path.
  Fixture fixture(225, 20, 3, 101, /*bucket_threshold=*/0);
  check_pair_uniformity(fixture, 5, 1);
}

TEST(CandidateUniformity, RadiusConstrainedBucketGrid) {
  // bucket_threshold = 1 forces bucket grids → grid path.
  Fixture fixture(225, 20, 3, 101, /*bucket_threshold=*/1);
  check_pair_uniformity(fixture, 5, 2);
}

TEST(CandidateUniformity, GlobalReplicaList) {
  // r = ∞ path samples directly from S_j.
  Fixture fixture(225, 60, 1, 103, /*bucket_threshold=*/512);
  check_pair_uniformity(fixture, kUnboundedRadius, 3);
}

}  // namespace
}  // namespace proxcache
