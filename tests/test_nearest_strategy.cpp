// Tests for Strategy I (nearest replica): minimality of the charged
// distance, agreement with the Voronoi tessellation, and load-obliviousness.
#include "core/nearest_replica.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "spatial/voronoi.hpp"

namespace proxcache {
namespace {

struct Fixture {
  Fixture(std::size_t n, std::size_t k, std::size_t m, std::uint64_t seed)
      : lattice(Lattice::from_node_count(n, Wrap::Torus)),
        placement([&] {
          Rng rng(seed);
          return Placement::generate(
              n, Popularity::uniform(k), m,
              PlacementMode::ProportionalWithReplacement, rng);
        }()),
        index(lattice, placement) {}

  Lattice lattice;
  Placement placement;
  ReplicaIndex index;
};

TEST(NearestStrategy, ChargedDistanceIsTheMinimum) {
  Fixture f(49, 6, 2, 3);
  NearestReplicaStrategy strategy(f.index);
  LoadTracker tracker(49);
  Rng rng(1);
  for (NodeId u = 0; u < 49; ++u) {
    for (FileId j = 0; j < 6; ++j) {
      if (f.placement.replica_count(j) == 0) continue;
      const Assignment a = strategy.assign({u, j}, tracker, rng);
      ASSERT_NE(a.server, kInvalidNode);
      EXPECT_TRUE(f.placement.caches(a.server, j));
      EXPECT_EQ(a.hops, f.lattice.distance(u, a.server));
      // Minimality against every replica.
      for (const NodeId v : f.placement.replicas(j)) {
        EXPECT_LE(a.hops, f.lattice.distance(u, v));
      }
      EXPECT_FALSE(a.fallback);
    }
  }
}

TEST(NearestStrategy, MatchesVoronoiDistances) {
  Fixture f(64, 4, 1, 7);
  NearestReplicaStrategy strategy(f.index);
  LoadTracker tracker(64);
  Rng rng(2);
  for (FileId j = 0; j < 4; ++j) {
    const auto replicas = f.placement.replicas(j);
    if (replicas.empty()) continue;
    const VoronoiTessellation voronoi(
        f.lattice, std::vector<NodeId>(replicas.begin(), replicas.end()));
    for (NodeId u = 0; u < 64; u += 3) {
      const Assignment a = strategy.assign({u, j}, tracker, rng);
      EXPECT_EQ(a.hops, voronoi.distance(u));
    }
  }
}

TEST(NearestStrategy, IgnoresLoads) {
  // Piling load on the nearest replica must not change the decision.
  Fixture f(25, 1, 1, 11);
  NearestReplicaStrategy strategy(f.index);
  Rng rng(3);
  LoadTracker empty(25);
  const Assignment before = strategy.assign({0, 0}, empty, rng);
  LoadTracker loaded(25);
  for (int i = 0; i < 100; ++i) loaded.assign(before.server, 0);
  // With a single replica the decision is forced; with several, distance
  // still dominates. Check distance equality across many draws.
  for (int i = 0; i < 50; ++i) {
    const Assignment after = strategy.assign({0, 0}, loaded, rng);
    EXPECT_EQ(after.hops, before.hops);
  }
}

TEST(NearestStrategy, RequesterServesItselfWhenCaching) {
  Fixture f(36, 3, 3, 13);
  NearestReplicaStrategy strategy(f.index);
  LoadTracker tracker(36);
  Rng rng(4);
  for (NodeId u = 0; u < 36; ++u) {
    for (const FileId j : f.placement.files_of(u)) {
      const Assignment a = strategy.assign({u, j}, tracker, rng);
      EXPECT_EQ(a.server, u);
      EXPECT_EQ(a.hops, 0u);
    }
  }
}

TEST(NearestStrategy, Name) {
  Fixture f(9, 2, 1, 1);
  NearestReplicaStrategy strategy(f.index);
  EXPECT_EQ(strategy.name(), "nearest-replica");
}

}  // namespace
}  // namespace proxcache
