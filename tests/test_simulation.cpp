// Tests for core/simulation: conservation, determinism, and cross-strategy
// coherence of one full run.
#include "core/simulation.hpp"

#include <gtest/gtest.h>

namespace proxcache {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.num_nodes = 225;
  config.num_files = 50;
  config.cache_size = 5;
  config.seed = 99;
  return config;
}

TEST(Simulation, ConservationUnderResample) {
  ExperimentConfig config = base_config();
  config.strategy_spec = parse_strategy_spec("nearest");
  const RunResult result = run_simulation(config, 0);
  // Resample keeps all n requests; none dropped.
  EXPECT_EQ(result.requests, config.num_nodes);
  EXPECT_EQ(result.dropped, 0u);
  // Histogram covers every server and sums loads back to requests.
  EXPECT_EQ(result.load_histogram.total(), config.num_nodes);
  std::uint64_t weighted = 0;
  for (std::uint64_t v = 0; v <= result.load_histogram.max_value(); ++v) {
    weighted += v * result.load_histogram.at(v);
  }
  EXPECT_EQ(weighted, result.requests);
  EXPECT_EQ(result.load_histogram.max_value(), result.max_load);
}

TEST(Simulation, DeterministicPerRunIndex) {
  const ExperimentConfig config = base_config();
  const RunResult a = run_simulation(config, 3);
  const RunResult b = run_simulation(config, 3);
  EXPECT_EQ(a.max_load, b.max_load);
  EXPECT_DOUBLE_EQ(a.comm_cost, b.comm_cost);
  EXPECT_EQ(a.resampled, b.resampled);
}

TEST(Simulation, DifferentRunsDiffer) {
  const ExperimentConfig config = base_config();
  // Over several runs, at least one metric must differ somewhere.
  bool differs = false;
  const RunResult first = run_simulation(config, 0);
  for (std::uint64_t i = 1; i < 6 && !differs; ++i) {
    const RunResult other = run_simulation(config, i);
    differs = other.comm_cost != first.comm_cost ||
              other.max_load != first.max_load;
  }
  EXPECT_TRUE(differs);
}

TEST(Simulation, TwoChoiceUnboundedRadiusRuns) {
  ExperimentConfig config = base_config();
  config.strategy_spec = parse_strategy_spec("two-choice");
  const RunResult result = run_simulation(config, 0);
  EXPECT_EQ(result.requests, config.num_nodes);
  EXPECT_GT(result.comm_cost, 0.0);
}

TEST(Simulation, TwoChoiceFiniteRadiusCostBounded) {
  ExperimentConfig config = base_config();
  config.strategy_spec = parse_strategy_spec("two-choice(r=3)");
  const RunResult result = run_simulation(config, 0);
  // Nearly all requests stay within the radius; the mean can only exceed
  // the radius if fallbacks dominate, which they must not at M=5, K=50.
  EXPECT_LT(result.comm_cost, 4.0);
  EXPECT_LT(result.fallbacks, result.requests / 4);
}

TEST(Simulation, NearestCostLowerThanTwoChoiceUnbounded) {
  ExperimentConfig nearest = base_config();
  nearest.strategy_spec = parse_strategy_spec("nearest");
  ExperimentConfig two = base_config();
  two.strategy_spec = parse_strategy_spec("two-choice");
  double nearest_cost = 0.0;
  double two_cost = 0.0;
  for (std::uint64_t i = 0; i < 5; ++i) {
    nearest_cost += run_simulation(nearest, i).comm_cost;
    two_cost += run_simulation(two, i).comm_cost;
  }
  EXPECT_LT(nearest_cost, two_cost);
}

TEST(Simulation, GridModeRuns) {
  ExperimentConfig config = base_config();
  config.wrap = Wrap::Grid;
  const RunResult result = run_simulation(config, 0);
  EXPECT_EQ(result.requests, config.num_nodes);
}

TEST(Simulation, ExplicitRequestCount) {
  ExperimentConfig config = base_config();
  config.num_requests = 1000;
  const RunResult result = run_simulation(config, 0);
  EXPECT_EQ(result.requests, 1000u);
}

TEST(Simulation, PlacementObservablesPopulated) {
  const ExperimentConfig config = base_config();
  const RunResult result = run_simulation(config, 0);
  EXPECT_GE(result.placement_min_distinct, 1u);
  EXPECT_LE(result.placement_min_distinct, config.cache_size);
  EXPECT_GE(result.files_with_replicas, 1u);
  EXPECT_LE(result.files_with_replicas, config.num_files);
}

TEST(Simulation, ValidatesConfig) {
  ExperimentConfig config = base_config();
  config.num_nodes = 10;  // not a perfect square
  EXPECT_THROW(run_simulation(config, 0), std::invalid_argument);
  config = base_config();
  config.cache_size = 0;
  EXPECT_THROW(run_simulation(config, 0), std::invalid_argument);
}

TEST(Simulation, DescribeMentionsKeyParameters) {
  ExperimentConfig config = base_config();
  config.strategy_spec = parse_strategy_spec("two-choice(r=12)");
  const std::string text = config.describe();
  EXPECT_NE(text.find("n=225"), std::string::npos);
  EXPECT_NE(text.find("K=50"), std::string::npos);
  EXPECT_NE(text.find("M=5"), std::string::npos);
  EXPECT_NE(text.find("r=12"), std::string::npos);
}

}  // namespace
}  // namespace proxcache
