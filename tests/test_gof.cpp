// Tests for stats/gof: chi-square statistic identities and the incomplete
// gamma based survival function against textbook values.
#include "stats/gof.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "random/rng.hpp"

namespace proxcache {
namespace {

TEST(ChiSquareStatistic, HandComputed) {
  // observed {8, 12}, expected {0.5, 0.5} of 20: stat = (8-10)²/10 * 2 = 0.8
  const double stat = chi_square_statistic({8, 12}, {0.5, 0.5});
  EXPECT_NEAR(stat, 0.8, 1e-12);
}

TEST(ChiSquareStatistic, PerfectFitIsZero) {
  EXPECT_NEAR(chi_square_statistic({25, 25, 50}, {0.25, 0.25, 0.5}), 0.0,
              1e-12);
}

TEST(ChiSquareStatistic, ZeroProbabilityCategoryMustBeEmpty) {
  EXPECT_NO_THROW(chi_square_statistic({5, 0}, {1.0, 0.0}));
  EXPECT_THROW(chi_square_statistic({5, 1}, {1.0, 0.0}),
               std::invalid_argument);
}

TEST(ChiSquareStatistic, RejectsMismatchedSizes) {
  EXPECT_THROW(chi_square_statistic({1, 2}, {1.0}), std::invalid_argument);
  EXPECT_THROW(chi_square_statistic({}, {}), std::invalid_argument);
  EXPECT_THROW(chi_square_statistic({0, 0}, {0.5, 0.5}),
               std::invalid_argument);
}

TEST(RegularizedGammaQ, EdgeCases) {
  EXPECT_NEAR(regularized_gamma_q(1.0, 0.0), 1.0, 1e-12);
  // Q(1, x) = exp(-x) exactly.
  EXPECT_NEAR(regularized_gamma_q(1.0, 2.0), std::exp(-2.0), 1e-10);
  EXPECT_NEAR(regularized_gamma_q(1.0, 0.5), std::exp(-0.5), 1e-10);
  EXPECT_THROW(regularized_gamma_q(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(regularized_gamma_q(1.0, -1.0), std::invalid_argument);
}

TEST(ChiSquareSf, TextbookCriticalValues) {
  // P(X² >= 3.841 | dof=1) ≈ 0.05, P(X² >= 6.635 | dof=1) ≈ 0.01.
  EXPECT_NEAR(chi_square_sf(3.841, 1), 0.05, 0.002);
  EXPECT_NEAR(chi_square_sf(6.635, 1), 0.01, 0.001);
  // dof=2: sf(x) = exp(-x/2); at 5.991 → 0.05.
  EXPECT_NEAR(chi_square_sf(5.991, 2), 0.05, 0.002);
  // dof=10: P(X² >= 18.307) ≈ 0.05.
  EXPECT_NEAR(chi_square_sf(18.307, 10), 0.05, 0.002);
}

TEST(ChiSquareSf, MonotoneInStat) {
  double last = 1.0;
  for (double stat = 0.0; stat < 30.0; stat += 3.0) {
    const double sf = chi_square_sf(stat, 5);
    EXPECT_LE(sf, last + 1e-12);
    last = sf;
  }
}

TEST(ChiSquarePvalue, UniformSampleLooksUniform) {
  Rng rng(12);
  std::vector<std::uint64_t> counts(8, 0);
  for (int i = 0; i < 80000; ++i) ++counts[rng.below(8)];
  EXPECT_GT(chi_square_pvalue(counts, std::vector<double>(8, 0.125)), 1e-3);
}

TEST(ChiSquarePvalue, BiasedSampleIsRejected) {
  // Grossly biased counts against a uniform hypothesis.
  const std::vector<std::uint64_t> counts = {1000, 10, 10, 10};
  EXPECT_LT(chi_square_pvalue(counts, std::vector<double>(4, 0.25)), 1e-6);
}

TEST(ChiSquarePvalue, ExtraConstraintsReduceDof) {
  const std::vector<std::uint64_t> counts = {40, 60};
  EXPECT_NO_THROW(chi_square_pvalue(counts, {0.5, 0.5}, 0));
  EXPECT_THROW(chi_square_pvalue(counts, {0.5, 0.5}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace proxcache
