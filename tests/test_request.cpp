// Tests for core/request: trace generation marginals and the three
// missing-file policies.
#include "core/request.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/gof.hpp"

namespace proxcache {
namespace {

TEST(GenerateTrace, SizesAndRanges) {
  Rng rng(1);
  const auto trace = generate_trace(100, Popularity::uniform(7), 500, rng);
  EXPECT_EQ(trace.size(), 500u);
  for (const Request& request : trace) {
    EXPECT_LT(request.origin, 100u);
    EXPECT_LT(request.file, 7u);
  }
}

TEST(GenerateTrace, OriginsAreUniform) {
  Rng rng(2);
  const std::size_t n = 10;
  const auto trace = generate_trace(n, Popularity::uniform(3), 50000, rng);
  std::vector<std::uint64_t> counts(n, 0);
  for (const Request& request : trace) ++counts[request.origin];
  EXPECT_GT(chi_square_pvalue(counts, std::vector<double>(n, 0.1)), 1e-4);
}

TEST(GenerateTrace, FilesFollowZipf) {
  Rng rng(3);
  const Popularity popularity = Popularity::zipf(6, 1.0);
  const auto trace = generate_trace(5, popularity, 60000, rng);
  std::vector<std::uint64_t> counts(6, 0);
  for (const Request& request : trace) ++counts[request.file];
  EXPECT_GT(chi_square_pvalue(counts, popularity.pmf()), 1e-4);
}

struct SanitizeFixture {
  // Tiny placement where file 0 is cached and file 1 is not: n=4 nodes,
  // K=2, M=1, constructed deterministically by searching seeds.
  static Placement uncached_file_placement(FileId* uncached) {
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
      Rng rng(seed);
      Placement placement =
          Placement::generate(4, Popularity::uniform(3), 1,
                              PlacementMode::ProportionalWithReplacement, rng);
      for (FileId j = 0; j < 3; ++j) {
        if (placement.replica_count(j) == 0) {
          *uncached = j;
          return placement;
        }
      }
    }
    throw std::runtime_error("no seed produced an uncached file");
  }
};

TEST(SanitizeTrace, StrictThrowsOnUncachedFile) {
  FileId uncached = 0;
  const Placement placement =
      SanitizeFixture::uncached_file_placement(&uncached);
  std::vector<Request> trace = {{0, uncached}};
  Rng rng(1);
  EXPECT_THROW(sanitize_trace(trace, placement, Popularity::uniform(3),
                              MissingFilePolicy::Strict, rng),
               std::runtime_error);
}

TEST(SanitizeTrace, StrictPassesWhenAllCached) {
  FileId uncached = 0;
  const Placement placement =
      SanitizeFixture::uncached_file_placement(&uncached);
  FileId cached = 0;
  while (placement.replica_count(cached) == 0) ++cached;
  std::vector<Request> trace = {{0, cached}, {1, cached}};
  Rng rng(1);
  const SanitizeStats stats = sanitize_trace(
      trace, placement, Popularity::uniform(3), MissingFilePolicy::Strict,
      rng);
  EXPECT_EQ(stats.resampled, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(trace.size(), 2u);
}

TEST(SanitizeTrace, DropRemovesOffenders) {
  FileId uncached = 0;
  const Placement placement =
      SanitizeFixture::uncached_file_placement(&uncached);
  FileId cached = 0;
  while (placement.replica_count(cached) == 0) ++cached;
  std::vector<Request> trace = {{0, cached}, {1, uncached}, {2, cached}};
  Rng rng(1);
  const SanitizeStats stats = sanitize_trace(
      trace, placement, Popularity::uniform(3), MissingFilePolicy::Drop, rng);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(trace.size(), 2u);
  for (const Request& request : trace) {
    EXPECT_GT(placement.replica_count(request.file), 0u);
  }
}

TEST(SanitizeTrace, ResampleRepairsInPlace) {
  FileId uncached = 0;
  const Placement placement =
      SanitizeFixture::uncached_file_placement(&uncached);
  std::vector<Request> trace;
  for (NodeId u = 0; u < 4; ++u) trace.push_back({u, uncached});
  Rng rng(1);
  const SanitizeStats stats =
      sanitize_trace(trace, placement, Popularity::uniform(3),
                     MissingFilePolicy::Resample, rng);
  EXPECT_EQ(stats.resampled, 4u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(trace.size(), 4u);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(trace[u].origin, u) << "origins must be preserved";
    EXPECT_GT(placement.replica_count(trace[u].file), 0u);
  }
}

TEST(SanitizeTrace, ResampleLeavesCachedRequestsAlone) {
  FileId uncached = 0;
  const Placement placement =
      SanitizeFixture::uncached_file_placement(&uncached);
  FileId cached = 0;
  while (placement.replica_count(cached) == 0) ++cached;
  std::vector<Request> trace = {{3, cached}};
  Rng rng(1);
  const SanitizeStats stats =
      sanitize_trace(trace, placement, Popularity::uniform(3),
                     MissingFilePolicy::Resample, rng);
  EXPECT_EQ(stats.resampled, 0u);
  EXPECT_EQ(trace[0].file, cached);
}

}  // namespace
}  // namespace proxcache
