// Tests for spatial/replica_index: the two nearest-replica algorithms must
// agree with each other and with brute force (distance and tie count), and
// radius streams must match the distance predicate with and without bucket
// grids.
#include "spatial/replica_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace proxcache {
namespace {

struct Fixture {
  Fixture(std::size_t n, std::size_t k, std::size_t m, Wrap wrap,
          std::uint64_t seed, std::size_t bucket_threshold = 512)
      : lattice(Lattice::from_node_count(n, wrap)),
        placement([&] {
          Rng rng(seed);
          return Placement::generate(
              n, Popularity::uniform(k), m,
              PlacementMode::ProportionalWithReplacement, rng);
        }()),
        index(lattice, placement, bucket_threshold) {}

  Lattice lattice;
  Placement placement;
  ReplicaIndex index;
};

struct BruteNearest {
  Hop distance = 0;
  std::uint32_t ties = 0;
  bool found = false;
};

BruteNearest brute_nearest(const Fixture& f, NodeId u, FileId j) {
  BruteNearest result;
  Hop best = f.lattice.diameter() + 1;
  for (const NodeId v : f.placement.replicas(j)) {
    const Hop d = f.lattice.distance(u, v);
    if (d < best) {
      best = d;
      result.ties = 1;
    } else if (d == best) {
      ++result.ties;
    }
  }
  if (result.ties > 0) {
    result.found = true;
    result.distance = best;
  }
  return result;
}

class ReplicaIndexParamTest
    : public ::testing::TestWithParam<std::tuple<Wrap, int>> {};

TEST_P(ReplicaIndexParamTest, BothAlgorithmsMatchBruteForce) {
  const auto [wrap, m] = GetParam();
  Fixture f(49, 12, static_cast<std::size_t>(m), wrap, 77);
  Rng rng(1);
  for (NodeId u = 0; u < f.lattice.size(); u += 5) {
    for (FileId j = 0; j < 12; ++j) {
      const BruteNearest expected = brute_nearest(f, u, j);
      const NearestResult by_scan = f.index.nearest_by_scan(u, j, rng);
      const NearestResult by_shells = f.index.nearest_by_shells(u, j, rng);
      const NearestResult automatic = f.index.nearest(u, j, rng);
      if (!expected.found) {
        EXPECT_EQ(by_scan.server, kInvalidNode);
        EXPECT_EQ(by_shells.server, kInvalidNode);
        EXPECT_EQ(automatic.server, kInvalidNode);
        continue;
      }
      for (const NearestResult& result : {by_scan, by_shells, automatic}) {
        ASSERT_NE(result.server, kInvalidNode);
        EXPECT_EQ(result.distance, expected.distance);
        EXPECT_EQ(result.ties, expected.ties);
        EXPECT_TRUE(f.placement.caches(result.server, j));
        EXPECT_EQ(f.lattice.distance(u, result.server), expected.distance);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WrapAndCache, ReplicaIndexParamTest,
    ::testing::Combine(::testing::Values(Wrap::Torus, Wrap::Grid),
                       ::testing::Values(1, 3, 8)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_M" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ReplicaIndex, TieBreakingIsUniformAcrossReplicas) {
  // Symmetric layout: two replicas equidistant from the requester.
  // Build a placement where file 0 sits at distance 2 both left and right.
  Fixture f(25, 4, 2, Wrap::Torus, 123);
  // Find a (u, j) with >= 2 ties; then sample many times.
  Rng scan_rng(5);
  for (NodeId u = 0; u < 25; ++u) {
    for (FileId j = 0; j < 4; ++j) {
      const NearestResult probe = f.index.nearest_by_scan(u, j, scan_rng);
      if (probe.server == kInvalidNode || probe.ties < 2) continue;
      std::map<NodeId, int> histogram;
      Rng rng(9);
      constexpr int kTrials = 4000;
      for (int t = 0; t < kTrials; ++t) {
        histogram[f.index.nearest_by_scan(u, j, rng).server]++;
      }
      EXPECT_EQ(histogram.size(), probe.ties);
      for (const auto& [server, count] : histogram) {
        EXPECT_NEAR(static_cast<double>(count) / kTrials,
                    1.0 / probe.ties, 0.05)
            << "server " << server;
      }
      return;  // one verified case suffices
    }
  }
  GTEST_SKIP() << "no tie found in this placement (unexpected)";
}

TEST(ReplicaIndex, RadiusStreamMatchesPredicateWithAndWithoutBuckets) {
  for (const std::size_t threshold : {std::size_t{0}, std::size_t{1}}) {
    // threshold 1 forces bucket grids everywhere; 0 disables them.
    Fixture f(100, 6, 3, Wrap::Torus, 31, threshold);
    for (NodeId u = 0; u < 100; u += 9) {
      for (FileId j = 0; j < 6; ++j) {
        for (const Hop r : {0u, 1u, 3u, 6u, 10u, 100u}) {
          std::vector<NodeId> streamed;
          f.index.for_each_replica_within(u, j, r, [&](NodeId v, Hop d) {
            EXPECT_EQ(d, f.lattice.distance(u, v));
            EXPECT_LE(d, r);
            streamed.push_back(v);
          });
          std::vector<NodeId> expected;
          for (const NodeId v : f.placement.replicas(j)) {
            if (f.lattice.distance(u, v) <= r) expected.push_back(v);
          }
          std::sort(streamed.begin(), streamed.end());
          std::sort(expected.begin(), expected.end());
          EXPECT_EQ(streamed, expected)
              << "threshold=" << threshold << " u=" << u << " j=" << j
              << " r=" << r;
        }
      }
    }
  }
}

TEST(ReplicaIndex, CountMatchesStream) {
  Fixture f(36, 5, 2, Wrap::Grid, 8);
  for (NodeId u = 0; u < 36; u += 7) {
    for (FileId j = 0; j < 5; ++j) {
      for (const Hop r : {0u, 2u, 5u, 50u}) {
        std::size_t streamed = 0;
        f.index.for_each_replica_within(u, j, r,
                                        [&](NodeId, Hop) { ++streamed; });
        EXPECT_EQ(f.index.count_replicas_within(u, j, r), streamed);
      }
    }
  }
}

TEST(ReplicaIndex, UnboundedRadiusStreamsWholeReplicaList) {
  Fixture f(49, 8, 4, Wrap::Torus, 55);
  for (FileId j = 0; j < 8; ++j) {
    std::size_t streamed = 0;
    f.index.for_each_replica_within(3, j, kUnboundedRadius,
                                    [&](NodeId, Hop) { ++streamed; });
    EXPECT_EQ(streamed, f.placement.replica_count(j));
  }
}

TEST(ReplicaIndex, BucketGridsBuiltOnlyAboveThreshold) {
  Fixture f(400, 4, 3, Wrap::Torus, 2, /*bucket_threshold=*/100);
  for (FileId j = 0; j < 4; ++j) {
    EXPECT_EQ(f.index.has_bucket_grid(j),
              f.placement.replica_count(j) >= 100)
        << "file " << j << " has " << f.placement.replica_count(j);
  }
}

TEST(ReplicaIndex, MismatchedSizesRejected) {
  const Lattice lattice(5, Wrap::Torus);
  Rng rng(1);
  const Placement placement = Placement::generate(
      16, Popularity::uniform(4), 2,
      PlacementMode::ProportionalWithReplacement, rng);
  EXPECT_THROW(ReplicaIndex(lattice, placement), std::invalid_argument);
}

}  // namespace
}  // namespace proxcache
