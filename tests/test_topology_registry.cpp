// Tests for the topology registry (topology/registry.hpp): catalog
// contents, spec validation, node_count/factory agreement, the legacy
// lattice-knob mapping, and the open-API promise end to end (a custom
// topology registered on the global catalog drives run_simulation).
#include "topology/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/simulation.hpp"
#include "topology/ring.hpp"

namespace proxcache {
namespace {

void expect_invalid(const std::string& text, const std::string& needle) {
  try {
    TopologyRegistry::built_ins().validate(parse_topology_spec(text));
    FAIL() << "expected spec '" << text << "' to be rejected";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find(needle), std::string::npos)
        << "message '" << message << "' does not mention '" << needle << "'";
  }
}

TEST(TopologyRegistry, BuiltInsCoverLatticeAndGraphFamilies) {
  const TopologyRegistry& registry = TopologyRegistry::built_ins();
  EXPECT_GE(registry.all().size(), 5u);
  for (const char* name :
       {"torus", "grid", "ring", "tree", "rgg", "hyperbolic"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.find("hypercube"), nullptr);
}

TEST(TopologyRegistry, AtThrowsListingKnownNames) {
  try {
    (void)TopologyRegistry::built_ins().at("moebius");
    FAIL() << "expected unknown topology to throw";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("moebius"), std::string::npos);
    EXPECT_NE(message.find("torus"), std::string::npos);
    EXPECT_NE(message.find("rgg"), std::string::npos);
  }
}

TEST(TopologyRegistry, ValidateRejectsUnknownNamesKeysAndRanges) {
  expect_invalid("moebius(n=64)", "unknown topology 'moebius'");
  expect_invalid("torus(n=64)", "does not take parameter 'n'");
  expect_invalid("ring(side=8)", "does not take parameter 'side'");
  expect_invalid("torus(side=0)", "'side' = 0");
  expect_invalid("torus(side=2.5)", "must be an integer");
  expect_invalid("tree(branching=0)", "'branching' = 0");
  expect_invalid("rgg(radius=0)", "'radius' = 0");
  expect_invalid("rgg(n=20000000)", "outside");
  expect_invalid("hyperbolic(alpha=0.5)", "'alpha' = 0.5");
  // The old dense-matrix caps are lifted: million-node graph specs are
  // valid now (the sparse distance oracle serves them).
  EXPECT_NO_THROW(TopologyRegistry::built_ins().validate(
      parse_topology_spec("rgg(n=1000000, radius=0.0025)")));
  EXPECT_NO_THROW(TopologyRegistry::built_ins().validate(
      parse_topology_spec("torus(side=4000)")));
  EXPECT_NO_THROW(TopologyRegistry::built_ins().validate(
      parse_topology_spec("hyperbolic(n=100000)")));
  // Per-key ranges pass but the implied node count overflows the id space.
  expect_invalid("tree(branching=64, depth=24)", "overflows");
}

TEST(TopologyRegistry, NodeCountAgreesWithMaterializedSize) {
  const TopologyRegistry& registry = TopologyRegistry::built_ins();
  for (const char* text :
       {"torus(side=7)", "grid(side=3)", "ring(n=100)",
        "tree(branching=3, depth=4)", "rgg(n=64, radius=0.2, seed=5)"}) {
    const TopologySpec spec = parse_topology_spec(text);
    EXPECT_EQ(registry.node_count(spec), registry.make(spec)->size())
        << text;
  }
}

TEST(TopologyRegistry, DefaultsFillUnsetParameters) {
  const TopologyRegistry& registry = TopologyRegistry::built_ins();
  const TopologySpec filled =
      registry.with_defaults(parse_topology_spec("tree"));
  EXPECT_EQ(filled.get_or("branching", 0.0), 4.0);
  EXPECT_EQ(filled.get_or("depth", 0.0), 6.0);
  EXPECT_EQ(registry.node_count(parse_topology_spec("tree")), 5461u);
  // The default torus matches the default ExperimentConfig (n = 2025).
  EXPECT_EQ(registry.node_count(parse_topology_spec("torus")), 2025u);
}

TEST(TopologyRegistry, MakeBuildsTheDescribedTopology) {
  const TopologyRegistry& registry = TopologyRegistry::built_ins();
  const auto torus = registry.make(parse_topology_spec("torus(side=6)"));
  EXPECT_NE(torus->as_lattice(), nullptr);
  EXPECT_EQ(torus->size(), 36u);
  EXPECT_EQ(torus->describe(), "torus(side=6)");
  const auto ring = registry.make(parse_topology_spec("ring(n=10)"));
  EXPECT_EQ(ring->as_lattice(), nullptr);
  EXPECT_EQ(ring->diameter(), 5u);
}

TEST(TopologyRegistry, LegacyLatticeKnobsMapToEquivalentSpec) {
  EXPECT_EQ(topology_spec_from_lattice(2025, Wrap::Torus).to_string(),
            "torus(side=45)");
  EXPECT_EQ(topology_spec_from_lattice(64, Wrap::Grid).to_string(),
            "grid(side=8)");
  EXPECT_THROW((void)topology_spec_from_lattice(10, Wrap::Torus),
               std::invalid_argument);

  // And the config-level resolution: empty spec -> legacy knobs; set spec
  // wins and decides the node count.
  ExperimentConfig config;
  EXPECT_EQ(config.resolved_topology().to_string(), "torus(side=45)");
  EXPECT_EQ(config.resolved_nodes(), 2025u);
  config.wrap = Wrap::Grid;
  config.num_nodes = 64;
  EXPECT_EQ(config.resolved_topology().to_string(), "grid(side=8)");
  config.topology_spec = parse_topology_spec("ring(n=300)");
  EXPECT_EQ(config.resolved_topology().to_string(), "ring(n=300)");
  EXPECT_EQ(config.resolved_nodes(), 300u);
  EXPECT_EQ(config.effective_requests(), 300u)
      << "the request horizon follows the topology's node count";
}

TEST(TopologyRegistry, ParseValidatedSpecsFailsFastOnTypos) {
  EXPECT_EQ(parse_validated_topology_specs({"torus(side=8)", "ring(n=64)"})
                .size(),
            2u);
  EXPECT_THROW((void)parse_validated_topology_specs(
                   {"torus(side=8)", "moebius"}),
               std::invalid_argument);
}

TEST(TopologyRegistry, GlobalRegistryDrivesTheSimulatorEndToEnd) {
  // The open-API promise: a topology registered on the global catalog is
  // immediately runnable through ExperimentConfig::topology_spec with zero
  // core changes.
  const std::string name = "test-double-ring";
  if (TopologyRegistry::global().find(name) == nullptr) {
    TopologyRegistry::global().add(
        {name,
         "test-only: a ring with 2n nodes",
         {{"n", 1.0, 4096.0, 16.0, "half the node count",
           /*integral=*/true}},
         [](const TopologySpec& spec) {
           return 2 * static_cast<std::size_t>(spec.get_or("n", 16.0));
         },
         [](const TopologySpec& spec) -> std::shared_ptr<const Topology> {
           return std::make_shared<RingTopology>(
               2 * static_cast<std::size_t>(spec.get_or("n", 16.0)));
         }});
  }
  ExperimentConfig config;
  config.topology_spec = parse_topology_spec("test-double-ring(n=50)");
  config.num_files = 20;
  config.cache_size = 4;
  config.validate();  // global() is consulted: no throw
  const RunResult result = run_simulation(config, 0);
  EXPECT_EQ(result.requests, 100u) << "horizon = 2n nodes";
  // built_ins() stays immutable: the custom entry is not there.
  EXPECT_EQ(TopologyRegistry::built_ins().find(name), nullptr);
}

TEST(TopologyRegistry, AddRejectsDuplicatesAndIncompleteEntries) {
  TopologyRegistry registry = TopologyRegistry::with_built_ins();
  TopologyEntry duplicate;
  duplicate.name = "ring";
  duplicate.node_count = [](const TopologySpec&) { return std::size_t{1}; };
  duplicate.factory =
      [](const TopologySpec&) -> std::shared_ptr<const Topology> {
    return nullptr;
  };
  EXPECT_THROW(registry.add(duplicate), std::invalid_argument);
  TopologyEntry unbuildable;
  unbuildable.name = "ghost";
  EXPECT_THROW(registry.add(unbuildable), std::invalid_argument);
}

TEST(TopologyRegistry, ConfigValidationRoutesThroughTheRegistry) {
  ExperimentConfig config;
  config.topology_spec = parse_topology_spec("ring(n=0)");
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.topology_spec = parse_topology_spec("moebius");
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.topology_spec = parse_topology_spec("ring(n=256)");
  config.num_nodes = 999;  // ignored when a spec is set: no square check
  EXPECT_NO_THROW(config.validate());
}

}  // namespace
}  // namespace proxcache
