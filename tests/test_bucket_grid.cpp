// Tests for spatial/bucket_grid: radius queries must agree exactly with a
// brute-force distance filter across wrap modes, cell sizes and radii.
#include "spatial/bucket_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "random/rng.hpp"

namespace proxcache {
namespace {

std::vector<NodeId> query(const BucketGrid& grid, NodeId center, Hop r) {
  std::vector<NodeId> out;
  grid.for_each_within(center, r, [&](NodeId v, Hop) { out.push_back(v); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> brute(const Lattice& lattice,
                          const std::vector<NodeId>& points, NodeId center,
                          Hop r) {
  std::vector<NodeId> out;
  for (const NodeId p : points) {
    if (lattice.distance(center, p) <= r) out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

class BucketGridTest
    : public ::testing::TestWithParam<std::tuple<Wrap, int>> {};

TEST_P(BucketGridTest, MatchesBruteForceAcrossRadii) {
  const auto [wrap, cell_hint] = GetParam();
  const Lattice lattice(12, wrap);
  Rng rng(42);
  std::vector<NodeId> points;
  for (NodeId u = 0; u < lattice.size(); ++u) {
    if (rng.bernoulli(0.3)) points.push_back(u);
  }
  const BucketGrid grid(lattice, points, cell_hint);
  EXPECT_EQ(grid.size(), points.size());
  for (const NodeId center : {NodeId{0}, NodeId{77}, NodeId{143}}) {
    for (const Hop r : {0u, 1u, 2u, 3u, 5u, 8u, 12u, 24u, 100u}) {
      EXPECT_EQ(query(grid, center, r), brute(lattice, points, center, r))
          << "wrap=" << to_string(wrap) << " cell=" << cell_hint
          << " center=" << center << " r=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WrapAndCell, BucketGridTest,
    ::testing::Combine(::testing::Values(Wrap::Torus, Wrap::Grid),
                       ::testing::Values(0, 1, 2, 5, 12)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_cell" +
             std::to_string(std::get<1>(info.param));
    });

TEST(BucketGrid, EmptyPointSet) {
  const Lattice lattice(6, Wrap::Torus);
  const BucketGrid grid(lattice, {});
  EXPECT_EQ(grid.size(), 0u);
  int visits = 0;
  grid.for_each_within(0, 10, [&](NodeId, Hop) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(BucketGrid, DuplicatePointsAreAllReported) {
  const Lattice lattice(5, Wrap::Torus);
  const BucketGrid grid(lattice, {7, 7, 7});
  int visits = 0;
  grid.for_each_within(7, 0, [&](NodeId v, Hop d) {
    EXPECT_EQ(v, 7u);
    EXPECT_EQ(d, 0u);
    ++visits;
  });
  EXPECT_EQ(visits, 3);
}

TEST(BucketGrid, ReportedDistancesAreExact) {
  const Lattice lattice(9, Wrap::Torus);
  std::vector<NodeId> all(lattice.size());
  for (NodeId u = 0; u < lattice.size(); ++u) all[u] = u;
  const BucketGrid grid(lattice, all);
  grid.for_each_within(40, 4, [&](NodeId v, Hop d) {
    EXPECT_EQ(d, lattice.distance(40, v));
    EXPECT_LE(d, 4u);
  });
}

TEST(BucketGrid, EachPointVisitedOnceOnWrappingQuery) {
  // Radius covering the whole torus: the cell box clamps to the axis count
  // so no cell (and no point) is visited twice.
  const Lattice lattice(6, Wrap::Torus);
  std::vector<NodeId> all(lattice.size());
  for (NodeId u = 0; u < lattice.size(); ++u) all[u] = u;
  const BucketGrid grid(lattice, all, 2);
  std::multiset<NodeId> seen;
  grid.for_each_within(0, lattice.diameter(), [&](NodeId v, Hop) {
    seen.insert(v);
  });
  EXPECT_EQ(seen.size(), lattice.size());
  for (const NodeId v : seen) EXPECT_EQ(seen.count(v), 1u);
}

}  // namespace
}  // namespace proxcache
