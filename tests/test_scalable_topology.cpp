// The million-node topology path end to end: GraphTopology on the sparse
// distance oracle must conform to the Topology contract wherever it claims
// exactness, the dense fallback below the size threshold must stay
// bit-identical across construction routes (the golden-master guarantee),
// the ball-walk replica queries on sparse topologies must agree with brute
// force, the hyperbolic topology locks its own determinism golden, and the
// sharded engine must run clean over the mutex-guarded sparse oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "catalog/placement.hpp"
#include "core/experiment.hpp"
#include "core/simulation.hpp"
#include "spatial/replica_index.hpp"
#include "topology/graph_topology.hpp"
#include "topology/hyperbolic.hpp"

namespace proxcache {
namespace {

GraphTopology::Options sparse_exact(std::size_t n) {
  GraphTopology::Options options;
  options.dense_threshold = 0;
  options.distance_ball_budget = n;
  return options;
}

TEST(ScalableTopology, SparseRegimeConformsToTheTopologyContract) {
  const auto dense = make_rgg_topology(120, 0.16, 17);
  const auto sparse = make_rgg_topology(120, 0.16, 17, sparse_exact(120));
  ASSERT_TRUE(dense->oracle().exact());
  ASSERT_FALSE(sparse->oracle().exact());
  EXPECT_TRUE(sparse->directly_enumerates_shells());
  EXPECT_TRUE(sparse->prefers_local_enumeration());
  EXPECT_FALSE(dense->prefers_local_enumeration());
  ASSERT_TRUE(sparse->oracle().diameter_is_exact())
      << "iFUB must converge on a 120-node graph";
  EXPECT_EQ(sparse->diameter(), dense->diameter());

  const std::size_t n = dense->size();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(sparse->distance(u, v), dense->distance(u, v));
    }
    for (Hop d = 0; d <= dense->diameter() + 1; ++d) {
      std::vector<NodeId> a;
      std::vector<NodeId> b;
      dense->visit_shell(u, d, [&](NodeId w) { a.push_back(w); });
      sparse->visit_shell(u, d, [&](NodeId w) { b.push_back(w); });
      EXPECT_EQ(a, b) << "shell d=" << d << " of " << u;
      EXPECT_EQ(sparse->shell_size(u, d), a.size());
    }
    EXPECT_EQ(sparse->ball_size(u, 3), dense->ball_size(u, 3));
    EXPECT_EQ(sparse->neighbors(u), dense->neighbors(u));
    EXPECT_DOUBLE_EQ(sparse->mean_distance_to_random_node(u),
                     dense->mean_distance_to_random_node(u));
  }
}

TEST(ScalableTopology, DenseFallbackIsBitIdenticalAcrossConstructionRoutes) {
  // All four strategies on graph-backed and closed-form topologies below
  // the oracle threshold: the registry route (oracle picks the dense
  // fallback itself) and an explicitly dense-forced instance must produce
  // identical runs — the regime choice may never leak into results.
  const char* strategies[] = {"nearest", "two-choice", "least-loaded(r=8)",
                              "prox-weighted(d=2, alpha=1)"};
  for (const char* strategy : strategies) {
    ExperimentConfig config;
    config.topology_spec =
        parse_topology_spec("rgg(n=128, radius=0.15, seed=5)");
    config.num_files = 40;
    config.cache_size = 5;
    config.popularity.kind = PopularityKind::Uniform;
    config.strategy_spec = parse_strategy_spec(strategy);
    config.seed = 0x7A11;

    const RunResult via_registry = run_simulation(config, 0);
    GraphTopology::Options forced;
    forced.dense_threshold = std::size_t{1} << 30;
    const auto dense_forced = make_rgg_topology(128, 0.15, 5, forced);
    ASSERT_TRUE(dense_forced->oracle().exact());
    const RunResult via_forced =
        SimulationContext(config, dense_forced).run(0);
    EXPECT_EQ(via_registry.max_load, via_forced.max_load) << strategy;
    EXPECT_EQ(via_registry.comm_cost, via_forced.comm_cost) << strategy;
    EXPECT_EQ(via_registry.fallbacks, via_forced.fallbacks) << strategy;
    EXPECT_EQ(via_registry.requests, via_forced.requests) << strategy;
  }
}

// Golden masters for all four strategies on the dense-fallback rgg and the
// closed-form tree: locked when the scalable distance layer landed; the
// exact-fallback path below the oracle threshold must keep reproducing the
// pre-oracle dense-matrix behavior bit-for-bit.
struct Golden {
  const char* topology;
  const char* strategy;
  Load max_load;
  double comm_cost;
};

constexpr Golden kDenseFallbackGoldens[] = {
    {"rgg(n=256, radius=0.12, seed=9)", "least-loaded(r=8)", 2, 2.3125},
    {"rgg(n=256, radius=0.12, seed=9)", "prox-weighted(d=2, alpha=1)", 3,
     4.734375},
    {"tree(branching=3, depth=4)", "least-loaded(r=8)", 2,
     4.2809917355371905},
    {"tree(branching=3, depth=4)", "prox-weighted(d=2, alpha=1)", 3,
     5.7272727272727275},
};

TEST(ScalableTopology, DenseFallbackGoldenMasters) {
  for (const Golden& golden : kDenseFallbackGoldens) {
    ExperimentConfig config;
    config.topology_spec = parse_topology_spec(golden.topology);
    config.num_files = 60;
    config.cache_size = 5;
    config.popularity.kind = PopularityKind::Uniform;
    config.strategy_spec = parse_strategy_spec(golden.strategy);
    config.seed = 0x70F0;
    const RunResult result = run_simulation(config, 0);
    const std::string label =
        std::string(golden.topology) + " / " + golden.strategy;
    EXPECT_EQ(result.max_load, golden.max_load) << label;
    EXPECT_DOUBLE_EQ(result.comm_cost, golden.comm_cost) << label;
  }
}

TEST(ScalableTopology, BallWalkReplicaQueriesAgreeWithBruteForce) {
  const auto sparse = make_rgg_topology(150, 0.14, 23, sparse_exact(150));
  ASSERT_TRUE(sparse->prefers_local_enumeration());
  const std::size_t n = sparse->size();
  Rng rng(99);
  const Placement placement = Placement::generate(
      n, Popularity::uniform(30), 4,
      PlacementMode::ProportionalWithReplacement, rng);
  const ReplicaIndex index(*sparse, placement);

  for (NodeId u = 0; u < n; u += 11) {
    for (FileId j = 0; j < placement.num_files(); j += 7) {
      for (const Hop r : {Hop{0}, Hop{1}, Hop{3}, Hop{6}}) {
        std::size_t brute = 0;
        for (const NodeId v : placement.replicas(j)) {
          if (sparse->distance(u, v) <= r) ++brute;
        }
        EXPECT_EQ(index.count_replicas_within(u, j, r), brute)
            << "u=" << u << " j=" << j << " r=" << r;
      }
      // And the nearest pair of algorithms still agree on the ball-walk
      // topology (exact distances inside the budget ball).
      Rng a(7);
      Rng b(7);
      const NearestResult by_scan = index.nearest_by_scan(u, j, a);
      const NearestResult by_shells = index.nearest_by_shells(u, j, b);
      if (by_scan.server != kInvalidNode) {
        EXPECT_EQ(by_scan.distance, by_shells.distance);
        EXPECT_EQ(by_scan.ties, by_shells.ties);
      }
    }
  }
}

TEST(ScalableTopology, RadiusQueriesBeyondTheHorizonNeverAdmitFarReplicas) {
  // A *small* ball budget forces radius queries past the per-source
  // horizon onto the replica-list scan, where distances may be landmark
  // upper bounds: reported replicas must still all be truly within r
  // (bounds only ever exclude), and inside the horizon the walk must be
  // exhaustive and exact. The horizon ball itself never exceeds the
  // budget — the scalability guarantee on hub-heavy graphs.
  GraphTopology::Options small;
  small.dense_threshold = 0;
  small.distance_ball_budget = 16;
  const auto sparse = make_rgg_topology(150, 0.14, 23, small);
  const auto dense = make_rgg_topology(150, 0.14, 23);
  ASSERT_TRUE(sparse->prefers_local_enumeration());
  const std::size_t n = sparse->size();
  Rng rng(99);
  const Placement placement = Placement::generate(
      n, Popularity::uniform(30), 4,
      PlacementMode::ProportionalWithReplacement, rng);
  const ReplicaIndex index(*sparse, placement);

  for (NodeId u = 0; u < n; u += 13) {
    const Hop horizon = sparse->local_enumeration_horizon(u);
    EXPECT_LE(sparse->ball_size(u, horizon), 16u)
        << "the horizon ball must respect the budget (u=" << u << ")";
    for (FileId j = 0; j < placement.num_files(); j += 11) {
      for (const Hop r : {Hop{1}, horizon, static_cast<Hop>(horizon + 2),
                          static_cast<Hop>(dense->diameter() - 1)}) {
        std::map<NodeId, Hop> reported;
        index.for_each_replica_within(u, j, r,
                                      [&](NodeId v, Hop d) { reported[v] = d; });
        std::size_t truly_within = 0;
        for (const NodeId v : placement.replicas(j)) {
          if (dense->distance(u, v) <= r) ++truly_within;
        }
        for (const auto& [v, d] : reported) {
          EXPECT_LE(dense->distance(u, v), r)
              << "a replica beyond r was admitted (u=" << u << ", v=" << v
              << ", r=" << r << ")";
          EXPECT_GE(d, dense->distance(u, v)) << "d may never underestimate";
        }
        if (r <= horizon) {
          EXPECT_EQ(reported.size(), truly_within)
              << "inside the horizon the ball walk is exhaustive (u=" << u
              << ", j=" << j << ", r=" << r << ")";
        } else {
          EXPECT_LE(reported.size(), truly_within);
        }
      }
    }
  }
}

TEST(ScalableTopology, HyperbolicIsDeterministicConnectedAndScaleFree) {
  const auto a = make_hyperbolic_topology(300, 8.0, 0.75, 42);
  const auto b = make_hyperbolic_topology(300, 8.0, 0.75, 42);
  EXPECT_EQ(a->graph().edges(), b->graph().edges())
      << "same seed must rebuild the identical graph";
  const auto c = make_hyperbolic_topology(300, 8.0, 0.75, 43);
  EXPECT_NE(a->graph().edges(), c->graph().edges());

  // Connected by construction (hub stitching) — materialization would
  // throw otherwise — and the degree sequence is heavy-tailed: the top
  // node dwarfs the median, unlike any lattice/ring/tree in the catalog.
  const std::size_t n = a->size();
  std::vector<std::size_t> degrees(n);
  for (NodeId u = 0; u < n; ++u) degrees[u] = a->neighbors(u).size();
  std::sort(degrees.begin(), degrees.end());
  EXPECT_GE(degrees.back(), 4 * std::max<std::size_t>(1, degrees[n / 2]))
      << "hub degree should dwarf the median in a scale-free graph";
  EXPECT_LE(a->diameter(), 20u) << "poly-log diameter regime";
}

TEST(ScalableTopology, HyperbolicGoldenMaster) {
  // Locked at first materialization of the hyperbolic generator; the
  // (theta, radius-quantile) draw order and the edge rule must never
  // drift — workload goldens on this topology inherit from it.
  ExperimentConfig config;
  config.topology_spec =
      parse_topology_spec("hyperbolic(n=256, degree=8, alpha=0.75, seed=7)");
  config.num_files = 60;
  config.cache_size = 5;
  config.popularity.kind = PopularityKind::Uniform;
  config.seed = 0x70F0;
  for (const char* strategy : {"nearest", "two-choice(r=5)"}) {
    config.strategy_spec = parse_strategy_spec(strategy);
    const RunResult first = run_simulation(config, 0);
    const RunResult again = run_simulation(config, 0);
    EXPECT_EQ(first.max_load, again.max_load) << strategy;
    EXPECT_DOUBLE_EQ(first.comm_cost, again.comm_cost) << strategy;
  }
  config.strategy_spec = parse_strategy_spec("nearest");
  const RunResult golden = run_simulation(config, 0);
  EXPECT_EQ(golden.requests, 256u);
  EXPECT_EQ(golden.max_load, 9u);
  EXPECT_DOUBLE_EQ(golden.comm_cost, 1.93359375);
}

TEST(ScalableTopology, ShardedEngineRunsCleanOverTheSparseOracle) {
  // The split-phase engine proposes off-thread: concurrent distance and
  // shell queries against the mutex-guarded sparse row cache (TSan covers
  // the interleavings in the sanitizer CI job). Results must be
  // rerun-stable under the sharded seed contract.
  ExperimentConfig config;
  config.topology_spec =
      parse_topology_spec("rgg(n=200, radius=0.12, seed=9)");
  config.num_files = 40;
  config.cache_size = 5;
  config.popularity.kind = PopularityKind::Uniform;
  config.strategy_spec = parse_strategy_spec("two-choice(r=5)");
  config.seed = 0xBEEF;
  config.threads = 3;
  const auto sparse = make_rgg_topology(200, 0.12, 9, sparse_exact(200));
  const RunResult first = SimulationContext(config, sparse).run(0);
  const RunResult again = SimulationContext(config, sparse).run(0);
  EXPECT_EQ(first.requests, 200u);
  EXPECT_EQ(first.max_load, again.max_load);
  EXPECT_DOUBLE_EQ(first.comm_cost, again.comm_cost);
}

}  // namespace
}  // namespace proxcache
