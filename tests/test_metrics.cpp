// Tests for core/metrics: accounting identities of LoadTracker and the
// LoadView polymorphism the strategies rely on.
#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace proxcache {
namespace {

TEST(LoadTracker, StartsEmpty) {
  const LoadTracker tracker(5);
  EXPECT_EQ(tracker.max_load(), 0u);
  EXPECT_EQ(tracker.assigned(), 0u);
  EXPECT_EQ(tracker.comm_cost(), 0.0);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(tracker.load(u), 0u);
}

TEST(LoadTracker, AssignUpdatesAllCounters) {
  LoadTracker tracker(4);
  tracker.assign(2, 3);
  tracker.assign(2, 5);
  tracker.assign(0, 0);
  EXPECT_EQ(tracker.load(2), 2u);
  EXPECT_EQ(tracker.load(0), 1u);
  EXPECT_EQ(tracker.max_load(), 2u);
  EXPECT_EQ(tracker.assigned(), 3u);
  EXPECT_EQ(tracker.total_hops(), 8u);
  EXPECT_NEAR(tracker.comm_cost(), 8.0 / 3.0, 1e-12);
}

TEST(LoadTracker, SumOfLoadsEqualsAssigned) {
  LoadTracker tracker(10);
  for (int i = 0; i < 137; ++i) {
    tracker.assign(static_cast<NodeId>(i % 10), 1);
  }
  std::uint64_t sum = 0;
  for (const Load l : tracker.loads()) sum += l;
  EXPECT_EQ(sum, tracker.assigned());
  EXPECT_EQ(sum, 137u);
}

TEST(LoadTracker, DropAndFallbackCounters) {
  LoadTracker tracker(3);
  tracker.drop();
  tracker.drop();
  tracker.note_fallback();
  EXPECT_EQ(tracker.dropped(), 2u);
  EXPECT_EQ(tracker.fallbacks(), 1u);
  EXPECT_EQ(tracker.assigned(), 0u);
}

TEST(LoadTracker, HistogramCountsServersByLoad) {
  LoadTracker tracker(6);
  tracker.assign(0, 1);
  tracker.assign(0, 1);
  tracker.assign(1, 1);
  const Histogram histogram = tracker.load_histogram();
  EXPECT_EQ(histogram.total(), 6u);       // six servers
  EXPECT_EQ(histogram.at(0), 4u);         // four untouched
  EXPECT_EQ(histogram.at(1), 1u);
  EXPECT_EQ(histogram.at(2), 1u);
  EXPECT_EQ(histogram.max_value(), 2u);
}

TEST(LoadTracker, RejectsBadIds) {
  LoadTracker tracker(2);
  EXPECT_THROW(tracker.assign(2, 0), std::invalid_argument);
  EXPECT_THROW(LoadTracker(0), std::invalid_argument);
}

TEST(LoadView, PolymorphicReadThroughBase) {
  LoadTracker tracker(3);
  tracker.assign(1, 0);
  const LoadView& view = tracker;
  EXPECT_EQ(view.load(0), 0u);
  EXPECT_EQ(view.load(1), 1u);
}

namespace {
class FakeView final : public LoadView {
 public:
  [[nodiscard]] Load load(NodeId server) const override {
    return server * 10;
  }
};
}  // namespace

TEST(LoadView, CustomImplementationsPlugIn) {
  const FakeView view;
  const LoadView& base = view;
  EXPECT_EQ(base.load(3), 30u);
}

}  // namespace
}  // namespace proxcache
