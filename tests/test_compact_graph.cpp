// Tests for graph/compact_graph: canonicalization, adjacency structure and
// degree statistics.
#include "graph/compact_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace proxcache {
namespace {

TEST(CompactGraph, CanonicalizesEdges) {
  // Self loops dropped, duplicates merged, orientation normalized.
  const CompactGraph graph = CompactGraph::from_edges(
      4, {{1, 0}, {0, 1}, {2, 2}, {3, 1}, {1, 3}, {1, 3}});
  EXPECT_EQ(graph.num_vertices(), 4u);
  EXPECT_EQ(graph.num_edges(), 2u);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 0));
  EXPECT_TRUE(graph.has_edge(1, 3));
  EXPECT_FALSE(graph.has_edge(2, 2));
  EXPECT_FALSE(graph.has_edge(0, 2));
}

TEST(CompactGraph, NeighborsSortedAndSymmetric) {
  const CompactGraph graph =
      CompactGraph::from_edges(5, {{0, 1}, {0, 2}, {0, 4}, {2, 3}});
  const auto n0 = graph.neighbors(0);
  EXPECT_TRUE(std::is_sorted(n0.begin(), n0.end()));
  EXPECT_EQ(n0.size(), 3u);
  for (std::uint32_t u = 0; u < 5; ++u) {
    for (const std::uint32_t v : graph.neighbors(u)) {
      EXPECT_TRUE(graph.has_edge(v, u));
    }
  }
}

TEST(CompactGraph, DegreeMatchesNeighborCount) {
  const CompactGraph graph =
      CompactGraph::from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                                   {5, 0}, {0, 3}});
  for (std::uint32_t u = 0; u < 6; ++u) {
    EXPECT_EQ(graph.degree(u), graph.neighbors(u).size());
  }
  std::size_t degree_sum = 0;
  for (std::uint32_t u = 0; u < 6; ++u) degree_sum += graph.degree(u);
  EXPECT_EQ(degree_sum, 2 * graph.num_edges());
}

TEST(CompactGraph, DegreeStats) {
  const CompactGraph graph =
      CompactGraph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  const DegreeStats stats = graph.degree_stats();
  EXPECT_EQ(stats.min_degree, 1u);
  EXPECT_EQ(stats.max_degree, 3u);
  EXPECT_NEAR(stats.mean_degree, 1.5, 1e-12);
  EXPECT_NEAR(stats.ratio, 3.0, 1e-12);
}

TEST(CompactGraph, IsolatedVertexGivesInfiniteRatio) {
  const CompactGraph graph = CompactGraph::from_edges(3, {{0, 1}});
  const DegreeStats stats = graph.degree_stats();
  EXPECT_EQ(stats.min_degree, 0u);
  EXPECT_TRUE(std::isinf(stats.ratio));
}

TEST(CompactGraph, RegularGraphHasUnitRatio) {
  // 4-cycle: all degrees 2.
  const CompactGraph graph =
      CompactGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_NEAR(graph.degree_stats().ratio, 1.0, 1e-12);
}

TEST(CompactGraph, EdgeListIsCanonicallySorted) {
  const CompactGraph graph =
      CompactGraph::from_edges(4, {{3, 2}, {1, 0}, {2, 0}});
  const auto& edges = graph.edges();
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (const auto& [a, b] : edges) EXPECT_LT(a, b);
}

TEST(CompactGraph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(CompactGraph::from_edges(2, {{0, 2}}), std::invalid_argument);
}

TEST(CompactGraph, EmptyGraph) {
  const CompactGraph graph = CompactGraph::from_edges(3, {});
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_EQ(graph.degree(0), 0u);
}

}  // namespace
}  // namespace proxcache
