// Tests for the Walker/Vose alias sampler: lossless table construction and
// distributional correctness under chi-square.
#include "random/alias_sampler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/gof.hpp"

namespace proxcache {
namespace {

TEST(AliasSampler, RejectsBadWeights) {
  EXPECT_THROW(AliasSampler({}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({1.0, -0.5}), std::invalid_argument);
}

TEST(AliasSampler, EncodedPmfMatchesNormalizedWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  const AliasSampler sampler(weights);
  const std::vector<double> pmf = sampler.encoded_pmf();
  ASSERT_EQ(pmf.size(), 4u);
  const double total = 10.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(pmf[i], weights[i] / total, 1e-12);
  }
}

TEST(AliasSampler, SingleCategoryAlwaysSampled) {
  const AliasSampler sampler({3.14});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(AliasSampler, ZeroWeightCategoriesNeverSampled) {
  const AliasSampler sampler({0.0, 1.0, 0.0, 1.0, 0.0});
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const auto s = sampler.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3) << s;
  }
}

TEST(AliasSampler, UniformWeightsChiSquare) {
  const std::size_t k = 10;
  const AliasSampler sampler(std::vector<double>(k, 1.0));
  Rng rng(3);
  std::vector<std::uint64_t> counts(k, 0);
  for (int i = 0; i < 100000; ++i) ++counts[sampler.sample(rng)];
  EXPECT_GT(chi_square_pvalue(counts, std::vector<double>(k, 0.1)), 1e-4);
}

TEST(AliasSampler, SkewedWeightsChiSquare) {
  const std::vector<double> weights = {8.0, 4.0, 2.0, 1.0, 1.0};
  const AliasSampler sampler(weights);
  Rng rng(4);
  std::vector<std::uint64_t> counts(weights.size(), 0);
  for (int i = 0; i < 160000; ++i) ++counts[sampler.sample(rng)];
  std::vector<double> expected;
  for (const double w : weights) expected.push_back(w / 16.0);
  EXPECT_GT(chi_square_pvalue(counts, expected), 1e-4);
}

TEST(AliasSampler, ExtremeSkewStillCoversRareCategory) {
  // p(rare) = 1e-4; 200k draws should see it but not often.
  std::vector<double> weights(2, 0.0);
  weights[0] = 9999.0;
  weights[1] = 1.0;
  const AliasSampler sampler(weights);
  Rng rng(5);
  int rare = 0;
  for (int i = 0; i < 200000; ++i) rare += sampler.sample(rng) == 1 ? 1 : 0;
  EXPECT_GT(rare, 0);
  EXPECT_LT(rare, 100);  // E = 20
}

TEST(AliasSampler, LargeCategoryCountEncodesExactly) {
  std::vector<double> weights(5000);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 + static_cast<double>(i % 13);
  }
  const AliasSampler sampler(weights);
  const std::vector<double> pmf = sampler.encoded_pmf();
  double total = 0.0;
  for (const double w : weights) total += w;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    ASSERT_NEAR(pmf[i], weights[i] / total, 1e-9) << "category " << i;
  }
}

}  // namespace
}  // namespace proxcache
