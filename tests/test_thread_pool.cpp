// Tests for the parallel substrate: task execution, result ordering,
// exception propagation and destruction semantics.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace proxcache {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionsSurfaceAtGet) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // Pool still usable afterwards.
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    // Futures discarded; destructor must still run everything queued.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelMap, ResultsInIndexOrder) {
  ThreadPool pool(4);
  const auto results =
      parallel_map(pool, 64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ParallelMap, EmptyRangeYieldsEmptyVector) {
  ThreadPool pool(2);
  const auto results = parallel_map(pool, 0, [](std::size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(ParallelMap, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_map(pool, 8,
                            [](std::size_t i) -> int {
                              if (i == 3) throw std::logic_error("boom");
                              return 0;
                            }),
               std::logic_error);
}

TEST(ParallelFor, ExecutesEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 100, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelMap, MoveOnlyResultsSupported) {
  ThreadPool pool(2);
  const auto results = parallel_map(pool, 4, [](std::size_t i) {
    return std::make_unique<int>(static_cast<int>(i));
  });
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(*results[i], static_cast<int>(i));
  }
}

}  // namespace
}  // namespace proxcache
