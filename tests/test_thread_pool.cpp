// Tests for the parallel substrate: task execution, result ordering,
// exception propagation and destruction semantics.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace proxcache {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionsSurfaceAtGet) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // Pool still usable afterwards.
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    // Futures discarded; destructor must still run everything queued.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelMap, ResultsInIndexOrder) {
  ThreadPool pool(4);
  const auto results =
      parallel_map(pool, 64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ParallelMap, EmptyRangeYieldsEmptyVector) {
  ThreadPool pool(2);
  const auto results = parallel_map(pool, 0, [](std::size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(ParallelMap, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_map(pool, 8,
                            [](std::size_t i) -> int {
                              if (i == 3) throw std::logic_error("boom");
                              return 0;
                            }),
               std::logic_error);
}

TEST(ParallelFor, ExecutesEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 100, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelMap, ChunkingCoversCountsNotDivisibleByWorkers) {
  ThreadPool pool(3);
  const auto results =
      parallel_map(pool, 97, [](std::size_t i) { return i + 1; });
  ASSERT_EQ(results.size(), 97u);
  for (std::size_t i = 0; i < 97; ++i) EXPECT_EQ(results[i], i + 1);
}

TEST(ParallelMap, CountSmallerThanWorkersStillCompletes) {
  ThreadPool pool(8);
  const auto results =
      parallel_map(pool, 3, [](std::size_t i) { return 10 * i; });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[2], 20u);
}

// Concurrent failures: when many tasks throw simultaneously across all
// workers, parallel_map must surface exactly one exception, leak nothing,
// and leave the pool fully usable.
TEST(ParallelMap, ConcurrentFailuresPropagateOneException) {
  ThreadPool pool(4);
  std::atomic<int> attempts{0};
  EXPECT_THROW(parallel_map(pool, 256,
                            [&attempts](std::size_t i) -> int {
                              ++attempts;
                              throw std::runtime_error(
                                  "task " + std::to_string(i) + " failed");
                            }),
               std::runtime_error);
  EXPECT_GT(attempts.load(), 0);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

// Deterministic choice among concurrent failures: the exception of the
// lowest-indexed failing chunk wins, so index 0's exception type is what
// callers observe even when later chunks fail with something else.
TEST(ParallelMap, LowestIndexedChunkExceptionWins) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_map(pool, 64,
                            [](std::size_t i) -> int {
                              if (i == 0) throw std::logic_error("first");
                              throw std::runtime_error("later");
                            }),
               std::logic_error);
}

// Fail-fast per chunk is part of the contract: a throwing index skips the
// rest of its own chunk, while every other chunk still runs to completion.
TEST(ParallelFor, FailingChunkSkipsItsRemainingIndicesOnly) {
  ThreadPool pool(2);  // 8 chunks over 64 indices -> chunk 0 = [0, 8)
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(parallel_for(pool, 64,
                            [&hits](std::size_t i) {
                              if (i == 1) throw std::runtime_error("boom");
                              ++hits[i];
                            }),
               std::runtime_error);
  EXPECT_EQ(hits[0].load(), 1) << "indices before the failure still ran";
  for (std::size_t i = 2; i < 8; ++i) {
    EXPECT_EQ(hits[i].load(), 0)
        << "index " << i << " shares the failing chunk and must be skipped";
  }
  for (std::size_t i = 8; i < 64; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "other chunks must run to completion";
  }
}

TEST(ParallelFor, PropagatesExceptionsUnderConcurrentFailures) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 128,
                            [](std::size_t i) {
                              if (i % 2 == 0) {
                                throw std::invalid_argument("even index");
                              }
                            }),
               std::invalid_argument);
  // Pool survives the storm.
  std::atomic<int> counter{0};
  parallel_for(pool, 32, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 32);
}

TEST(ParallelMap, MoveOnlyResultsSupported) {
  ThreadPool pool(2);
  const auto results = parallel_map(pool, 4, [](std::size_t i) {
    return std::make_unique<int>(static_cast<int>(i));
  });
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(*results[i], static_cast<int>(i));
  }
}

}  // namespace
}  // namespace proxcache
