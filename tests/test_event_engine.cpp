// Tests for the discrete-event dynamic engine: validation, evolving-cache
// behavior (misses, inserts, evictions, cache-along-return-path), hop
// latency, windowed metric accounting, and the windowed collector itself.
#include "event/engine.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "stats/windowed.hpp"

namespace proxcache {
namespace {

DynamicConfig base_config() {
  DynamicConfig config;
  config.network.num_nodes = 100;
  config.network.num_files = 40;
  config.network.cache_size = 5;
  config.network.seed = 5;
  config.network.strategy_spec = parse_strategy_spec("two-choice");
  config.network.trace.arrival_rate = 0.5;
  config.service_rate = 1.0;
  config.horizon = 200.0;
  config.warmup_fraction = 0.25;
  config.metric_windows = 8;
  return config;
}

TEST(EventEngine, ValidatesParameters) {
  DynamicConfig config = base_config();
  config.network.trace.arrival_rate = 0.0;
  EXPECT_THROW(run_dynamic(config, 1), std::invalid_argument);

  config = base_config();
  config.hop_latency = -0.5;
  EXPECT_THROW(run_dynamic(config, 1), std::invalid_argument);

  config = base_config();
  config.metric_windows = 0;
  EXPECT_THROW(run_dynamic(config, 1), std::invalid_argument);

  config = base_config();
  config.cache_policy = parse_cache_policy_spec("bogus");
  EXPECT_THROW(run_dynamic(config, 1), std::invalid_argument);

  // Live queue lengths cannot honor a staleness request.
  config = base_config();
  config.network.strategy_spec = parse_strategy_spec("two-choice(stale=64)");
  EXPECT_THROW(run_dynamic(config, 1), std::invalid_argument);
}

TEST(EventEngine, EvolvingPolicyChurnsTheCache) {
  DynamicConfig config = base_config();
  // Capacity below the placement footprint trims at startup and keeps
  // churning: misses, fetches, inserts, and evictions must all appear.
  config.cache_policy = parse_cache_policy_spec("lru(capacity=2)");
  const DynamicResult result = run_dynamic(config, 7);
  EXPECT_GT(result.queueing.completed, 1000u);
  EXPECT_GT(result.misses, 0u);
  EXPECT_GT(result.inserts, 0u);
  EXPECT_GT(result.evictions, 0u);
  EXPECT_GT(result.hit_rate, 0.0);
  EXPECT_LT(result.hit_rate, 1.0);
  // Every completion consulted the cache exactly once (lookups cover the
  // whole run; `completed` only counts past warmup).
  EXPECT_GE(result.hits + result.misses, result.queueing.completed);
}

TEST(EventEngine, HopLatencyStretchesSojourns) {
  DynamicConfig fast = base_config();
  DynamicConfig slow = base_config();
  slow.hop_latency = 0.5;
  const DynamicResult a = run_dynamic(fast, 3);
  const DynamicResult b = run_dynamic(slow, 3);
  ASSERT_GT(a.queueing.completed, 0u);
  ASSERT_GT(b.queueing.completed, 0u);
  // Sojourn now includes forward and return propagation over >= 0 hops;
  // with mean hops well above zero the shift is unmissable.
  EXPECT_GT(b.queueing.mean_sojourn, a.queueing.mean_sojourn);
  EXPECT_GT(b.p99_sojourn, a.p99_sojourn);
}

TEST(EventEngine, CacheOnPathAddsOriginInserts) {
  DynamicConfig base = base_config();
  base.cache_policy = parse_cache_policy_spec("lru(capacity=3)");
  DynamicConfig on_path = base;
  on_path.cache_on_path = true;
  const DynamicResult without = run_dynamic(base, 9);
  const DynamicResult with = run_dynamic(on_path, 9);
  EXPECT_GT(with.inserts, without.inserts);
}

TEST(EventEngine, WindowsPartitionTheRun) {
  DynamicConfig config = base_config();
  config.cache_policy = parse_cache_policy_spec("lfu(capacity=3)");
  const DynamicResult result = run_dynamic(config, 11);
  ASSERT_EQ(result.windows.size(), config.metric_windows);

  std::uint64_t arrivals = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double prev_end = 0.0;
  for (const WindowMetrics& w : result.windows) {
    EXPECT_EQ(w.t_begin, prev_end);
    EXPECT_GT(w.t_end, w.t_begin);
    prev_end = w.t_end;
    arrivals += w.arrivals;
    hits += w.hits;
    misses += w.misses;
    if (w.hits + w.misses > 0) {
      EXPECT_GE(w.hit_rate, 0.0);
      EXPECT_LE(w.hit_rate, 1.0);
    }
    if (w.completed > 0) {
      EXPECT_GT(w.p99_sojourn, 0.0);
      EXPECT_GT(w.mean_sojourn, 0.0);
    }
  }
  EXPECT_EQ(prev_end, config.horizon);
  EXPECT_EQ(arrivals, result.admitted);
  EXPECT_EQ(hits, result.hits);
  EXPECT_EQ(misses, result.misses);
}

TEST(EventEngine, FlashCrowdRunsDeterministically) {
  DynamicConfig config = base_config();
  config.network.trace.kind = TraceKind::FlashCrowd;
  config.cache_policy = parse_cache_policy_spec("ewma(capacity=3, decay=0.3)");
  const DynamicResult a = run_dynamic(config, 13);
  const DynamicResult b = run_dynamic(config, 13);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.queueing.mean_sojourn, b.queueing.mean_sojourn);
  EXPECT_EQ(a.p99_sojourn, b.p99_sojourn);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].arrivals, b.windows[i].arrivals);
    EXPECT_EQ(a.windows[i].hit_rate, b.windows[i].hit_rate);
    EXPECT_EQ(a.windows[i].p99_sojourn, b.windows[i].p99_sojourn);
  }
}

TEST(WindowedCollector, BinsByTimeWithClamping) {
  WindowedCollector collector(10.0, 4);
  EXPECT_EQ(collector.windows(), 4u);
  EXPECT_EQ(collector.width(), 2.5);
  collector.record_arrival(-1.0);  // clamps into the first window
  collector.record_arrival(0.0);
  collector.record_arrival(2.5);   // exactly on a boundary: second window
  collector.record_arrival(9.9);
  collector.record_arrival(25.0);  // past the horizon: last window
  collector.record_lookup(1.0, true);
  collector.record_lookup(1.5, false);
  collector.record_completion(8.0, 3.0);
  collector.record_queue_peak(3.0, 7);

  const auto series = collector.finalize();
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0].arrivals, 2u);
  EXPECT_EQ(series[1].arrivals, 1u);
  EXPECT_EQ(series[3].arrivals, 2u);
  EXPECT_EQ(series[0].hit_rate, 0.5);
  EXPECT_EQ(series[1].max_queue, 7u);
  EXPECT_EQ(series[3].completed, 1u);
  EXPECT_EQ(series[3].mean_sojourn, 3.0);
  EXPECT_EQ(series[3].p99_sojourn, 3.0);
}

TEST(WindowedCollector, RejectsDegenerateShapes) {
  EXPECT_THROW(WindowedCollector(0.0, 4), std::invalid_argument);
  EXPECT_THROW(WindowedCollector(10.0, 0), std::invalid_argument);
}

TEST(WindowedCollector, NearestRankQuantile) {
  std::vector<double> values(100);
  std::iota(values.begin(), values.end(), 1.0);  // 1..100
  EXPECT_EQ(sample_quantile(values, 0.99), 99.0);
  EXPECT_EQ(sample_quantile(values, 0.5), 50.0);
  EXPECT_EQ(sample_quantile(values, 1.0), 100.0);
  std::vector<double> one{42.0};
  EXPECT_EQ(sample_quantile(one, 0.99), 42.0);
  std::vector<double> empty;
  EXPECT_EQ(sample_quantile(empty, 0.99), 0.0);
}

}  // namespace
}  // namespace proxcache
