// Tests for the strategy registry (strategy/registry.hpp): catalog
// contents, spec validation (unknown names/keys, out-of-range values),
// factory wiring, and behavioral sanity of the two extension strategies
// the open API enables.
#include "strategy/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/simulation.hpp"
#include "scenario/registry.hpp"
#include "strategy/least_loaded.hpp"
#include "strategy/prox_weighted.hpp"

namespace proxcache {
namespace {

void expect_invalid(const StrategySpec& spec, const std::string& needle) {
  try {
    StrategyRegistry::built_ins().validate(spec);
    FAIL() << "expected spec '" << spec.to_string() << "' to be rejected";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find(needle), std::string::npos)
        << "message '" << message << "' does not mention '" << needle << "'";
  }
}

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 0.9;
  config.seed = 20250729;
  return config;
}

void expect_same_result(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.max_load, b.max_load);
  EXPECT_EQ(a.comm_cost, b.comm_cost);  // bitwise, deliberately
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.resampled, b.resampled);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.load_histogram.counts(), b.load_histogram.counts());
}

TEST(StrategyRegistry, BuiltInsCoverPaperAndExtensions) {
  const StrategyRegistry& registry = StrategyRegistry::built_ins();
  EXPECT_GE(registry.all().size(), 4u);
  for (const char* name :
       {"nearest", "two-choice", "least-loaded", "prox-weighted"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.find("no-such-strategy"), nullptr);
}

TEST(StrategyRegistry, AtThrowsListingKnownNames) {
  try {
    (void)StrategyRegistry::built_ins().at("bogus");
    FAIL() << "expected unknown strategy to throw";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("bogus"), std::string::npos);
    EXPECT_NE(message.find("two-choice"), std::string::npos);
    EXPECT_NE(message.find("least-loaded"), std::string::npos);
  }
}

TEST(StrategyRegistry, ValidateRejectsUnknownName) {
  expect_invalid(parse_strategy_spec("three-choice(d=3)"),
                 "unknown strategy 'three-choice'");
}

TEST(StrategyRegistry, ValidateRejectsUnknownParamKey) {
  expect_invalid(parse_strategy_spec("nearest(r=4)"),
                 "does not take parameter 'r'");
  expect_invalid(parse_strategy_spec("two-choice(alpha=1)"),
                 "does not take parameter 'alpha'");
  expect_invalid(parse_strategy_spec("least-loaded(beta=0.5)"),
                 "does not take parameter 'beta'");
}

TEST(StrategyRegistry, ValidateRejectsFractionalIntegerParams) {
  // Counts/radii/periods silently truncated by the factories would make
  // the reported spec lie about what was simulated; reject them instead.
  expect_invalid(parse_strategy_spec("two-choice(r=2.7)"),
                 "'r' = 2.7 must be an integer");
  expect_invalid(parse_strategy_spec("two-choice(d=2.9)"),
                 "must be an integer");
  expect_invalid(parse_strategy_spec("two-choice(wr=0.5)"),
                 "must be an integer");
  expect_invalid(parse_strategy_spec("two-choice(fallback=1.5)"),
                 "must be an integer");
  expect_invalid(parse_strategy_spec("least-loaded(stale=1.5)"),
                 "must be an integer");
  // inf stays legal for unbounded radii, and genuinely real-valued
  // parameters still accept fractions.
  StrategyRegistry::built_ins().validate(
      parse_strategy_spec("least-loaded(r=inf)"));
  StrategyRegistry::built_ins().validate(
      parse_strategy_spec("prox-weighted(alpha=1.5)"));
}

TEST(StrategyRegistry, ValidateRejectsOutOfRangeValues) {
  expect_invalid(parse_strategy_spec("two-choice(d=0)"), "'d' = 0");
  expect_invalid(parse_strategy_spec("two-choice(d=9)"), "'d' = 9");
  expect_invalid(parse_strategy_spec("two-choice(beta=1.5)"), "'beta' = 1.5");
  expect_invalid(parse_strategy_spec("two-choice(r=-1)"), "'r' = -1");
  expect_invalid(parse_strategy_spec("two-choice(fallback=7)"),
                 "'fallback' = 7");
  expect_invalid(parse_strategy_spec("prox-weighted(alpha=-0.5)"),
                 "'alpha' = -0.5");
  expect_invalid(parse_strategy_spec("two-choice(stale=0)"), "'stale' = 0");
}

TEST(StrategyRegistry, ValidateAcceptsEveryDefaultedEntry) {
  for (const StrategyEntry& entry : StrategyRegistry::built_ins().all()) {
    StrategySpec spec;
    spec.name = entry.name;
    StrategyRegistry::built_ins().validate(spec);  // must not throw
  }
}

TEST(StrategyRegistry, WithDefaultsFillsDeclaredRuleValues) {
  const StrategyRegistry& registry = StrategyRegistry::built_ins();
  for (const StrategyEntry& entry : registry.all()) {
    StrategySpec bare;
    bare.name = entry.name;
    const StrategySpec filled = registry.with_defaults(bare);
    for (const StrategyParamRule& rule : entry.params) {
      EXPECT_TRUE(filled.has(rule.key)) << entry.name << "." << rule.key;
      EXPECT_EQ(filled.get_or(rule.key, -1.0), rule.default_value)
          << entry.name << "." << rule.key;
    }
    // Explicit values win over the declared default.
    if (!entry.params.empty()) {
      StrategySpec custom = bare;
      const StrategyParamRule& rule = entry.params.front();
      custom.params[rule.key] = rule.min_value;
      EXPECT_EQ(registry.with_defaults(custom).get_or(rule.key, -1.0),
                rule.min_value);
    }
  }
}

// The declared rule defaults are what the factories actually run: a bare
// spec and a spec with every rule default written out must build the same
// strategy (compared via the name string, which embeds the live knobs).
TEST(StrategyRegistry, DeclaredDefaultsMatchEffectiveDefaults) {
  const ExperimentConfig config = small_config();
  const Lattice lattice =
      Lattice::from_node_count(config.num_nodes, config.wrap);
  const Popularity popularity =
      config.popularity.materialize(config.num_files);
  Rng rng(13);
  const Placement placement =
      Placement::generate(config.num_nodes, popularity, config.cache_size,
                          config.placement_mode, rng);
  const ReplicaIndex index(lattice, placement);
  const StrategyRegistry& registry = StrategyRegistry::built_ins();
  for (const StrategyEntry& entry : registry.all()) {
    // Cross-tier strategies refuse a flat lattice by design; their
    // construction is exercised by the tier suites instead.
    if (entry.requires_tiers) continue;
    StrategySpec bare;
    bare.name = entry.name;
    EXPECT_EQ(registry.make(bare, index, lattice, config)->name(),
              registry.make(registry.with_defaults(bare), index, lattice,
                            config)->name())
        << entry.name;
  }
}

TEST(StrategyRegistry, AddRejectsDuplicatesAndMissingFactories) {
  StrategyRegistry registry = StrategyRegistry::with_built_ins();
  StrategyEntry duplicate;
  duplicate.name = "nearest";
  duplicate.factory = [](const StrategySpec&, const ReplicaIndex&,
                         const Topology&, const ExperimentConfig&)
      -> std::unique_ptr<Strategy> { return nullptr; };
  EXPECT_THROW(registry.add(duplicate), std::invalid_argument);
  StrategyEntry unbuildable;
  unbuildable.name = "ghost";
  EXPECT_THROW(registry.add(unbuildable), std::invalid_argument);
}

TEST(StrategyRegistry, CustomEntryIsConstructible) {
  // The open-API promise: a new policy is an entry away. Register a
  // trivial always-first-replica strategy and build it through make().
  class FirstReplica final : public Strategy {
   public:
    explicit FirstReplica(const ReplicaIndex& index) : index_(&index) {}
    Assignment assign(const Request& request, const LoadView&,
                      Rng&) override {
      Assignment a;
      a.server = index_->placement().replicas(request.file)[0];
      a.hops = index_->topology().distance(request.origin, a.server);
      return a;
    }
    [[nodiscard]] std::string name() const override { return "first"; }

   private:
    const ReplicaIndex* index_;
  };

  StrategyRegistry registry = StrategyRegistry::with_built_ins();
  registry.add({"first-replica",
                "always the first replica in the list",
                {},
                [](const StrategySpec&, const ReplicaIndex& index,
                   const Topology&, const ExperimentConfig&)
                    -> std::unique_ptr<Strategy> {
                  return std::make_unique<FirstReplica>(index);
                }});

  const ExperimentConfig config = small_config();
  const Lattice lattice =
      Lattice::from_node_count(config.num_nodes, config.wrap);
  const Popularity popularity =
      config.popularity.materialize(config.num_files);
  Rng rng(7);
  const Placement placement =
      Placement::generate(config.num_nodes, popularity, config.cache_size,
                          config.placement_mode, rng);
  const ReplicaIndex index(lattice, placement);
  const auto strategy = registry.make(parse_strategy_spec("first-replica"),
                                      index, lattice, config);
  ASSERT_NE(strategy, nullptr);
  EXPECT_EQ(strategy->name(), "first");
}

TEST(StrategyRegistry, GlobalRegistryDrivesTheSimulatorEndToEnd) {
  // The extension promise, end to end: a policy registered on the global
  // catalog validates and runs through run_simulation with zero core
  // changes. Serve everything at the requester's nearest replica's file
  // list position 0 — behavior does not matter, reachability does.
  const std::string name = "test-global-policy";
  if (StrategyRegistry::global().find(name) == nullptr) {
    class Anywhere final : public Strategy {
     public:
      explicit Anywhere(const ReplicaIndex& index) : index_(&index) {}
      Assignment assign(const Request& request, const LoadView&,
                        Rng&) override {
        Assignment a;
        a.server = index_->placement().replicas(request.file)[0];
        a.hops = index_->topology().distance(request.origin, a.server);
        return a;
      }
      [[nodiscard]] std::string name() const override { return "anywhere"; }

     private:
      const ReplicaIndex* index_;
    };
    StrategyRegistry::global().add(
        {name,
         "test-only: first replica in the list",
         {},
         [](const StrategySpec&, const ReplicaIndex& index,
            const Topology&, const ExperimentConfig&)
            -> std::unique_ptr<Strategy> {
           return std::make_unique<Anywhere>(index);
         }});
  }
  ExperimentConfig config = small_config();
  config.strategy_spec.name = name;
  config.validate();  // global() is consulted: no throw
  const RunResult result = run_simulation(config, 0);
  EXPECT_EQ(result.requests, config.num_nodes);
  EXPECT_EQ(result.dropped, 0u);
  // built_ins() stays immutable: the custom entry is not there.
  EXPECT_EQ(StrategyRegistry::built_ins().find(name), nullptr);
}

TEST(StrategyRegistry, FactoriesProduceExpectedStrategyTypes) {
  const ExperimentConfig config = small_config();
  const Lattice lattice =
      Lattice::from_node_count(config.num_nodes, config.wrap);
  const Popularity popularity =
      config.popularity.materialize(config.num_files);
  Rng rng(11);
  const Placement placement =
      Placement::generate(config.num_nodes, popularity, config.cache_size,
                          config.placement_mode, rng);
  const ReplicaIndex index(lattice, placement);
  const StrategyRegistry& registry = StrategyRegistry::built_ins();

  EXPECT_EQ(registry.make(parse_strategy_spec("nearest"), index, lattice,
                          config)->name(),
            "nearest-replica");
  EXPECT_EQ(registry.make(parse_strategy_spec("two-choice(r=16)"), index,
                          lattice, config)->name(),
            "two-choice(r=16)");
  EXPECT_EQ(registry.make(parse_strategy_spec("least-loaded(r=8)"), index,
                          lattice, config)->name(),
            "least-loaded(r=8)");
  EXPECT_EQ(registry.make(parse_strategy_spec("prox-weighted(d=3)"), index,
                          lattice, config)->name(),
            "prox-weighted(d=3, alpha=1)");
}

// An empty strategy_spec resolves to the registry-default two-choice
// strategy (the historical default config), never to an unnamed spec.
TEST(StrategyRegistry, EmptySpecResolvesToDefaultTwoChoice) {
  ExperimentConfig config;
  EXPECT_TRUE(config.strategy_spec.empty());
  EXPECT_EQ(config.resolved_strategy().to_string(), "two-choice");
  config.strategy_spec = parse_strategy_spec("least-loaded(r=8)");
  EXPECT_EQ(config.resolved_strategy().to_string(), "least-loaded(r=8)");
}

TEST(StrategyRegistry, FallbackParamConversionsRoundTrip) {
  for (const FallbackPolicy policy :
       {FallbackPolicy::ExpandRadius, FallbackPolicy::NearestReplica,
        FallbackPolicy::Drop}) {
    EXPECT_EQ(fallback_policy_from_param(fallback_param(policy)), policy);
  }
}

// --- Behavioral sanity of the extension strategies -----------------------

TEST(LeastLoadedStrategy, BalancesAtLeastAsWellAsTwoChoice) {
  ExperimentConfig config = small_config();
  config.strategy_spec = parse_strategy_spec("two-choice");
  const RunResult two = run_simulation(config, 0);
  config.strategy_spec = parse_strategy_spec("least-loaded");
  const RunResult all = run_simulation(config, 0);
  // Probing every replica is the d = |S_j| endpoint of the d-choice
  // spectrum; with the full candidate set the max load cannot be worse by
  // more than noise. Allow one unit of slack for tie-breaking randomness.
  EXPECT_LE(all.max_load, two.max_load + 1);
  EXPECT_EQ(all.requests, config.num_nodes);
  EXPECT_EQ(all.dropped, 0u);
}

TEST(LeastLoadedStrategy, RadiusBoundsTheHops) {
  ExperimentConfig config = small_config();
  config.strategy_spec = parse_strategy_spec("least-loaded(r=3,fallback=drop)");
  const RunResult result = run_simulation(config, 0);
  // With Drop fallback nothing is served beyond the radius, so the mean
  // hop count is bounded by it.
  EXPECT_LE(result.comm_cost, 3.0);
  EXPECT_GT(result.requests, 0u);
}

TEST(LeastLoadedStrategy, FallbackPoliciesMatchTwoChoiceSemantics) {
  ExperimentConfig config = small_config();
  config.cache_size = 1;  // sparse replicas: r=0 almost never has a candidate
  config.strategy_spec = parse_strategy_spec("least-loaded(r=0,fallback=drop)");
  const RunResult dropped = run_simulation(config, 0);
  EXPECT_GT(dropped.dropped, 0u);
  EXPECT_GT(dropped.fallbacks, 0u);

  config.strategy_spec =
      parse_strategy_spec("least-loaded(r=0, fallback=nearest)");
  const RunResult nearest = run_simulation(config, 0);
  EXPECT_EQ(nearest.dropped, 0u);
  EXPECT_GT(nearest.fallbacks, 0u);

  config.strategy_spec =
      parse_strategy_spec("least-loaded(r=0, fallback=expand)");
  const RunResult expanded = run_simulation(config, 0);
  EXPECT_EQ(expanded.dropped, 0u);
  EXPECT_GT(expanded.fallbacks, 0u);
}

TEST(ProxWeightedStrategy, AlphaDialsTheCostBalanceTradeoff) {
  // Larger alpha concentrates candidate mass on nearby replicas, so the
  // communication cost must fall monotonically (up to noise) as alpha
  // grows. Average over a few runs to keep the comparison stable.
  ExperimentConfig config = small_config();
  auto mean_cost = [&config](const char* spec) {
    config.strategy_spec = parse_strategy_spec(spec);
    double total = 0.0;
    for (std::uint64_t run = 0; run < 5; ++run) {
      total += run_simulation(config, run).comm_cost;
    }
    return total / 5.0;
  };
  const double uniform = mean_cost("prox-weighted(alpha=0)");
  const double mild = mean_cost("prox-weighted(alpha=1.5)");
  const double sharp = mean_cost("prox-weighted(alpha=6)");
  EXPECT_LT(mild, uniform);
  EXPECT_LT(sharp, mild);
}

TEST(ProxWeightedStrategy, AlphaZeroStillBalances) {
  ExperimentConfig config = small_config();
  config.strategy_spec = parse_strategy_spec("prox-weighted(alpha=0, d=2)");
  const RunResult two_choice_like = run_simulation(config, 0);
  config.strategy_spec = parse_strategy_spec("nearest");
  const RunResult nearest = run_simulation(config, 0);
  // Two uniform choices beat the load-oblivious baseline.
  EXPECT_LT(two_choice_like.max_load, nearest.max_load);
  EXPECT_EQ(two_choice_like.dropped, 0u);
}

TEST(ProxWeightedStrategy, SingleChoiceServesEveryRequest) {
  ExperimentConfig config = small_config();
  config.strategy_spec = parse_strategy_spec("prox-weighted(d=1, alpha=2)");
  const RunResult result = run_simulation(config, 0);
  EXPECT_EQ(result.requests, config.num_nodes);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_EQ(result.fallbacks, 0u);
}

// --- Spec canonicalization invariance ------------------------------------

// A spec and its canonical round-trip (parse -> to_string -> parse) must
// produce bit-identical runs for every scenario preset — no hidden state
// outside the spec string.
TEST(StrategyRegistry, CanonicalRoundTripIsBitIdentical) {
  for (const Scenario& scenario : ScenarioRegistry::built_ins().all()) {
    ExperimentConfig config = scenario.config;
    config.num_nodes = 400;
    config.num_files = 80;
    config.cache_size = 6;
    config.seed = 909;

    for (const char* text : {"nearest", "two-choice(d=2, r=5)"}) {
      config.strategy_spec = parse_strategy_spec(text);
      ExperimentConfig round_tripped = config;
      round_tripped.strategy_spec =
          parse_strategy_spec(config.strategy_spec.to_string());
      expect_same_result(run_simulation(config, 0),
                         run_simulation(round_tripped, 0));
    }
  }
}

// The rebinding constructor (scenario x strategy matrix fast path) is
// bit-identical to building a fresh context per cell.
TEST(StrategyRegistry, RebindingContextMatchesFreshContext) {
  ExperimentConfig config = small_config();
  const SimulationContext base(config);
  for (const char* spec :
       {"nearest", "two-choice(r=5)", "least-loaded(r=8)",
        "prox-weighted(d=2, alpha=1.5)"}) {
    const SimulationContext rebound(base, parse_strategy_spec(spec));
    ExperimentConfig fresh = config;
    fresh.strategy_spec = parse_strategy_spec(spec);
    expect_same_result(rebound.run(0), SimulationContext(fresh).run(0));
  }
  // Rebinding still validates: a bad spec throws instead of running.
  EXPECT_THROW(SimulationContext(base, parse_strategy_spec("nope")),
               std::invalid_argument);
}

// Symbolic keywords and their numeric codes are interchangeable in specs.
TEST(StrategyRegistry, KeywordAndNumericFallbackAreBitIdentical) {
  ExperimentConfig keyword = small_config();
  keyword.strategy_spec = parse_strategy_spec(
      "two-choice(r=4, fallback=nearest, beta=0.8, stale=4)");
  ExperimentConfig numeric = small_config();
  numeric.strategy_spec = parse_strategy_spec(
      "two-choice(r=4, fallback=1, beta=0.8, stale=4)");
  expect_same_result(run_simulation(keyword, 0), run_simulation(numeric, 0));
}

}  // namespace
}  // namespace proxcache
