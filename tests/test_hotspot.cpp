// Tests for the Hotspot origin extension: mixture correctness and its
// end-to-end effect on the two strategies.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/request.hpp"
#include "topology/shells.hpp"

namespace proxcache {
namespace {

TEST(HotspotTrace, UniformKindDelegates) {
  const Lattice lattice(10, Wrap::Torus);
  OriginSpec origins;  // Uniform
  Rng rng_a(5);
  Rng rng_b(5);
  const auto mixture = generate_trace(lattice, origins,
                                      Popularity::uniform(4), 200, rng_a);
  const auto plain =
      generate_trace(lattice.size(), Popularity::uniform(4), 200, rng_b);
  ASSERT_EQ(mixture.size(), plain.size());
  for (std::size_t i = 0; i < mixture.size(); ++i) {
    EXPECT_EQ(mixture[i].origin, plain[i].origin);
    EXPECT_EQ(mixture[i].file, plain[i].file);
  }
}

TEST(HotspotTrace, FullFractionStaysInsideDisc) {
  const Lattice lattice(15, Wrap::Torus);
  OriginSpec origins;
  origins.kind = OriginKind::Hotspot;
  origins.hotspot_fraction = 1.0;
  origins.hotspot_radius = 3;
  const NodeId center = lattice.node(Point{7, 7});
  Rng rng(9);
  const auto trace = generate_trace(lattice, origins,
                                    Popularity::uniform(5), 2000, rng);
  for (const Request& request : trace) {
    EXPECT_LE(lattice.distance(request.origin, center), 3u);
  }
}

TEST(HotspotTrace, FractionControlsTheMixture) {
  const Lattice lattice(21, Wrap::Torus);
  OriginSpec origins;
  origins.kind = OriginKind::Hotspot;
  origins.hotspot_fraction = 0.6;
  origins.hotspot_radius = 2;
  const NodeId center = lattice.node(Point{10, 10});
  const double disc_size =
      static_cast<double>(lattice.ball_size(center, 2));
  Rng rng(11);
  const std::size_t count = 40000;
  const auto trace =
      generate_trace(lattice, origins, Popularity::uniform(5), count, rng);
  std::size_t inside = 0;
  for (const Request& request : trace) {
    if (lattice.distance(request.origin, center) <= 2) ++inside;
  }
  // Expected inside fraction: 0.6 + 0.4 * disc/n.
  const double expected =
      0.6 + 0.4 * disc_size / static_cast<double>(lattice.size());
  EXPECT_NEAR(static_cast<double>(inside) / static_cast<double>(count),
              expected, 0.02);
}

TEST(HotspotTrace, ZeroFractionIsUniform) {
  const Lattice lattice(9, Wrap::Torus);
  OriginSpec origins;
  origins.kind = OriginKind::Hotspot;
  origins.hotspot_fraction = 0.0;
  origins.hotspot_radius = 1;
  Rng rng(13);
  const auto trace = generate_trace(lattice, origins,
                                    Popularity::uniform(3), 20000, rng);
  // All nodes should appear with roughly uniform frequency.
  std::vector<int> counts(lattice.size(), 0);
  for (const Request& request : trace) ++counts[request.origin];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 20000.0,
                1.0 / static_cast<double>(lattice.size()), 0.01);
  }
}

TEST(HotspotTrace, RejectsBadFraction) {
  const Lattice lattice(5, Wrap::Torus);
  OriginSpec origins;
  origins.kind = OriginKind::Hotspot;
  origins.hotspot_fraction = 1.5;
  Rng rng(1);
  EXPECT_THROW(
      generate_trace(lattice, origins, Popularity::uniform(2), 10, rng),
      std::invalid_argument);
}

TEST(HotspotEndToEnd, ConcentratedDemandRaisesMaxLoad) {
  ExperimentConfig uniform;
  uniform.num_nodes = 625;
  uniform.num_files = 50;
  uniform.cache_size = 5;
  uniform.seed = 3;
  uniform.strategy_spec = parse_strategy_spec("two-choice(r=4)");

  ExperimentConfig hotspot = uniform;
  hotspot.origins.kind = OriginKind::Hotspot;
  hotspot.origins.hotspot_fraction = 0.8;
  hotspot.origins.hotspot_radius = 2;

  const double load_uniform = run_experiment(uniform, 10).max_load.mean();
  const double load_hotspot = run_experiment(hotspot, 10).max_load.mean();
  EXPECT_GT(load_hotspot, load_uniform + 1.0)
      << "a tight hotspot must overload the nearby candidate servers";
}

TEST(HotspotEndToEnd, LargerRadiusAbsorbsTheHotspot) {
  ExperimentConfig config;
  config.num_nodes = 625;
  config.num_files = 50;
  config.cache_size = 5;
  config.seed = 4;
  config.origins.kind = OriginKind::Hotspot;
  config.origins.hotspot_fraction = 0.8;
  config.origins.hotspot_radius = 2;

  config.strategy_spec = parse_strategy_spec("two-choice(r=2)");
  const double tight = run_experiment(config, 10).max_load.mean();
  config.strategy_spec = parse_strategy_spec("two-choice(r=12)");
  const double wide = run_experiment(config, 10).max_load.mean();
  EXPECT_LT(wide, tight)
      << "a wider dispatch radius must spread hotspot demand";
}

}  // namespace
}  // namespace proxcache
