// Tests for scenario/registry: the built-in presets are plentiful, unique,
// valid, and runnable end-to-end at test scale.
#include "scenario/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/simulation.hpp"

namespace proxcache {
namespace {

TEST(ScenarioRegistry, HasAtLeastFivePresets) {
  EXPECT_GE(ScenarioRegistry::built_ins().all().size(), 5u);
}

TEST(ScenarioRegistry, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const Scenario& scenario : ScenarioRegistry::built_ins().all()) {
    EXPECT_FALSE(scenario.name.empty());
    EXPECT_FALSE(scenario.summary.empty());
    EXPECT_TRUE(names.insert(scenario.name).second)
        << "duplicate scenario name " << scenario.name;
  }
}

TEST(ScenarioRegistry, CoversEveryTraceKind) {
  std::set<TraceKind> kinds;
  for (const Scenario& scenario : ScenarioRegistry::built_ins().all()) {
    kinds.insert(scenario.config.trace.kind);
  }
  EXPECT_EQ(kinds.size(), 6u);  // Static + the five dynamic processes
}

TEST(ScenarioRegistry, EveryPresetValidates) {
  for (const Scenario& scenario : ScenarioRegistry::built_ins().all()) {
    EXPECT_NO_THROW(scenario.config.validate()) << scenario.name;
  }
}

TEST(ScenarioRegistry, EveryPresetRunsAtTestScale) {
  for (const Scenario& scenario : ScenarioRegistry::built_ins().all()) {
    ExperimentConfig config = scenario.config;
    config.num_nodes = 100;
    config.num_files = 30;
    config.cache_size = 4;
    config.num_requests = 200;
    config.seed = 12;
    const RunResult result = run_simulation(config, 0);
    EXPECT_EQ(result.requests + result.dropped, 200u) << scenario.name;
    EXPECT_GT(result.max_load, 0u) << scenario.name;
  }
}

TEST(ScenarioRegistry, FindReturnsNullForUnknownName) {
  EXPECT_EQ(ScenarioRegistry::built_ins().find("no-such-scenario"), nullptr);
  EXPECT_NE(ScenarioRegistry::built_ins().find("flash-crowd"), nullptr);
}

TEST(ScenarioRegistry, AtThrowsListingKnownNames) {
  try {
    (void)ScenarioRegistry::built_ins().at("no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos);
    EXPECT_NE(what.find("flash-crowd"), std::string::npos);
  }
}

}  // namespace
}  // namespace proxcache
