// Tests for the strategy-spec grammar (strategy/spec.hpp): parse /
// to_string round trips, whitespace and case tolerance, symbolic keyword
// canonicalization, and precise error messages on malformed input.
#include "strategy/spec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "strategy/registry.hpp"

namespace proxcache {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// EXPECT that parsing `text` throws std::invalid_argument whose message
/// contains `needle` (gmock is not linked, so substring-check by hand).
void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    (void)parse_strategy_spec(text);
    FAIL() << "expected '" << text << "' to be rejected";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find(needle), std::string::npos)
        << "message '" << message << "' does not mention '" << needle << "'";
    // Every parse error echoes the offending input for context.
    EXPECT_NE(message.find(text), std::string::npos)
        << "message '" << message << "' does not echo the input";
  }
}

TEST(StrategySpec, ParsesBareName) {
  const StrategySpec spec = parse_strategy_spec("nearest");
  EXPECT_EQ(spec.name, "nearest");
  EXPECT_TRUE(spec.params.empty());
  EXPECT_FALSE(spec.empty());
}

TEST(StrategySpec, ParsesTheIssueExample) {
  const StrategySpec spec =
      parse_strategy_spec("two-choice(d=2,r=16,beta=0.7,fallback=expand)");
  EXPECT_EQ(spec.name, "two-choice");
  EXPECT_EQ(spec.params.size(), 4u);
  EXPECT_DOUBLE_EQ(spec.get_or("d", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(spec.get_or("r", 0.0), 16.0);
  EXPECT_DOUBLE_EQ(spec.get_or("beta", 0.0), 0.7);
  EXPECT_DOUBLE_EQ(spec.get_or("fallback", -1.0), kSpecFallbackExpand);
}

TEST(StrategySpec, EmptyParenthesesEqualBareName) {
  EXPECT_EQ(parse_strategy_spec("nearest()"), parse_strategy_spec("nearest"));
}

TEST(StrategySpec, ToleratesWhitespaceEverywhere) {
  const StrategySpec spec =
      parse_strategy_spec("  two-choice ( d = 2 ,\t r = 16 )  ");
  EXPECT_EQ(spec.name, "two-choice");
  EXPECT_DOUBLE_EQ(spec.get_or("d", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(spec.get_or("r", 0.0), 16.0);
}

TEST(StrategySpec, LowercasesNamesKeysAndKeywords) {
  const StrategySpec spec =
      parse_strategy_spec("Two-Choice(D=3, Fallback=NEAREST, R=Inf)");
  EXPECT_EQ(spec.name, "two-choice");
  EXPECT_DOUBLE_EQ(spec.get_or("d", 0.0), 3.0);
  EXPECT_DOUBLE_EQ(spec.get_or("fallback", -1.0), kSpecFallbackNearest);
  EXPECT_TRUE(std::isinf(spec.get_or("r", 0.0)));
}

TEST(StrategySpec, ParsesInfAndKeywords) {
  const StrategySpec spec =
      parse_strategy_spec("least-loaded(r=inf, fallback=drop)");
  EXPECT_TRUE(std::isinf(spec.get_or("r", 0.0)));
  EXPECT_DOUBLE_EQ(spec.get_or("fallback", -1.0), kSpecFallbackDrop);
}

TEST(StrategySpec, GetOrFallsBackWhenUnset) {
  const StrategySpec spec = parse_strategy_spec("two-choice(d=4)");
  EXPECT_TRUE(spec.has("d"));
  EXPECT_FALSE(spec.has("r"));
  EXPECT_DOUBLE_EQ(spec.get_or("r", kInf), kInf);
}

TEST(StrategySpec, ToStringCanonicalizes) {
  EXPECT_EQ(parse_strategy_spec(" Nearest ").to_string(), "nearest");
  EXPECT_EQ(parse_strategy_spec("two-choice( r=16,d = 2 )").to_string(),
            "two-choice(d=2, r=16)");  // keys sorted, spacing normalized
  EXPECT_EQ(
      parse_strategy_spec("two-choice(fallback=drop, r=INF)").to_string(),
      "two-choice(fallback=drop, r=inf)");
  EXPECT_EQ(parse_strategy_spec("prox-weighted(alpha=1.5)").to_string(),
            "prox-weighted(alpha=1.5)");
}

TEST(StrategySpec, RoundTripsThroughToString) {
  const char* examples[] = {
      "nearest",
      "two-choice(beta=0.7, d=2, fallback=expand, r=16)",
      "two-choice(fallback=nearest, r=inf, stale=64, wr=1)",
      "least-loaded(fallback=drop, r=8)",
      "prox-weighted(alpha=1.5, d=3)",
  };
  for (const char* text : examples) {
    const StrategySpec spec = parse_strategy_spec(text);
    EXPECT_EQ(parse_strategy_spec(spec.to_string()), spec) << text;
    // Canonical forms are fixed points.
    EXPECT_EQ(spec.to_string(), text);
  }
}

TEST(StrategySpec, RoundTripsEveryRegisteredStrategy) {
  // For each registry entry, build a spec setting every declared parameter
  // to its default and check the full parse(to_string()) round trip.
  for (const StrategyEntry& entry : StrategyRegistry::built_ins().all()) {
    StrategySpec spec;
    spec.name = entry.name;
    EXPECT_EQ(parse_strategy_spec(spec.to_string()), spec) << entry.name;
    for (const StrategyParamRule& rule : entry.params) {
      spec.params[rule.key] = rule.default_value;
    }
    const StrategySpec reparsed = parse_strategy_spec(spec.to_string());
    EXPECT_EQ(reparsed, spec) << entry.name << " -> " << spec.to_string();
    StrategyRegistry::built_ins().validate(reparsed);
  }
}

TEST(StrategySpec, RoundTripsAwkwardDoubles) {
  // Values that need more digits than the default ostream precision.
  StrategySpec spec;
  spec.name = "prox-weighted";
  spec.params["alpha"] = 0.1 + 0.2;  // 0.30000000000000004
  const StrategySpec reparsed = parse_strategy_spec(spec.to_string());
  EXPECT_DOUBLE_EQ(reparsed.get_or("alpha", 0.0), spec.get_or("alpha", 1.0));
}

TEST(StrategySpec, RejectsEmptyAndMissingName) {
  expect_parse_error("", "expected a strategy name");
  expect_parse_error("   ", "expected a strategy name");
  expect_parse_error("(r=2)", "expected a strategy name");
}

TEST(StrategySpec, RejectsMissingParenthesis) {
  expect_parse_error("two-choice(d=2", "expected ',' or ')'");
  expect_parse_error("two-choice d=2", "expected '('");
}

TEST(StrategySpec, RejectsMalformedParameters) {
  expect_parse_error("two-choice(d)", "missing '=value'");
  expect_parse_error("two-choice(d=)", "missing a value");
  expect_parse_error("two-choice(=2)", "expected a parameter key");
  expect_parse_error("two-choice(,)", "expected a parameter key");
  expect_parse_error("two-choice(d=2,)", "expected a parameter key");
}

TEST(StrategySpec, RejectsDuplicateKeys) {
  expect_parse_error("two-choice(d=2, d=3)", "duplicate parameter 'd'");
}

TEST(StrategySpec, RejectsUnknownKeywordValues) {
  expect_parse_error("two-choice(r=huge)",
                     "neither a number nor a known keyword");
  // Keyword values are scoped to their parameter: 'expand' means nothing
  // as a radius.
  expect_parse_error("two-choice(r=expand)",
                     "neither a number nor a known keyword");
}

TEST(StrategySpec, RejectsTrailingGarbage) {
  expect_parse_error("two-choice(d=2) extra", "trailing characters");
  expect_parse_error("nearest!", "unexpected character '!'");
}

}  // namespace
}  // namespace proxcache
