// Tier-spec grammar (tier/spec.hpp) and the preset registry
// (tier/registry.hpp): parse/print round trips, the bare-count clique
// sugar, role ordering, cache overrides, and every documented rejection —
// each error must carry the offending spec text and a usable hint, because
// these strings surface directly on the runners' command lines.
#include "tier/spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "tier/registry.hpp"

namespace proxcache {
namespace {

/// The grammar must reject `text`, mentioning `fragment` in the message.
void expect_rejected(const std::string& text, const std::string& fragment) {
  try {
    (void)parse_tier_spec(text);
    FAIL() << "'" << text << "' must be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("bad tier spec"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
        << "'" << text << "' rejection must mention '" << fragment
        << "', got: " << error.what();
  }
}

TEST(TierSpec, ParsesTheCanonicalCdnShapeAndRoundTrips) {
  const TierSpec spec =
      parse_tier_spec("tiers(front=torus(side=8)x8, back=ring(n=64), "
                      "origin=1)");
  ASSERT_EQ(spec.levels.size(), 3u);
  EXPECT_EQ(spec.levels[0].role, "front");
  EXPECT_EQ(spec.levels[0].topology.name, "torus");
  EXPECT_EQ(spec.levels[0].clusters, 8u);
  EXPECT_EQ(spec.levels[1].role, "back");
  EXPECT_EQ(spec.levels[1].topology.name, "ring");
  EXPECT_EQ(spec.levels[1].clusters, 1u);
  EXPECT_EQ(spec.levels[2].role, "origin");
  EXPECT_EQ(spec.levels[2].topology.name, "clique");
  EXPECT_EQ(spec.link, 1u);
  EXPECT_FALSE(spec.degenerate());
  // to_string parses back to an equal spec (the canonical print form).
  EXPECT_EQ(parse_tier_spec(spec.to_string()), spec);
  EXPECT_EQ(spec.to_string(),
            "tiers(front=torus(side=8)x8, back=ring(n=64), origin=1)");
}

TEST(TierSpec, BareCountsAreCliqueSugar) {
  const TierSpec spec = parse_tier_spec("tiers(front=16x4, origin=1)");
  EXPECT_EQ(spec.levels[0].topology.name, "clique");
  EXPECT_EQ(spec.levels[0].topology.get_or("n", 0.0), 16.0);
  EXPECT_EQ(spec.levels[0].clusters, 4u);
  EXPECT_EQ(spec.to_string(), "tiers(front=16x4, origin=1)");
}

TEST(TierSpec, LinkAndCacheOverridesParseAndPrint) {
  const TierSpec spec = parse_tier_spec(
      "tiers(front=torus(side=4)x2, back=ring(n=16), origin=1, link=3, "
      "back_cache=20)");
  EXPECT_EQ(spec.link, 3u);
  EXPECT_EQ(spec.levels[0].cache_size, 0u);  // inherits the config default
  EXPECT_EQ(spec.levels[1].cache_size, 20u);
  EXPECT_EQ(parse_tier_spec(spec.to_string()), spec);
}

TEST(TierSpec, KeysAreCaseInsensitiveAndWhitespaceTolerant) {
  const TierSpec spec =
      parse_tier_spec("  TIERS( Front = torus(side=4) , Origin = 1 )  ");
  ASSERT_EQ(spec.levels.size(), 2u);
  EXPECT_EQ(spec.levels[0].role, "front");
  EXPECT_EQ(spec.levels[1].role, "origin");
}

TEST(TierSpec, DegeneratePredicateMatchesTheFlatContract) {
  EXPECT_TRUE(parse_tier_spec("tiers(front=torus(side=10))").degenerate());
  // Any of a second level, a cache override, or an origin role makes the
  // composition a real hierarchy. (Clustering alone cannot: the grammar
  // already rejects a clustered deepest tier.)
  EXPECT_FALSE(
      parse_tier_spec("tiers(front=torus(side=10)x2, back=8)").degenerate());
  EXPECT_FALSE(parse_tier_spec("tiers(front=torus(side=10), front_cache=4)")
                   .degenerate());
  EXPECT_FALSE(
      parse_tier_spec("tiers(front=torus(side=10), origin=1)").degenerate());
  EXPECT_FALSE(parse_tier_spec("tiers(origin=4)").degenerate());
  EXPECT_TRUE(TierSpec{}.empty());
  EXPECT_FALSE(TierSpec{}.degenerate());
}

TEST(TierSpec, RejectsMalformedSpecsWithUsableMessages) {
  expect_rejected("cdn-but-not-resolved", "expected the form");
  expect_rejected("front=torus(side=8)", "expected the spec name");
  expect_rejected("layers(front=8)", "'tiers'");
  expect_rejected("tiers()", "stray comma");
  expect_rejected("tiers(link=2)", "at least one tier role");
  expect_rejected("tiers(front=8,, origin=1)", "stray comma");
  expect_rejected("tiers(front)", "not key=value");
  expect_rejected("tiers(middle=8)", "unknown key");
  expect_rejected("tiers(back=8, front=torus(side=4))", "order");
  expect_rejected("tiers(front=8, front=9)", "order");
  expect_rejected("tiers(front=torus(side=4)", "unbalanced");
  expect_rejected("tiers(front=)", "empty value");
  expect_rejected("tiers(front=0)", "at least one node");
  expect_rejected("tiers(front=8x0, origin=1)", "outside [1, 65536]");
  expect_rejected("tiers(front=8, link=2000)", "outside [0, 1024]");
  expect_rejected("tiers(front=8, link=1, link=2)", "duplicate");
  expect_rejected("tiers(front=8, origin=1, origin_cache=4)",
                  "full catalog");
  expect_rejected("tiers(front=8, back_cache=4)", "not in the spec");
  expect_rejected("tiers(front=8, mid_cache=0, mid=4)", "outside [1,");
  // The deepest tier is where every route meets: it cannot be clustered.
  expect_rejected("tiers(front=8x2)", "deepest tier");
  expect_rejected("tiers(front=8, back=torus(side=4)x2)", "deepest tier");
}

TEST(TierRegistryTest, PresetsResolveAndRawSpecsPassThrough) {
  const TierRegistry& registry = TierRegistry::built_ins();
  ASSERT_FALSE(registry.all().empty());
  for (const TierPreset& preset : registry.all()) {
    EXPECT_EQ(registry.resolve(preset.name), preset.spec) << preset.name;
    EXPECT_FALSE(preset.spec.degenerate()) << preset.name
                                           << ": presets are hierarchies";
  }
  EXPECT_EQ(registry.resolve("tiers(front=torus(side=8)x8, back=ring(n=64), "
                             "origin=1)"),
            registry.at("cdn").spec);
  try {
    (void)registry.resolve("tiers(nope=1)");
    FAIL() << "unknown key must be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("known presets"),
              std::string::npos)
        << "resolve errors must list the preset vocabulary: "
        << error.what();
  }
  EXPECT_THROW((void)registry.at("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace proxcache
