// Statistical envelope tests for the scenario generators: chi-square
// goodness-of-fit of long fixed-seed traces against each source's declared
// marginal distribution (see the per-class docs in scenario/generators.hpp).
// Seeds are fixed, so these never flake — the thresholds only guard against
// a generator drifting away from its declared law.
#include <gtest/gtest.h>

#include <vector>

#include "scenario/generators.hpp"
#include "stats/gof.hpp"
#include "topology/shells.hpp"

namespace proxcache {
namespace {

constexpr std::size_t kTraceLength = 250000;

std::vector<std::uint64_t> origin_counts(TraceSource& source,
                                         std::size_t num_nodes, Rng& rng) {
  std::vector<std::uint64_t> counts(num_nodes, 0);
  for (std::size_t i = 0; i < kTraceLength; ++i) {
    ++counts[source.next(rng).origin];
  }
  return counts;
}

std::vector<std::uint64_t> file_counts(TraceSource& source,
                                       std::size_t num_files, Rng& rng) {
  std::vector<std::uint64_t> counts(num_files, 0);
  for (std::size_t i = 0; i < kTraceLength; ++i) {
    ++counts[source.next(rng).file];
  }
  return counts;
}

TEST(ScenarioStats, FlashCrowdOriginsMatchDeclaredMarginal) {
  const Lattice lattice(10, Wrap::Torus);
  TraceSpec spec;
  spec.kind = TraceKind::FlashCrowd;
  spec.flash_peak = 0.8;
  spec.flash_start = 0.2;
  spec.flash_end = 0.8;
  spec.flash_radius = 2;
  FlashCrowdTraceSource source(lattice, Popularity::uniform(5), spec,
                               kTraceLength);
  // Declared origin marginal: mixture of uniform-over-n and
  // uniform-over-disc with the exact mean pulse weight.
  const double mean_pulse = source.mean_pulse();
  const std::size_t n = lattice.size();
  std::vector<double> expected(n, (1.0 - mean_pulse) / static_cast<double>(n));
  for (const NodeId u : source.disc()) {
    expected[u] += mean_pulse / static_cast<double>(source.disc().size());
  }
  Rng rng(2024);
  const auto counts = origin_counts(source, n, rng);
  EXPECT_GT(chi_square_pvalue(counts, expected), 1e-4);
}

TEST(ScenarioStats, DiurnalFilesMatchPhaseMixture) {
  TraceSpec spec;
  spec.kind = TraceKind::Diurnal;
  spec.diurnal_amplitude = 0.5;
  spec.diurnal_cycles = 2;
  DiurnalTraceSource source(OriginModel(100), Popularity::zipf(30, 1.0), spec,
                            kTraceLength);
  const std::vector<double> expected = source.marginal_pmf();
  Rng rng(2025);
  const auto counts = file_counts(source, 30, rng);
  EXPECT_GT(chi_square_pvalue(counts, expected), 1e-4);
}

TEST(ScenarioStats, DiurnalMarginalDiffersFromBaseZipf) {
  // Sanity check on the test itself: the phase mixture is measurably
  // different from the base Zipf law, so the GOF above is not vacuous.
  TraceSpec spec;
  spec.kind = TraceKind::Diurnal;
  spec.diurnal_amplitude = 0.5;
  spec.diurnal_cycles = 2;
  DiurnalTraceSource source(OriginModel(100), Popularity::zipf(30, 1.0), spec,
                            kTraceLength);
  const std::vector<double> base = Popularity::zipf(30, 1.0).pmf();
  Rng rng(2025);
  const auto counts = file_counts(source, 30, rng);
  EXPECT_LT(chi_square_pvalue(counts, base), 1e-4);
}

TEST(ScenarioStats, TemporalLocalityMarginalIsBasePopularity) {
  // Reuse redraws resample past draws, so the stationary marginal equals
  // the base law. Reuse also correlates consecutive requests, which
  // inflates the chi-square statistic relative to i.i.d. sampling — hence
  // the more lenient (still fixed-seed-deterministic) threshold.
  TraceSpec spec;
  spec.kind = TraceKind::TemporalLocality;
  spec.locality_prob = 0.3;
  spec.locality_depth = 32;
  TemporalLocalityTraceSource source(OriginModel(100), Popularity::zipf(20, 0.8), spec);
  const std::vector<double> expected = Popularity::zipf(20, 0.8).pmf();
  Rng rng(2026);
  const auto counts = file_counts(source, 20, rng);
  EXPECT_GT(chi_square_pvalue(counts, expected), 1e-6);
}

TEST(ScenarioStats, AdversarialFilesMatchAttackMixture) {
  TraceSpec spec;
  spec.kind = TraceKind::Adversarial;
  spec.attack_fraction = 0.6;
  spec.attack_top_k = 5;
  AdversarialTraceSource source(OriginModel(100), Popularity::zipf(50, 1.0), spec);
  const std::vector<double> expected = source.marginal_pmf();
  Rng rng(2027);
  const auto counts = file_counts(source, 50, rng);
  EXPECT_GT(chi_square_pvalue(counts, expected), 1e-4);
}

TEST(ScenarioStats, StaticHotspotOriginsMatchMixture) {
  const Lattice lattice(10, Wrap::Torus);
  OriginSpec origins;
  origins.kind = OriginKind::Hotspot;
  origins.hotspot_fraction = 0.5;
  origins.hotspot_radius = 2;
  StaticTraceSource source(lattice, origins, Popularity::uniform(5));
  const std::vector<NodeId> disc =
      collect_ball(lattice, lattice.node(Point{5, 5}), 2);
  const std::size_t n = lattice.size();
  std::vector<double> expected(n, 0.5 / static_cast<double>(n));
  for (const NodeId u : disc) {
    expected[u] += 0.5 / static_cast<double>(disc.size());
  }
  Rng rng(2028);
  const auto counts = origin_counts(source, n, rng);
  EXPECT_GT(chi_square_pvalue(counts, expected), 1e-4);
}

}  // namespace
}  // namespace proxcache
