// Tests for topology/lattice: distance metric axioms, ball/shell sizes,
// wrap modes, and the coordinate round trip.
#include "topology/lattice.hpp"

#include <gtest/gtest.h>

#include <set>

namespace proxcache {
namespace {

TEST(LatticeBasics, PerfectSquareDetection) {
  EXPECT_TRUE(Lattice::is_perfect_square(1));
  EXPECT_TRUE(Lattice::is_perfect_square(4));
  EXPECT_TRUE(Lattice::is_perfect_square(2025));
  EXPECT_TRUE(Lattice::is_perfect_square(122500));
  EXPECT_FALSE(Lattice::is_perfect_square(0));
  EXPECT_FALSE(Lattice::is_perfect_square(2));
  EXPECT_FALSE(Lattice::is_perfect_square(2024));
  EXPECT_FALSE(Lattice::is_perfect_square(99));
}

TEST(LatticeBasics, FromNodeCount) {
  const Lattice lattice = Lattice::from_node_count(2025, Wrap::Torus);
  EXPECT_EQ(lattice.side(), 45);
  EXPECT_EQ(lattice.size(), 2025u);
  EXPECT_THROW(Lattice::from_node_count(2024, Wrap::Torus),
               std::invalid_argument);
}

TEST(LatticeBasics, WrapParsing) {
  EXPECT_EQ(wrap_from_string("torus"), Wrap::Torus);
  EXPECT_EQ(wrap_from_string("grid"), Wrap::Grid);
  EXPECT_THROW(wrap_from_string("ring"), std::invalid_argument);
  EXPECT_EQ(to_string(Wrap::Torus), "torus");
  EXPECT_EQ(to_string(Wrap::Grid), "grid");
}

TEST(LatticeBasics, CoordNodeRoundTrip) {
  const Lattice lattice(7, Wrap::Torus);
  for (NodeId u = 0; u < lattice.size(); ++u) {
    EXPECT_EQ(lattice.node(lattice.coord(u)), u);
  }
  EXPECT_THROW((void)lattice.coord(49), std::invalid_argument);
  EXPECT_THROW((void)lattice.node(Point{7, 0}), std::invalid_argument);
  EXPECT_THROW((void)lattice.node(Point{0, -1}), std::invalid_argument);
}

TEST(LatticeBasics, NodeWrappedReducesModSide) {
  const Lattice lattice(5, Wrap::Torus);
  EXPECT_EQ(lattice.node_wrapped(Point{5, 0}), lattice.node(Point{0, 0}));
  EXPECT_EQ(lattice.node_wrapped(Point{-1, -1}), lattice.node(Point{4, 4}));
  EXPECT_EQ(lattice.node_wrapped(Point{12, 7}), lattice.node(Point{2, 2}));
  const Lattice grid(5, Wrap::Grid);
  EXPECT_THROW((void)grid.node_wrapped(Point{5, 0}), std::invalid_argument);
}

TEST(LatticeDistance, TorusWrapsAroundShortestWay) {
  const Lattice lattice(10, Wrap::Torus);
  const NodeId a = lattice.node(Point{0, 0});
  const NodeId b = lattice.node(Point{9, 0});
  EXPECT_EQ(lattice.distance(a, b), 1u);  // wraps: 0 -> 9 is one step
  const NodeId c = lattice.node(Point{5, 5});
  EXPECT_EQ(lattice.distance(a, c), 10u);  // 5 + 5, both axes at max ring
}

TEST(LatticeDistance, GridDoesNotWrap) {
  const Lattice lattice(10, Wrap::Grid);
  const NodeId a = lattice.node(Point{0, 0});
  const NodeId b = lattice.node(Point{9, 0});
  EXPECT_EQ(lattice.distance(a, b), 9u);
  EXPECT_EQ(lattice.diameter(), 18u);
}

TEST(LatticeDistance, Diameter) {
  EXPECT_EQ(Lattice(10, Wrap::Torus).diameter(), 10u);
  EXPECT_EQ(Lattice(9, Wrap::Torus).diameter(), 8u);
  EXPECT_EQ(Lattice(9, Wrap::Grid).diameter(), 16u);
  EXPECT_EQ(Lattice(1, Wrap::Torus).diameter(), 0u);
}

// Metric axioms, exhaustively on small lattices in both wrap modes.
class LatticeMetricTest
    : public ::testing::TestWithParam<std::tuple<int, Wrap>> {};

TEST_P(LatticeMetricTest, MetricAxiomsHold) {
  const auto [side, wrap] = GetParam();
  const Lattice lattice(side, wrap);
  const std::size_t n = lattice.size();
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(lattice.distance(u, u), 0u);
    for (NodeId v = 0; v < n; ++v) {
      const Hop duv = lattice.distance(u, v);
      EXPECT_EQ(duv, lattice.distance(v, u)) << "symmetry " << u << "," << v;
      if (u != v) {
        EXPECT_GT(duv, 0u);
      }
      EXPECT_LE(duv, lattice.diameter());
    }
  }
  // Triangle inequality on a subsample (cubic loop kept small).
  for (NodeId u = 0; u < n; u += 3) {
    for (NodeId v = 0; v < n; v += 3) {
      for (NodeId w = 0; w < n; w += 3) {
        EXPECT_LE(lattice.distance(u, w),
                  lattice.distance(u, v) + lattice.distance(v, w));
      }
    }
  }
}

TEST_P(LatticeMetricTest, NeighborsAreAtDistanceOne) {
  const auto [side, wrap] = GetParam();
  const Lattice lattice(side, wrap);
  for (NodeId u = 0; u < lattice.size(); ++u) {
    const auto neighbors = lattice.neighbors(u);
    std::set<NodeId> unique(neighbors.begin(), neighbors.end());
    EXPECT_EQ(unique.size(), neighbors.size()) << "duplicate neighbor";
    for (const NodeId v : neighbors) {
      EXPECT_EQ(lattice.distance(u, v), 1u);
      EXPECT_NE(v, u);
    }
    // Every node at distance 1 must be listed.
    for (NodeId v = 0; v < lattice.size(); ++v) {
      if (lattice.distance(u, v) == 1) {
        EXPECT_TRUE(unique.count(v)) << "missing neighbor " << v;
      }
    }
  }
}

TEST_P(LatticeMetricTest, ShellSizesMatchBruteForce) {
  const auto [side, wrap] = GetParam();
  const Lattice lattice(side, wrap);
  for (NodeId u = 0; u < lattice.size(); u += 2) {
    for (Hop d = 0; d <= lattice.diameter() + 1; ++d) {
      std::size_t brute = 0;
      for (NodeId v = 0; v < lattice.size(); ++v) {
        if (lattice.distance(u, v) == d) ++brute;
      }
      EXPECT_EQ(lattice.shell_size(u, d), brute)
          << "side=" << side << " wrap=" << to_string(wrap) << " u=" << u
          << " d=" << d;
    }
  }
}

TEST_P(LatticeMetricTest, BallSizesMatchBruteForce) {
  const auto [side, wrap] = GetParam();
  const Lattice lattice(side, wrap);
  for (NodeId u = 0; u < lattice.size(); u += 2) {
    for (Hop r = 0; r <= lattice.diameter() + 2; ++r) {
      std::size_t brute = 0;
      for (NodeId v = 0; v < lattice.size(); ++v) {
        if (lattice.distance(u, v) <= r) ++brute;
      }
      EXPECT_EQ(lattice.ball_size(u, r), brute);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SidesAndWraps, LatticeMetricTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 8, 9),
                       ::testing::Values(Wrap::Torus, Wrap::Grid)),
    [](const auto& info) {
      return "side" + std::to_string(std::get<0>(info.param)) + "_" +
             to_string(std::get<1>(info.param));
    });

TEST(LatticeBall, TorusBallFormulaInteriorRadius) {
  // For r < side/2 the torus L1 ball has the closed form 2r(r+1)+1.
  const Lattice lattice(101, Wrap::Torus);
  for (Hop r : {0u, 1u, 2u, 5u, 10u, 25u, 49u}) {
    EXPECT_EQ(lattice.ball_size(0, r),
              2u * static_cast<std::size_t>(r) * (r + 1) + 1);
  }
}

TEST(LatticeBall, BallIsTranslationInvariantOnTorus) {
  const Lattice lattice(9, Wrap::Torus);
  for (Hop r = 0; r <= lattice.diameter(); ++r) {
    const std::size_t reference = lattice.ball_size(0, r);
    for (NodeId u = 1; u < lattice.size(); u += 7) {
      EXPECT_EQ(lattice.ball_size(u, r), reference);
    }
  }
}

TEST(LatticeBall, GridCornerBallSmallerThanCenter) {
  const Lattice lattice(9, Wrap::Grid);
  const NodeId corner = lattice.node(Point{0, 0});
  const NodeId center = lattice.node(Point{4, 4});
  EXPECT_LT(lattice.ball_size(corner, 3), lattice.ball_size(center, 3));
}

TEST(LatticeBall, FullRadiusCoversEverything) {
  for (const Wrap wrap : {Wrap::Torus, Wrap::Grid}) {
    const Lattice lattice(6, wrap);
    for (NodeId u = 0; u < lattice.size(); ++u) {
      EXPECT_EQ(lattice.ball_size(u, lattice.diameter()), lattice.size());
    }
  }
}

TEST(LatticeMeanDistance, MatchesBruteForce) {
  for (const Wrap wrap : {Wrap::Torus, Wrap::Grid}) {
    const Lattice lattice(7, wrap);
    const NodeId u = lattice.node(Point{2, 3});
    double total = 0.0;
    for (NodeId v = 0; v < lattice.size(); ++v) {
      total += lattice.distance(u, v);
    }
    EXPECT_NEAR(lattice.mean_distance_to_random_node(u),
                total / static_cast<double>(lattice.size()), 1e-12);
  }
}

TEST(LatticeMeanDistance, TorusGrowsAsSqrtN) {
  // mean distance ≈ side/2 on a torus; ratio across sides tracks sqrt(n).
  const double d20 = Lattice(20, Wrap::Torus).mean_distance_to_random_node(0);
  const double d40 = Lattice(40, Wrap::Torus).mean_distance_to_random_node(0);
  EXPECT_NEAR(d40 / d20, 2.0, 0.1);
}

}  // namespace
}  // namespace proxcache
