// The materialized tier hierarchy end to end: TierSet layout and attach
// geometry, TieredTopology's metric against a BFS of its own adjacency,
// per-tier placement composition, the three cross-tier strategies through
// the batch engines (serial and sharded, width-invariant), the per-tier
// metrics slices, and the dynamic engine's tier queues. Complements
// test_tier_spec.cpp (grammar only) and test_tier_degenerate.cpp (the flat
// equivalence); this file is where the *real* hierarchies are proved out.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/simulation.hpp"
#include "event/engine.hpp"
#include "parallel/sharded_runner.hpp"
#include "strategy/spec.hpp"
#include "tier/materialize.hpp"
#include "tier/spec.hpp"
#include "tier/tier_set.hpp"
#include "tier/tiered_topology.hpp"

namespace proxcache {
namespace {

/// A small three-tier hierarchy that still has every structural feature:
/// multiple front clusters sharing one back cluster (so attach spreading
/// matters), a non-trivial back ring, and a two-node origin pool.
constexpr const char* kSmallSpec =
    "tiers(front=torus(side=4)x3, back=ring(n=12), origin=2)";

ExperimentConfig tiered_config(const char* strategy) {
  ExperimentConfig config;
  config.tier_spec = parse_tier_spec(kSmallSpec);
  config.num_files = 60;
  config.cache_size = 3;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 0.8;
  config.num_requests = 600;
  config.strategy_spec = parse_strategy_spec(strategy);
  config.seed = 0x7137;
  return config;
}

TEST(TierSetBuild, LayoutIsDenseFrontFirstAndRoundTrips) {
  const auto set = TierSet::build(parse_tier_spec(kSmallSpec), 3);
  ASSERT_EQ(set->num_tiers(), 3u);
  const auto& levels = set->levels();
  EXPECT_EQ(levels[0].base, 0u);
  EXPECT_EQ(levels[0].nodes, 48u);
  EXPECT_EQ(levels[1].base, 48u);
  EXPECT_EQ(levels[1].nodes, 12u);
  EXPECT_EQ(levels[2].base, 60u);
  EXPECT_EQ(levels[2].nodes, 2u);
  EXPECT_EQ(set->size(), 62u);
  EXPECT_TRUE(set->has_origin());
  EXPECT_TRUE(levels[2].is_origin());
  // Cache capacities: config default on cache tiers, 0 (full catalog) on
  // the origin.
  EXPECT_EQ(levels[0].cache_size, 3u);
  EXPECT_EQ(levels[1].cache_size, 3u);
  EXPECT_EQ(levels[2].cache_size, 0u);
  // locate/global_id are inverse bijections over the whole id space.
  for (NodeId u = 0; u < set->size(); ++u) {
    const TierSet::Location loc = set->locate(u);
    EXPECT_EQ(set->global_id(loc.tier, loc.cluster, loc.local), u);
    EXPECT_LT(loc.cluster, levels[loc.tier].clusters);
    EXPECT_LT(loc.local, levels[loc.tier].cluster_nodes);
  }
}

TEST(TierSetBuild, AttachPointsLandDeeperAndSpreadOverTheHostCluster) {
  const auto set = TierSet::build(parse_tier_spec(kSmallSpec), 3);
  const auto& levels = set->levels();
  for (std::uint32_t t = 0; t + 1 < set->num_tiers(); ++t) {
    std::map<NodeId, std::vector<std::uint32_t>> by_attach;
    for (std::uint32_t k = 0; k < levels[t].clusters; ++k) {
      const NodeId attach = set->attach(t, k);
      const TierSet::Location loc = set->locate(attach);
      EXPECT_EQ(loc.tier, t + 1) << "uplinks go exactly one tier down";
      by_attach[attach].push_back(k);
    }
    // Siblings sharing a host cluster must not pile onto one attach node
    // when the host has room to spread them: three front clusters over the
    // 12-node back ring get three distinct attach points.
    EXPECT_EQ(by_attach.size(),
              std::min<std::size_t>(levels[t].clusters,
                                    levels[t + 1].nodes))
        << "tier " << t;
  }
}

TEST(TieredTopologyMetric, DistanceMatchesBfsOfItsOwnAdjacency) {
  // link=1 so the composed graph is unweighted and plain BFS is the ground
  // truth. Two front tori over a ring and an origin: 9*2 + 8 + 1 nodes.
  const auto set = TierSet::build(
      parse_tier_spec("tiers(front=torus(side=3)x2, back=ring(n=8), "
                      "origin=1)"),
      2);
  const TieredTopology topology(set);
  const auto n = static_cast<NodeId>(topology.size());
  ASSERT_EQ(n, 27u);
  // Adjacency must be symmetric: the downlink scan is the exact inverse of
  // the attach map or routes exist one way only.
  std::vector<std::vector<NodeId>> adj(n);
  for (NodeId u = 0; u < n; ++u) adj[u] = topology.neighbors(u);
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : adj[u]) {
      ASSERT_LT(v, n);
      EXPECT_NE(std::find(adj[v].begin(), adj[v].end(), u), adj[v].end())
          << "edge " << u << "->" << v << " has no reverse";
    }
  }
  Hop max_seen = 0;
  for (NodeId source = 0; source < n; ++source) {
    std::vector<Hop> dist(n, kUnboundedRadius);
    std::deque<NodeId> queue{source};
    dist[source] = 0;
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const NodeId v : adj[u]) {
        if (dist[v] == kUnboundedRadius) {
          dist[v] = static_cast<Hop>(dist[u] + 1);
          queue.push_back(v);
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_NE(dist[v], kUnboundedRadius) << "composition is connected";
      EXPECT_EQ(topology.distance(source, v), dist[v])
          << "d(" << topology.node_label(source) << ", "
          << topology.node_label(v) << ")";
      EXPECT_EQ(topology.distance(v, source), dist[v]) << "symmetry";
      max_seen = std::max(max_seen, dist[v]);
    }
  }
  EXPECT_GE(topology.diameter(), max_seen)
      << "diameter() is a certified upper bound";
}

TEST(TieredTopologyMetric, FrontTierOwnsOriginsAndTheAnchor) {
  const auto set = TierSet::build(parse_tier_spec(kSmallSpec), 3);
  const TieredTopology topology(set);
  EXPECT_EQ(topology.origin_universe(), 48u)
      << "requests are born at front-tier nodes only";
  const TierSet::Location anchor = set->locate(topology.central_node());
  EXPECT_EQ(anchor.tier, 0u);
  EXPECT_EQ(anchor.cluster, 0u);
  EXPECT_EQ(topology.describe(), set->spec().to_string());
  EXPECT_EQ(topology.node_label(0).rfind("front#0:", 0), 0u);
}

TEST(TierMaterialize, ComposedPlacementRespectsTierCapacities) {
  const ExperimentConfig config = tiered_config("cross-two-choice");
  const auto topology = materialize_topology(config);
  const TieredTopology* tiered = topology->as_tiered();
  ASSERT_NE(tiered, nullptr);
  const Popularity popularity =
      config.popularity.materialize(config.num_files);
  const Placement placement =
      materialize_placement(config, *topology, popularity, 0);
  ASSERT_EQ(placement.num_nodes(), topology->size());
  EXPECT_EQ(placement.num_files(), config.num_files);
  const auto& levels = tiered->tier_set().levels();
  for (NodeId u = 0; u < placement.num_nodes(); ++u) {
    const TierSet::Location loc = tiered->tier_set().locate(u);
    if (levels[loc.tier].is_origin()) {
      EXPECT_EQ(placement.distinct_count(u), config.num_files)
          << "origin node " << u << " must replicate the full catalog";
    } else {
      EXPECT_LE(placement.distinct_count(u), config.cache_size)
          << "cache node " << u;
      EXPECT_GE(placement.distinct_count(u), 1u) << "cache node " << u;
    }
  }
  // An origin tier means no file can be unroutable.
  EXPECT_EQ(placement.files_with_replicas(), config.num_files);
}

/// Core fields plus the per-tier slices must agree exactly.
void expect_bit_identical(const RunResult& reference, const RunResult& other,
                          const std::string& label) {
  EXPECT_EQ(reference.max_load, other.max_load) << label;
  EXPECT_EQ(reference.comm_cost, other.comm_cost) << label;
  EXPECT_EQ(reference.requests, other.requests) << label;
  EXPECT_EQ(reference.fallbacks, other.fallbacks) << label;
  EXPECT_EQ(reference.dropped, other.dropped) << label;
  ASSERT_EQ(reference.tier_loads.size(), other.tier_loads.size()) << label;
  for (std::size_t t = 0; t < reference.tier_loads.size(); ++t) {
    EXPECT_EQ(reference.tier_loads[t].role, other.tier_loads[t].role)
        << label;
    EXPECT_EQ(reference.tier_loads[t].served, other.tier_loads[t].served)
        << label << " tier " << t;
    EXPECT_EQ(reference.tier_loads[t].max_load,
              other.tier_loads[t].max_load)
        << label << " tier " << t;
    EXPECT_EQ(reference.tier_loads[t].tail_p99,
              other.tier_loads[t].tail_p99)
        << label << " tier " << t;
  }
}

TEST(TieredEngine, CrossTierStrategiesSliceEveryRequestIntoSomeTier) {
  for (const char* name :
       {"cross-two-choice", "front-first", "cross-prox-weighted"}) {
    const ExperimentConfig config = tiered_config(name);
    const SimulationContext context(config);
    const RunResult result = context.run(0);
    ASSERT_EQ(result.tier_loads.size(), 3u) << name;
    EXPECT_EQ(result.tier_loads[0].role, "front") << name;
    EXPECT_EQ(result.tier_loads[1].role, "back") << name;
    EXPECT_EQ(result.tier_loads[2].role, "origin") << name;
    std::uint64_t served = 0;
    for (const TierLoadStats& tier : result.tier_loads) {
      served += tier.served;
      EXPECT_GE(tier.max_load, tier.tail_p99) << name << " " << tier.role;
    }
    EXPECT_EQ(served, result.requests)
        << name << ": tier slices must partition the served requests";
    EXPECT_EQ(result.origin_hits(), result.tier_loads[2].served) << name;
    EXPECT_GE(result.origin_offload(), 0.0) << name;
    EXPECT_LE(result.origin_offload(), 1.0) << name;
    EXPECT_GT(result.requests, 0u) << name;
  }
}

// The sharded engine's determinism contract extends to hierarchies: every
// width must reproduce the width-1 schedule bit-for-bit, per-tier slices
// included (the tier id rides the proposal arena through commit).
TEST(TieredEngine, ShardedWidthsAreBitIdenticalOnHierarchies) {
  for (const char* name : {"cross-two-choice", "front-first"}) {
    ExperimentConfig config = tiered_config(name);
    config.shard_batch = 64;
    const SimulationContext context(config);
    const RunResult reference = ShardedRunner(context, {1, 64}).run(0);
    EXPECT_GT(reference.requests, 0u);
    for (const std::uint32_t threads : {2u, 4u}) {
      expect_bit_identical(
          reference, ShardedRunner(context, {threads, 64}).run(0),
          std::string(name) + " threads=" + std::to_string(threads));
    }
    expect_bit_identical(
        reference,
        ShardedRunner(context, {4, 64, /*speculate=*/false}).run(0),
        std::string(name) + " commit=serial");
  }
}

TEST(TieredEngine, CrossStrategiesRequireAHierarchy) {
  // Flat config: the registry flags the strategy as tier-routing and
  // validation names the missing piece.
  ExperimentConfig flat;
  flat.num_nodes = 400;
  flat.strategy_spec = parse_strategy_spec("cross-two-choice");
  EXPECT_THROW(SimulationContext{flat}, std::invalid_argument);
  // A degenerate spec is still the flat path, so it must be rejected too.
  ExperimentConfig degenerate = flat;
  degenerate.num_nodes = 2025;
  degenerate.tier_spec = parse_tier_spec("tiers(front=torus(side=20))");
  EXPECT_THROW(SimulationContext{degenerate}, std::invalid_argument);
}

TEST(TieredEngine, ExperimentAggregatesPerTierSummaries) {
  const ExperimentConfig config = tiered_config("cross-two-choice");
  const ExperimentResult result = run_experiment(config, 3);
  ASSERT_EQ(result.tiers.size(), 3u);
  EXPECT_EQ(result.tiers[0].role, "front");
  EXPECT_EQ(result.tiers[2].role, "origin");
  for (const TierSummary& tier : result.tiers) {
    EXPECT_EQ(tier.served.count(), 3u) << tier.role;
    EXPECT_EQ(tier.max_load.count(), 3u) << tier.role;
  }
  EXPECT_EQ(result.origin_offload.count(), 3u);
  EXPECT_GE(result.origin_offload.mean(), 0.0);
  EXPECT_LE(result.origin_offload.mean(), 1.0);
  // Flat runs must not grow the hierarchy metrics.
  ExperimentConfig flat;
  flat.num_nodes = 400;
  flat.num_files = 60;
  flat.cache_size = 3;
  const ExperimentResult flat_result = run_experiment(flat, 2);
  EXPECT_TRUE(flat_result.tiers.empty());
  EXPECT_EQ(flat_result.origin_offload.count(), 0u);
}

TEST(TieredEngine, DynamicEngineSlicesQueuesByTier) {
  DynamicConfig config;
  config.network = tiered_config("cross-two-choice");
  config.horizon = 60.0;
  const DynamicResult result = run_dynamic(config, 0x9D1);
  ASSERT_EQ(result.tier_queues.size(), 3u);
  EXPECT_EQ(result.tier_queues[0].role, "front");
  EXPECT_EQ(result.tier_queues[1].role, "back");
  EXPECT_EQ(result.tier_queues[2].role, "origin");
  std::uint64_t admitted = 0;
  for (const auto& tier : result.tier_queues) admitted += tier.admitted;
  EXPECT_EQ(admitted, result.admitted)
      << "tier queue slices must partition the admitted jobs";
  EXPECT_GT(result.admitted, 0u);
  // The flat path stays tier-silent.
  DynamicConfig flat;
  flat.network.num_nodes = 400;
  flat.horizon = 20.0;
  const DynamicResult flat_result = run_dynamic(flat, 0x9D1);
  EXPECT_TRUE(flat_result.tier_queues.empty());
  EXPECT_EQ(flat_result.origin_fetches, 0u);
}

}  // namespace
}  // namespace proxcache
