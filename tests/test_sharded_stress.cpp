// Stress suite for the sharded engine, registered under the `slow` ctest
// label and exercised by the TSan CI job: (1) a 10k-replication Monte-Carlo
// sweep where every replication itself runs sharded — replication-level
// chunked submission on an outer pool nested over per-run worker pools —
// checked bit-identical against the sequential execution of the same
// sweep; (2) a long single run with a deliberately tiny batch and many
// threads, maximizing batch-boundary and worker-handoff crossings, checked
// against the engine's inline serial schedule. Any shard race — a worker
// touching live loads, a commit overtaking a proposal, a lane sharing
// scratch — shows up here as a metrics divergence (or as a ThreadSanitizer
// report in the tsan preset).
#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hpp"
#include "core/simulation.hpp"
#include "parallel/sharded_runner.hpp"
#include "parallel/thread_pool.hpp"
#include "strategy/registry.hpp"

namespace proxcache {
namespace {

void expect_identical_experiments(const ExperimentResult& a,
                                  const ExperimentResult& b,
                                  const std::string& label) {
  EXPECT_EQ(a.runs, b.runs) << label;
  EXPECT_EQ(a.max_load.mean(), b.max_load.mean()) << label;
  EXPECT_EQ(a.max_load.min(), b.max_load.min()) << label;
  EXPECT_EQ(a.max_load.max(), b.max_load.max()) << label;
  EXPECT_EQ(a.max_load.variance(), b.max_load.variance()) << label;
  EXPECT_EQ(a.comm_cost.mean(), b.comm_cost.mean()) << label;
  EXPECT_EQ(a.comm_cost.variance(), b.comm_cost.variance()) << label;
  EXPECT_EQ(a.fallback_rate, b.fallback_rate) << label;
  EXPECT_EQ(a.resample_rate, b.resample_rate) << label;
  EXPECT_EQ(a.drop_rate, b.drop_rate) << label;
  EXPECT_EQ(a.pooled_load_histogram.counts(),
            b.pooled_load_histogram.counts())
      << label;
}

// 10k sharded replications, submitted to an outer pool in worker-sized
// chunks (run_experiment's submission policy), each replication spinning
// its own inner engine pool. The pooled sweep must reproduce the
// sequential sweep exactly — nested pools and chunked submission may not
// leak into results.
TEST(ShardedStress, TenThousandShardedReplicationsChunkedSubmission) {
  ExperimentConfig config;
  config.num_nodes = 100;
  config.num_files = 40;
  config.cache_size = 4;
  config.num_requests = 50;
  config.threads = 2;
  config.shard_batch = 16;
  config.strategy_spec = parse_strategy_spec("two-choice(r=4)");
  config.seed = 0x57E5;
  const SimulationContext context(config);

  constexpr std::size_t kRuns = 10000;
  ThreadPool outer(4);
  const ExperimentResult pooled = run_experiment(context, kRuns, &outer);
  const ExperimentResult sequential = run_experiment(context, kRuns, nullptr);
  expect_identical_experiments(pooled, sequential,
                               "10k sharded replications");
  EXPECT_EQ(pooled.runs, kRuns);
}

// The race hunt: one long run, 8 threads, batch 64 (thousands of pipeline
// handoffs), stale view + (1+β) + finite radius all active, against the
// inline serial schedule. Repeated across two run indices so placement and
// trace differ.
TEST(ShardedStress, LongSingleRunShardRaceHunt) {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  config.num_requests = 200000;
  config.strategy_spec =
      parse_strategy_spec("two-choice(r=4, beta=0.7, stale=5)");
  config.seed = 0x8ACE;
  const SimulationContext context(config);
  for (std::uint64_t run_index = 0; run_index < 2; ++run_index) {
    const RunResult reference = ShardedRunner(context, {1, 64}).run(run_index);
    const RunResult sharded = ShardedRunner(context, {8, 64}).run(run_index);
    const std::string label = "race hunt run " + std::to_string(run_index);
    EXPECT_EQ(reference.max_load, sharded.max_load) << label;
    EXPECT_EQ(reference.comm_cost, sharded.comm_cost) << label;
    EXPECT_EQ(reference.requests, sharded.requests) << label;
    EXPECT_EQ(reference.fallbacks, sharded.fallbacks) << label;
    EXPECT_EQ(reference.dropped, sharded.dropped) << label;
    EXPECT_EQ(reference.load_histogram.counts(),
              sharded.load_histogram.counts())
        << label;
  }
}

// Engine counters sanity on a sharded run: every admitted request is
// proposed off-thread exactly once and lane totals tile the request count.
TEST(ShardedStress, ShardStatsTileTheRun) {
  ExperimentConfig config;
  config.num_nodes = 100;
  config.num_files = 40;
  config.cache_size = 4;
  config.num_requests = 5000;
  config.strategy_spec = parse_strategy_spec("two-choice");
  config.seed = 0x57A7;
  const SimulationContext context(config);
  ShardStats stats;
  const RunResult result = ShardedRunner(context, {4, 512}).run(0, &stats);
  EXPECT_EQ(stats.requests, 5000u);
  EXPECT_EQ(stats.proposed_off_thread, 5000u);
  EXPECT_EQ(stats.batches, (5000u + 511u) / 512u);
  std::uint64_t lane_total = 0;
  for (const std::uint64_t lane : stats.lane_requests) lane_total += lane;
  EXPECT_EQ(lane_total, 5000u);
  EXPECT_EQ(result.requests + result.dropped,
            static_cast<std::uint64_t>(config.num_requests));
}

}  // namespace
}  // namespace proxcache
