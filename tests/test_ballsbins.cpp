// Tests for ballsbins/processes and theory: conservation, the classical
// one-vs-two-choice gap, d-monotonicity, and the reference formulas.
#include "ballsbins/processes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ballsbins/theory.hpp"
#include "stats/summary.hpp"

namespace proxcache::ballsbins {
namespace {

TEST(OneChoice, ConservesBalls) {
  Rng rng(1);
  const AllocationResult result = one_choice(100, 1000, rng);
  EXPECT_EQ(result.total(), 1000u);
  EXPECT_EQ(result.loads.size(), 100u);
  Load max = 0;
  for (const Load l : result.loads) max = std::max(max, l);
  EXPECT_EQ(result.max_load, max);
}

TEST(OneChoice, MaxLoadAtLeastAverage) {
  Rng rng(2);
  const AllocationResult result = one_choice(50, 500, rng);
  EXPECT_GE(result.max_load, 10u);  // ceil(m/n)
}

TEST(OneChoice, RejectsZeroBins) {
  Rng rng(3);
  EXPECT_THROW(one_choice(0, 10, rng), std::invalid_argument);
}

TEST(DChoice, ConservesBalls) {
  Rng rng(4);
  const AllocationResult result = d_choice(64, 640, 2, rng);
  EXPECT_EQ(result.total(), 640u);
}

TEST(DChoice, DEqualOneMatchesOneChoiceOrder) {
  // Both are single uniform choices; distributions coincide. Compare means
  // of max load over replications (same order, generous tolerance).
  Summary one;
  Summary d1;
  for (std::uint64_t s = 0; s < 40; ++s) {
    Rng rng_a(100 + s);
    Rng rng_b(100 + s);
    one.add(one_choice(128, 128, rng_a).max_load);
    d1.add(d_choice(128, 128, 1, rng_b).max_load);
  }
  EXPECT_NEAR(one.mean(), d1.mean(), 0.8);
}

TEST(DChoice, RejectsBadD) {
  Rng rng(5);
  EXPECT_THROW(d_choice(10, 10, 0, rng), std::invalid_argument);
  EXPECT_THROW(d_choice(10, 10, 11, rng), std::invalid_argument);
  EXPECT_THROW(d_choice(100, 10, 9, rng), std::invalid_argument);
}

TEST(DChoice, TwoChoicesBeatOneChoice) {
  // The headline exponential gap: at n = m = 1024, one-choice max load is
  // ~log n/log log n ≈ 4–6 while two-choice is ~log log n ≈ 3.
  Summary one;
  Summary two;
  for (std::uint64_t s = 0; s < 30; ++s) {
    Rng rng_a(7 + s);
    Rng rng_b(7 + s);
    one.add(one_choice(1024, 1024, rng_a).max_load);
    two.add(d_choice(1024, 1024, 2, rng_b).max_load);
  }
  EXPECT_GT(one.mean(), two.mean() + 0.8);
}

TEST(DChoice, MoreChoicesNeverHurt) {
  Summary two;
  Summary four;
  for (std::uint64_t s = 0; s < 30; ++s) {
    Rng rng_a(50 + s);
    Rng rng_b(50 + s);
    two.add(d_choice(512, 512, 2, rng_a).max_load);
    four.add(d_choice(512, 512, 4, rng_b).max_load);
  }
  EXPECT_GE(two.mean() + 0.3, four.mean());
}

TEST(DChoice, AllBinsChosenWhenDEqualsN) {
  // d = n: every ball sees all bins → perfectly balanced allocation.
  Rng rng(6);
  const AllocationResult result = d_choice(8, 64, 8, rng);
  for (const Load l : result.loads) EXPECT_EQ(l, 8u);
  EXPECT_EQ(result.max_load, 8u);
}

TEST(DChoiceAllocator, IncrementalPlacementTracksLoads) {
  Rng rng(7);
  DChoiceAllocator allocator(10, 2);
  std::uint64_t total = 0;
  for (int i = 0; i < 100; ++i) {
    const std::size_t bin = allocator.place(rng);
    EXPECT_LT(bin, 10u);
    ++total;
  }
  std::uint64_t sum = 0;
  for (const Load l : allocator.loads()) sum += l;
  EXPECT_EQ(sum, total);
}

TEST(Theory, ReferenceFormulas) {
  EXPECT_NEAR(two_choice_reference(1024, 2),
              std::log(std::log(1024.0)) / std::log(2.0), 1e-12);
  EXPECT_NEAR(one_choice_reference(1024),
              std::log(1024.0) / std::log(std::log(1024.0)), 1e-12);
  EXPECT_NEAR(log_reference(1024), std::log(1024.0), 1e-12);
  EXPECT_GT(one_choice_reference(1024), two_choice_reference(1024));
  EXPECT_THROW(two_choice_reference(2), std::invalid_argument);
  EXPECT_THROW(two_choice_reference(100, 1), std::invalid_argument);
}

TEST(Theory, KenthapadiBoundDenseVsSparse) {
  // The bound only bites once Δ/log⁴n is genuinely large, so evaluate at an
  // asymptotic-scale n. Dense graph (Δ = n^0.9): bound ~ log log n + O(1);
  // sparse graph (Δ <= log⁴ n): collapses to the one-choice order.
  const std::size_t n = 1000000000000ull;  // 10^12
  const double dense = kenthapadi_bound(n, std::pow(1e12, 0.9));
  const double sparse = kenthapadi_bound(n, 10.0);
  EXPECT_LT(dense, sparse);
  EXPECT_NEAR(sparse, one_choice_reference(n), 1e-12);
}

TEST(Theory, Theorem4RegimeBoundary) {
  // α + 2β clearly above the n-dependent threshold: holds; below: does not.
  // At n = 2^20 the threshold is 1 + 2·log log n / log n ≈ 1.379.
  EXPECT_TRUE(theorem4_regime_holds(1u << 20, 0.5, 0.5));    // 1.5 >= 1.379
  EXPECT_FALSE(theorem4_regime_holds(1u << 20, 0.2, 0.2));   // 0.6 < 1
  // Exactly 1: fails because of the +2 log log n / log n slack.
  EXPECT_FALSE(theorem4_regime_holds(1u << 20, 0.5, 0.25));
}

}  // namespace
}  // namespace proxcache::ballsbins
