// Golden-master determinism tests: lock in the documented seed contract.
// For fixed configs covering each strategy/fallback combination,
// `run_experiment` metrics must be bit-identical across thread-pool sizes
// {nullptr, 1, 4} and across repeated invocations — and the default-config
// Static trace must keep reproducing the exact numbers it produced before
// the TraceSource refactor.
#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hpp"
#include "event/engine.hpp"
#include "parallel/sharded_runner.hpp"
#include "scenario/registry.hpp"

namespace proxcache {
namespace {

/// All runner-visible metrics of two results must agree exactly —
/// EXPECT_EQ on doubles is deliberate (bitwise-equal aggregation, not
/// "close enough").
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.max_load.mean(), b.max_load.mean());
  EXPECT_EQ(a.max_load.variance(), b.max_load.variance());
  EXPECT_EQ(a.comm_cost.mean(), b.comm_cost.mean());
  EXPECT_EQ(a.comm_cost.variance(), b.comm_cost.variance());
  EXPECT_EQ(a.fallback_rate, b.fallback_rate);
  EXPECT_EQ(a.resample_rate, b.resample_rate);
  EXPECT_EQ(a.drop_rate, b.drop_rate);
  EXPECT_EQ(a.pooled_load_histogram.total(),
            b.pooled_load_histogram.total());
  EXPECT_EQ(a.pooled_load_histogram.counts(),
            b.pooled_load_histogram.counts());
}

void expect_pool_invariant(const ExperimentConfig& config) {
  const std::size_t runs = 6;
  const ExperimentResult sequential = run_experiment(config, runs, nullptr);
  ThreadPool single(1);
  const ExperimentResult one_thread = run_experiment(config, runs, &single);
  ThreadPool quad(4);
  const ExperimentResult four_threads = run_experiment(config, runs, &quad);
  const ExperimentResult again = run_experiment(config, runs, &quad);
  expect_identical(sequential, one_thread);
  expect_identical(sequential, four_threads);
  expect_identical(sequential, again);
}

// Config 1: Strategy I (nearest replica) + Resample missing-file policy.
TEST(Determinism, NearestReplicaResample) {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 0.9;
  config.strategy_spec = parse_strategy_spec("nearest");
  config.seed = 101;
  expect_pool_invariant(config);
}

// Config 2: Strategy II, finite radius, ExpandRadius fallback.
TEST(Determinism, TwoChoiceExpandRadius) {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  config.strategy_spec =
      parse_strategy_spec("two-choice(r=5, fallback=expand)");
  config.seed = 202;
  expect_pool_invariant(config);
}

// Config 3: Strategy II with NearestReplica fallback, stale loads, (1+β)
// mixing, hotspot origins, and the Drop missing-file policy.
TEST(Determinism, TwoChoiceNearestFallbackStaleBeta) {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 4;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 1.1;
  config.origins.kind = OriginKind::Hotspot;
  config.origins.hotspot_fraction = 0.5;
  config.origins.hotspot_radius = 3;
  config.missing = MissingFilePolicy::Drop;
  config.strategy_spec = parse_strategy_spec(
      "two-choice(r=4, fallback=nearest, beta=0.8, stale=4)");
  config.seed = 303;
  expect_pool_invariant(config);
}

// The scenario engine inherits the contract: a time-varying trace process
// is just as pool-invariant as the static one.
TEST(Determinism, ScenarioTraceSourcesArePoolInvariant) {
  ExperimentConfig config = ScenarioRegistry::built_ins()
                                .at("flash-crowd")
                                .config;
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  config.seed = 404;
  expect_pool_invariant(config);

  config = ScenarioRegistry::built_ins().at("churn").config;
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  config.seed = 505;
  expect_pool_invariant(config);
}

// Golden master for the Static seed contract: the default config's first
// run produced exactly these numbers before the TraceSource refactor, and
// must keep producing them. Every quantity below is integer-derived
// (uniform popularity, hop counts), so the values are platform-portable.
TEST(Determinism, StaticSeedContractGoldenMaster) {
  const ExperimentConfig config;  // n=2025, K=500, M=10, seed=0x5EED
  const RunResult result = run_simulation(config, 0);
  EXPECT_EQ(result.max_load, 3u);
  EXPECT_EQ(result.requests, 2025u);
  EXPECT_EQ(result.fallbacks, 0u);
  EXPECT_EQ(result.resampled, 0u);
  EXPECT_EQ(result.dropped, 0u);
  // Mean hops per request; an exact rational (total hops / 2025).
  EXPECT_DOUBLE_EQ(result.comm_cost, 22.430617283950617);
}

// The streaming entry point inherits the golden numbers: a shared
// SimulationContext must reproduce exactly what the one-shot
// run_simulation produced before the streaming refactor, run after run.
TEST(Determinism, SimulationContextMatchesStaticGoldenMaster) {
  const ExperimentConfig config;  // n=2025, K=500, M=10, seed=0x5EED
  const SimulationContext context(config);
  const RunResult result = context.run(0);
  EXPECT_EQ(result.max_load, 3u);
  EXPECT_EQ(result.requests, 2025u);
  EXPECT_EQ(result.fallbacks, 0u);
  EXPECT_EQ(result.resampled, 0u);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_DOUBLE_EQ(result.comm_cost, 22.430617283950617);
  // Context reuse never perturbs later runs: run 0 repeated after run 1
  // must still match, and must agree with the one-shot entry point.
  const RunResult later = context.run(1);
  const RunResult again = context.run(0);
  EXPECT_EQ(again.max_load, result.max_load);
  EXPECT_EQ(again.comm_cost, result.comm_cost);
  const RunResult oneshot = run_simulation(config, 1);
  EXPECT_EQ(later.max_load, oneshot.max_load);
  EXPECT_EQ(later.comm_cost, oneshot.comm_cost);
  EXPECT_EQ(later.requests, oneshot.requests);
}

// One SimulationContext shared across a thread pool is as pool-invariant
// as the config entry point.
TEST(Determinism, SharedContextIsPoolInvariant) {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 0.9;
  config.strategy_spec = parse_strategy_spec("two-choice(r=5)");
  config.seed = 606;
  const SimulationContext context(config);
  const std::size_t runs = 6;
  const ExperimentResult sequential = run_experiment(context, runs, nullptr);
  ThreadPool single(1);
  const ExperimentResult one_thread = run_experiment(context, runs, &single);
  ThreadPool quad(4);
  const ExperimentResult four_threads = run_experiment(context, runs, &quad);
  expect_identical(sequential, one_thread);
  expect_identical(sequential, four_threads);
  // And the context overload agrees with the config overload bit-for-bit.
  expect_identical(sequential, run_experiment(config, runs, nullptr));
}

// The strategy registry inherits the seed contract: the default config
// routed through an explicit StrategySpec (the registry path) must keep
// reproducing the exact pre-redesign golden numbers for both paper
// strategies. This is the proof that the StrategySpec/StrategyRegistry
// redesign is behavior-preserving where it overlaps the paper.
TEST(Determinism, RegistrySpecPathMatchesEnumGoldenMaster) {
  ExperimentConfig config;  // n=2025, K=500, M=10, seed=0x5EED
  config.strategy_spec = parse_strategy_spec("two-choice(d=2)");
  const RunResult two_choice = run_simulation(config, 0);
  EXPECT_EQ(two_choice.max_load, 3u);
  EXPECT_EQ(two_choice.requests, 2025u);
  EXPECT_EQ(two_choice.fallbacks, 0u);
  EXPECT_EQ(two_choice.resampled, 0u);
  EXPECT_EQ(two_choice.dropped, 0u);
  EXPECT_DOUBLE_EQ(two_choice.comm_cost, 22.430617283950617);

  // And the nearest-replica golden from the Hotspot contract below, via
  // the registry path.
  ExperimentConfig hotspot;
  hotspot.num_nodes = 1024;
  hotspot.num_files = 300;
  hotspot.cache_size = 8;
  hotspot.origins.kind = OriginKind::Hotspot;
  hotspot.origins.hotspot_fraction = 0.6;
  hotspot.origins.hotspot_radius = 4;
  hotspot.strategy_spec = parse_strategy_spec("nearest");
  hotspot.seed = 1234;
  const RunResult nearest = run_simulation(hotspot, 0);
  EXPECT_EQ(nearest.max_load, 14u);
  EXPECT_EQ(nearest.requests, 1024u);
  EXPECT_DOUBLE_EQ(nearest.comm_cost, 3.9404296875);
}

// A parameter-free spec and its defaults-spelled-out twin are bit-identical
// on every scenario preset (with_defaults is the single source of effective
// values, so the two routes must collapse to the same run).
TEST(Determinism, SpecPathIsPresetInvariant) {
  for (const Scenario& scenario : ScenarioRegistry::built_ins().all()) {
    ExperimentConfig base = scenario.config;
    base.num_nodes = 400;
    base.num_files = 80;
    base.cache_size = 6;
    base.seed = 808;
    const std::pair<const char*, const char*> twins[] = {
        {"nearest", "nearest(stale=1)"},
        {"two-choice", "two-choice(d=2, r=inf, beta=1, fallback=expand)"},
    };
    for (const auto& [terse, spelled] : twins) {
      ExperimentConfig a_config = base;
      a_config.strategy_spec = parse_strategy_spec(terse);
      ExperimentConfig b_config = base;
      b_config.strategy_spec = parse_strategy_spec(spelled);
      const RunResult a = run_simulation(a_config, 0);
      const RunResult b = run_simulation(b_config, 0);
      EXPECT_EQ(a.max_load, b.max_load) << scenario.name << " " << terse;
      EXPECT_EQ(a.comm_cost, b.comm_cost) << scenario.name << " " << terse;
      EXPECT_EQ(a.requests, b.requests) << scenario.name << " " << terse;
      EXPECT_EQ(a.fallbacks, b.fallbacks) << scenario.name << " " << terse;
      EXPECT_EQ(a.load_histogram.counts(), b.load_histogram.counts())
          << scenario.name << " " << terse;
    }
  }
}

// The new registry strategies satisfy the same reproducibility contract as
// the paper pair: pool-invariant and rerun-stable.
TEST(Determinism, ExtensionStrategiesArePoolInvariant) {
  ExperimentConfig config;
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 0.9;
  config.seed = 707;
  config.strategy_spec = parse_strategy_spec("least-loaded(r=8)");
  expect_pool_invariant(config);
  config.strategy_spec = parse_strategy_spec("prox-weighted(d=2, alpha=1.5)");
  expect_pool_invariant(config);
}

// Golden masters for the *sharded* engine's seed contract (threads >= 2).
// The sharded path deliberately draws strategy randomness from per-request
// pinned streams instead of the serial loop's one sequential stream (see
// parallel/sharded_runner.hpp), so its numbers differ from the serial
// goldens above — e.g. the hotspot nearest run lands on max_load 13 where
// the serial stream's tie-breaks landed on 14. What it promises instead:
// these exact values for every thread count >= 2 and every batch size,
// forever. A change here means the sharded seed contract broke.
TEST(Determinism, ShardedSeedContractGoldenMaster) {
  ExperimentConfig config;  // n=2025, K=500, M=10, seed=0x5EED
  config.threads = 4;
  const SimulationContext context(config);
  const RunResult result = context.run(0);
  EXPECT_EQ(result.max_load, 3u);
  EXPECT_EQ(result.requests, 2025u);
  EXPECT_EQ(result.fallbacks, 0u);
  EXPECT_EQ(result.resampled, 0u);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_DOUBLE_EQ(result.comm_cost, 22.363950617283951);

  // The same numbers from every other engine width and batch size,
  // including the width-1 inline schedule.
  for (const ShardedRunOptions options :
       {ShardedRunOptions{1, 4096}, ShardedRunOptions{2, 256},
        ShardedRunOptions{8, 37}}) {
    const RunResult other = ShardedRunner(context, options).run(0);
    EXPECT_EQ(other.max_load, result.max_load);
    EXPECT_EQ(other.requests, result.requests);
    EXPECT_EQ(other.comm_cost, result.comm_cost);
  }

  // Hotspot + nearest under the sharded contract. The trace (and with it
  // comm_cost, which nearest fully determines up to replica tie-breaks) is
  // generated on the identical sequential stream as the serial engine.
  ExperimentConfig hotspot;
  hotspot.num_nodes = 1024;
  hotspot.num_files = 300;
  hotspot.cache_size = 8;
  hotspot.origins.kind = OriginKind::Hotspot;
  hotspot.origins.hotspot_fraction = 0.6;
  hotspot.origins.hotspot_radius = 4;
  hotspot.strategy_spec = parse_strategy_spec("nearest");
  hotspot.seed = 1234;
  hotspot.threads = 4;
  const RunResult nearest = SimulationContext(hotspot).run(0);
  EXPECT_EQ(nearest.max_load, 13u);
  EXPECT_EQ(nearest.requests, 1024u);
  EXPECT_DOUBLE_EQ(nearest.comm_cost, 3.9404296875);
}

// Golden master for the Hotspot origin draw order (bernoulli, then disc or
// uniform draw): these values were produced by the pre-TraceSource
// `generate_trace` at the same seed and must never change. Uniform
// popularity keeps every quantity integer-derived and platform-portable.
TEST(Determinism, HotspotSeedContractGoldenMaster) {
  ExperimentConfig config;
  config.num_nodes = 1024;
  config.num_files = 300;
  config.cache_size = 8;
  config.origins.kind = OriginKind::Hotspot;
  config.origins.hotspot_fraction = 0.6;
  config.origins.hotspot_radius = 4;
  config.strategy_spec = parse_strategy_spec("nearest");
  config.seed = 1234;
  const RunResult result = run_simulation(config, 0);
  EXPECT_EQ(result.max_load, 14u);
  EXPECT_EQ(result.requests, 1024u);
  EXPECT_EQ(result.resampled, 0u);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_DOUBLE_EQ(result.comm_cost, 3.9404296875);
}

// Golden master for the dynamic mode: a flash-crowd pulse over every
// evolving policy × two strategies × two topologies must be bit-identical
// across reruns — counters, aggregates, and the whole windowed series.
// Event times flow through libm (log/exp), so unlike the integer-derived
// goldens above the doubles are locked by rerun equality, not by pinned
// cross-platform constants; the integer counters additionally get
// structural sanity checks (the crowd must actually churn the caches).
TEST(Determinism, DynamicFlashCrowdGoldenMaster) {
  for (const char* topology : {"torus(side=20)", "ring(n=400)"}) {
    for (const char* strategy : {"nearest", "two-choice(d=2, r=8)"}) {
      for (const char* policy :
           {"lru(capacity=4)", "lfu(capacity=4)",
            "ewma(capacity=4, decay=0.3)"}) {
        SCOPED_TRACE(std::string(topology) + " / " + strategy + " / " +
                     policy);
        DynamicConfig config;
        config.network.topology_spec = parse_topology_spec(topology);
        config.network.num_files = 60;
        config.network.cache_size = 6;
        config.network.trace.kind = TraceKind::FlashCrowd;
        config.network.trace.arrival_rate = 0.6;
        config.network.strategy_spec = parse_strategy_spec(strategy);
        config.cache_policy = parse_cache_policy_spec(policy);
        config.horizon = 60.0;
        config.metric_windows = 6;
        config.network.seed = 77;

        const DynamicResult a = run_dynamic(config, 77);
        const DynamicResult b = run_dynamic(config, 77);

        // The pulse must exercise the dynamic machinery, not idle past it.
        EXPECT_GT(a.admitted, 1000u);
        EXPECT_GT(a.misses, 0u);
        EXPECT_GT(a.evictions, 0u);
        EXPECT_GT(a.hit_rate, 0.0);
        EXPECT_LT(a.hit_rate, 1.0);

        EXPECT_EQ(a.admitted, b.admitted);
        EXPECT_EQ(a.lost, b.lost);
        EXPECT_EQ(a.dropped, b.dropped);
        EXPECT_EQ(a.hits, b.hits);
        EXPECT_EQ(a.misses, b.misses);
        EXPECT_EQ(a.inserts, b.inserts);
        EXPECT_EQ(a.evictions, b.evictions);
        EXPECT_EQ(a.queueing.completed, b.queueing.completed);
        EXPECT_EQ(a.queueing.max_queue, b.queueing.max_queue);
        EXPECT_EQ(a.queueing.mean_sojourn, b.queueing.mean_sojourn);
        EXPECT_EQ(a.queueing.mean_queue, b.queueing.mean_queue);
        EXPECT_EQ(a.queueing.mean_hops, b.queueing.mean_hops);
        EXPECT_EQ(a.queueing.utilization, b.queueing.utilization);
        EXPECT_EQ(a.hit_rate, b.hit_rate);
        EXPECT_EQ(a.p99_sojourn, b.p99_sojourn);
        ASSERT_EQ(a.windows.size(), b.windows.size());
        for (std::size_t i = 0; i < a.windows.size(); ++i) {
          EXPECT_EQ(a.windows[i].arrivals, b.windows[i].arrivals);
          EXPECT_EQ(a.windows[i].completed, b.windows[i].completed);
          EXPECT_EQ(a.windows[i].hits, b.windows[i].hits);
          EXPECT_EQ(a.windows[i].misses, b.windows[i].misses);
          EXPECT_EQ(a.windows[i].max_queue, b.windows[i].max_queue);
          EXPECT_EQ(a.windows[i].hit_rate, b.windows[i].hit_rate);
          EXPECT_EQ(a.windows[i].mean_sojourn, b.windows[i].mean_sojourn);
          EXPECT_EQ(a.windows[i].p99_sojourn, b.windows[i].p99_sojourn);
        }
      }
    }
  }
}

}  // namespace
}  // namespace proxcache
