// Cross-module integration tests: small-scale versions of the paper's
// regime claims (§IV examples, Theorems 1/4 shapes, Lemma 3's edge-sampling
// property) wired through the full simulation stack.
#include <gtest/gtest.h>

#include <map>

#include "ballsbins/processes.hpp"
#include "core/experiment.hpp"
#include "core/two_choice.hpp"
#include "graph/config_graph.hpp"
#include "spatial/replica_index.hpp"

namespace proxcache {
namespace {

TEST(Integration, TwoChoiceBeatsNearestAtHighReplication) {
  // High replication (M/K large): Strategy II should balance much better.
  ExperimentConfig nearest;
  nearest.num_nodes = 1024;
  nearest.num_files = 16;
  nearest.cache_size = 8;
  nearest.seed = 1;
  nearest.strategy_spec = parse_strategy_spec("nearest");
  ExperimentConfig two = nearest;
  two.strategy_spec = parse_strategy_spec("two-choice");

  const ExperimentResult rn = run_experiment(nearest, 10);
  const ExperimentResult rt = run_experiment(two, 10);
  EXPECT_LT(rt.max_load.mean() + 0.5, rn.max_load.mean());
}

TEST(Integration, Example1FullMemoryMatchesClassicTwoChoice) {
  // M = K, r = ∞ (paper Example 1): Strategy II is the standard balanced
  // allocation process; max load should sit near the d=2 balls-in-bins run.
  ExperimentConfig config;
  config.num_nodes = 1024;
  config.num_files = 4;
  config.cache_size = 64;  // with-replacement draws cover all 4 files whp
  config.seed = 2;
  config.strategy_spec = parse_strategy_spec("two-choice");
  const ExperimentResult cache_result = run_experiment(config, 10);

  Summary classic;
  for (std::uint64_t s = 0; s < 10; ++s) {
    Rng rng(100 + s);
    classic.add(ballsbins::d_choice(1024, 1024, 2, rng).max_load);
  }
  EXPECT_NEAR(cache_result.max_load.mean(), classic.mean(), 1.0);
}

TEST(Integration, Example2LowMemoryAnnihilatesTwoChoices) {
  // K = n, M = 1 (paper Example 2 regime): replication is too thin for the
  // power of two choices; Strategy II behaves like one-choice-with-structure
  // and its max load exceeds the classical two-choice level clearly.
  ExperimentConfig config;
  config.num_nodes = 1024;
  config.num_files = 1024;
  config.cache_size = 1;
  config.seed = 3;
  config.strategy_spec = parse_strategy_spec("two-choice");
  const ExperimentResult result = run_experiment(config, 10);

  Summary classic;
  for (std::uint64_t s = 0; s < 10; ++s) {
    Rng rng(200 + s);
    classic.add(ballsbins::d_choice(1024, 1024, 2, rng).max_load);
  }
  EXPECT_GT(result.max_load.mean(), classic.mean() + 0.7);
}

TEST(Integration, Example3SmallLibraryKeepsTwoChoices) {
  // K = n^{1-ε}, M = 1 (paper Example 3): disjoint sub-problems each with
  // n/K ≈ 32 replicas; two choices survive.
  ExperimentConfig config;
  config.num_nodes = 1024;
  config.num_files = 32;  // n^(1/2)
  config.cache_size = 1;
  config.seed = 4;
  config.strategy_spec = parse_strategy_spec("two-choice");
  const ExperimentResult result = run_experiment(config, 10);
  // Max load should stay close to the two-choice order (log log n ≈ 2–4),
  // far below the Example 2 regime.
  EXPECT_LT(result.max_load.mean(), 5.0);
}

TEST(Integration, CostOrderingAcrossStrategies) {
  // nearest <= two-choice(r) <= two-choice(∞) in communication cost.
  ExperimentConfig base;
  base.num_nodes = 625;
  base.num_files = 50;
  base.cache_size = 5;
  base.seed = 5;

  ExperimentConfig nearest = base;
  nearest.strategy_spec = parse_strategy_spec("nearest");
  ExperimentConfig bounded = base;
  bounded.strategy_spec = parse_strategy_spec("two-choice(r=6)");
  ExperimentConfig unbounded = base;
  unbounded.strategy_spec = parse_strategy_spec("two-choice");

  const double cn = run_experiment(nearest, 8).comm_cost.mean();
  const double cb = run_experiment(bounded, 8).comm_cost.mean();
  const double cu = run_experiment(unbounded, 8).comm_cost.mean();
  EXPECT_LE(cn, cb + 0.2);
  EXPECT_LT(cb, cu);
}

TEST(Integration, RadiusTradeoffMonotoneInCost) {
  // Growing r monotonically raises communication cost (Fig. 5's x-axis).
  ExperimentConfig config;
  config.num_nodes = 625;
  config.num_files = 50;
  config.cache_size = 10;
  config.seed = 6;
  config.strategy_spec = parse_strategy_spec("two-choice");
  double last_cost = -1.0;
  for (const Hop r : {2u, 4u, 8u, 16u}) {
    config.strategy_spec.params["r"] = r;
    const double cost = run_experiment(config, 8).comm_cost.mean();
    EXPECT_GT(cost, last_cost);
    last_cost = cost;
  }
}

TEST(Integration, FallbackRateVanishesInGoodRegime) {
  // Theorem 4 regime: F_j(u) = ω(log n) candidates per request w.h.p., so
  // fallbacks should be (essentially) absent.
  ExperimentConfig config;
  config.num_nodes = 900;
  config.num_files = 900;
  config.cache_size = 30;   // M = n^0.5
  config.seed = 7;
  config.strategy_spec =
      parse_strategy_spec("two-choice(r=15)");  // r = n^0.4; α+2β ≈ 1.3 > 1
  const ExperimentResult result = run_experiment(config, 5);
  EXPECT_LT(result.fallback_rate, 0.01);
}

TEST(Integration, StrategyIISamplesConfigGraphEdges) {
  // Lemma 3(b): the candidate pairs of Strategy II are edges of H (they
  // share the requested file and lie within 2r of each other).
  const std::size_t n = 400;
  const Lattice lattice = Lattice::from_node_count(n, Wrap::Torus);
  Rng prng(8);
  const Placement placement = Placement::generate(
      n, Popularity::uniform(40), 6,
      PlacementMode::ProportionalWithReplacement, prng);
  const ReplicaIndex index(lattice, placement);
  const Hop r = 5;
  const CompactGraph h = build_config_graph(lattice, placement, r);

  TwoChoiceOptions options;
  options.radius = r;
  TwoChoiceStrategy strategy(index, options);
  const LoadTracker tracker(n);
  int checked = 0;
  strategy.set_observer([&](std::span<const NodeId> candidates) {
    ASSERT_EQ(candidates.size(), 2u);
    EXPECT_TRUE(h.has_edge(candidates[0], candidates[1]))
        << candidates[0] << "-" << candidates[1];
    ++checked;
  });
  Rng rng(9);
  for (NodeId u = 0; u < n; u += 3) {
    for (FileId j = 0; j < 40; j += 7) {
      if (placement.replica_count(j) == 0) continue;
      (void)strategy.assign({u, j}, tracker, rng);
    }
  }
  EXPECT_GT(checked, 50);
}

TEST(Integration, MaxLoadGrowsSlowlyForTwoChoice) {
  // Max load at n=400 vs n=6400 under Theorem 6-ish conditions: growth
  // should be far below the log n factor-ish growth of Strategy I.
  ExperimentConfig small;
  small.num_nodes = 400;
  small.num_files = 8;
  small.cache_size = 8;
  small.seed = 10;
  small.strategy_spec = parse_strategy_spec("two-choice");
  ExperimentConfig large = small;
  large.num_nodes = 6400;

  const double l_small = run_experiment(small, 6).max_load.mean();
  const double l_large = run_experiment(large, 6).max_load.mean();
  EXPECT_LT(l_large - l_small, 1.5) << "two-choice growth should be ~flat";
}

}  // namespace
}  // namespace proxcache
