// Tests for scenario/trace_source + scenario/generators: streaming behavior,
// per-source invariants, determinism, and the factory dispatch.
#include "scenario/trace_source.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "scenario/generators.hpp"
#include "tier/tier_set.hpp"
#include "tier/tiered_topology.hpp"
#include "topology/shells.hpp"

namespace proxcache {
namespace {

Lattice test_lattice() { return Lattice(10, Wrap::Torus); }

TEST(Materialize, ProducesRequestedCount) {
  StaticTraceSource source(25, Popularity::uniform(5));
  Rng rng(1);
  const auto trace = materialize(source, 137, rng);
  EXPECT_EQ(trace.size(), 137u);
}

// Note: generate_trace delegates to StaticTraceSource, so the two
// "MatchesLegacy" tests below only guard the delegation wiring (fresh
// source per call, no state leaking between requests) — the actual draw
// *sequence* is locked by the seed-contract golden masters in
// tests/test_determinism.cpp, which pin pre-refactor numeric outputs.
TEST(StaticSource, MatchesLegacyGenerateTraceUniform) {
  const Popularity popularity = Popularity::zipf(12, 0.9);
  Rng legacy_rng(77);
  const auto legacy = generate_trace(100, popularity, 400, legacy_rng);
  StaticTraceSource source(100, popularity);
  Rng rng(77);
  const auto streamed = materialize(source, 400, rng);
  ASSERT_EQ(legacy.size(), streamed.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].origin, streamed[i].origin);
    EXPECT_EQ(legacy[i].file, streamed[i].file);
  }
}

TEST(StaticSource, MatchesLegacyGenerateTraceHotspot) {
  const Lattice lattice = test_lattice();
  OriginSpec origins;
  origins.kind = OriginKind::Hotspot;
  origins.hotspot_fraction = 0.7;
  origins.hotspot_radius = 2;
  const Popularity popularity = Popularity::uniform(9);
  Rng legacy_rng(5);
  const auto legacy = generate_trace(lattice, origins, popularity, 300,
                                     legacy_rng);
  StaticTraceSource source(lattice, origins, popularity);
  Rng rng(5);
  const auto streamed = materialize(source, 300, rng);
  ASSERT_EQ(legacy.size(), streamed.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].origin, streamed[i].origin);
    EXPECT_EQ(legacy[i].file, streamed[i].file);
  }
}

TEST(FlashCrowdSource, PulseIsZeroOutsideWindowAndPeaksAtMidpoint) {
  TraceSpec spec;
  spec.kind = TraceKind::FlashCrowd;
  spec.flash_peak = 0.8;
  spec.flash_start = 0.25;
  spec.flash_end = 0.75;
  spec.flash_radius = 2;
  FlashCrowdTraceSource source(test_lattice(), Popularity::uniform(10), spec,
                               1000);
  EXPECT_DOUBLE_EQ(source.pulse_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(source.pulse_fraction(249), 0.0);
  EXPECT_DOUBLE_EQ(source.pulse_fraction(750), 0.0);
  EXPECT_DOUBLE_EQ(source.pulse_fraction(999), 0.0);
  EXPECT_DOUBLE_EQ(source.pulse_fraction(500), 0.8);
  // Linear ramp: halfway into the rise sits at half the peak.
  EXPECT_NEAR(source.pulse_fraction(375), 0.4, 1e-9);
  // Triangular pulse mean = peak * (end - start) / 2.
  EXPECT_NEAR(source.mean_pulse(), 0.8 * 0.5 / 2.0, 0.01);
}

TEST(FlashCrowdSource, DeterministicAndInRange) {
  TraceSpec spec;
  spec.kind = TraceKind::FlashCrowd;
  FlashCrowdTraceSource a(test_lattice(), Popularity::uniform(7), spec, 500);
  FlashCrowdTraceSource b(test_lattice(), Popularity::uniform(7), spec, 500);
  Rng rng_a(9);
  Rng rng_b(9);
  for (int i = 0; i < 500; ++i) {
    const Request ra = a.next(rng_a);
    const Request rb = b.next(rng_b);
    EXPECT_EQ(ra.origin, rb.origin);
    EXPECT_EQ(ra.file, rb.file);
    EXPECT_LT(ra.origin, 100u);
    EXPECT_LT(ra.file, 7u);
  }
}

TEST(DiurnalSource, VisitsEveryPhaseAndMarginalSumsToOne) {
  TraceSpec spec;
  spec.kind = TraceKind::Diurnal;
  spec.diurnal_amplitude = 0.5;
  spec.diurnal_cycles = 2;
  DiurnalTraceSource source(OriginModel(100), Popularity::zipf(15, 1.0), spec, 1600);
  std::set<std::uint32_t> phases;
  for (std::size_t t = 0; t < 1600; ++t) phases.insert(source.phase_of(t));
  EXPECT_EQ(phases.size(), DiurnalTraceSource::kPhases);
  const std::vector<double> marginal = source.marginal_pmf();
  double sum = 0.0;
  for (const double p : marginal) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Day phases (rising sine) are more skewed than night phases.
  EXPECT_GT(source.phase_gamma(1), source.phase_gamma(5));
}

TEST(ChurnSource, NeverEmitsOfflineFilesAndRotatesPerEpoch) {
  TraceSpec spec;
  spec.kind = TraceKind::Churn;
  spec.churn_offline_fraction = 0.4;
  spec.churn_epochs = 4;
  const std::size_t horizon = 400;
  ChurnTraceSource source(OriginModel(50), Popularity::zipf(20, 0.8), spec, horizon);
  Rng rng(3);
  std::vector<std::set<FileId>> epoch_offline;
  for (std::size_t t = 0; t < horizon; ++t) {
    const Request request = source.next(rng);
    EXPECT_LT(request.origin, 50u);
    EXPECT_LT(request.file, 20u);
    EXPECT_FALSE(source.is_offline(request.file));
    if (t % 100 == 0) {
      std::set<FileId> offline;
      for (FileId j = 0; j < 20; ++j) {
        if (source.is_offline(j)) offline.insert(j);
      }
      EXPECT_EQ(offline.size(), 8u);  // floor(20 * 0.4)
      epoch_offline.push_back(offline);
    }
  }
  ASSERT_EQ(epoch_offline.size(), 4u);
  // With overwhelming probability at this seed, consecutive epochs pick
  // different offline subsets.
  bool any_rotation = false;
  for (std::size_t e = 1; e < epoch_offline.size(); ++e) {
    if (epoch_offline[e] != epoch_offline[e - 1]) any_rotation = true;
  }
  EXPECT_TRUE(any_rotation);
}

TEST(TemporalLocalitySource, FullLocalityDepthOnePinsTheFirstDraw) {
  TraceSpec spec;
  spec.kind = TraceKind::TemporalLocality;
  spec.locality_prob = 1.0;
  spec.locality_depth = 1;
  TemporalLocalityTraceSource source(OriginModel(30), Popularity::zipf(25, 0.8), spec);
  Rng rng(11);
  const Request first = source.next(rng);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(source.next(rng).file, first.file);
  }
}

TEST(AdversarialSource, FullAttackStaysInHotSet) {
  TraceSpec spec;
  spec.kind = TraceKind::Adversarial;
  spec.attack_fraction = 1.0;
  spec.attack_top_k = 3;
  AdversarialTraceSource source(OriginModel(30), Popularity::zipf(40, 1.0), spec);
  // Zipf rank order: hot set is files {0, 1, 2}.
  const std::vector<FileId> expected_hot = {0, 1, 2};
  EXPECT_EQ(source.hot_set(), expected_hot);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(source.next(rng).file, 3u);
  }
  const std::vector<double> marginal = source.marginal_pmf();
  double sum = 0.0;
  for (const double p : marginal) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(OriginComposition, HotspotOriginsComposeWithFileProcesses) {
  // The file-process sources take an OriginModel, so a static hotspot
  // composes with e.g. an adversarial catalog: with fraction 1 and radius
  // 0, every origin must be the lattice-center node.
  const Lattice lattice = test_lattice();
  OriginSpec origins;
  origins.kind = OriginKind::Hotspot;
  origins.hotspot_fraction = 1.0;
  origins.hotspot_radius = 0;
  const NodeId center = lattice.node(Point{5, 5});
  TraceSpec spec;
  spec.kind = TraceKind::Adversarial;
  AdversarialTraceSource source(OriginModel(lattice, origins),
                                Popularity::zipf(20, 1.0), spec);
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(source.next(rng).origin, center);
  }
}

TEST(OriginComposition, FactoryForwardsOriginSpecToFileProcesses) {
  const Lattice lattice = test_lattice();
  const Popularity popularity = Popularity::zipf(20, 0.8);
  ExperimentConfig config;
  config.num_nodes = 100;
  config.num_files = 20;
  config.popularity.kind = PopularityKind::Zipf;
  config.popularity.gamma = 0.8;
  config.origins.kind = OriginKind::Hotspot;
  config.origins.hotspot_fraction = 1.0;
  config.origins.hotspot_radius = 0;
  config.trace.kind = TraceKind::Churn;
  const auto source = make_trace_source(config, lattice, popularity, 100);
  Rng rng(29);
  const NodeId center = lattice.node(Point{5, 5});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(source->next(rng).origin, center);
  }
}

TEST(Factory, DispatchesEveryTraceKind) {
  const Lattice lattice = test_lattice();
  const Popularity popularity = Popularity::zipf(20, 0.8);
  const struct {
    TraceKind kind;
    const char* needle;
  } cases[] = {
      {TraceKind::Static, "static"},
      {TraceKind::FlashCrowd, "flash-crowd"},
      {TraceKind::Diurnal, "diurnal"},
      {TraceKind::Churn, "churn"},
      {TraceKind::TemporalLocality, "temporal-locality"},
      {TraceKind::Adversarial, "adversarial"},
  };
  for (const auto& c : cases) {
    ExperimentConfig config;
    config.num_nodes = 100;
    config.num_files = 20;
    config.popularity.kind = PopularityKind::Zipf;
    config.popularity.gamma = 0.8;
    config.trace.kind = c.kind;
    const auto source = make_trace_source(config, lattice, popularity, 100);
    ASSERT_NE(source, nullptr);
    EXPECT_NE(source->describe().find(c.needle), std::string::npos)
        << source->describe();
  }
}

// Regression lock for the demand-disc anchor. Flat topologies must keep
// the historical disc bit-exactly: the ball around `central_node()`, which
// for the 10×10 test torus is the node at (5, 5). Any tier-layer change
// that re-anchors flat discs moves hotspot/flash golden masters — this
// pins it before they can.
TEST(AnchorDisc, FlatTopologiesKeepTheHistoricalCentralAnchor) {
  const Lattice lattice = test_lattice();
  OriginSpec origins;
  origins.kind = OriginKind::Hotspot;
  origins.hotspot_fraction = 0.6;
  origins.hotspot_radius = 2;
  const OriginModel model(lattice, origins);
  const std::vector<NodeId> expected =
      collect_ball(lattice, lattice.node(Point{5, 5}), 2);
  EXPECT_EQ(model.disc(), expected);
  EXPECT_EQ(expected.size(), 13u);  // |B_2| on a torus: 1 + 4 + 8
  // The flash-crowd pulse shares the same anchor.
  TraceSpec spec;
  spec.kind = TraceKind::FlashCrowd;
  spec.flash_radius = 2;
  const FlashCrowdTraceSource flash(lattice, Popularity::uniform(10), spec,
                                    100);
  EXPECT_EQ(flash.disc(), expected);
}

// On a hierarchy the disc is anchored per front-end cluster: every edge
// PoP gets the inner ball around its own center, mapped to global ids —
// never a composed-metric ball that would leak through the gateway into
// back-end or origin nodes (which cannot originate requests).
TEST(AnchorDisc, TieredTopologiesAnchorPerFrontCluster) {
  const auto set = TierSet::build(
      parse_tier_spec("tiers(front=torus(side=4)x3, back=ring(n=12), "
                      "origin=1)"),
      4);
  const TieredTopology topology(set);
  OriginSpec origins;
  origins.kind = OriginKind::Hotspot;
  origins.hotspot_fraction = 0.6;
  origins.hotspot_radius = 1;
  const OriginModel model(topology, origins);
  const TierLevel& front = set->levels().front();
  const std::vector<NodeId> inner =
      collect_ball(*front.inner, front.inner->central_node(), 1);
  ASSERT_EQ(model.disc().size(), inner.size() * front.clusters);
  std::size_t i = 0;
  for (std::uint32_t k = 0; k < front.clusters; ++k) {
    for (const NodeId v : inner) {
      EXPECT_EQ(model.disc()[i++],
                front.base + k * front.cluster_nodes + v);
    }
  }
  for (const NodeId u : model.disc()) {
    EXPECT_LT(u, front.nodes) << "discs never leave the front tier";
  }
  // Sampling respects the origin universe even off-disc.
  Rng rng(41);
  for (int draw = 0; draw < 300; ++draw) {
    EXPECT_LT(model.sample(rng), front.nodes);
  }
  TraceSpec spec;
  spec.kind = TraceKind::FlashCrowd;
  spec.flash_radius = 1;
  const FlashCrowdTraceSource flash(topology, Popularity::uniform(10), spec,
                                    100);
  EXPECT_EQ(flash.disc(), model.disc());
}

TEST(TraceKindNames, RoundTrip) {
  const TraceKind kinds[] = {
      TraceKind::Static,       TraceKind::FlashCrowd,
      TraceKind::Diurnal,      TraceKind::Churn,
      TraceKind::TemporalLocality, TraceKind::Adversarial,
  };
  for (const TraceKind kind : kinds) {
    EXPECT_EQ(trace_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)trace_kind_from_string("no-such-kind"),
               std::invalid_argument);
}

}  // namespace
}  // namespace proxcache
