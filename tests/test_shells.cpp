// Tests for topology/shells: the enumerators must visit exactly the nodes at
// the stated distance, each once, across wrap modes and awkward radii
// (>= side/2 where wraparound would double-count a naive enumeration).
#include "topology/shells.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace proxcache {
namespace {

class ShellEnumerationTest
    : public ::testing::TestWithParam<std::tuple<int, Wrap>> {};

TEST_P(ShellEnumerationTest, ShellMatchesDistancePredicate) {
  const auto [side, wrap] = GetParam();
  const Lattice lattice(side, wrap);
  for (NodeId u = 0; u < lattice.size(); u += 2) {
    for (Hop d = 0; d <= lattice.diameter(); ++d) {
      const std::vector<NodeId> shell = collect_shell(lattice, u, d);
      // No duplicates.
      std::set<NodeId> unique(shell.begin(), shell.end());
      EXPECT_EQ(unique.size(), shell.size())
          << "duplicate in shell side=" << side << " u=" << u << " d=" << d;
      // Exactly the nodes at distance d.
      for (NodeId v = 0; v < lattice.size(); ++v) {
        EXPECT_EQ(unique.count(v) > 0, lattice.distance(u, v) == d)
            << "membership side=" << side << " u=" << u << " v=" << v
            << " d=" << d;
      }
    }
  }
}

TEST_P(ShellEnumerationTest, BallVisitsEveryNodeOnceInDistanceOrder) {
  const auto [side, wrap] = GetParam();
  const Lattice lattice(side, wrap);
  const NodeId u = lattice.size() / 2;
  std::vector<NodeId> visited;
  Hop last_distance = 0;
  for_each_in_ball(lattice, u, lattice.diameter(), [&](NodeId v, Hop d) {
    EXPECT_GE(d, last_distance) << "distances must be non-decreasing";
    last_distance = d;
    EXPECT_EQ(lattice.distance(u, v), d);
    visited.push_back(v);
  });
  std::sort(visited.begin(), visited.end());
  EXPECT_EQ(visited.size(), lattice.size());
  EXPECT_EQ(std::adjacent_find(visited.begin(), visited.end()),
            visited.end())
      << "every node exactly once";
}

INSTANTIATE_TEST_SUITE_P(
    SidesAndWraps, ShellEnumerationTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8),
                       ::testing::Values(Wrap::Torus, Wrap::Grid)),
    [](const auto& info) {
      return "side" + std::to_string(std::get<0>(info.param)) + "_" +
             to_string(std::get<1>(info.param));
    });

TEST(ShellEnumeration, RadiusZeroIsJustTheOrigin) {
  const Lattice lattice(5, Wrap::Torus);
  const std::vector<NodeId> ball = collect_ball(lattice, 7, 0);
  ASSERT_EQ(ball.size(), 1u);
  EXPECT_EQ(ball[0], 7u);
}

TEST(ShellEnumeration, RadiusBeyondDiameterClamps) {
  const Lattice lattice(4, Wrap::Grid);
  const std::vector<NodeId> ball = collect_ball(lattice, 0, 1000);
  EXPECT_EQ(ball.size(), lattice.size());
}

TEST(ShellEnumeration, EvenTorusHalfSideShellNoDuplicates) {
  // side=4, d=2: offsets ±2 wrap to the same node; the enumerator must not
  // visit it twice.
  const Lattice lattice(4, Wrap::Torus);
  const std::vector<NodeId> shell = collect_shell(lattice, 0, 2);
  const std::set<NodeId> unique(shell.begin(), shell.end());
  EXPECT_EQ(unique.size(), shell.size());
  EXPECT_EQ(shell.size(), lattice.shell_size(0, 2));
}

TEST(ShellEnumeration, SingletonLattice) {
  const Lattice lattice(1, Wrap::Torus);
  EXPECT_EQ(collect_ball(lattice, 0, 5).size(), 1u);
  EXPECT_TRUE(collect_shell(lattice, 0, 1).empty());
}

}  // namespace
}  // namespace proxcache
