// Tests for graph/config_graph: Definition 4's edge condition (shared file
// AND within 2r) against brute force, plus the Lemma 3 degree prediction.
#include "graph/config_graph.hpp"

#include <gtest/gtest.h>

namespace proxcache {
namespace {

Placement make(std::size_t n, std::size_t k, std::size_t m,
               std::uint64_t seed = 17) {
  Rng rng(seed);
  return Placement::generate(n, Popularity::uniform(k), m,
                             PlacementMode::ProportionalWithReplacement, rng);
}

TEST(ConfigGraph, EdgeConditionMatchesBruteForce) {
  const Lattice lattice(7, Wrap::Torus);
  const Placement placement = make(49, 8, 3);
  for (const Hop r : {1u, 2u, 3u}) {
    const CompactGraph graph = build_config_graph(lattice, placement, r);
    for (NodeId u = 0; u < 49; ++u) {
      for (NodeId v = u + 1; v < 49; ++v) {
        const bool share = placement.overlap(u, v) >= 1;
        const bool close = lattice.distance(u, v) <= 2 * r;
        EXPECT_EQ(graph.has_edge(u, v), share && close)
            << "u=" << u << " v=" << v << " r=" << r;
      }
    }
  }
}

TEST(ConfigGraph, UnboundedRadiusIgnoresDistance) {
  const Lattice lattice(6, Wrap::Torus);
  const Placement placement = make(36, 5, 2);
  const CompactGraph graph =
      build_config_graph(lattice, placement, kUnboundedRadius);
  for (NodeId u = 0; u < 36; ++u) {
    for (NodeId v = u + 1; v < 36; ++v) {
      EXPECT_EQ(graph.has_edge(u, v), placement.overlap(u, v) >= 1);
    }
  }
}

TEST(ConfigGraph, RadiusMonotonicity) {
  const Lattice lattice(8, Wrap::Torus);
  const Placement placement = make(64, 10, 3);
  std::size_t last_edges = 0;
  for (const Hop r : {0u, 1u, 2u, 4u, 8u}) {
    const CompactGraph graph = build_config_graph(lattice, placement, r);
    EXPECT_GE(graph.num_edges(), last_edges);
    last_edges = graph.num_edges();
  }
}

TEST(ConfigGraph, GridModeRespectsBoundaries) {
  const Lattice lattice(5, Wrap::Grid);
  const Placement placement = make(25, 3, 2);
  const CompactGraph graph = build_config_graph(lattice, placement, 1);
  for (NodeId u = 0; u < 25; ++u) {
    for (const std::uint32_t v : graph.neighbors(u)) {
      EXPECT_LE(lattice.distance(u, v), 2u);
    }
  }
}

TEST(ConfigGraph, PredictedDegreeScaling) {
  const Lattice lattice(45, Wrap::Torus);
  // Δ = M²(2r)²/K: doubling M quadruples, doubling r quadruples, doubling K
  // halves.
  const double base = predicted_config_degree(lattice, 4, 100, 5);
  EXPECT_NEAR(predicted_config_degree(lattice, 8, 100, 5) / base, 4.0, 1e-9);
  EXPECT_NEAR(predicted_config_degree(lattice, 4, 100, 10) / base, 4.0, 1e-9);
  EXPECT_NEAR(predicted_config_degree(lattice, 4, 200, 5) / base, 0.5, 1e-9);
}

TEST(ConfigGraph, Lemma3DegreesTrackPrediction) {
  // In the goodness regime the measured mean degree should be within a
  // constant factor of Δ = M²(2r)²/K.
  const Lattice lattice = Lattice::from_node_count(900, Wrap::Torus);
  const std::size_t m = 8;
  const std::size_t k = 900;
  const Hop r = 8;
  const Placement placement = make(900, k, m, 99);
  const CompactGraph graph = build_config_graph(lattice, placement, r);
  const double predicted = predicted_config_degree(lattice, m, k, r);
  const double measured = graph.degree_stats().mean_degree;
  EXPECT_GT(measured, predicted / 8.0);
  EXPECT_LT(measured, predicted * 8.0);
}

TEST(ConfigGraph, MismatchedInputsRejected) {
  const Lattice lattice(5, Wrap::Torus);
  const Placement placement = make(36, 4, 2);
  EXPECT_THROW(build_config_graph(lattice, placement, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace proxcache
