// Tests for util/table: cell formatting, alignment, CSV escaping and arity
// enforcement.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace proxcache {
namespace {

TEST(Cell, Formats) {
  EXPECT_EQ(Cell("text").str(), "text");
  EXPECT_EQ(Cell(42).str(), "42");
  EXPECT_EQ(Cell(std::int64_t{-7}).str(), "-7");
  EXPECT_EQ(Cell(std::size_t{9}).str(), "9");
  EXPECT_EQ(Cell(3.14159, 2).str(), "3.14");
  EXPECT_EQ(Cell(2.0).str(), "2.000");  // default precision 3
}

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowArityEnforced) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({Cell(1)}), std::invalid_argument);
  table.add_row({Cell(1), Cell(2)});
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_EQ(table.columns(), 2u);
}

TEST(Table, AlignedOutput) {
  Table table({"n", "max load"});
  table.add_row({Cell(100), Cell(4.5, 1)});
  table.add_row({Cell(10000), Cell(6.0, 1)});
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  // Header, separator, two rows.
  EXPECT_NE(text.find("n  max load"), std::string::npos);
  EXPECT_NE(text.find("100"), std::string::npos);
  EXPECT_NE(text.find("6.0"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  // Right-aligned numbers: "  100" under the wider 10000.
  EXPECT_NE(text.find("  100"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table table({"k", "v"});
  table.add_row({Cell("plain"), Cell(1)});
  table.add_row({Cell("with,comma"), Cell(2)});
  table.add_row({Cell("with\"quote"), Cell(3)});
  std::ostringstream os;
  table.print_csv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("k,v\n"), std::string::npos);
  EXPECT_NE(text.find("plain,1\n"), std::string::npos);
  EXPECT_NE(text.find("\"with,comma\",2\n"), std::string::npos);
  EXPECT_NE(text.find("\"with\"\"quote\",3\n"), std::string::npos);
}

TEST(Table, EmptyTableStillPrintsHeader) {
  Table table({"only"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace proxcache
