// Differential suite for the degenerate tier composition: a spec of one
// cache tier, one cluster, and no capacity override names exactly the flat
// network of its inner topology, and `ExperimentConfig` resolves it to the
// flat engine path (core/config.hpp). This suite locks "resolves to" down
// to the bit: for every scenario preset × all four flat strategies ×
// torus/ring/rgg, a config carrying `tiers(front=<topology>)` must produce
// the identical RunResult to the flat config it abbreviates — serial
// (threads = 1) and sharded (threads = 4) — mirroring
// test_sharded_equivalence's field-by-field comparison. Any tier-layer
// change that leaks into the flat path (an extra RNG draw, a placement
// offset, a metrics slice on flat runs) fails here before it can move a
// golden master.
#include <gtest/gtest.h>

#include <string>

#include "core/simulation.hpp"
#include "scenario/registry.hpp"
#include "strategy/registry.hpp"
#include "tier/spec.hpp"
#include "topology/spec.hpp"

namespace proxcache {
namespace {

/// Every RunResult field must agree exactly; EXPECT_EQ on comm_cost is
/// deliberate (both paths divide the same integer totals). Flat runs leave
/// the tier metrics empty, and the degenerate path must too.
void expect_bit_identical(const RunResult& flat, const RunResult& tiered,
                          const std::string& label) {
  EXPECT_EQ(flat.max_load, tiered.max_load) << label;
  EXPECT_EQ(flat.comm_cost, tiered.comm_cost) << label;
  EXPECT_EQ(flat.requests, tiered.requests) << label;
  EXPECT_EQ(flat.fallbacks, tiered.fallbacks) << label;
  EXPECT_EQ(flat.resampled, tiered.resampled) << label;
  EXPECT_EQ(flat.dropped, tiered.dropped) << label;
  EXPECT_EQ(flat.load_histogram.total(), tiered.load_histogram.total())
      << label;
  EXPECT_EQ(flat.load_histogram.counts(), tiered.load_histogram.counts())
      << label;
  EXPECT_EQ(flat.placement_min_distinct, tiered.placement_min_distinct)
      << label;
  EXPECT_EQ(flat.files_with_replicas, tiered.files_with_replicas) << label;
  EXPECT_TRUE(flat.tier_loads.empty()) << label;
  EXPECT_TRUE(tiered.tier_loads.empty())
      << label << ": degenerate specs must not grow tier metrics";
}

/// `config` rewritten to say the same network through the tier grammar:
/// `tiers(front=<resolved flat topology>)`. Clears `topology_spec` (the
/// two spec fields are mutually exclusive) so only the tier path names the
/// topology.
ExperimentConfig as_degenerate_tiers(ExperimentConfig config) {
  const TierSpec spec = parse_tier_spec(
      "tiers(front=" + config.resolved_topology().to_string() + ")");
  EXPECT_TRUE(spec.degenerate());
  config.topology_spec = TopologySpec{};
  config.tier_spec = spec;
  EXPECT_FALSE(config.tiered()) << "degenerate specs take the flat path";
  return config;
}

/// Flat vs degenerate-tiers, serial and sharded, `runs` replications each.
void expect_degenerate_identical(const ExperimentConfig& flat,
                                 const std::string& label,
                                 std::uint64_t runs = 2) {
  const ExperimentConfig tiered = as_degenerate_tiers(flat);
  for (const std::uint32_t threads : {1u, 4u}) {
    ExperimentConfig flat_run = flat;
    ExperimentConfig tiered_run = tiered;
    flat_run.threads = threads;
    tiered_run.threads = threads;
    const SimulationContext flat_context(flat_run);
    const SimulationContext tiered_context(tiered_run);
    for (std::uint64_t run_index = 0; run_index < runs; ++run_index) {
      expect_bit_identical(flat_context.run(run_index),
                           tiered_context.run(run_index),
                           label + " threads=" + std::to_string(threads) +
                               " run " + std::to_string(run_index));
    }
  }
}

ExperimentConfig shrunk(ExperimentConfig config) {
  config.num_nodes = 400;
  config.num_files = 80;
  config.cache_size = 6;
  return config;
}

// The headline sweep: every scenario preset × all four flat strategies on
// the paper's torus (the presets' legacy lattice knobs resolve to
// torus(side=20) at the shrunk scale, and the degenerate spec must spell
// that same lattice through the tier grammar).
TEST(TierDegenerate, EveryPresetTimesEveryStrategyOnTorus) {
  for (const Scenario& scenario : ScenarioRegistry::built_ins().all()) {
    for (const char* name :
         {"nearest", "two-choice", "least-loaded(r=8)",
          "prox-weighted(d=2, alpha=1)"}) {
      ExperimentConfig config = shrunk(scenario.config);
      config.strategy_spec = parse_strategy_spec(name);
      config.shard_batch = 96;
      config.seed = 0x71E2 + scenario.config.seed;
      expect_degenerate_identical(config, scenario.name + " / " + name, 1);
    }
  }
}

// Non-lattice topologies: ring (closed-form distances) and a random
// geometric graph (BFS distances). The rgg leg also exercises seeded inner
// construction through the tier resolution (same graph both ways or the
// comparison is meaningless).
TEST(TierDegenerate, RingAndRggTopologies) {
  for (const char* topo : {"ring(n=300)", "rgg(n=300, radius=0.12, seed=5)"}) {
    ExperimentConfig base;
    base.topology_spec = parse_topology_spec(topo);
    base.num_files = 70;
    base.cache_size = 4;
    base.popularity.kind = PopularityKind::Zipf;
    base.popularity.gamma = 1.0;
    base.shard_batch = 64;
    base.seed = 0x71E5;
    for (const char* name :
         {"nearest", "two-choice(r=6)", "least-loaded(r=6)",
          "prox-weighted(d=3, alpha=0.5)"}) {
      ExperimentConfig config = base;
      config.strategy_spec = parse_strategy_spec(name);
      expect_degenerate_identical(config, std::string(topo) + " / " + name,
                                  1);
    }
  }
}

// Policy corners from the sharded suite: fallback drops, trace repairs,
// and sanitize-level drops must all survive the spec rewrite untouched —
// these counters come from the trace/sanitize layers, which a degenerate
// tier spec must never perturb.
TEST(TierDegenerate, PolicyCornersSurviveTheRewrite) {
  {
    ExperimentConfig config;
    config.num_nodes = 400;
    config.num_files = 60;
    config.cache_size = 3;
    config.popularity.kind = PopularityKind::Zipf;
    config.popularity.gamma = 1.0;
    config.strategy_spec = parse_strategy_spec(
        "two-choice(r=2, fallback=drop, beta=0.6, stale=7)");
    config.seed = 0x5A1E;
    expect_degenerate_identical(config, "stale-beta-fallback-drop");
  }
  {
    ExperimentConfig config;
    config.num_nodes = 100;
    config.num_files = 400;
    config.cache_size = 2;
    config.popularity.kind = PopularityKind::Zipf;
    config.popularity.gamma = 1.2;
    config.strategy_spec = parse_strategy_spec("least-loaded(r=4)");
    config.seed = 0x9E5A;
    expect_degenerate_identical(config, "uncached-resample");
  }
  {
    ExperimentConfig config;
    config.num_nodes = 100;
    config.num_files = 300;
    config.cache_size = 2;
    config.missing = MissingFilePolicy::Drop;
    config.seed = 0xD809;
    expect_degenerate_identical(config, "drop-policy");
  }
}

}  // namespace
}  // namespace proxcache
