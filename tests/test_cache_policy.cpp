// Tests for the cache-policy layer: spec grammar round-trips, registry
// validation (mirroring the strategy/topology registries), and the
// eviction semantics of the built-in policies (LRU / LFU / EWMA) driven
// directly through the CachePolicy interface.
#include "event/cache_policy.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "catalog/cache_state.hpp"
#include "catalog/placement.hpp"
#include "catalog/popularity.hpp"
#include "random/rng.hpp"

namespace proxcache {
namespace {

TEST(CachePolicySpec, ParsesAndCanonicalizes) {
  const CachePolicySpec spec = parse_cache_policy_spec("LRU( Capacity = 8 )");
  EXPECT_EQ(spec.name, "lru");
  EXPECT_EQ(spec.get_or("capacity", 0.0), 8.0);
  EXPECT_EQ(spec.to_string(), "lru(capacity=8)");
  EXPECT_EQ(parse_cache_policy_spec(spec.to_string()), spec);
}

TEST(CachePolicySpec, BareNameHasNoParams) {
  const CachePolicySpec spec = parse_cache_policy_spec("static");
  EXPECT_EQ(spec.name, "static");
  EXPECT_TRUE(spec.params.empty());
  EXPECT_EQ(spec.to_string(), "static");
}

TEST(CachePolicyRegistry, BuiltInsAreRegistered) {
  const CachePolicyRegistry& registry = CachePolicyRegistry::built_ins();
  EXPECT_EQ(registry.names(), "static, lru, lfu, ewma");
  EXPECT_FALSE(registry.at("static").mutable_contents);
  EXPECT_TRUE(registry.at("lru").mutable_contents);
  EXPECT_EQ(registry.find("fifo"), nullptr);
}

TEST(CachePolicyRegistry, ValidateRejectsBadSpecs) {
  const CachePolicyRegistry& registry = CachePolicyRegistry::built_ins();
  EXPECT_THROW(registry.validate(parse_cache_policy_spec("fifo")),
               std::invalid_argument);
  // static takes no parameters at all.
  EXPECT_THROW(registry.validate(parse_cache_policy_spec("static(capacity=4)")),
               std::invalid_argument);
  // Unknown key, non-integral capacity, out-of-range decay.
  EXPECT_THROW(registry.validate(parse_cache_policy_spec("lru(depth=3)")),
               std::invalid_argument);
  EXPECT_THROW(registry.validate(parse_cache_policy_spec("lru(capacity=2.5)")),
               std::invalid_argument);
  EXPECT_THROW(registry.validate(parse_cache_policy_spec("ewma(decay=-0.1)")),
               std::invalid_argument);
  EXPECT_NO_THROW(
      registry.validate(parse_cache_policy_spec("ewma(capacity=4, decay=0.5)")));
}

TEST(CachePolicyRegistry, WithDefaultsFillsDeclaredValues) {
  const CachePolicyRegistry& registry = CachePolicyRegistry::built_ins();
  const CachePolicySpec filled =
      registry.with_defaults(parse_cache_policy_spec("ewma"));
  EXPECT_EQ(filled.get_or("capacity", -1.0), 0.0);
  EXPECT_EQ(filled.get_or("decay", -1.0), 0.1);
}

TEST(CachePolicyRegistry, MakeHonorsCapacityFallback) {
  const CachePolicyRegistry& registry = CachePolicyRegistry::built_ins();
  // static is immutable: no per-node policy object.
  EXPECT_EQ(registry.make(parse_cache_policy_spec("static"), 5), nullptr);
  // capacity=0 (default) inherits the fallback M; explicit capacity wins.
  EXPECT_EQ(registry.make(parse_cache_policy_spec("lru"), 5)->capacity(), 5u);
  EXPECT_EQ(
      registry.make(parse_cache_policy_spec("lru(capacity=2)"), 5)->capacity(),
      2u);
}

TEST(CachePolicyRegistry, ParseValidatedSpecsFailsFast) {
  EXPECT_THROW(parse_validated_policy_specs({"lru", "bogus"}),
               std::invalid_argument);
  const auto specs = parse_validated_policy_specs({"lru", "ewma(decay=0.2)"});
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[1].name, "ewma");
}

std::unique_ptr<CachePolicy> make_policy(const char* spec,
                                         std::size_t fallback) {
  return CachePolicyRegistry::built_ins().make(parse_cache_policy_spec(spec),
                                               fallback);
}

TEST(CachePolicy, LruEvictsLeastRecentlyUsed) {
  const auto policy = make_policy("lru(capacity=4)", 0);
  for (FileId f = 0; f < 4; ++f) policy->seed(f);
  // Untouched seeds evict in seed order.
  EXPECT_EQ(policy->victim(1.0), 0u);
  policy->on_access(0, 1.0);
  EXPECT_EQ(policy->victim(2.0), 1u);
  policy->on_evict(1);
  policy->on_insert(9, 3.0);
  policy->on_access(2, 4.0);
  policy->on_access(3, 5.0);
  // 0 (accessed at t=1) is now the coldest entry.
  EXPECT_EQ(policy->victim(6.0), 0u);
}

TEST(CachePolicy, LfuEvictsLeastFrequentlyUsedWithRecencyTies) {
  const auto policy = make_policy("lfu(capacity=4)", 0);
  for (FileId f = 0; f < 4; ++f) policy->seed(f);
  policy->on_access(0, 1.0);
  policy->on_access(2, 2.0);
  policy->on_access(2, 3.0);
  // Counts: 0 -> 2, 1 -> 1, 2 -> 3, 3 -> 1; the tie between 1 and 3 breaks
  // toward the older entry (1 was seeded first).
  EXPECT_EQ(policy->victim(4.0), 1u);
  policy->on_access(1, 5.0);
  EXPECT_EQ(policy->victim(6.0), 3u);
}

TEST(CachePolicy, EwmaDecaysColdEntries) {
  const auto policy = make_policy("ewma(capacity=2, decay=1)", 0);
  policy->on_insert(0, 0.0);
  policy->on_insert(1, 0.0);
  // Equal scores at t=0: the older insert (file 0) is the victim.
  EXPECT_EQ(policy->victim(0.0), 0u);
  policy->on_access(0, 0.5);
  // 0's score jumped to e^{-0.5} + 1 while 1 keeps decaying from 1.
  EXPECT_EQ(policy->victim(1.0), 1u);
  // Long silence: both decay together, but 0's later boost still dominates.
  EXPECT_EQ(policy->victim(50.0), 1u);
}

TEST(CacheState, MirrorsPlacementAndStaysConsistent) {
  const Popularity popularity = Popularity::uniform(6);
  Rng rng(99);
  const Placement placement = Placement::generate(
      9, popularity, 3, PlacementMode::ProportionalWithReplacement, rng);
  CacheState cache(placement);
  ASSERT_EQ(cache.num_nodes(), 9u);
  ASSERT_EQ(cache.num_files(), 6u);
  for (NodeId u = 0; u < 9; ++u) {
    for (const FileId f : cache.files_of(u)) {
      EXPECT_TRUE(placement.caches(u, f));
      EXPECT_TRUE(cache.caches(u, f));
    }
  }
  // Mutations keep contents and replica lists in lock-step.
  const FileId file = cache.files_of(0).front();
  const std::size_t holders = cache.replica_count(file);
  cache.erase(0, file);
  EXPECT_FALSE(cache.caches(0, file));
  EXPECT_EQ(cache.replica_count(file), holders - 1);
  cache.insert(0, file);
  EXPECT_TRUE(cache.caches(0, file));
  EXPECT_EQ(cache.replica_count(file), holders);
  // Idempotent on duplicates.
  cache.insert(0, file);
  EXPECT_EQ(cache.replica_count(file), holders);
}

}  // namespace
}  // namespace proxcache
