// Property-style sweeps (TEST_P) over the experiment configuration space:
// conservation, determinism, metric sanity and policy totality must hold for
// every combination, not just the defaults.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/experiment.hpp"
#include "strategy/registry.hpp"
#include "core/simulation.hpp"

namespace proxcache {
namespace {

using ConfigPoint =
    std::tuple<std::size_t /*n*/, std::size_t /*K*/, std::size_t /*M*/,
               const char* /*strategy spec*/, Wrap, PopularityKind>;

class SimulationPropertyTest : public ::testing::TestWithParam<ConfigPoint> {
 protected:
  ExperimentConfig config() const {
    const auto [n, k, m, strategy, wrap, popularity] = GetParam();
    ExperimentConfig config;
    config.num_nodes = n;
    config.num_files = k;
    config.cache_size = m;
    config.strategy_spec = parse_strategy_spec(strategy);
    config.wrap = wrap;
    config.popularity.kind = popularity;
    config.popularity.gamma = 0.8;
    config.seed = 0xFEED;
    return config;
  }
};

TEST_P(SimulationPropertyTest, ConservationAndSanity) {
  const RunResult result = run_simulation(config(), 0);
  const ExperimentConfig cfg = config();
  // Resample policy: every request served, none dropped.
  EXPECT_EQ(result.requests, cfg.num_nodes);
  EXPECT_EQ(result.dropped, 0u);
  // Load histogram is a partition of the servers whose weighted sum equals
  // the served requests.
  EXPECT_EQ(result.load_histogram.total(), cfg.num_nodes);
  std::uint64_t weighted = 0;
  for (std::uint64_t v = 0; v <= result.load_histogram.max_value(); ++v) {
    weighted += v * result.load_histogram.at(v);
  }
  EXPECT_EQ(weighted, result.requests);
  // Max load is attained and positive.
  EXPECT_GE(result.max_load, 1u);
  EXPECT_GT(result.load_histogram.at(result.max_load), 0u);
  // Communication cost is bounded by the diameter.
  const Lattice lattice = Lattice::from_node_count(cfg.num_nodes, cfg.wrap);
  EXPECT_LE(result.comm_cost, static_cast<double>(lattice.diameter()));
  EXPECT_GE(result.comm_cost, 0.0);
}

TEST_P(SimulationPropertyTest, DeterministicAcrossInvocations) {
  const RunResult a = run_simulation(config(), 1);
  const RunResult b = run_simulation(config(), 1);
  EXPECT_EQ(a.max_load, b.max_load);
  EXPECT_DOUBLE_EQ(a.comm_cost, b.comm_cost);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.resampled, b.resampled);
}

TEST_P(SimulationPropertyTest, ThreadCountInvariance) {
  const ExperimentConfig cfg = config();
  const ExperimentResult sequential = run_experiment(cfg, 3, nullptr);
  ThreadPool pool(3);
  const ExperimentResult threaded = run_experiment(cfg, 3, &pool);
  EXPECT_DOUBLE_EQ(sequential.max_load.mean(), threaded.max_load.mean());
  EXPECT_DOUBLE_EQ(sequential.comm_cost.mean(), threaded.comm_cost.mean());
}

std::string config_name(
    const ::testing::TestParamInfo<ConfigPoint>& info) {
  const auto [n, k, m, strategy, wrap, popularity] = info.param;
  std::string name = "n" + std::to_string(n) + "_K" + std::to_string(k) +
                     "_M" + std::to_string(m);
  name += std::string(strategy) == "nearest" ? "_nearest" : "_two";
  name += wrap == Wrap::Torus ? "_torus" : "_grid";
  name += popularity == PopularityKind::Uniform ? "_uni" : "_zipf";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, SimulationPropertyTest,
    ::testing::Combine(::testing::Values(std::size_t{64}, std::size_t{225}),
                       ::testing::Values(std::size_t{10}, std::size_t{100}),
                       ::testing::Values(std::size_t{1}, std::size_t{4}),
                       ::testing::Values("nearest", "two-choice(r=7)"),
                       ::testing::Values(Wrap::Torus, Wrap::Grid),
                       ::testing::Values(PopularityKind::Uniform,
                                         PopularityKind::Zipf)),
    config_name);

// Policy matrix: every missing-file / fallback combination must be total
// (no crash, coherent accounting).
class PolicyMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<MissingFilePolicy, FallbackPolicy>> {};

TEST_P(PolicyMatrixTest, PoliciesAreTotal) {
  const auto [missing, fallback] = GetParam();
  ExperimentConfig config;
  config.num_nodes = 169;
  config.num_files = 300;  // K > n with M=1: many uncached files
  config.cache_size = 1;
  config.seed = 0xFEE7;
  config.missing = missing;
  StrategySpec spec = parse_strategy_spec("two-choice(r=2)");
  spec.params["fallback"] = fallback_param(fallback);
  config.strategy_spec = spec;  // tiny radius provokes fallbacks
  if (missing == MissingFilePolicy::Strict) {
    // K=300 > n=169 with M=1 guarantees uncached files; Strict must throw.
    EXPECT_THROW(run_simulation(config, 0), std::runtime_error);
    return;
  }
  const RunResult result = run_simulation(config, 0);
  if (missing == MissingFilePolicy::Resample) {
    EXPECT_EQ(result.resampled + 0, result.resampled);
    EXPECT_GT(result.resampled, 0u);
  }
  if (fallback == FallbackPolicy::Drop) {
    EXPECT_EQ(result.requests + result.dropped,
              missing == MissingFilePolicy::Drop
                  ? result.requests + result.dropped  // trivially true
                  : config.num_nodes);
  } else {
    // All surviving requests are served.
    if (missing == MissingFilePolicy::Resample) {
      EXPECT_EQ(result.requests, config.num_nodes);
    }
  }
}

std::string policy_name(
    const ::testing::TestParamInfo<
        std::tuple<MissingFilePolicy, FallbackPolicy>>& info) {
  const auto [missing, fallback] = info.param;
  std::string name;
  switch (missing) {
    case MissingFilePolicy::Resample: name = "resample"; break;
    case MissingFilePolicy::Drop: name = "dropMissing"; break;
    case MissingFilePolicy::Strict: name = "strict"; break;
  }
  switch (fallback) {
    case FallbackPolicy::ExpandRadius: name += "_expand"; break;
    case FallbackPolicy::NearestReplica: name += "_nearest"; break;
    case FallbackPolicy::Drop: name += "_dropFallback"; break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    PolicyMatrix, PolicyMatrixTest,
    ::testing::Combine(::testing::Values(MissingFilePolicy::Resample,
                                         MissingFilePolicy::Drop,
                                         MissingFilePolicy::Strict),
                       ::testing::Values(FallbackPolicy::ExpandRadius,
                                         FallbackPolicy::NearestReplica,
                                         FallbackPolicy::Drop)),
    policy_name);

// d-choice sweep: the strategy must stay correct for every d in [1, 8].
class DChoiceSweepTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DChoiceSweepTest, AllChoiceCountsWork) {
  ExperimentConfig config;
  config.num_nodes = 196;
  config.num_files = 10;
  config.cache_size = 5;
  config.seed = 0xD;
  config.strategy_spec = parse_strategy_spec(
      "two-choice(d=" + std::to_string(GetParam()) + ")");
  const RunResult result = run_simulation(config, 0);
  EXPECT_EQ(result.requests, config.num_nodes);
  EXPECT_GE(result.max_load, 1u);
}

INSTANTIATE_TEST_SUITE_P(DSweep, DChoiceSweepTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

}  // namespace
}  // namespace proxcache
