// Tests for util/cli: parsing, defaults, error reporting and help output.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/config.hpp"

namespace proxcache {
namespace {

ArgParser make_parser() {
  ArgParser args("prog", "test program");
  args.add_int("n", 2025, "node count");
  args.add_double("gamma", 0.8, "zipf parameter");
  args.add_string("topology", "torus", "wrap mode");
  args.add_flag("full", "paper scale");
  return args;
}

std::vector<const char*> argv_of(std::initializer_list<const char*> items) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), items.begin(), items.end());
  return argv;
}

TEST(Cli, DefaultsApplyWithoutArguments) {
  ArgParser args = make_parser();
  const auto argv = argv_of({});
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_int("n"), 2025);
  EXPECT_DOUBLE_EQ(args.get_double("gamma"), 0.8);
  EXPECT_EQ(args.get_string("topology"), "torus");
  EXPECT_FALSE(args.get_flag("full"));
  EXPECT_FALSE(args.was_set("n"));
}

TEST(Cli, ParsesSeparatedValues) {
  ArgParser args = make_parser();
  const auto argv = argv_of({"--n", "100", "--gamma", "1.5", "--topology",
                             "grid", "--full"});
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_int("n"), 100);
  EXPECT_DOUBLE_EQ(args.get_double("gamma"), 1.5);
  EXPECT_EQ(args.get_string("topology"), "grid");
  EXPECT_TRUE(args.get_flag("full"));
  EXPECT_TRUE(args.was_set("n"));
}

TEST(Cli, ParsesEqualsSyntax) {
  ArgParser args = make_parser();
  const auto argv = argv_of({"--n=64", "--gamma=2.0"});
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_int("n"), 64);
  EXPECT_DOUBLE_EQ(args.get_double("gamma"), 2.0);
}

TEST(Cli, NegativeNumbersParse) {
  ArgParser args("p", "d");
  args.add_int("offset", 0, "signed value");
  const auto argv = argv_of({"--offset", "-5"});
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_int("offset"), -5);
}

TEST(Cli, UnknownOptionThrows) {
  ArgParser args = make_parser();
  const auto argv = argv_of({"--bogus", "1"});
  EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
               CliError);
}

TEST(Cli, MissingValueThrows) {
  ArgParser args = make_parser();
  const auto argv = argv_of({"--n"});
  EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
               CliError);
}

TEST(Cli, BadTypeThrows) {
  {
    ArgParser args = make_parser();
    const auto argv = argv_of({"--n", "abc"});
    EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
                 CliError);
  }
  {
    ArgParser args = make_parser();
    const auto argv = argv_of({"--gamma", "abc"});
    EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
                 CliError);
  }
}

TEST(Cli, FlagRejectsValue) {
  ArgParser args = make_parser();
  const auto argv = argv_of({"--full=yes"});
  EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
               CliError);
}

TEST(Cli, PositionalArgumentsRejected) {
  ArgParser args = make_parser();
  const auto argv = argv_of({"positional"});
  EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
               CliError);
}

TEST(Cli, HelpRequested) {
  ArgParser args = make_parser();
  const auto argv = argv_of({"--help"});
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(args.help_requested());
  const std::string help = args.help_text();
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("--gamma"), std::string::npos);
  EXPECT_NE(help.find("test program"), std::string::npos);
}

TEST(Cli, WrongTypeAccessThrows) {
  ArgParser args = make_parser();
  const auto argv = argv_of({});
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(static_cast<void>(args.get_double("n")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(args.get_int("unknown")), std::invalid_argument);
}

TEST(Cli, DuplicateRegistrationRejected) {
  ArgParser args("p", "d");
  args.add_int("x", 1, "first");
  EXPECT_THROW(args.add_flag("x", "again"), std::invalid_argument);
}

TEST(Cli, LastOccurrenceWins) {
  ArgParser args = make_parser();
  const auto argv = argv_of({"--n", "10", "--n", "20"});
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_int("n"), 20);
}

TEST(Cli, StringListDefaultsApplyWhenAbsent) {
  ArgParser args("p", "d");
  args.add_string_list("strategy", {"nearest", "two-choice"}, "spec");
  const auto argv = argv_of({});
  args.parse(static_cast<int>(argv.size()), argv.data());
  const std::vector<std::string> expected = {"nearest", "two-choice"};
  EXPECT_EQ(args.get_string_list("strategy"), expected);
  EXPECT_FALSE(args.was_set("strategy"));
}

TEST(Cli, StringListAccumulatesAndReplacesDefaults) {
  ArgParser args("p", "d");
  args.add_string_list("strategy", {"nearest"}, "spec");
  const auto argv = argv_of(
      {"--strategy", "least-loaded(r=8)", "--strategy=prox-weighted(d=2)"});
  args.parse(static_cast<int>(argv.size()), argv.data());
  const std::vector<std::string> expected = {"least-loaded(r=8)",
                                             "prox-weighted(d=2)"};
  EXPECT_EQ(args.get_string_list("strategy"), expected);
  EXPECT_TRUE(args.was_set("strategy"));
}

TEST(Cli, StringListHelpMarksRepeatable) {
  ArgParser args("p", "d");
  args.add_string_list("strategy", {"nearest"}, "spec");
  EXPECT_NE(args.help_text().find("repeatable"), std::string::npos);
}

// CLI-facing config validation: the knobs bench/example binaries forward
// from the command line must be rejected by ExperimentConfig::validate()
// before a run starts, not fail deep inside the simulator.

TEST(CliConfigValidation, RejectsOutOfRangeBetaFromCli) {
  ExperimentConfig config;
  config.num_nodes = 100;
  config.strategy_spec = parse_strategy_spec("two-choice(beta=2)");
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(CliConfigValidation, RejectsHotspotRadiusCoveringTheLattice) {
  ExperimentConfig config;
  config.num_nodes = 100;  // side 10
  config.origins.kind = OriginKind::Hotspot;
  config.origins.hotspot_radius = 12;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(CliConfigValidation, RejectsZeroStaleBatchFromCli) {
  ExperimentConfig config;
  config.num_nodes = 100;
  config.strategy_spec = parse_strategy_spec("two-choice(stale=0)");
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace proxcache
