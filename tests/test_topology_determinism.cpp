// Golden-master determinism for the non-lattice topologies: each new
// registry topology (ring / tree / rgg) locks the exact numbers its first
// run produced when the topology layer landed, and inherits the full seed
// contract — rerun-stable, thread-pool invariant, and shareable through
// the rebinding SimulationContext. Uniform popularity keeps every quantity
// integer-derived and platform-portable (comm_cost is an exact rational).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/simulation.hpp"

namespace proxcache {
namespace {

ExperimentConfig topology_config(const char* topology, const char* strategy) {
  ExperimentConfig config;
  config.topology_spec = parse_topology_spec(topology);
  config.num_files = 60;
  config.cache_size = 5;
  config.popularity.kind = PopularityKind::Uniform;
  config.strategy_spec = parse_strategy_spec(strategy);
  config.seed = 0x70F0;
  return config;
}

struct Golden {
  const char* topology;
  const char* strategy;
  Load max_load;
  std::uint64_t requests;
  std::uint64_t fallbacks;
  double comm_cost;
};

// The acceptance gate of the topology layer: these values were produced by
// the first run of each (topology, strategy) cell and must never change.
constexpr Golden kGoldens[] = {
    {"ring(n=400)", "nearest", 5, 400, 0, 6.415},
    {"ring(n=400)", "two-choice(r=5)", 4, 400, 173, 7.0750000000000002},
    {"tree(branching=3, depth=4)", "nearest", 5, 121, 0,
     2.884297520661157},
    {"tree(branching=3, depth=4)", "two-choice(r=5)", 4, 121, 4,
     3.7768595041322315},
    {"rgg(n=256, radius=0.12, seed=9)", "nearest", 5, 256, 0, 1.4921875},
    {"rgg(n=256, radius=0.12, seed=9)", "two-choice(r=5)", 3, 256, 0,
     3.35546875},
};

TEST(TopologyDeterminism, GoldenMastersForEveryNewTopology) {
  for (const Golden& golden : kGoldens) {
    const ExperimentConfig config =
        topology_config(golden.topology, golden.strategy);
    const RunResult result = run_simulation(config, 0);
    const std::string label =
        std::string(golden.topology) + " / " + golden.strategy;
    EXPECT_EQ(result.max_load, golden.max_load) << label;
    EXPECT_EQ(result.requests, golden.requests) << label;
    EXPECT_EQ(result.fallbacks, golden.fallbacks) << label;
    EXPECT_EQ(result.resampled, 0u) << label;
    EXPECT_EQ(result.dropped, 0u) << label;
    EXPECT_DOUBLE_EQ(result.comm_cost, golden.comm_cost) << label;
  }
}

TEST(TopologyDeterminism, RerunAndContextReuseAreStable) {
  for (const char* topology :
       {"ring(n=400)", "tree(branching=3, depth=4)",
        "rgg(n=256, radius=0.12, seed=9)"}) {
    const ExperimentConfig config =
        topology_config(topology, "two-choice(r=5)");
    const SimulationContext context(config);
    const RunResult first = context.run(0);
    (void)context.run(1);  // interleaved runs must not perturb run 0
    const RunResult again = context.run(0);
    EXPECT_EQ(first.max_load, again.max_load) << topology;
    EXPECT_EQ(first.comm_cost, again.comm_cost) << topology;
    // The one-shot entry point agrees with the shared context.
    const RunResult oneshot = run_simulation(config, 0);
    EXPECT_EQ(first.max_load, oneshot.max_load) << topology;
    EXPECT_EQ(first.comm_cost, oneshot.comm_cost) << topology;
  }
}

TEST(TopologyDeterminism, PoolInvarianceOnNonLatticeTopologies) {
  for (const char* topology :
       {"ring(n=400)", "rgg(n=256, radius=0.12, seed=9)"}) {
    const ExperimentConfig config = topology_config(topology, "two-choice");
    const std::size_t runs = 4;
    const ExperimentResult sequential =
        run_experiment(config, runs, nullptr);
    ThreadPool quad(4);
    const ExperimentResult threaded = run_experiment(config, runs, &quad);
    EXPECT_EQ(sequential.max_load.mean(), threaded.max_load.mean())
        << topology;
    EXPECT_EQ(sequential.comm_cost.mean(), threaded.comm_cost.mean())
        << topology;
    EXPECT_EQ(sequential.pooled_load_histogram.counts(),
              threaded.pooled_load_histogram.counts())
        << topology;
  }
}

TEST(TopologyDeterminism, RebindingContextSharesTheMaterializedTopology) {
  // The scenario × strategy matrix fast path: rebinding must reuse the
  // (potentially expensive) topology and stay bit-identical to a fresh
  // context per cell.
  const ExperimentConfig base =
      topology_config("rgg(n=256, radius=0.12, seed=9)", "nearest");
  const SimulationContext shared(base);
  for (const char* strategy :
       {"nearest", "two-choice(r=5)", "least-loaded(r=8)"}) {
    const SimulationContext rebound(shared, parse_strategy_spec(strategy));
    EXPECT_EQ(&rebound.topology(), &shared.topology())
        << "rebinding must not rebuild the topology";
    ExperimentConfig fresh = base;
    fresh.strategy_spec = parse_strategy_spec(strategy);
    const RunResult a = rebound.run(0);
    const RunResult b = SimulationContext(fresh).run(0);
    EXPECT_EQ(a.max_load, b.max_load) << strategy;
    EXPECT_EQ(a.comm_cost, b.comm_cost) << strategy;
    EXPECT_EQ(a.requests, b.requests) << strategy;
  }
}

TEST(TopologyDeterminism, HotspotOriginsComposeWithNonLatticeTopologies) {
  // The hotspot disc anchors at central_node() on every topology; the run
  // must stay total and deterministic (ring: a contiguous arc of origins).
  ExperimentConfig config = topology_config("ring(n=200)", "two-choice(r=4)");
  config.origins.kind = OriginKind::Hotspot;
  config.origins.hotspot_fraction = 0.7;
  config.origins.hotspot_radius = 3;
  const RunResult a = run_simulation(config, 0);
  const RunResult b = run_simulation(config, 0);
  EXPECT_EQ(a.requests, 200u);
  EXPECT_EQ(a.max_load, b.max_load);
  EXPECT_EQ(a.comm_cost, b.comm_cost);
}

}  // namespace
}  // namespace proxcache
