#include "tier/registry.hpp"

#include <stdexcept>

namespace proxcache {

namespace {

TierPreset make(std::string name, std::string summary, const char* spec) {
  TierPreset preset;
  preset.name = std::move(name);
  preset.summary = std::move(summary);
  preset.spec = parse_tier_spec(spec);
  return preset;
}

}  // namespace

TierRegistry::TierRegistry() {
  // The canonical CDN shape of the bench block: eight edge PoPs over a
  // deliberately small regional back-end ring — small enough that a slice
  // of the library exists only at other PoPs or the origin, which is
  // exactly the regime where cross-tier candidate sets earn their keep.
  presets_.push_back(make(
      "cdn", "8 torus edge PoPs over a 64-node back-end ring and an origin",
      "tiers(front=torus(side=8)x8, back=ring(n=64), origin=1)"));
  presets_.push_back(make(
      "edge-core",
      "4 large edge tori over a torus core, fatter back-end caches",
      "tiers(front=torus(side=16)x4, back=torus(side=8), back_cache=20, origin=1)"));
  presets_.push_back(make(
      "origin-only",
      "one flat torus backed directly by an origin (no mid tiers)",
      "tiers(front=torus(side=32), origin=1)"));
}

const TierRegistry& TierRegistry::built_ins() {
  static const TierRegistry registry;
  return registry;
}

const TierPreset* TierRegistry::find(const std::string& name) const {
  for (const TierPreset& preset : presets_) {
    if (preset.name == name) return &preset;
  }
  return nullptr;
}

const TierPreset& TierRegistry::at(const std::string& name) const {
  const TierPreset* preset = find(name);
  if (preset == nullptr) {
    throw std::invalid_argument("unknown tier preset '" + name +
                                "' (known: " + names() + ")");
  }
  return *preset;
}

std::string TierRegistry::names() const {
  std::string joined;
  for (const TierPreset& preset : presets_) {
    if (!joined.empty()) joined += ", ";
    joined += preset.name;
  }
  return joined;
}

TierSpec TierRegistry::resolve(const std::string& text) const {
  if (const TierPreset* preset = find(text)) return preset->spec;
  try {
    return parse_tier_spec(text);
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument(std::string(error.what()) +
                                " (known presets: " + names() + ")");
  }
}

}  // namespace proxcache
