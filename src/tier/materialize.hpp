#pragma once
/// \file materialize.hpp
/// The one seam where a config becomes a concrete network: flat configs
/// keep the historical registry path bit-exactly, tiered configs build a
/// TierSet and compose per-tier placements. Both engines (the batch
/// simulator's SimulationContext/RunHarness and the dynamic event engine)
/// materialize through these two functions so the flat/tiered split can
/// never drift between them.
///
/// Placement seed contract: the flat path draws from
/// `derive_seed(seed, {run, kPlacement})` exactly as it always has; the
/// tiered path extends the path with the tier ordinal —
/// `derive_seed(seed, {run, kPlacement, t})` — so every tier samples an
/// independent stream and adding a tier never perturbs another tier's
/// content. Origin tiers take no draws at all: they replicate the full
/// library (`Placement::full`).

#include <cstdint>
#include <memory>

#include "catalog/placement.hpp"
#include "catalog/popularity.hpp"
#include "core/config.hpp"
#include "topology/topology.hpp"

namespace proxcache {

/// Build the topology `config` describes: a registry topology for flat
/// configs (including degenerate single-tier specs, which resolve to their
/// inner topology), a TieredTopology over a freshly built TierSet when
/// `config.tiered()`.
[[nodiscard]] std::shared_ptr<const Topology> materialize_topology(
    const ExperimentConfig& config);

/// Sample replication `run_index`'s placement for `topology`. Flat: the
/// historical single `Placement::generate` call. Tiered: one generate per
/// cache tier on its own seed stream (capacity = the tier's resolved cache
/// size), `Placement::full` for the origin tier, composed over the global
/// id space.
[[nodiscard]] Placement materialize_placement(const ExperimentConfig& config,
                                              const Topology& topology,
                                              const Popularity& popularity,
                                              std::uint64_t run_index);

}  // namespace proxcache
