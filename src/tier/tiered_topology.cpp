#include "tier/tiered_topology.hpp"

#include <algorithm>
#include <sstream>

#include "util/contracts.hpp"

namespace proxcache {

TieredTopology::TieredTopology(std::shared_ptr<const TierSet> set)
    : set_(std::move(set)) {
  PROXCACHE_REQUIRE(set_ != nullptr, "TieredTopology needs a TierSet");
  // Certified upper bound: no pair costs more than lifting both endpoints
  // all the way to the deepest tier (inner eccentricities bounded by inner
  // diameters) plus one deepest-tier traversal; same-cluster pairs are
  // covered by the per-tier diameters.
  const auto& levels = set_->levels();
  std::uint64_t cross = 0;
  std::uint64_t bound = 0;
  for (std::size_t t = 0; t < levels.size(); ++t) {
    const auto inner_diameter =
        static_cast<std::uint64_t>(levels[t].inner->diameter());
    bound = std::max(bound, inner_diameter);
    if (t + 1 < levels.size()) {
      cross += 2 * (inner_diameter + set_->link());
    } else {
      cross += inner_diameter;
    }
  }
  bound = std::max(bound, cross);
  PROXCACHE_REQUIRE(bound <= static_cast<std::uint64_t>(kUnboundedRadius),
                    "tier composition diameter overflows the hop range");
  diameter_bound_ = static_cast<Hop>(bound);
}

std::size_t TieredTopology::size() const { return set_->size(); }

void TieredTopology::lift(TierSet::Location& loc,
                          std::uint64_t& cost) const {
  const TierLevel& level = set_->levels()[loc.tier];
  cost += level.inner->distance(loc.local, level.gateway) + set_->link();
  loc = set_->locate(set_->attach(loc.tier, loc.cluster));
}

Hop TieredTopology::distance(NodeId u, NodeId v) const {
  if (u == v) return 0;
  TierSet::Location a = set_->locate(u);
  TierSet::Location b = set_->locate(v);
  std::uint64_t cost = 0;
  // Lift the shallower endpoint (both, alternately, when level-tied) until
  // the routes meet in one cluster; the deepest tier is a single cluster,
  // so the loop always terminates.
  while (a.tier != b.tier || a.cluster != b.cluster) {
    if (a.tier <= b.tier) {
      lift(a, cost);
    } else {
      lift(b, cost);
    }
  }
  cost += set_->levels()[a.tier].inner->distance(a.local, b.local);
  return static_cast<Hop>(cost);
}

std::vector<NodeId> TieredTopology::neighbors(NodeId u) const {
  const TierSet::Location loc = set_->locate(u);
  const TierLevel& level = set_->levels()[loc.tier];
  std::vector<NodeId> out;
  const NodeId cluster_base =
      level.base + loc.cluster * level.cluster_nodes;
  for (const NodeId local : level.inner->neighbors(loc.local)) {
    out.push_back(cluster_base + local);
  }
  // Uplink out of this cluster's gateway.
  if (loc.local == level.gateway && loc.tier + 1 < set_->num_tiers()) {
    out.push_back(set_->attach(loc.tier, loc.cluster));
  }
  // Downlinks from shallower clusters attaching here: scan the sibling
  // clusters that land in this cluster (k ≡ cluster mod level.clusters)
  // and keep those whose spread attach point is exactly this node.
  if (loc.tier > 0) {
    const std::uint32_t t = loc.tier - 1;
    const TierLevel& above = set_->levels()[t];
    for (std::uint64_t k = loc.cluster; k < above.clusters;
         k += level.clusters) {
      const auto cluster = static_cast<std::uint32_t>(k);
      if (set_->attach(t, cluster) == u) {
        out.push_back(set_->global_id(t, cluster, above.gateway));
      }
    }
  }
  return out;
}

NodeId TieredTopology::central_node() const {
  // Anchor demand at the front tier: the first front cluster's inner
  // center. (Per-cluster anchoring for hotspot/flash discs lives in the
  // workload generators; this is the single-anchor default.)
  const TierLevel& front = set_->levels().front();
  return set_->global_id(0, 0, front.inner->central_node());
}

std::size_t TieredTopology::origin_universe() const {
  return set_->levels().front().nodes;
}

std::string TieredTopology::describe() const {
  return set_->spec().to_string();
}

std::string TieredTopology::node_label(NodeId u) const {
  const TierSet::Location loc = set_->locate(u);
  const TierLevel& level = set_->levels()[loc.tier];
  std::ostringstream os;
  os << level.spec.role << '#' << loc.cluster << ':'
     << level.inner->node_label(loc.local);
  return os.str();
}

}  // namespace proxcache
