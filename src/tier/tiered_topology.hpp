#pragma once
/// \file tiered_topology.hpp
/// The tier composition as one `Topology`: the disjoint union of every
/// cluster of every tier, joined by gateway-to-attach uplink edges
/// (tier/tier_set.hpp). Distances are true shortest paths of that
/// composed graph — within a cluster the inner metric applies unchanged
/// (inner metrics satisfy the triangle inequality, so detouring through a
/// deeper tier never wins), and across clusters the route lifts each
/// endpoint through its gateway (`link()` hops per uplink) until both
/// sides land in a common cluster. `diameter()` is a certified upper
/// bound (lift both sides the whole way down), which every consumer of
/// the contract tolerates — fallback radii, worst-case fetch costs, and
/// shell loops only need "no distance exceeds it".
///
/// The hop metric is what makes the cost model tier-aware for free:
/// strategy `hops` and with them `comm_cost` charge inter-tier uplinks
/// automatically, flat strategies run on the composition unmodified (that
/// is the "single-tier nearest" baseline), and cross-tier strategies
/// reach the structure through `Topology::as_tiered()`.

#include <memory>
#include <string>

#include "tier/tier_set.hpp"
#include "topology/topology.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Composed hierarchy topology over a shared TierSet.
class TieredTopology final : public Topology {
 public:
  explicit TieredTopology(std::shared_ptr<const TierSet> set);

  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] Hop distance(NodeId u, NodeId v) const override;
  [[nodiscard]] Hop diameter() const override { return diameter_bound_; }
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId u) const override;
  [[nodiscard]] NodeId central_node() const override;
  [[nodiscard]] std::size_t origin_universe() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string node_label(NodeId u) const override;
  [[nodiscard]] const TieredTopology* as_tiered() const override {
    return this;
  }

  [[nodiscard]] const TierSet& tier_set() const { return *set_; }
  [[nodiscard]] std::shared_ptr<const TierSet> shared_tier_set() const {
    return set_;
  }

 private:
  void lift(TierSet::Location& loc, std::uint64_t& cost) const;

  std::shared_ptr<const TierSet> set_;
  Hop diameter_bound_ = 0;
};

}  // namespace proxcache
