#pragma once
/// \file strategies.hpp
/// Cross-tier assignment strategies (the DistCache extension, PAPERS.md):
/// the hierarchy-aware counterparts of the flat paper strategies, routing
/// over a `TieredTopology` through per-tier slices of the global replica
/// lists. All three are split-phase (core/strategy.hpp), so they run on
/// the serial and sharded engines alike, and all three finish `choose`
/// deterministically — no load-dependent RNG — which keeps the sharded
/// engine's speculation valid (`choose_reads_candidates_only`).
///
///  * `cross-two-choice` — DistCache's power-of-two-choices *across*
///    layers: hash the file to one replica per cache tier, serve the
///    least-loaded of those candidates. The origin tier is consulted only
///    when no cache tier holds the file at all.
///  * `front-first` — the CDN baseline: a miss in the requester's own
///    front-end cluster cascades tier by tier toward the origin, serving
///    at the nearest replica of the first tier that holds the file. Fully
///    load-oblivious.
///  * `cross-prox-weighted` — one uniform replica draw per cache tier,
///    then keep `d` of them with probability ~ (1+dist)^-alpha
///    (Efraimidis–Spirakis, as in strategy/prox_weighted.hpp) and serve
///    the least-loaded survivor: proximity bias with cross-tier balance.

#include <cstdint>
#include <span>
#include <string>

#include "core/strategy.hpp"
#include "spatial/replica_index.hpp"
#include "tier/tiered_topology.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Shared per-tier replica slicing: the global replica lists are sorted by
/// node id and tiers occupy contiguous id ranges, so every tier (and every
/// cluster) scope is a binary-searched subspan — no per-tier index copies.
class TierScopes {
 public:
  TierScopes(const TieredTopology& topology, const Placement& placement);

  [[nodiscard]] const TieredTopology& topology() const { return *topology_; }
  [[nodiscard]] const TierSet& tiers() const { return topology_->tier_set(); }
  [[nodiscard]] const Placement& placement() const { return *placement_; }

  /// Replicas of `file` inside tier `t` (whole tier, all clusters).
  [[nodiscard]] std::span<const NodeId> tier_replicas(std::uint32_t t,
                                                      FileId file) const;

  /// Replicas of `file` inside one cluster of tier `t`.
  [[nodiscard]] std::span<const NodeId> cluster_replicas(
      std::uint32_t t, std::uint32_t cluster, FileId file) const;

  /// Nearest member of `slice` to `from` under the composed metric; ties
  /// to the lowest node id (slices are id-sorted). `slice` non-empty.
  [[nodiscard]] ProposedCandidate nearest_in(
      NodeId from, std::span<const NodeId> slice) const;

  /// Deterministic per-(file, origin, tier) hash pick from `slice` —
  /// DistCache's consistent-hash routing: a given requester always probes
  /// the same replica of each tier for a given file, while distinct
  /// requesters spread over the whole tier slice. `slice` non-empty.
  [[nodiscard]] NodeId hash_pick(FileId file, NodeId origin, std::uint32_t t,
                                 std::span<const NodeId> slice) const;

 private:
  const TieredTopology* topology_;
  const Placement* placement_;
};

/// DistCache cross-layer two-choice.
class CrossTwoChoiceStrategy final : public SplitPhaseStrategy {
 public:
  explicit CrossTwoChoiceStrategy(const TieredTopology& topology,
                                  const Placement& placement)
      : scopes_(topology, placement) {}

  void propose(const Request& request, Rng& rng, CandidateArena& arena,
               Proposal& out) override;
  [[nodiscard]] Assignment choose(const Request& request,
                                  const Proposal& proposal,
                                  CandidateArena& arena, const LoadView& loads,
                                  Rng& rng) const override;
  [[nodiscard]] bool choose_reads_candidates_only() const override {
    return true;
  }
  [[nodiscard]] std::string name() const override {
    return "cross-two-choice";
  }

 private:
  TierScopes scopes_;
};

/// Load-oblivious miss cascade front → … → origin.
class FrontFirstStrategy final : public SplitPhaseStrategy {
 public:
  explicit FrontFirstStrategy(const TieredTopology& topology,
                              const Placement& placement)
      : scopes_(topology, placement) {}

  void propose(const Request& request, Rng& rng, CandidateArena& arena,
               Proposal& out) override;
  [[nodiscard]] Assignment choose(const Request& request,
                                  const Proposal& proposal,
                                  CandidateArena& arena, const LoadView& loads,
                                  Rng& rng) const override;
  [[nodiscard]] bool choose_reads_candidates_only() const override {
    return true;  // decided in propose; choose reads nothing at all
  }
  [[nodiscard]] std::string name() const override { return "front-first"; }

 private:
  TierScopes scopes_;
};

struct CrossProxWeightedOptions {
  std::uint32_t num_choices = 2;  ///< candidates kept across tiers (d)
  double alpha = 1.0;             ///< distance-decay exponent
};

/// Distance-discounted cross-tier candidates.
class CrossProxWeightedStrategy final : public SplitPhaseStrategy {
 public:
  CrossProxWeightedStrategy(const TieredTopology& topology,
                            const Placement& placement,
                            CrossProxWeightedOptions options)
      : scopes_(topology, placement), options_(options) {}

  void propose(const Request& request, Rng& rng, CandidateArena& arena,
               Proposal& out) override;
  [[nodiscard]] Assignment choose(const Request& request,
                                  const Proposal& proposal,
                                  CandidateArena& arena, const LoadView& loads,
                                  Rng& rng) const override;
  [[nodiscard]] bool choose_reads_candidates_only() const override {
    return true;
  }
  [[nodiscard]] std::string name() const override;

 private:
  TierScopes scopes_;
  CrossProxWeightedOptions options_;
};

}  // namespace proxcache
