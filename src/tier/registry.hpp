#pragma once
/// \file registry.hpp
/// Named tier-hierarchy presets: a catalog of ready-made `TierSpec`s so
/// runners can say `--tiers cdn` instead of spelling the full grammar, and
/// so `--list` has a tier catalog to print next to the scenario, strategy,
/// topology and cache-policy catalogs. `resolve` accepts either a preset
/// name or a raw tier-spec string, so every CLI surface takes both.

#include <string>
#include <vector>

#include "tier/spec.hpp"

namespace proxcache {

/// One named hierarchy preset.
struct TierPreset {
  std::string name;     ///< registry key, e.g. "cdn"
  std::string summary;  ///< one-line description for --list output
  TierSpec spec;
};

/// Immutable collection of named tier presets.
class TierRegistry {
 public:
  /// The built-in presets (constructed once, parse-validated).
  static const TierRegistry& built_ins();

  /// All presets in registration order.
  [[nodiscard]] const std::vector<TierPreset>& all() const {
    return presets_;
  }

  /// Preset by name, or nullptr when absent.
  [[nodiscard]] const TierPreset* find(const std::string& name) const;

  /// Preset by name; throws std::invalid_argument listing the known names
  /// when absent.
  [[nodiscard]] const TierPreset& at(const std::string& name) const;

  /// Comma-separated names (for error messages and --help).
  [[nodiscard]] std::string names() const;

  /// `text` as a TierSpec: a preset name resolves to its spec, anything
  /// else must parse under the tier grammar (tier/spec.hpp). Throws
  /// std::invalid_argument with both vocabularies in the message when
  /// neither applies.
  [[nodiscard]] TierSpec resolve(const std::string& text) const;

 private:
  TierRegistry();

  std::vector<TierPreset> presets_;
};

}  // namespace proxcache
