#include "tier/materialize.hpp"

#include <vector>

#include "random/rng.hpp"
#include "random/seeding.hpp"
#include "tier/tier_set.hpp"
#include "tier/tiered_topology.hpp"
#include "topology/registry.hpp"

namespace proxcache {

std::shared_ptr<const Topology> materialize_topology(
    const ExperimentConfig& config) {
  if (config.tiered()) {
    return std::make_shared<TieredTopology>(TierSet::build(
        config.tier_spec, static_cast<std::uint32_t>(config.cache_size)));
  }
  return TopologyRegistry::global().make(config.resolved_topology());
}

Placement materialize_placement(const ExperimentConfig& config,
                                const Topology& topology,
                                const Popularity& popularity,
                                std::uint64_t run_index) {
  const TieredTopology* tiered = topology.as_tiered();
  if (tiered == nullptr) {
    Rng rng(derive_seed(config.seed, {run_index, seed_phase::kPlacement}));
    return Placement::generate(topology.size(), popularity, config.cache_size,
                               config.placement_mode, rng);
  }
  const TierSet& set = tiered->tier_set();
  std::vector<Placement> parts;
  parts.reserve(set.num_tiers());
  for (std::uint32_t t = 0; t < set.num_tiers(); ++t) {
    const TierLevel& level = set.levels()[t];
    if (level.is_origin()) {
      parts.push_back(Placement::full(level.nodes, config.num_files,
                                      config.placement_mode));
      continue;
    }
    Rng rng(derive_seed(config.seed, {run_index, seed_phase::kPlacement, t}));
    parts.push_back(Placement::generate(level.nodes, popularity,
                                        level.cache_size,
                                        config.placement_mode, rng));
  }
  return Placement::compose(parts);
}

}  // namespace proxcache
