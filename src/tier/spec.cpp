#include "tier/spec.hpp"

#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace proxcache {

namespace {

constexpr std::uint32_t kMaxClusters = 65536;
constexpr std::uint32_t kMaxCacheOverride = std::uint32_t{1} << 20;
constexpr Hop kMaxLink = 1024;

[[noreturn]] void fail(std::string_view text, const std::string& detail) {
  throw std::invalid_argument("bad tier spec '" + std::string(text) +
                              "': " + detail);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

std::uint64_t parse_count(std::string_view text, std::string_view token,
                          const std::string& what) {
  if (!all_digits(token)) {
    fail(text, what + " must be a positive integer, got '" +
                   std::string(token) + "'");
  }
  std::uint64_t value = 0;
  for (const char c : token) {
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > std::uint64_t{1} << 40) {
      fail(text, what + " '" + std::string(token) + "' is out of range");
    }
  }
  return value;
}

/// Split `body` at commas outside any parentheses.
std::vector<std::string_view> split_items(std::string_view text,
                                          std::string_view body) {
  std::vector<std::string_view> items;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (c == '(') ++depth;
    if (c == ')') {
      --depth;
      if (depth < 0) fail(text, "unbalanced ')'");
    }
    if (c == ',' && depth == 0) {
      items.push_back(body.substr(start, i - start));
      start = i + 1;
    }
  }
  if (depth != 0) fail(text, "unbalanced '('");
  items.push_back(body.substr(start));
  return items;
}

/// Position of the last top-level cluster multiplier `x<digits>` suffix in
/// `value`, or npos when there is none.
std::size_t multiplier_pos(std::string_view value) {
  int depth = 0;
  std::size_t pos = std::string_view::npos;
  for (std::size_t i = 0; i < value.size(); ++i) {
    const char c = value[i];
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth == 0 && (c == 'x' || c == 'X') && i > 0) pos = i;
  }
  if (pos == std::string_view::npos) return pos;
  const std::string_view suffix = trim(value.substr(pos + 1));
  return all_digits(suffix) ? pos : std::string_view::npos;
}

TopologySpec clique_of(std::uint64_t n) {
  TopologySpec spec;
  spec.name = "clique";
  spec.params["n"] = static_cast<double>(n);
  return spec;
}

TierLevelSpec parse_level(std::string_view text, const std::string& role,
                          std::string_view value) {
  TierLevelSpec level;
  level.role = role;
  value = trim(value);
  if (value.empty()) fail(text, "tier '" + role + "' has an empty value");

  const std::size_t xpos = multiplier_pos(value);
  std::string_view inner = value;
  if (xpos != std::string_view::npos) {
    const std::uint64_t clusters =
        parse_count(text, trim(value.substr(xpos + 1)),
                    "cluster multiplier of tier '" + role + "'");
    if (clusters == 0 || clusters > kMaxClusters) {
      fail(text, "tier '" + role + "' cluster multiplier " +
                     std::to_string(clusters) + " is outside [1, " +
                     std::to_string(kMaxClusters) + "]");
    }
    level.clusters = static_cast<std::uint32_t>(clusters);
    inner = trim(value.substr(0, xpos));
    if (inner.empty()) {
      fail(text, "tier '" + role + "' has a cluster multiplier but no "
                 "inner topology");
    }
  }
  if (all_digits(inner)) {
    // Bare-count sugar: an interchangeable pool of that many servers.
    const std::uint64_t n =
        parse_count(text, inner, "node count of tier '" + role + "'");
    if (n == 0) fail(text, "tier '" + role + "' needs at least one node");
    level.topology = clique_of(n);
  } else {
    level.topology = parse_topology_spec(inner);
  }
  return level;
}

}  // namespace

int tier_role_rank(std::string_view role) {
  if (role == "front") return 0;
  if (role == "mid") return 1;
  if (role == "back") return 2;
  if (role == "origin") return 3;
  return -1;
}

bool TierSpec::degenerate() const {
  return levels.size() == 1 && levels.front().clusters == 1 &&
         levels.front().cache_size == 0 && levels.front().role != "origin";
}

std::string TierSpec::to_string() const {
  std::ostringstream os;
  os << "tiers(";
  bool first = true;
  for (const TierLevelSpec& level : levels) {
    if (!first) os << ", ";
    first = false;
    os << level.role << '=';
    const TopologySpec& inner = level.topology;
    if (inner.name == "clique" && inner.params.size() == 1 &&
        inner.has("n")) {
      os << static_cast<std::uint64_t>(inner.get_or("n", 1.0));
    } else {
      os << inner.to_string();
    }
    if (level.clusters != 1) os << 'x' << level.clusters;
  }
  if (link != 1) os << ", link=" << link;
  for (const TierLevelSpec& level : levels) {
    if (level.cache_size != 0) {
      os << ", " << level.role << "_cache=" << level.cache_size;
    }
  }
  os << ')';
  return os.str();
}

TierSpec parse_tier_spec(std::string_view text) {
  const std::string_view trimmed = trim(text);
  const std::size_t open = trimmed.find('(');
  if (open == std::string_view::npos || trimmed.back() != ')') {
    fail(text, "expected the form tiers(front=..., back=..., origin=...)");
  }
  if (lower(trim(trimmed.substr(0, open))) != "tiers") {
    fail(text, "expected the spec name 'tiers', got '" +
                   std::string(trim(trimmed.substr(0, open))) + "'");
  }
  const std::string_view body =
      trimmed.substr(open + 1, trimmed.size() - open - 2);

  TierSpec spec;
  bool link_seen = false;
  std::vector<std::pair<std::string, std::uint32_t>> cache_overrides;
  for (const std::string_view raw_item : split_items(text, body)) {
    const std::string_view item = trim(raw_item);
    if (item.empty()) fail(text, "empty item (stray comma?)");
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      fail(text, "item '" + std::string(item) + "' is not key=value");
    }
    const std::string key = lower(trim(item.substr(0, eq)));
    const std::string_view value = trim(item.substr(eq + 1));
    if (key.empty()) {
      fail(text, "item '" + std::string(item) + "' has an empty key");
    }

    if (key == "link") {
      if (link_seen) fail(text, "duplicate 'link'");
      link_seen = true;
      const std::uint64_t hops = parse_count(text, value, "'link'");
      if (hops > kMaxLink) {
        fail(text, "'link' = " + std::to_string(hops) + " is outside [0, " +
                       std::to_string(kMaxLink) + "]");
      }
      spec.link = static_cast<Hop>(hops);
      continue;
    }

    if (key.size() > 6 && key.ends_with("_cache")) {
      const std::string role = key.substr(0, key.size() - 6);
      if (tier_role_rank(role) < 0) {
        fail(text, "unknown cache-override key '" + key + "'");
      }
      if (role == "origin") {
        fail(text, "the origin tier replicates the full catalog and takes "
                   "no cache override");
      }
      const std::uint64_t cache = parse_count(text, value, "'" + key + "'");
      if (cache == 0 || cache > kMaxCacheOverride) {
        fail(text, "'" + key + "' = " + std::to_string(cache) +
                       " is outside [1, " + std::to_string(kMaxCacheOverride) +
                       "]");
      }
      cache_overrides.emplace_back(role,
                                   static_cast<std::uint32_t>(cache));
      continue;
    }

    const int rank = tier_role_rank(key);
    if (rank < 0) {
      fail(text, "unknown key '" + key +
                     "' (roles: front, mid, back, origin; extras: link, "
                     "<role>_cache)");
    }
    if (!spec.levels.empty() &&
        tier_role_rank(spec.levels.back().role) >= rank) {
      fail(text, "tier roles must appear once each, in front < mid < back "
                 "< origin order ('" +
                     key + "' after '" + spec.levels.back().role + "')");
    }
    spec.levels.push_back(parse_level(text, key, value));
  }

  if (spec.levels.empty()) {
    fail(text, "at least one tier role is required");
  }
  if (spec.levels.back().clusters != 1) {
    fail(text, "the deepest tier ('" + spec.levels.back().role +
                   "') must be a single cluster — it is where all routes "
                   "meet; add a deeper tier or drop its multiplier");
  }
  for (const auto& [role, cache] : cache_overrides) {
    bool found = false;
    for (TierLevelSpec& level : spec.levels) {
      if (level.role == role) {
        level.cache_size = cache;
        found = true;
        break;
      }
    }
    if (!found) {
      fail(text, "cache override '" + role + "_cache' names a tier that "
                 "is not in the spec");
    }
  }
  return spec;
}

}  // namespace proxcache
