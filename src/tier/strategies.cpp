#include "tier/strategies.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "random/splitmix64.hpp"
#include "util/contracts.hpp"

namespace proxcache {

namespace {

/// Shared load-dependent tail: least-loaded candidate of the proposal
/// window, ties to the fewest hops, then to the earliest candidate (the
/// arenas are filled in tier order, so full ties resolve to the shallowest
/// tier). Deterministic — no RNG — which is what licenses
/// `choose_reads_candidates_only` on every strategy here.
Assignment choose_least_loaded(const Proposal& proposal,
                               const CandidateArena& arena,
                               const LoadView& loads) {
  if (proposal.decided) return decided_assignment(proposal);
  const ProposedCandidate* candidates = arena.data() + proposal.first;
  Assignment assignment;
  assignment.fallback = proposal.fallback;
  assignment.server = candidates[0].node;
  assignment.hops = candidates[0].hops;
  Load best = loads.load(candidates[0].node);
  for (std::uint32_t i = 1; i < proposal.count; ++i) {
    const Load load = loads.load(candidates[i].node);
    if (load < best ||
        (load == best && candidates[i].hops < assignment.hops)) {
      best = load;
      assignment.server = candidates[i].node;
      assignment.hops = candidates[i].hops;
    }
  }
  return assignment;
}

std::span<const NodeId> slice_by_range(std::span<const NodeId> list,
                                       NodeId lo, NodeId hi) {
  const auto first = std::lower_bound(list.begin(), list.end(), lo);
  const auto last = std::lower_bound(first, list.end(), hi);
  return {list.data() + (first - list.begin()),
          static_cast<std::size_t>(last - first)};
}

}  // namespace

TierScopes::TierScopes(const TieredTopology& topology,
                       const Placement& placement)
    : topology_(&topology), placement_(&placement) {
  PROXCACHE_REQUIRE(placement.num_nodes() == topology.size(),
                    "placement does not cover the tier composition");
}

std::span<const NodeId> TierScopes::tier_replicas(std::uint32_t t,
                                                  FileId file) const {
  const TierLevel& level = tiers().levels()[t];
  return slice_by_range(placement_->replicas(file), level.base,
                        level.base + level.nodes);
}

std::span<const NodeId> TierScopes::cluster_replicas(std::uint32_t t,
                                                     std::uint32_t cluster,
                                                     FileId file) const {
  const TierLevel& level = tiers().levels()[t];
  const NodeId base = level.base + cluster * level.cluster_nodes;
  return slice_by_range(placement_->replicas(file), base,
                        base + level.cluster_nodes);
}

ProposedCandidate TierScopes::nearest_in(
    NodeId from, std::span<const NodeId> slice) const {
  PROXCACHE_CHECK(!slice.empty(), "nearest_in over an empty scope");
  ProposedCandidate best;
  best.node = slice[0];
  best.hops = topology_->distance(from, slice[0]);
  for (std::size_t i = 1; i < slice.size(); ++i) {
    const Hop d = topology_->distance(from, slice[i]);
    if (d < best.hops) {
      best.node = slice[i];
      best.hops = d;
    }
  }
  return best;
}

NodeId TierScopes::hash_pick(FileId file, NodeId origin, std::uint32_t t,
                             std::span<const NodeId> slice) const {
  PROXCACHE_CHECK(!slice.empty(), "hash_pick over an empty scope");
  const std::uint64_t h = rng::mix64(
      rng::mix64(static_cast<std::uint64_t>(file) + 0x9E3779B97F4A7C15ULL) ^
      rng::mix64(static_cast<std::uint64_t>(origin) + 0xBF58476D1CE4E5B9ULL) ^
      rng::mix64(static_cast<std::uint64_t>(t) + 0xD1B54A32D192ED03ULL));
  return slice[h % slice.size()];
}

// ---------------------------------------------------------------------------
// cross-two-choice

void CrossTwoChoiceStrategy::propose(const Request& request, Rng& rng,
                                     CandidateArena& arena, Proposal& out) {
  (void)rng;  // routing is consistent-hashed; no per-request randomness
  const TierSet& set = scopes_.tiers();
  const TieredTopology& topology = scopes_.topology();
  out.first = static_cast<std::uint32_t>(arena.size());
  for (std::uint32_t t = 0; t < set.num_tiers(); ++t) {
    if (set.levels()[t].is_origin()) continue;
    const auto slice = scopes_.tier_replicas(t, request.file);
    if (slice.empty()) continue;
    ProposedCandidate candidate;
    candidate.node =
        scopes_.hash_pick(request.file, request.origin, t, slice);
    candidate.hops = topology.distance(request.origin, candidate.node);
    candidate.tier = t;
    arena.push_back(candidate);
    ++out.count;
  }
  if (out.count > 0) return;

  // No cache tier holds the file: consult the origin (DistCache semantics —
  // the origin never competes with cache candidates, it only backstops).
  for (std::uint32_t t = 0; t < set.num_tiers(); ++t) {
    if (!set.levels()[t].is_origin()) continue;
    const auto slice = scopes_.tier_replicas(t, request.file);
    PROXCACHE_CHECK(!slice.empty(), "origin tier lost a library file");
    out.decided = true;
    out.server = scopes_.hash_pick(request.file, request.origin, t, slice);
    out.hops = topology.distance(request.origin, out.server);
    return;
  }

  // No origin tier either: the sanitizer guarantees some replica exists;
  // serve it wherever it is and record the fallback.
  const auto all = scopes_.placement().replicas(request.file);
  PROXCACHE_CHECK(!all.empty(),
                  "uncached file reached the strategy; "
                  "sanitize_trace must run first");
  const ProposedCandidate nearest = scopes_.nearest_in(request.origin, all);
  out.decided = true;
  out.fallback = true;
  out.server = nearest.node;
  out.hops = nearest.hops;
}

Assignment CrossTwoChoiceStrategy::choose(const Request& request,
                                          const Proposal& proposal,
                                          CandidateArena& arena,
                                          const LoadView& loads,
                                          Rng& rng) const {
  (void)request;
  (void)rng;
  return choose_least_loaded(proposal, arena, loads);
}

// ---------------------------------------------------------------------------
// front-first

void FrontFirstStrategy::propose(const Request& request, Rng& rng,
                                 CandidateArena& arena, Proposal& out) {
  (void)rng;
  (void)arena;  // always decided: the cascade is load-oblivious
  const TierSet& set = scopes_.tiers();
  out.decided = true;

  // The requester's own cluster first — a front-end PoP knows only its own
  // partition — then each deeper tier as a whole.
  const TierSet::Location loc = set.locate(request.origin);
  auto slice = scopes_.cluster_replicas(loc.tier, loc.cluster, request.file);
  if (slice.empty()) {
    for (std::uint32_t t = loc.tier + 1; t < set.num_tiers(); ++t) {
      slice = scopes_.tier_replicas(t, request.file);
      if (!slice.empty()) break;
    }
  }
  if (slice.empty()) {
    // Not below the requester anywhere: sideways to wherever a replica
    // lives (counted as a fallback — the cascade proper failed).
    slice = scopes_.placement().replicas(request.file);
    PROXCACHE_CHECK(!slice.empty(),
                    "uncached file reached the strategy; "
                    "sanitize_trace must run first");
    out.fallback = true;
  }
  const ProposedCandidate hit = scopes_.nearest_in(request.origin, slice);
  out.server = hit.node;
  out.hops = hit.hops;
}

Assignment FrontFirstStrategy::choose(const Request& request,
                                      const Proposal& proposal,
                                      CandidateArena& arena,
                                      const LoadView& loads, Rng& rng) const {
  (void)request;
  (void)arena;
  (void)loads;
  (void)rng;
  return decided_assignment(proposal);
}

// ---------------------------------------------------------------------------
// cross-prox-weighted

std::string CrossProxWeightedStrategy::name() const {
  std::ostringstream os;
  os << "cross-prox-weighted(d=" << options_.num_choices
     << ",alpha=" << options_.alpha << ")";
  return os.str();
}

void CrossProxWeightedStrategy::propose(const Request& request, Rng& rng,
                                        CandidateArena& arena,
                                        Proposal& out) {
  const TierSet& set = scopes_.tiers();
  const TieredTopology& topology = scopes_.topology();
  out.first = static_cast<std::uint32_t>(arena.size());

  // One uniform draw per cache tier that holds the file, then keep the
  // `d` best Efraimidis–Spirakis keys under weight (1+dist)^-alpha. The
  // draw count per request depends only on the placement — never on loads
  // — so the whole block is propose-side.
  struct Pick {
    ProposedCandidate candidate;
    double key = 0.0;
  };
  Pick picks[64];
  std::uint32_t pool = 0;
  for (std::uint32_t t = 0; t < set.num_tiers(); ++t) {
    if (set.levels()[t].is_origin()) continue;
    const auto slice = scopes_.tier_replicas(t, request.file);
    if (slice.empty()) continue;
    Pick pick;
    pick.candidate.node = slice[rng.below(slice.size())];
    pick.candidate.hops = topology.distance(request.origin,
                                            pick.candidate.node);
    pick.candidate.tier = t;
    pick.candidate.weight = std::pow(
        1.0 + static_cast<double>(pick.candidate.hops), -options_.alpha);
    pick.key = std::pow(rng.uniform(), 1.0 / pick.candidate.weight);
    if (pool < 64) picks[pool++] = pick;
  }

  if (pool == 0) {
    // Same backstop ladder as cross-two-choice: origin, then anywhere.
    for (std::uint32_t t = 0; t < set.num_tiers(); ++t) {
      if (!set.levels()[t].is_origin()) continue;
      const auto slice = scopes_.tier_replicas(t, request.file);
      PROXCACHE_CHECK(!slice.empty(), "origin tier lost a library file");
      out.decided = true;
      out.server = scopes_.hash_pick(request.file, request.origin, t, slice);
      out.hops = topology.distance(request.origin, out.server);
      return;
    }
    const auto all = scopes_.placement().replicas(request.file);
    PROXCACHE_CHECK(!all.empty(),
                    "uncached file reached the strategy; "
                    "sanitize_trace must run first");
    const ProposedCandidate nearest = scopes_.nearest_in(request.origin, all);
    out.decided = true;
    out.fallback = true;
    out.server = nearest.node;
    out.hops = nearest.hops;
    return;
  }

  const std::uint32_t keep = std::min(options_.num_choices, pool);
  std::partial_sort(picks, picks + keep, picks + pool,
                    [](const Pick& a, const Pick& b) {
                      if (a.key != b.key) return a.key > b.key;
                      return a.candidate.tier < b.candidate.tier;
                    });
  // Survivors re-ordered by tier so full choose-ties resolve shallowest.
  std::sort(picks, picks + keep, [](const Pick& a, const Pick& b) {
    return a.candidate.tier < b.candidate.tier;
  });
  for (std::uint32_t i = 0; i < keep; ++i) {
    arena.push_back(picks[i].candidate);
  }
  out.count = keep;
  for (std::uint32_t i = 0; i < keep; ++i) {
    out.total_weight += picks[i].candidate.weight;
  }
}

Assignment CrossProxWeightedStrategy::choose(const Request& request,
                                             const Proposal& proposal,
                                             CandidateArena& arena,
                                             const LoadView& loads,
                                             Rng& rng) const {
  (void)request;
  (void)rng;
  return choose_least_loaded(proposal, arena, loads);
}

}  // namespace proxcache
