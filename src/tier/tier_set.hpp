#pragma once
/// \file tier_set.hpp
/// The materialized tier hierarchy behind a `TierSpec`: one shared inner
/// `Topology` per level (every cluster of a level is an identical copy),
/// laid out in one dense global node-id space — tier 0 (the front) starts
/// at id 0, each deeper tier follows, and within a tier cluster `k`
/// occupies the contiguous block `[base + k*m, base + (k+1)*m)`.
///
/// Keeping the id space dense and front-first is load-bearing: the
/// workload generators draw request origins from the prefix
/// `[0, front nodes)` (Topology::origin_universe), per-tier placements
/// concatenate into one global `Placement` by offsetting, and the metrics
/// layer slices one global load vector by `[base, base + nodes)` — so the
/// engines (serial, sharded, dynamic) stay tier-oblivious.
///
/// Every cluster uplinks to the next-deeper tier through its *gateway*
/// (the cluster's inner central node); the uplink lands on a
/// deterministic attach node: siblings round-robin over the deeper
/// tier's clusters, and within a host cluster their attach points spread
/// evenly over its nodes. Each uplink costs `link()` hops.

#include <cstdint>
#include <memory>
#include <vector>

#include "tier/spec.hpp"
#include "topology/topology.hpp"
#include "util/types.hpp"

namespace proxcache {

/// One materialized tier level.
struct TierLevel {
  TierLevelSpec spec;
  std::shared_ptr<const Topology> inner;  ///< shared by all clusters
  std::uint32_t clusters = 1;
  std::uint32_t cluster_nodes = 0;  ///< inner->size()
  NodeId base = 0;                  ///< first global node id of this tier
  std::uint32_t nodes = 0;          ///< clusters * cluster_nodes
  /// Per-node cache capacity: the spec override, else the config default.
  /// 0 on an origin tier — origin nodes replicate the full catalog.
  std::uint32_t cache_size = 0;
  NodeId gateway = 0;  ///< inner-local id of each cluster's uplink node

  [[nodiscard]] bool is_origin() const { return spec.role == "origin"; }
};

/// Immutable materialized hierarchy; safe to share across runs/threads.
class TierSet {
 public:
  /// Where a global node id lives.
  struct Location {
    std::uint32_t tier;
    std::uint32_t cluster;
    NodeId local;
  };

  /// Materialize `spec` (inner topologies via TopologyRegistry::global()),
  /// resolving per-tier cache capacities against `default_cache_size`.
  /// Throws std::invalid_argument on unregistered/invalid inner specs or a
  /// composed node count overflowing the id space.
  [[nodiscard]] static std::shared_ptr<const TierSet> build(
      const TierSpec& spec, std::uint32_t default_cache_size);

  [[nodiscard]] const TierSpec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<TierLevel>& levels() const {
    return levels_;
  }
  [[nodiscard]] std::size_t num_tiers() const { return levels_.size(); }
  [[nodiscard]] std::size_t size() const { return total_nodes_; }
  [[nodiscard]] Hop link() const { return spec_.link; }
  [[nodiscard]] bool has_origin() const {
    return levels_.back().is_origin();
  }

  [[nodiscard]] Location locate(NodeId u) const;
  [[nodiscard]] NodeId global_id(std::uint32_t tier, std::uint32_t cluster,
                                 NodeId local) const;

  /// Global id of the node in tier `t + 1` that cluster `k` of tier `t`
  /// uplinks to (round-robin over the deeper tier's clusters; attach
  /// points spread evenly over the host cluster's nodes).
  [[nodiscard]] NodeId attach(std::uint32_t t, std::uint32_t k) const;

 private:
  TierSet() = default;

  TierSpec spec_;
  std::vector<TierLevel> levels_;
  std::size_t total_nodes_ = 0;
};

}  // namespace proxcache
