#pragma once
/// \file spec.hpp
/// Typed description of a cache-tier hierarchy: an ordered list of tier
/// levels, each an inner topology replicated over some number of clusters,
/// joined by fixed-cost uplinks. The grammar is the registries' kvspec
/// family extended with nested topology specs and a cluster multiplier:
///
///     tiers(front=torus(side=32)x16, back=ring(n=4096), origin=1)
///     tiers(front=torus(side=8)x8, back=ring(n=64), origin=1,
///           link=2, back_cache=4)
///
/// Roles come in hierarchy order — `front`, `mid`, `back`, `origin` — and
/// each takes an inner topology spec, optionally multiplied into `xC`
/// clusters; a bare integer is sugar for `clique(n=...)` (an
/// interchangeable pool, the usual shape of an origin). `link` is the hop
/// cost of every inter-tier uplink; `<role>_cache` overrides the config's
/// per-node cache size for one tier. The `origin` tier replicates the full
/// catalog (so it takes no `_cache` override), and the deepest tier must
/// be a single cluster — it is where all routes meet.
///
/// A spec of one front tier, one cluster, and no overrides is *degenerate*:
/// it names exactly the flat network of its inner topology, and configs
/// resolve it to the flat engine path bit-identically (core/config.hpp).
///
/// Standalone like the sibling spec files: no dependency on the registries
/// or the simulator.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "topology/spec.hpp"
#include "util/types.hpp"

namespace proxcache {

/// One tier level: `clusters` disjoint copies of `topology`, every cluster
/// uplinked to the next-deeper tier through its inner central node.
struct TierLevelSpec {
  std::string role;       ///< "front" | "mid" | "back" | "origin"
  TopologySpec topology;  ///< inner per-cluster topology
  std::uint32_t clusters = 1;
  std::uint32_t cache_size = 0;  ///< per-node override; 0 = config default

  friend bool operator==(const TierLevelSpec&, const TierLevelSpec&) =
      default;
};

/// An ordered tier hierarchy, front (shallowest) first.
struct TierSpec {
  std::vector<TierLevelSpec> levels;
  Hop link = 1;  ///< hop cost of each inter-tier uplink

  /// True when no hierarchy is configured (the flat engine path).
  [[nodiscard]] bool empty() const { return levels.empty(); }

  /// True when this spec names a flat network: a single non-origin tier of
  /// one cluster with no cache override. Such specs resolve to their inner
  /// topology and never build the tier machinery.
  [[nodiscard]] bool degenerate() const;

  /// Canonical spec string (role order, cluster multipliers, then `link`
  /// when non-default and the `_cache` overrides). Bare-integer sugar is
  /// preserved: a single-parameter clique prints as its node count.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const TierSpec&, const TierSpec&) = default;
};

/// Hierarchy rank of a role name: front=0, mid=1, back=2, origin=3;
/// -1 when `role` is not a tier role.
[[nodiscard]] int tier_role_rank(std::string_view role);

/// Parse a tier spec string (`tiers(...)` form). Tolerates whitespace and
/// letter case like the sibling grammars; throws std::invalid_argument as
/// `bad tier spec '<text>': <detail>` on malformed input, out-of-order or
/// duplicate roles, a multi-cluster deepest tier, or a cache override for
/// an absent role or the origin.
[[nodiscard]] TierSpec parse_tier_spec(std::string_view text);

}  // namespace proxcache
