#include "tier/tier_set.hpp"

#include <stdexcept>
#include <string>

#include "topology/registry.hpp"
#include "util/contracts.hpp"

namespace proxcache {

std::shared_ptr<const TierSet> TierSet::build(
    const TierSpec& spec, std::uint32_t default_cache_size) {
  PROXCACHE_REQUIRE(!spec.empty(), "cannot build a TierSet from an empty "
                                   "tier spec");
  auto set = std::shared_ptr<TierSet>(new TierSet());
  set->spec_ = spec;
  const TopologyRegistry& registry = TopologyRegistry::global();
  std::size_t base = 0;
  for (const TierLevelSpec& level_spec : spec.levels) {
    TierLevel level;
    level.spec = level_spec;
    level.inner = registry.make(level_spec.topology);
    level.clusters = level_spec.clusters;
    level.cluster_nodes = static_cast<std::uint32_t>(level.inner->size());
    level.base = static_cast<NodeId>(base);
    level.nodes = level.clusters * level.cluster_nodes;
    level.cache_size = level.is_origin()
                           ? 0
                           : (level_spec.cache_size != 0
                                  ? level_spec.cache_size
                                  : default_cache_size);
    level.gateway = level.inner->central_node();
    base += level.nodes;
    if (base > static_cast<std::size_t>(kInvalidNode)) {
      throw std::invalid_argument(
          "tier spec " + spec.to_string() + " composes " +
          std::to_string(base) + " nodes, overflowing the node id space");
    }
    set->levels_.push_back(std::move(level));
  }
  set->total_nodes_ = base;
  return set;
}

TierSet::Location TierSet::locate(NodeId u) const {
  PROXCACHE_REQUIRE(u < total_nodes_, "node id out of range");
  std::uint32_t tier = 0;
  while (tier + 1 < levels_.size() && u >= levels_[tier + 1].base) ++tier;
  const TierLevel& level = levels_[tier];
  const NodeId offset = u - level.base;
  return Location{tier, offset / level.cluster_nodes,
                  offset % level.cluster_nodes};
}

NodeId TierSet::global_id(std::uint32_t tier, std::uint32_t cluster,
                          NodeId local) const {
  const TierLevel& level = levels_[tier];
  PROXCACHE_REQUIRE(cluster < level.clusters && local < level.cluster_nodes,
                    "tier-local coordinates out of range");
  return level.base + cluster * level.cluster_nodes + local;
}

NodeId TierSet::attach(std::uint32_t t, std::uint32_t k) const {
  PROXCACHE_REQUIRE(t + 1 < levels_.size(),
                    "the deepest tier has no uplink");
  const TierLevel& next = levels_[t + 1];
  const std::uint32_t cluster = k % next.clusters;
  // Sibling clusters landing in the same host cluster spread their attach
  // points evenly over its nodes (PoPs distributed along the backbone)
  // rather than packing consecutively — packing would funnel every
  // cross-cluster route through one corner of the host topology.
  const std::uint32_t rank = k / next.clusters;
  const std::uint32_t siblings =
      (levels_[t].clusters + next.clusters - 1) / next.clusters;
  const std::uint32_t stride = std::max(1u, next.cluster_nodes / siblings);
  const NodeId local = static_cast<NodeId>(
      (static_cast<std::uint64_t>(rank) * stride) % next.cluster_nodes);
  return global_id(t + 1, cluster, local);
}

}  // namespace proxcache
