#pragma once
/// \file spec.hpp
/// Typed, open-ended description of an assignment strategy: a registry name
/// plus a flat `key -> double` parameter map. `StrategySpec` is the one
/// currency the whole stack trades in — configs carry it, the registry
/// validates it and binds it to a factory, and CLIs round-trip it through
/// the spec-string grammar
///
///     name                          e.g.  nearest
///     name(k=v, k=v, ...)           e.g.  two-choice(d=2, r=16, beta=0.7,
///                                                    fallback=expand)
///
/// Values are numbers, `inf`, or one of a small set of symbolic keywords
/// that canonicalize to numeric codes (`fallback=expand|nearest|drop`).
/// Parsing is whitespace- and case-insensitive; `to_string()` emits the
/// canonical lowercase form and `parse_strategy_spec(to_string())` is the
/// identity for every representable spec.
///
/// The spec layer is deliberately standalone (no dependency on core config
/// or the registry) so new strategy modules and external tools can speak it
/// without pulling in the simulator.

#include <map>
#include <string>
#include <string_view>

namespace proxcache {

/// Numeric codes for the symbolic `fallback=` keyword. Kept in sync with
/// core/config.hpp's FallbackPolicy by static_asserts in the registry.
inline constexpr double kSpecFallbackExpand = 0.0;
inline constexpr double kSpecFallbackNearest = 1.0;
inline constexpr double kSpecFallbackDrop = 2.0;

/// A named strategy with keyword parameters. Unset keys mean "registry
/// default"; the registry's per-strategy parameter rules decide which keys
/// are legal and in what range.
struct StrategySpec {
  std::string name;                      ///< registry key, canonical lowercase
  std::map<std::string, double> params;  ///< explicit parameters only

  /// True when no strategy is named (configs fall back to the legacy knobs).
  [[nodiscard]] bool empty() const { return name.empty(); }

  [[nodiscard]] bool has(const std::string& key) const {
    return params.find(key) != params.end();
  }

  /// Parameter value, or `fallback` when the key is not set.
  [[nodiscard]] double get_or(const std::string& key, double fallback) const;

  /// Canonical spec string, e.g. `two-choice(beta=0.7, r=16)`. Keys are
  /// emitted in sorted order; symbolic keywords and `inf` are restored.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const StrategySpec&, const StrategySpec&) = default;
};

/// Parse a spec string. Tolerates surrounding/internal whitespace and any
/// letter case; throws std::invalid_argument with a message pinpointing the
/// offending token on malformed input (missing parenthesis, missing `=`,
/// duplicate or empty key, unparseable value, trailing garbage).
[[nodiscard]] StrategySpec parse_strategy_spec(std::string_view text);

}  // namespace proxcache
