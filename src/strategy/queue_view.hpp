#pragma once
/// \file queue_view.hpp
/// Live queue lengths as a `LoadView`: the load signal of the queueing /
/// event-driven modes. Where the batch simulator's `LoadTracker` counts
/// assignments monotonically, a queue view rises on enqueue and falls on
/// departure, so "least loaded" means "shortest queue *right now*" — the
/// supermarket-model semantics. Promoted from the private QueueState of
/// the original `run_supermarket` loop so the event engine and any future
/// queue-aware callers share one definition.

#include <vector>

#include "core/metrics.hpp"
#include "util/contracts.hpp"
#include "util/types.hpp"

namespace proxcache {

class QueueLoadView final : public LoadView {
 public:
  explicit QueueLoadView(std::size_t num_nodes) : lengths_(num_nodes, 0) {}

  [[nodiscard]] Load load(NodeId server) const override {
    return lengths_[server];
  }
  [[nodiscard]] Load length(NodeId server) const { return lengths_[server]; }

  void push(NodeId server) { ++lengths_[server]; }
  void pop(NodeId server) {
    PROXCACHE_CHECK(lengths_[server] > 0, "pop from empty queue");
    --lengths_[server];
  }

 private:
  std::vector<Load> lengths_;
};

}  // namespace proxcache
