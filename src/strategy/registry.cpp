#include "strategy/registry.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/nearest_replica.hpp"
#include "core/two_choice.hpp"
#include "strategy/least_loaded.hpp"
#include "strategy/prox_weighted.hpp"
#include "tier/strategies.hpp"
#include "tier/tiered_topology.hpp"
#include "util/contracts.hpp"

namespace proxcache {

namespace {

// The spec layer's fallback codes are the canonical wire format; they must
// track the enum values so the conversions below are casts.
static_assert(static_cast<double>(
                  static_cast<std::uint8_t>(FallbackPolicy::ExpandRadius)) ==
              kSpecFallbackExpand);
static_assert(static_cast<double>(static_cast<std::uint8_t>(
                  FallbackPolicy::NearestReplica)) == kSpecFallbackNearest);
static_assert(static_cast<double>(
                  static_cast<std::uint8_t>(FallbackPolicy::Drop)) ==
              kSpecFallbackDrop);

constexpr double kInf = std::numeric_limits<double>::infinity();

/// `r` spec values are doubles; anything at or beyond the NodeId-sized
/// sentinel (including `inf`) means "no proximity constraint".
Hop radius_from_param(double value) {
  if (value >= static_cast<double>(kUnboundedRadius)) return kUnboundedRadius;
  return static_cast<Hop>(value);
}

StrategyParamRule stale_rule() {
  return {"stale", 1.0, 4294967295.0, 1.0,
          "load-snapshot refresh period in requests (1 = always fresh)",
          /*integral=*/true};
}

std::string format_range(double lo, double hi) {
  std::ostringstream os;
  os << '[' << lo << ", ";
  if (std::isinf(hi)) {
    os << "inf";
  } else {
    os << hi;
  }
  os << ']';
  return os.str();
}

}  // namespace

double fallback_param(FallbackPolicy policy) {
  return static_cast<double>(static_cast<std::uint8_t>(policy));
}

FallbackPolicy fallback_policy_from_param(double code) {
  if (code == kSpecFallbackNearest) return FallbackPolicy::NearestReplica;
  if (code == kSpecFallbackDrop) return FallbackPolicy::Drop;
  return FallbackPolicy::ExpandRadius;
}

void StrategyRegistry::add(StrategyEntry entry) {
  if (entry.name.empty()) {
    throw std::invalid_argument("strategy entry needs a non-empty name");
  }
  if (!entry.factory) {
    throw std::invalid_argument("strategy '" + entry.name +
                                "' registered without a factory");
  }
  if (find(entry.name) != nullptr) {
    throw std::invalid_argument("strategy '" + entry.name +
                                "' is already registered");
  }
  entries_.push_back(std::move(entry));
}

const StrategyEntry* StrategyRegistry::find(const std::string& name) const {
  for (const StrategyEntry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const StrategyEntry& StrategyRegistry::at(const std::string& name) const {
  const StrategyEntry* entry = find(name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown strategy '" + name +
                                "' (known: " + names() + ")");
  }
  return *entry;
}

std::string StrategyRegistry::names() const {
  std::string joined;
  for (const StrategyEntry& entry : entries_) {
    if (!joined.empty()) joined += ", ";
    joined += entry.name;
  }
  return joined;
}

void StrategyRegistry::validate(const StrategySpec& spec) const {
  const StrategyEntry& entry = at(spec.name);
  for (const auto& [key, value] : spec.params) {
    const StrategyParamRule* rule = nullptr;
    for (const StrategyParamRule& candidate : entry.params) {
      if (candidate.key == key) {
        rule = &candidate;
        break;
      }
    }
    if (rule == nullptr) {
      std::string known;
      for (const StrategyParamRule& candidate : entry.params) {
        if (!known.empty()) known += ", ";
        known += candidate.key;
      }
      throw std::invalid_argument(
          "strategy '" + spec.name + "' does not take parameter '" + key +
          "' (known: " + (known.empty() ? "<none>" : known) + ")");
    }
    if (std::isnan(value) || value < rule->min_value ||
        value > rule->max_value) {
      std::ostringstream os;
      os << "strategy '" << spec.name << "' parameter '" << key << "' = "
         << value << " is outside "
         << format_range(rule->min_value, rule->max_value);
      throw std::invalid_argument(os.str());
    }
    if (rule->integral && !std::isinf(value) &&
        value != std::floor(value)) {
      std::ostringstream os;
      os << "strategy '" << spec.name << "' parameter '" << key << "' = "
         << value << " must be an integer";
      throw std::invalid_argument(os.str());
    }
  }
}

StrategySpec StrategyRegistry::with_defaults(const StrategySpec& spec) const {
  validate(spec);
  StrategySpec filled = spec;
  for (const StrategyParamRule& rule : at(spec.name).params) {
    if (!filled.has(rule.key)) filled.params[rule.key] = rule.default_value;
  }
  return filled;
}

std::unique_ptr<Strategy> StrategyRegistry::make(
    const StrategySpec& spec, const ReplicaIndex& index,
    const Topology& topology, const ExperimentConfig& config) const {
  return at(spec.name).factory(with_defaults(spec), index, topology, config);
}

const StrategyRegistry& StrategyRegistry::built_ins() {
  static const StrategyRegistry registry = [] {
    StrategyRegistry r;
    r.add({"nearest",
           "Strategy I: serve at the nearest replica (load-oblivious)",
           {stale_rule()},
           [](const StrategySpec&, const ReplicaIndex& index, const Topology&,
              const ExperimentConfig&) -> std::unique_ptr<Strategy> {
             return std::make_unique<NearestReplicaStrategy>(index);
           }});
    r.add({"two-choice",
           "Strategy II: d uniform candidates within radius r, "
           "least-loaded wins",
           {{"d", 1.0, 8.0, 2.0, "number of sampled candidates",
             /*integral=*/true},
            {"r", 0.0, kInf, kInf, "proximity radius in hops (inf = none)",
             /*integral=*/true},
            {"beta", 0.0, 1.0, 1.0,
             "(1+beta) mixing: probability of the d-choice comparison"},
            {"fallback", 0.0, 2.0, kSpecFallbackExpand,
             "empty-candidate policy: expand | nearest | drop",
             /*integral=*/true},
            {"wr", 0.0, 1.0, 0.0, "sample with replacement (0 | 1)",
             /*integral=*/true},
            stale_rule()},
           [](const StrategySpec& spec, const ReplicaIndex& index,
              const Topology&,
              const ExperimentConfig&) -> std::unique_ptr<Strategy> {
             TwoChoiceOptions options;
             options.radius = radius_from_param(spec.get_or("r", kInf));
             options.num_choices =
                 static_cast<std::uint32_t>(spec.get_or("d", 2.0));
             options.with_replacement = spec.get_or("wr", 0.0) != 0.0;
             options.fallback =
                 fallback_policy_from_param(spec.get_or("fallback", 0.0));
             options.beta = spec.get_or("beta", 1.0);
             return std::make_unique<TwoChoiceStrategy>(index, options);
           }});
    r.add({"least-loaded",
           "probe every replica within radius r, serve the least-loaded "
           "(ties to the closest)",
           {{"r", 0.0, kInf, kInf, "probe radius in hops (inf = all)",
             /*integral=*/true},
            {"fallback", 0.0, 2.0, kSpecFallbackExpand,
             "empty-candidate policy: expand | nearest | drop",
             /*integral=*/true},
            stale_rule()},
           [](const StrategySpec& spec, const ReplicaIndex& index,
              const Topology&,
              const ExperimentConfig&) -> std::unique_ptr<Strategy> {
             LeastLoadedOptions options;
             options.radius = radius_from_param(spec.get_or("r", kInf));
             options.fallback =
                 fallback_policy_from_param(spec.get_or("fallback", 0.0));
             return std::make_unique<LeastLoadedStrategy>(index, options);
           }});
    r.add({"prox-weighted",
           "d candidates drawn with probability ~ (1+dist)^-alpha, "
           "least-loaded wins",
           {{"d", 1.0, 8.0, 2.0, "number of sampled candidates",
             /*integral=*/true},
            {"alpha", 0.0, 64.0, 1.0,
             "distance-decay exponent (0 = uniform d-choice)"},
            stale_rule()},
           [](const StrategySpec& spec, const ReplicaIndex& index,
              const Topology&,
              const ExperimentConfig&) -> std::unique_ptr<Strategy> {
             ProxWeightedOptions options;
             options.num_choices =
                 static_cast<std::uint32_t>(spec.get_or("d", 2.0));
             options.alpha = spec.get_or("alpha", 1.0);
             return std::make_unique<ProxWeightedStrategy>(index, options);
           }});
    r.add({"cross-two-choice",
           "DistCache cross-layer: hash to one replica per cache tier, "
           "least-loaded wins; origin only on a full miss",
           {stale_rule()},
           [](const StrategySpec&, const ReplicaIndex& index,
              const Topology& topology,
              const ExperimentConfig&) -> std::unique_ptr<Strategy> {
             const TieredTopology* tiered = topology.as_tiered();
             PROXCACHE_REQUIRE(tiered != nullptr,
                               "strategy 'cross-two-choice' needs a tiered "
                               "topology (set a tier_spec)");
             return std::make_unique<CrossTwoChoiceStrategy>(
                 *tiered, index.placement());
           },
           /*requires_tiers=*/true});
    r.add({"front-first",
           "CDN baseline: miss in the own front cluster cascades tier by "
           "tier toward the origin (load-oblivious)",
           {stale_rule()},
           [](const StrategySpec&, const ReplicaIndex& index,
              const Topology& topology,
              const ExperimentConfig&) -> std::unique_ptr<Strategy> {
             const TieredTopology* tiered = topology.as_tiered();
             PROXCACHE_REQUIRE(tiered != nullptr,
                               "strategy 'front-first' needs a tiered "
                               "topology (set a tier_spec)");
             return std::make_unique<FrontFirstStrategy>(*tiered,
                                                         index.placement());
           },
           /*requires_tiers=*/true});
    r.add({"cross-prox-weighted",
           "one uniform replica draw per cache tier, keep d by weight "
           "(1+dist)^-alpha, least-loaded wins",
           {{"d", 1.0, 8.0, 2.0, "candidates kept across tiers",
             /*integral=*/true},
            {"alpha", 0.0, 64.0, 1.0,
             "distance-decay exponent (0 = uniform across tiers)"},
            stale_rule()},
           [](const StrategySpec& spec, const ReplicaIndex& index,
              const Topology& topology,
              const ExperimentConfig&) -> std::unique_ptr<Strategy> {
             const TieredTopology* tiered = topology.as_tiered();
             PROXCACHE_REQUIRE(tiered != nullptr,
                               "strategy 'cross-prox-weighted' needs a "
                               "tiered topology (set a tier_spec)");
             CrossProxWeightedOptions options;
             options.num_choices =
                 static_cast<std::uint32_t>(spec.get_or("d", 2.0));
             options.alpha = spec.get_or("alpha", 1.0);
             return std::make_unique<CrossProxWeightedStrategy>(
                 *tiered, index.placement(), options);
           },
           /*requires_tiers=*/true});
    return r;
  }();
  return registry;
}

StrategyRegistry& StrategyRegistry::global() {
  static StrategyRegistry registry = with_built_ins();
  return registry;
}

std::vector<StrategySpec> parse_validated_specs(
    const std::vector<std::string>& texts, const StrategyRegistry& registry) {
  std::vector<StrategySpec> specs;
  specs.reserve(texts.size());
  for (const std::string& text : texts) {
    StrategySpec spec = parse_strategy_spec(text);
    registry.validate(spec);
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace proxcache
