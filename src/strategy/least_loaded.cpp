#include "strategy/least_loaded.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace proxcache {

std::string LeastLoadedStrategy::name() const {
  std::ostringstream os;
  os << "least-loaded(r=";
  if (options_.radius == kUnboundedRadius) {
    os << "inf";
  } else {
    os << options_.radius;
  }
  os << ")";
  return os.str();
}

Assignment LeastLoadedStrategy::assign(const Request& request,
                                       const LoadView& loads, Rng& rng) {
  const Topology& topology = index_->topology();
  Assignment assignment;
  Hop radius = options_.radius;

  while (true) {
    NodeId best_node = kInvalidNode;
    Load best_load = 0;
    Hop best_dist = 0;
    std::uint32_t ties = 0;
    index_->for_each_replica_within(
        request.origin, request.file, radius, [&](NodeId v, Hop d) {
          const Load load = loads.load(v);
          if (best_node == kInvalidNode || load < best_load ||
              (load == best_load && d < best_dist)) {
            best_node = v;
            best_load = load;
            best_dist = d;
            ties = 1;
            return;
          }
          if (load == best_load && d == best_dist) {
            ++ties;
            if (rng.below(ties) == 0) best_node = v;
          }
        });
    if (best_node != kInvalidNode) {
      assignment.server = best_node;
      assignment.hops = best_dist;
      return assignment;
    }

    // Empty F_j(u): same fallback semantics as Strategy II.
    assignment.fallback = true;
    switch (options_.fallback) {
      case FallbackPolicy::Drop:
        return assignment;  // invalid server signals the drop
      case FallbackPolicy::NearestReplica: {
        const NearestResult nearest =
            index_->nearest(request.origin, request.file, rng);
        PROXCACHE_CHECK(nearest.server != kInvalidNode,
                        "uncached file reached the strategy; "
                        "sanitize_trace must run first");
        assignment.server = nearest.server;
        assignment.hops = nearest.distance;
        return assignment;
      }
      case FallbackPolicy::ExpandRadius: {
        const Hop diameter = topology.diameter();
        // A full-diameter probe already saw every replica, so an empty
        // result can only mean an uncached file slipped past sanitize.
        PROXCACHE_CHECK(radius < diameter,
                        "uncached file reached the strategy; "
                        "sanitize_trace must run first");
        radius = next_fallback_radius(radius, diameter);
        break;
      }
    }
  }
}

}  // namespace proxcache
