#include "strategy/least_loaded.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace proxcache {

std::string LeastLoadedStrategy::name() const {
  std::ostringstream os;
  os << "least-loaded(r=";
  if (options_.radius == kUnboundedRadius) {
    os << "inf";
  } else {
    os << options_.radius;
  }
  os << ")";
  return os.str();
}

void LeastLoadedStrategy::propose(const Request& request, Rng& rng,
                                  CandidateArena& arena, Proposal& out) {
  const Topology& topology = index_->topology();
  Hop radius = options_.radius;
  out.first = static_cast<std::uint32_t>(arena.size());

  while (true) {
    // The enumeration order is deterministic and load-independent, so the
    // whole probe — the expensive part — records into the arena without
    // touching loads or the rng.
    index_->for_each_replica_within(
        request.origin, request.file, radius,
        [&](NodeId v, Hop d) { arena.push_back({v, d, 0.0}); });
    out.count = static_cast<std::uint32_t>(arena.size()) - out.first;
    if (out.count > 0) return;

    // Empty F_j(u): same fallback semantics as Strategy II.
    out.fallback = true;
    switch (options_.fallback) {
      case FallbackPolicy::Drop:
        out.decided = true;  // invalid server signals the drop
        return;
      case FallbackPolicy::NearestReplica: {
        const NearestResult nearest =
            index_->nearest(request.origin, request.file, rng);
        PROXCACHE_CHECK(nearest.server != kInvalidNode,
                        "uncached file reached the strategy; "
                        "sanitize_trace must run first");
        out.decided = true;
        out.server = nearest.server;
        out.hops = nearest.distance;
        return;
      }
      case FallbackPolicy::ExpandRadius: {
        const Hop diameter = topology.diameter();
        // A full-diameter probe already saw every replica, so an empty
        // result can only mean an uncached file slipped past sanitize.
        PROXCACHE_CHECK(radius < diameter,
                        "uncached file reached the strategy; "
                        "sanitize_trace must run first");
        radius = next_fallback_radius(radius, diameter);
        break;
      }
    }
  }
}

Assignment LeastLoadedStrategy::choose(const Request& request,
                                       const Proposal& proposal,
                                       CandidateArena& arena,
                                       const LoadView& loads,
                                       Rng& rng) const {
  (void)request;
  if (proposal.decided) return decided_assignment(proposal);
  Assignment assignment;
  assignment.fallback = proposal.fallback;

  // Streaming min-scan over the recorded window: identical comparison and
  // tie-draw order to the historical pass that interleaved with the
  // enumeration.
  const ProposedCandidate* candidates = arena.data() + proposal.first;
  NodeId best_node = kInvalidNode;
  Load best_load = 0;
  Hop best_dist = 0;
  std::uint32_t ties = 0;
  for (std::uint32_t i = 0; i < proposal.count; ++i) {
    const NodeId v = candidates[i].node;
    const Hop d = candidates[i].hops;
    const Load load = loads.load(v);
    if (best_node == kInvalidNode || load < best_load ||
        (load == best_load && d < best_dist)) {
      best_node = v;
      best_load = load;
      best_dist = d;
      ties = 1;
      continue;
    }
    if (load == best_load && d == best_dist) {
      ++ties;
      if (rng.below(ties) == 0) best_node = v;
    }
  }
  assignment.server = best_node;
  assignment.hops = best_dist;
  return assignment;
}

}  // namespace proxcache
