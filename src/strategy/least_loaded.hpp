#pragma once
/// \file least_loaded.hpp
/// Probe-all least-loaded-in-radius strategy (the "local least loaded"
/// policy family of Panigrahy et al., "Proximity Based Load Balancing
/// Policies on Graphs"): instead of sampling d candidates like Strategy II,
/// probe *every* replica of the requested file within hop distance `r` of
/// the requester and serve at the least-loaded one. Ties on load break
/// toward the closer replica (proximity is free information here), and
/// remaining (load, distance) ties break uniformly at random.
///
/// This is the maximum-information endpoint of the probe-count spectrum —
/// `d = |F_j(u)|` — so it lower-bounds the max load any d-choice variant
/// can reach at the same radius, at the price of probing every in-radius
/// replica per request. When `F_j(u)` is empty the configured
/// FallbackPolicy applies, exactly as in Strategy II.

#include "core/config.hpp"
#include "core/strategy.hpp"
#include "spatial/replica_index.hpp"

namespace proxcache {

/// Options for the probe-all policy (registry key "least-loaded").
struct LeastLoadedOptions {
  Hop radius = kUnboundedRadius;  ///< probe radius `r`; inf = whole network
  FallbackPolicy fallback = FallbackPolicy::ExpandRadius;
};

/// Probe every in-radius replica, serve the least-loaded, tie-break by
/// distance then uniformly. Split-phase: `propose` records the in-radius
/// enumeration (shell walk / grid probe — the expensive part, no RNG) and
/// runs the fallback ladder; `choose` replays the streaming min-scan over
/// the recorded (node, distance) window with the tie-break draws — the
/// same event order as the historical interleaved pass, because loads
/// cannot change between the two halves of one request.
class LeastLoadedStrategy final : public SplitPhaseStrategy {
 public:
  LeastLoadedStrategy(const ReplicaIndex& index, LeastLoadedOptions options)
      : index_(&index), options_(options) {}

  void propose(const Request& request, Rng& rng, CandidateArena& arena,
               Proposal& out) override;
  [[nodiscard]] Assignment choose(const Request& request,
                                  const Proposal& proposal,
                                  CandidateArena& arena, const LoadView& loads,
                                  Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

  /// The min-scan touches only the recorded (node, distance) window.
  [[nodiscard]] bool choose_reads_candidates_only() const override {
    return true;
  }

 private:
  const ReplicaIndex* index_;
  LeastLoadedOptions options_;
};

}  // namespace proxcache
