#include "strategy/spec.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace proxcache {

namespace {

[[noreturn]] void fail(const std::string& message, std::string_view text) {
  throw std::invalid_argument("bad strategy spec '" + std::string(text) +
                              "': " + message);
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
         c == '_' || c == '+' || c == '.';
}

std::string lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Symbolic keyword values, keyed by parameter name. Only `fallback` has an
/// enumerated domain today; adding a keyword here automatically teaches both
/// the parser and `to_string`.
struct Keyword {
  const char* param;
  const char* word;
  double code;
};
constexpr Keyword kKeywords[] = {
    {"fallback", "expand", kSpecFallbackExpand},
    {"fallback", "nearest", kSpecFallbackNearest},
    {"fallback", "drop", kSpecFallbackDrop},
};

/// Minimal representation that survives a parse round trip: integers print
/// bare, `inf` stays symbolic, and anything else gets just enough digits.
std::string format_value(const std::string& key, double value) {
  if (std::isinf(value) && value > 0.0) return "inf";
  for (const Keyword& keyword : kKeywords) {
    if (key == keyword.param && value == keyword.code) return keyword.word;
  }
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(value);
    return os.str();
  }
  std::ostringstream os;
  os << value;
  if (std::strtod(os.str().c_str(), nullptr) == value) return os.str();
  std::ostringstream precise;
  precise.precision(std::numeric_limits<double>::max_digits10);
  precise << value;
  return precise.str();
}

/// Cursor over the spec text; skips whitespace between every token.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool done() {
    skip_space();
    return pos_ >= text_.size();
  }

  [[nodiscard]] char peek() {
    skip_space();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Longest run of name characters (identifier or value token).
  std::string token() {
    skip_space();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && is_name_char(text_[pos_])) ++pos_;
    return lower(text_.substr(start, pos_ - start));
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

double parse_value(const std::string& key, const std::string& token,
                   std::string_view text) {
  if (token == "inf" || token == "infinity") {
    return std::numeric_limits<double>::infinity();
  }
  for (const Keyword& keyword : kKeywords) {
    if (key == keyword.param && token == keyword.word) return keyword.code;
  }
  const char* begin = token.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    fail("value '" + token + "' for key '" + key +
             "' is neither a number nor a known keyword",
         text);
  }
  return value;
}

}  // namespace

double StrategySpec::get_or(const std::string& key, double fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

std::string StrategySpec::to_string() const {
  if (params.empty()) return name;
  std::ostringstream os;
  os << name << '(';
  bool first = true;
  for (const auto& [key, value] : params) {  // std::map: sorted keys
    if (!first) os << ", ";
    first = false;
    os << key << '=' << format_value(key, value);
  }
  os << ')';
  return os.str();
}

StrategySpec parse_strategy_spec(std::string_view text) {
  Scanner scanner(text);
  StrategySpec spec;
  spec.name = scanner.token();
  if (spec.name.empty()) fail("expected a strategy name", text);
  if (scanner.done()) return spec;
  if (!scanner.consume('(')) {
    fail(std::string("unexpected character '") + scanner.peek() +
             "' after the strategy name (expected '(')",
         text);
  }
  if (!scanner.consume(')')) {
    while (true) {
      const std::string key = scanner.token();
      if (key.empty()) fail("expected a parameter key", text);
      if (!scanner.consume('=')) {
        fail("parameter '" + key + "' is missing '=value'", text);
      }
      const std::string token = scanner.token();
      if (token.empty()) {
        fail("parameter '" + key + "' is missing a value", text);
      }
      if (spec.has(key)) fail("duplicate parameter '" + key + "'", text);
      spec.params[key] = parse_value(key, token, text);
      if (scanner.consume(',')) continue;
      if (scanner.consume(')')) break;
      fail("expected ',' or ')' after parameter '" + key + "'", text);
    }
  }
  if (!scanner.done()) {
    fail(std::string("trailing characters after ')': '") + scanner.peek() +
             "...'",
         text);
  }
  return spec;
}

}  // namespace proxcache
