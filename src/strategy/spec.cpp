#include "strategy/spec.hpp"

#include "util/kvspec.hpp"

namespace proxcache {

namespace {

/// Symbolic keyword values, keyed by parameter name. Only `fallback` has an
/// enumerated domain today; adding a keyword here automatically teaches both
/// the parser and `to_string` (the grammar itself lives in util/kvspec.hpp,
/// shared with the topology specs).
constexpr SpecKeyword kKeywords[] = {
    {"fallback", "expand", kSpecFallbackExpand},
    {"fallback", "nearest", kSpecFallbackNearest},
    {"fallback", "drop", kSpecFallbackDrop},
};

}  // namespace

double StrategySpec::get_or(const std::string& key, double fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

std::string StrategySpec::to_string() const {
  return kv_spec_to_string(name, params, kKeywords);
}

StrategySpec parse_strategy_spec(std::string_view text) {
  ParsedKvSpec parsed = parse_kv_spec(text, "strategy", kKeywords);
  StrategySpec spec;
  spec.name = std::move(parsed.name);
  spec.params = std::move(parsed.params);
  return spec;
}

}  // namespace proxcache
