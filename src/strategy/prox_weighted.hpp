#pragma once
/// \file prox_weighted.hpp
/// Distance-weighted d-choice strategy: a soft-proximity variant of
/// Strategy II in the spirit of the storage/communication trade-off
/// policies of Jafari Siavoshani et al. ("Storage, Communication, and Load
/// Balancing Trade-off in Distributed Cache Networks"). Instead of a hard
/// radius cutoff, sample `d` distinct candidates from the *whole* replica
/// set `S_j`, drawing replica `v` with probability proportional to
/// `(1 + dist(u, v))^-alpha`, then serve at the least-loaded sampled
/// candidate (uniform tie break).
///
/// `alpha` dials the communication/balance trade-off continuously:
/// `alpha = 0` recovers unconstrained d-choice (uniform candidates, best
/// balance, highest cost) while large `alpha` concentrates the candidate
/// mass on the nearest replicas (cost approaches Strategy I). Because every
/// cached file has at least one replica after sanitization, this strategy
/// never needs a fallback path.

#include "core/strategy.hpp"
#include "spatial/replica_index.hpp"

namespace proxcache {

/// Options for the distance-weighted sampler (registry key "prox-weighted").
struct ProxWeightedOptions {
  std::uint32_t num_choices = 2;  ///< d: candidates sampled per request
  double alpha = 1.0;             ///< distance-decay exponent, >= 0
};

/// Sample d replicas with probability ∝ (1+dist)^-alpha, serve the
/// least-loaded. Split-phase: `propose` computes the per-replica distances
/// and weights (the O(|S_j|) part, RNG-free); `choose` runs the whole
/// d-pick loop, whose candidate draws and tie-break draws interleave per
/// pick and therefore must stay together on one stream.
class ProxWeightedStrategy final : public SplitPhaseStrategy {
 public:
  ProxWeightedStrategy(const ReplicaIndex& index, ProxWeightedOptions options);

  void propose(const Request& request, Rng& rng, CandidateArena& arena,
               Proposal& out) override;
  [[nodiscard]] Assignment choose(const Request& request,
                                  const Proposal& proposal,
                                  CandidateArena& arena, const LoadView& loads,
                                  Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

  /// Every weighted pick and load read resolves inside the recorded window.
  [[nodiscard]] bool choose_reads_candidates_only() const override {
    return true;
  }

 private:
  const ReplicaIndex* index_;
  ProxWeightedOptions options_;
};

}  // namespace proxcache
