#include "strategy/prox_weighted.hpp"

#include <cmath>
#include <sstream>

#include "util/contracts.hpp"

namespace proxcache {

ProxWeightedStrategy::ProxWeightedStrategy(const ReplicaIndex& index,
                                           ProxWeightedOptions options)
    : index_(&index), options_(options) {
  PROXCACHE_REQUIRE(options.num_choices >= 1 && options.num_choices <= 8,
                    "num_choices must be in [1, 8]");
  PROXCACHE_REQUIRE(options.alpha >= 0.0, "alpha must be >= 0");
}

std::string ProxWeightedStrategy::name() const {
  std::ostringstream os;
  os << "prox-weighted(d=" << options_.num_choices << ", alpha="
     << options_.alpha << ")";
  return os.str();
}

void ProxWeightedStrategy::propose(const Request& request, Rng& rng,
                                   CandidateArena& arena, Proposal& out) {
  (void)rng;  // weight computation is deterministic; draws happen in choose
  const Topology& topology = index_->topology();
  const auto replicas = index_->placement().replicas(request.file);
  const std::size_t count = replicas.size();
  PROXCACHE_CHECK(count > 0,
                  "uncached file reached the strategy; "
                  "sanitize_trace must run first");

  // Weight every replica by (1 + dist)^-alpha; the +1 keeps a co-located
  // replica (dist 0) at finite weight. The left-to-right summation order
  // matches the historical pass, so `total_weight` is the bit-identical
  // double.
  out.first = static_cast<std::uint32_t>(arena.size());
  double total = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const Hop d = topology.distance(request.origin, replicas[i]);
    const double w =
        std::pow(1.0 + static_cast<double>(d), -options_.alpha);
    arena.push_back({replicas[i], d, w});
    total += w;
  }
  out.count = static_cast<std::uint32_t>(count);
  out.total_weight = total;
}

Assignment ProxWeightedStrategy::choose(const Request& request,
                                        const Proposal& proposal,
                                        CandidateArena& arena,
                                        const LoadView& loads,
                                        Rng& rng) const {
  (void)request;
  Assignment assignment;
  assignment.fallback = proposal.fallback;

  // Draw up to d distinct candidates by repeated weighted selection,
  // zeroing each winner's weight in the arena window (the window is this
  // request's scratch). O(d·|S_j|), matching the cost of the
  // radius-constrained reservoir pass in Strategy II.
  ProposedCandidate* candidates = arena.data() + proposal.first;
  const std::uint32_t count = proposal.count;
  double total = proposal.total_weight;
  const std::uint32_t want = std::min(options_.num_choices, count);
  NodeId chosen = kInvalidNode;
  Hop chosen_hops = 0;
  Load best = 0;
  std::uint32_t ties = 0;
  for (std::uint32_t pick = 0; pick < want; ++pick) {
    double u = rng.uniform() * total;
    std::uint32_t winner = count;  // last positive weight wins on rounding
    for (std::uint32_t i = 0; i < count; ++i) {
      if (candidates[i].weight <= 0.0) continue;
      winner = i;
      u -= candidates[i].weight;
      if (u < 0.0) break;
    }
    PROXCACHE_CHECK(winner < count, "weighted draw found no candidate");
    total -= candidates[winner].weight;
    candidates[winner].weight = 0.0;

    // Least-loaded among the sampled set, uniform among ties — streamed so
    // no candidate array is needed.
    const NodeId v = candidates[winner].node;
    const Load load = loads.load(v);
    if (pick == 0 || load < best) {
      chosen = v;
      chosen_hops = candidates[winner].hops;
      best = load;
      ties = 1;
    } else if (load == best) {
      ++ties;
      if (rng.below(ties) == 0) {
        chosen = v;
        chosen_hops = candidates[winner].hops;
      }
    }
  }
  assignment.server = chosen;
  assignment.hops = chosen_hops;
  return assignment;
}

}  // namespace proxcache
