#include "strategy/prox_weighted.hpp"

#include <cmath>
#include <sstream>

#include "util/contracts.hpp"

namespace proxcache {

ProxWeightedStrategy::ProxWeightedStrategy(const ReplicaIndex& index,
                                           ProxWeightedOptions options)
    : index_(&index), options_(options) {
  PROXCACHE_REQUIRE(options.num_choices >= 1 && options.num_choices <= 8,
                    "num_choices must be in [1, 8]");
  PROXCACHE_REQUIRE(options.alpha >= 0.0, "alpha must be >= 0");
}

std::string ProxWeightedStrategy::name() const {
  std::ostringstream os;
  os << "prox-weighted(d=" << options_.num_choices << ", alpha="
     << options_.alpha << ")";
  return os.str();
}

Assignment ProxWeightedStrategy::assign(const Request& request,
                                        const LoadView& loads, Rng& rng) {
  const Topology& topology = index_->topology();
  const auto replicas = index_->placement().replicas(request.file);
  const std::size_t count = replicas.size();
  PROXCACHE_CHECK(count > 0,
                  "uncached file reached the strategy; "
                  "sanitize_trace must run first");

  Assignment assignment;
  // Weight every replica by (1 + dist)^-alpha; the +1 keeps a co-located
  // replica (dist 0) at finite weight.
  weights_.resize(count);
  double total = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const Hop d = topology.distance(request.origin, replicas[i]);
    const double w =
        std::pow(1.0 + static_cast<double>(d), -options_.alpha);
    weights_[i] = w;
    total += w;
  }

  // Draw up to d distinct candidates by repeated weighted selection,
  // zeroing each winner's weight. O(d·|S_j|), matching the cost of the
  // radius-constrained reservoir pass in Strategy II.
  const std::uint32_t want =
      static_cast<std::uint32_t>(std::min<std::size_t>(options_.num_choices,
                                                       count));
  NodeId chosen = kInvalidNode;
  Load best = 0;
  std::uint32_t ties = 0;
  for (std::uint32_t pick = 0; pick < want; ++pick) {
    double u = rng.uniform() * total;
    std::size_t winner = count;  // last positive weight wins on rounding
    for (std::size_t i = 0; i < count; ++i) {
      if (weights_[i] <= 0.0) continue;
      winner = i;
      u -= weights_[i];
      if (u < 0.0) break;
    }
    PROXCACHE_CHECK(winner < count, "weighted draw found no candidate");
    total -= weights_[winner];
    weights_[winner] = 0.0;

    // Least-loaded among the sampled set, uniform among ties — streamed so
    // no candidate array is needed.
    const NodeId v = replicas[winner];
    const Load load = loads.load(v);
    if (pick == 0 || load < best) {
      chosen = v;
      best = load;
      ties = 1;
    } else if (load == best) {
      ++ties;
      if (rng.below(ties) == 0) chosen = v;
    }
  }
  assignment.server = chosen;
  assignment.hops = topology.distance(request.origin, chosen);
  return assignment;
}

}  // namespace proxcache
