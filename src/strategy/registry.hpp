#pragma once
/// \file registry.hpp
/// Open strategy catalog: binds spec names to factories and per-parameter
/// validation rules, mirroring scenario/registry.hpp on the workload side.
/// The simulator asks the registry — never an enum switch — to build the
/// `Strategy` for a run, so adding a policy is: implement `Strategy`,
/// append one `StrategyEntry`, done. No core file changes, and every CLI
/// (`--strategy <spec>`), bench, and the queueing extension pick it up
/// automatically.
///
/// Every entry declares the parameter keys it accepts with inclusive
/// ranges and defaults; `validate` rejects unknown names, unknown keys and
/// out-of-range values with precise messages, and `make` validates before
/// constructing. The universal key `stale` (load-snapshot refresh period,
/// core/stale_view.hpp) is accepted by every strategy because the staleness
/// model wraps the LoadView outside the strategy proper.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/strategy.hpp"
#include "spatial/replica_index.hpp"
#include "strategy/spec.hpp"
#include "topology/topology.hpp"

namespace proxcache {

/// One legal parameter of a strategy: inclusive range plus the value used
/// when the spec leaves the key unset.
struct StrategyParamRule {
  std::string key;
  double min_value;
  double max_value;  ///< inclusive; use infinity for unbounded keys
  double default_value;
  std::string doc;  ///< one-liner for --help / README tables
  /// Whole numbers only (`inf` stays legal where the range allows it).
  /// Counts and radii set this so e.g. `r=2.7` is rejected instead of
  /// silently truncating to a radius the results table never admits to.
  bool integral = false;
};

/// Builds a ready-to-run Strategy for one request stream. The index is the
/// per-run spatial query layer; the topology and config carry the shared
/// experiment state for strategies that need more context.
using StrategyFactory = std::function<std::unique_ptr<Strategy>(
    const StrategySpec&, const ReplicaIndex&, const Topology&,
    const ExperimentConfig&)>;

/// One registered strategy.
struct StrategyEntry {
  std::string name;     ///< registry key, canonical lowercase
  std::string summary;  ///< one-line description for --list output
  std::vector<StrategyParamRule> params;
  StrategyFactory factory;
  /// Cross-tier strategies (tier/strategies.hpp) read the hierarchy through
  /// `Topology::as_tiered()` and refuse flat topologies; declaring it here
  /// lets `ExperimentConfig::validate` reject the mismatch before a run
  /// starts instead of deep inside the factory.
  bool requires_tiers = false;
};

/// Catalog of strategy entries. `built_ins()` is the immutable default set
/// (paper strategies + extensions); custom registries start from
/// `with_built_ins()` and `add` their own entries.
class StrategyRegistry {
 public:
  /// An empty registry (for fully custom catalogs).
  StrategyRegistry() = default;

  /// The shared immutable catalog of built-in strategies.
  static const StrategyRegistry& built_ins();

  /// A mutable copy of the built-in catalog to extend with `add`.
  static StrategyRegistry with_built_ins() { return built_ins(); }

  /// The process-wide catalog the simulator consults (`validate`,
  /// `SimulationContext::run`, `run_supermarket`). Starts as a copy of
  /// `built_ins()`; `global().add(...)` makes a custom strategy runnable
  /// everywhere specs are accepted. Register at startup, before experiments
  /// run — registration is not synchronized with concurrent runs.
  static StrategyRegistry& global();

  /// Register an entry; throws std::invalid_argument on a duplicate name
  /// or an entry without a factory.
  void add(StrategyEntry entry);

  /// All entries in registration order.
  [[nodiscard]] const std::vector<StrategyEntry>& all() const {
    return entries_;
  }

  /// Entry by name, or nullptr when absent.
  [[nodiscard]] const StrategyEntry* find(const std::string& name) const;

  /// Entry by name; throws std::invalid_argument listing the known names
  /// when absent.
  [[nodiscard]] const StrategyEntry& at(const std::string& name) const;

  /// Comma-separated names (for error messages and --help).
  [[nodiscard]] std::string names() const;

  /// Check `spec` against the named entry's parameter rules. Throws
  /// std::invalid_argument on an unknown strategy name, an unknown
  /// parameter key, or an out-of-range value.
  void validate(const StrategySpec& spec) const;

  /// `spec`, validated, with every unset parameter filled in from the
  /// entry's declared defaults. This is the single source of truth for
  /// effective values — factories and the simulator read the filled spec,
  /// so a rule's documented default can never drift from what runs.
  [[nodiscard]] StrategySpec with_defaults(const StrategySpec& spec) const;

  /// Validate `spec` and build the strategy through the entry's factory.
  [[nodiscard]] std::unique_ptr<Strategy> make(
      const StrategySpec& spec, const ReplicaIndex& index,
      const Topology& topology, const ExperimentConfig& config) const;

 private:
  std::vector<StrategyEntry> entries_;
};

/// FallbackPolicy <-> spec parameter code conversions (see spec.hpp for the
/// symbolic keyword table).
[[nodiscard]] double fallback_param(FallbackPolicy policy);
[[nodiscard]] FallbackPolicy fallback_policy_from_param(double code);

/// Parse and validate a batch of spec strings (e.g. repeated `--strategy`
/// flags) against `registry`, all up front — so a typo in the last spec
/// fails before the first expensive run, not after. Throws
/// std::invalid_argument on the first bad spec.
[[nodiscard]] std::vector<StrategySpec> parse_validated_specs(
    const std::vector<std::string>& texts,
    const StrategyRegistry& registry = StrategyRegistry::global());

}  // namespace proxcache
