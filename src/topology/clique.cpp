#include "topology/clique.hpp"

#include <algorithm>
#include <sstream>

#include "util/contracts.hpp"

namespace proxcache {

CliqueTopology::CliqueTopology(std::size_t n) : n_(n) {
  PROXCACHE_REQUIRE(n >= 1, "clique needs >= 1 node");
  PROXCACHE_REQUIRE(n <= static_cast<std::size_t>(kInvalidNode),
                    "clique node count overflows NodeId");
}

Hop CliqueTopology::distance(NodeId u, NodeId v) const {
  PROXCACHE_REQUIRE(u < n_ && v < n_, "node id out of range");
  return u == v ? 0 : 1;
}

void CliqueTopology::visit_shell(NodeId u, Hop d, NodeVisitor fn) const {
  PROXCACHE_REQUIRE(u < n_, "node id out of range");
  if (d == 0) {
    fn(u);
    return;
  }
  if (d != 1) return;  // empty shell
  for (NodeId v = 0; v < n_; ++v) {
    if (v != u) fn(v);
  }
}

std::size_t CliqueTopology::shell_size(NodeId /*u*/, Hop d) const {
  if (d == 0) return 1;
  return d == 1 ? n_ - 1 : 0;
}

std::size_t CliqueTopology::ball_size(NodeId /*u*/, Hop r) const {
  return r == 0 ? 1 : n_;
}

std::string CliqueTopology::describe() const {
  std::ostringstream os;
  os << "clique(n=" << n_ << ")";
  return os.str();
}

}  // namespace proxcache
