#pragma once
/// \file shells.hpp
/// Shell-by-shell neighborhood enumeration.
///
/// The expanding-ring nearest-replica search and the radius-filtered
/// candidate scan both iterate the nodes of `B_r(u)` in order of increasing
/// distance. These enumerators visit each node exactly once (wraparound
/// collisions on small tori are handled by enumerating per-axis offset
/// *values*, not signs).

#include <cstdlib>
#include <vector>

#include "topology/lattice.hpp"
#include "util/types.hpp"

namespace proxcache {

namespace detail {

/// Distinct torus axis offsets whose ring distance is exactly `a`
/// (0, 1 or 2 values).
inline int torus_axis_offsets(std::int32_t side, std::int32_t a,
                              std::int32_t out[2]) {
  if (a == 0) {
    out[0] = 0;
    return 1;
  }
  if (2 * a < side) {
    out[0] = a;
    out[1] = -a;
    return 2;
  }
  if (2 * a == side) {
    out[0] = a;
    return 1;
  }
  return 0;
}

}  // namespace detail

/// Invoke `fn(NodeId)` for every node at hop distance exactly `d` from `u`.
/// Visits each node once; does nothing if the shell is empty.
template <typename Fn>
void for_each_at_distance(const Lattice& lattice, NodeId u, Hop d, Fn&& fn) {
  const Point p = lattice.coord(u);
  const auto dist = static_cast<std::int32_t>(d);
  const std::int32_t side = lattice.side();

  if (lattice.wrap() == Wrap::Torus) {
    const std::int32_t max_axis = side / 2;
    for (std::int32_t dx = 0; dx <= dist && dx <= max_axis; ++dx) {
      const std::int32_t dy = dist - dx;
      if (dy > max_axis) continue;
      std::int32_t xs[2];
      std::int32_t ys[2];
      const int nx = detail::torus_axis_offsets(side, dx, xs);
      const int ny = detail::torus_axis_offsets(side, dy, ys);
      for (int i = 0; i < nx; ++i) {
        for (int j = 0; j < ny; ++j) {
          fn(lattice.node_wrapped(Point{p.x + xs[i], p.y + ys[j]}));
        }
      }
    }
    return;
  }

  // Grid mode: clamp to the boundary.
  for (std::int32_t dx = -dist; dx <= dist; ++dx) {
    const std::int32_t x = p.x + dx;
    if (x < 0 || x >= side) continue;
    const std::int32_t rem = dist - std::abs(dx);
    if (rem == 0) {
      fn(lattice.node(Point{x, p.y}));
      continue;
    }
    if (p.y + rem < side) fn(lattice.node(Point{x, p.y + rem}));
    if (p.y - rem >= 0) fn(lattice.node(Point{x, p.y - rem}));
  }
}

/// Generic-topology shell enumeration. Dispatches to the inlined lattice
/// template above when the topology is a lattice (keeping the paper's hot
/// path devirtualized), and to the virtual `visit_shell` otherwise. Both
/// routes enumerate in the topology's canonical deterministic order.
template <typename Fn>
void for_each_at_distance(const Topology& topology, NodeId u, Hop d,
                          Fn&& fn) {
  if (const Lattice* lattice = topology.as_lattice()) {
    for_each_at_distance(*lattice, u, d, std::forward<Fn>(fn));
    return;
  }
  topology.visit_shell(u, d, fn);
}

/// Invoke `fn(NodeId, Hop)` for every node within distance `r` of `u`
/// (including `u` itself at distance 0), in order of increasing distance.
template <typename Fn>
void for_each_in_ball(const Lattice& lattice, NodeId u, Hop r, Fn&& fn) {
  const Hop cap = std::min<Hop>(r, lattice.diameter());
  for (Hop d = 0; d <= cap; ++d) {
    for_each_at_distance(lattice, u, d,
                         [&](NodeId v) { fn(v, d); });
  }
}

/// Generic-topology ball enumeration, increasing distance.
template <typename Fn>
void for_each_in_ball(const Topology& topology, NodeId u, Hop r, Fn&& fn) {
  if (const Lattice* lattice = topology.as_lattice()) {
    for_each_in_ball(*lattice, u, r, std::forward<Fn>(fn));
    return;
  }
  const Hop cap = std::min<Hop>(r, topology.diameter());
  for (Hop d = 0; d <= cap; ++d) {
    topology.visit_shell(u, d, [&](NodeId v) { fn(v, d); });
  }
}

/// Materialize the shell at distance `d` (test / debugging convenience).
std::vector<NodeId> collect_shell(const Lattice& lattice, NodeId u, Hop d);
std::vector<NodeId> collect_shell(const Topology& topology, NodeId u, Hop d);

/// Materialize the ball `B_r(u)` in increasing-distance order.
std::vector<NodeId> collect_ball(const Lattice& lattice, NodeId u, Hop r);
std::vector<NodeId> collect_ball(const Topology& topology, NodeId u, Hop r);

}  // namespace proxcache
