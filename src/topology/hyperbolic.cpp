#include "topology/hyperbolic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "random/rng.hpp"
#include "topology/spec.hpp"
#include "util/contracts.hpp"

namespace proxcache {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Hyperbolic distance between polar points in the native disk model.
double hyperbolic_distance(double r_u, double theta_u, double r_v,
                           double theta_v) {
  const double delta = kPi - std::fabs(kPi - std::fabs(theta_u - theta_v));
  const double c = std::cosh(r_u) * std::cosh(r_v) -
                   std::sinh(r_u) * std::sinh(r_v) * std::cos(delta);
  return std::acosh(std::max(1.0, c));
}

/// Widest angular separation at which a point at radius `r` can still be
/// within hyperbolic distance `R` of *some* point at radius `partner` —
/// the scan window for the angle-sorted outer-outer pass.
double max_connectable_angle(double r, double partner, double R) {
  const double denom = std::sinh(r) * std::sinh(partner);
  if (denom <= 0.0) return kPi;
  const double c =
      (std::cosh(r) * std::cosh(partner) - std::cosh(R)) / denom;
  if (c <= -1.0) return kPi;
  if (c >= 1.0) return 0.0;
  return std::acos(c);
}

}  // namespace

std::shared_ptr<const GraphTopology> make_hyperbolic_topology(
    std::size_t n, double degree, double alpha, std::uint64_t seed,
    GraphTopology::Options options) {
  PROXCACHE_REQUIRE(n >= 1, "hyperbolic needs >= 1 node");
  PROXCACHE_REQUIRE(degree > 0.0, "hyperbolic degree must be > 0");
  PROXCACHE_REQUIRE(alpha > 0.5, "hyperbolic alpha must be > 0.5");

  const double xi = alpha / (alpha - 0.5);
  const double R = std::max(
      0.0, 2.0 * std::log(2.0 * static_cast<double>(n) * xi * xi /
                          (kPi * degree)));

  // Draw order per point: angle first, then the radial quantile — part of
  // the seed contract. The radial CDF is (cosh(αr) − 1)/(cosh(αR) − 1);
  // its inverse keeps the quasi-uniform density the model calls for.
  Rng rng(seed);
  std::vector<double> rs(n);
  std::vector<double> thetas(n);
  const double cosh_aR = std::cosh(alpha * R);
  for (std::size_t i = 0; i < n; ++i) {
    thetas[i] = rng.uniform() * 2.0 * kPi;
    const double q = rng.uniform();
    rs[i] = R > 0.0 ? std::acosh(1.0 + q * (cosh_aR - 1.0)) / alpha : 0.0;
  }

  const double half = R / 2.0;
  std::vector<std::uint32_t> inner;
  std::vector<std::uint32_t> outer;
  for (std::size_t i = 0; i < n; ++i) {
    (rs[i] <= half ? inner : outer).push_back(static_cast<std::uint32_t>(i));
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;

  // Inner points (r <= R/2) are pairwise within distance R by the triangle
  // inequality — a clique — and are tested exactly against every outer
  // point. Their expected count is O(n^(1−α)), keeping this pass cheap.
  for (std::size_t a = 0; a < inner.size(); ++a) {
    for (std::size_t b = a + 1; b < inner.size(); ++b) {
      edges.emplace_back(std::min(inner[a], inner[b]),
                         std::max(inner[a], inner[b]));
    }
    const std::uint32_t u = inner[a];
    for (const std::uint32_t v : outer) {
      if (hyperbolic_distance(rs[u], thetas[u], rs[v], thetas[v]) <= R) {
        edges.emplace_back(std::min(u, v), std::max(u, v));
      }
    }
  }

  // Outer-outer pairs: sort by angle and scan forward from each point no
  // wider than the largest angle connectable to *any* partner at radius
  // >= R/2 (θ_max(r_u, r_v) <= that window because r_v >= R/2). A
  // connectable pair's true angular difference fits both endpoints'
  // windows, so it is found from the endpoint whose forward gap is the
  // difference itself (< π); the exact-π case emits from both sides and
  // CompactGraph::from_edges dedupes it.
  std::vector<std::uint32_t> by_angle(outer);
  std::sort(by_angle.begin(), by_angle.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return thetas[a] < thetas[b] ||
                     (thetas[a] == thetas[b] && a < b);
            });
  const std::size_t m = by_angle.size();
  for (std::size_t s = 0; s < m; ++s) {
    const std::uint32_t u = by_angle[s];
    const double limit =
        std::min(max_connectable_angle(rs[u], half, R), kPi);
    for (std::size_t step = 1; step < m; ++step) {
      const std::uint32_t v = by_angle[(s + step) % m];
      double gap = thetas[v] - thetas[u];
      if (gap < 0.0) gap += 2.0 * kPi;
      if (gap > limit) break;  // forward gaps only grow from here
      if (hyperbolic_distance(rs[u], thetas[u], rs[v], thetas[v]) <= R) {
        edges.emplace_back(std::min(u, v), std::max(u, v));
      }
    }
  }

  // Connectivity repair: hyperbolic random graphs keep a giant component
  // but shed isolated low-degree rim vertices. Label components, then
  // stitch each minor through its innermost point (smallest radius, ties
  // to the smaller id) to the giant component's innermost point — the
  // hub-to-hub analogue of the rgg closest-pair repair, deterministic.
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  for (const auto& [a, b] : edges) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  std::vector<std::uint32_t> component(
      n, std::numeric_limits<std::uint32_t>::max());
  std::vector<std::size_t> component_size;
  for (std::size_t start = 0; start < n; ++start) {
    if (component[start] != std::numeric_limits<std::uint32_t>::max()) {
      continue;
    }
    const auto label = static_cast<std::uint32_t>(component_size.size());
    component_size.push_back(0);
    std::vector<std::uint32_t> stack{static_cast<std::uint32_t>(start)};
    component[start] = label;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      ++component_size[label];
      for (const std::uint32_t v : adjacency[u]) {
        if (component[v] == std::numeric_limits<std::uint32_t>::max()) {
          component[v] = label;
          stack.push_back(v);
        }
      }
    }
  }
  if (component_size.size() > 1) {
    std::uint32_t giant = 0;
    for (std::uint32_t c = 1; c < component_size.size(); ++c) {
      if (component_size[c] > component_size[giant]) giant = c;
    }
    std::vector<std::uint32_t> hub(
        component_size.size(), std::numeric_limits<std::uint32_t>::max());
    for (std::uint32_t v = 0; v < static_cast<std::uint32_t>(n); ++v) {
      std::uint32_t& best = hub[component[v]];
      if (best == std::numeric_limits<std::uint32_t>::max() ||
          rs[v] < rs[best] || (rs[v] == rs[best] && v < best)) {
        best = v;
      }
    }
    for (std::uint32_t c = 0;
         c < static_cast<std::uint32_t>(component_size.size()); ++c) {
      if (c == giant) continue;
      edges.emplace_back(std::min(hub[c], hub[giant]),
                         std::max(hub[c], hub[giant]));
    }
  }

  TopologySpec spec;
  spec.name = "hyperbolic";
  spec.params["n"] = static_cast<double>(n);
  spec.params["degree"] = degree;
  spec.params["alpha"] = alpha;
  spec.params["seed"] = static_cast<double>(seed);
  return std::make_shared<GraphTopology>(
      CompactGraph::from_edges(static_cast<std::uint32_t>(n),
                               std::move(edges)),
      spec.to_string(), options);
}

}  // namespace proxcache
