#pragma once
/// \file clique.hpp
/// The complete graph K_n: every pair of distinct servers is one hop
/// apart. Degenerate as a proximity model on its own, but the natural
/// inner topology for tiers whose members are interchangeable — an origin
/// pool or a back-end partition group behind a non-blocking switch — and
/// the value the tier grammar's bare-count shorthand (`origin=4`)
/// resolves to (tier/spec.hpp). All queries are closed-form.

#include <cstdint>
#include <string>

#include "topology/topology.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Complete graph K_n with unit hop distance between distinct nodes.
class CliqueTopology final : public Topology {
 public:
  /// `n >= 1` nodes; every distinct pair is adjacent.
  explicit CliqueTopology(std::size_t n);

  [[nodiscard]] std::size_t size() const override { return n_; }
  [[nodiscard]] Hop distance(NodeId u, NodeId v) const override;
  [[nodiscard]] Hop diameter() const override { return n_ > 1 ? 1 : 0; }

  /// Shell 1 is every other node, ascending — id order, like the base
  /// scan, but without paying a distance call per node.
  void visit_shell(NodeId u, Hop d, NodeVisitor fn) const override;

  [[nodiscard]] bool directly_enumerates_shells() const override {
    return true;
  }

  [[nodiscard]] std::size_t shell_size(NodeId u, Hop d) const override;
  [[nodiscard]] std::size_t ball_size(NodeId u, Hop r) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::size_t n_;
};

}  // namespace proxcache
