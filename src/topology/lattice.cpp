#include "topology/lattice.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "topology/shells.hpp"
#include "util/contracts.hpp"

namespace proxcache {

Wrap wrap_from_string(const std::string& name) {
  // Tolerant parse, matching the spec grammar: trim surrounding whitespace
  // and compare case-insensitively, so "Torus", " GRID " and "torus" all
  // resolve. The error message echoes the *trimmed* token, which pinpoints
  // typos without whitespace noise.
  std::size_t begin = 0;
  std::size_t end = name.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(name[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(name[end - 1])) != 0) {
    --end;
  }
  std::string token = name.substr(begin, end - begin);
  for (char& c : token) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (token == "torus") return Wrap::Torus;
  if (token == "grid") return Wrap::Grid;
  throw std::invalid_argument("unknown wrap mode '" + token +
                              "' (expected 'torus' or 'grid')");
}

std::string to_string(Wrap wrap) {
  return wrap == Wrap::Torus ? "torus" : "grid";
}

Lattice::Lattice(std::int32_t side, Wrap wrap) : side_(side), wrap_(wrap) {
  PROXCACHE_REQUIRE(side >= 1, "lattice side must be >= 1");
}

bool Lattice::is_perfect_square(std::size_t n) {
  if (n == 0) return false;
  const auto root = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(n))));
  for (std::size_t candidate :
       {root > 0 ? root - 1 : root, root, root + 1}) {
    if (candidate * candidate == n) return true;
  }
  return false;
}

Lattice Lattice::from_node_count(std::size_t n, Wrap wrap) {
  PROXCACHE_REQUIRE(is_perfect_square(n),
                    "node count must be a perfect square, got " +
                        std::to_string(n));
  const auto root = static_cast<std::int32_t>(
      std::llround(std::sqrt(static_cast<double>(n))));
  const std::int32_t side =
      static_cast<std::size_t>(root) * static_cast<std::size_t>(root) == n
          ? root
          : (static_cast<std::size_t>(root + 1) *
                     static_cast<std::size_t>(root + 1) ==
                         n
                 ? root + 1
                 : root - 1);
  return Lattice(side, wrap);
}

Point Lattice::coord(NodeId u) const {
  PROXCACHE_REQUIRE(u < size(), "node id out of range");
  return Point{static_cast<std::int32_t>(u % static_cast<NodeId>(side_)),
               static_cast<std::int32_t>(u / static_cast<NodeId>(side_))};
}

NodeId Lattice::node(Point p) const {
  PROXCACHE_REQUIRE(p.x >= 0 && p.x < side_ && p.y >= 0 && p.y < side_,
                    "coordinate out of bounds");
  return static_cast<NodeId>(p.y) * static_cast<NodeId>(side_) +
         static_cast<NodeId>(p.x);
}

NodeId Lattice::node_wrapped(Point p) const {
  PROXCACHE_REQUIRE(wrap_ == Wrap::Torus,
                    "node_wrapped() requires torus mode");
  const auto reduce = [this](std::int32_t a) {
    a %= side_;
    if (a < 0) a += side_;
    return a;
  };
  return node(Point{reduce(p.x), reduce(p.y)});
}

std::int32_t Lattice::axis_distance(std::int32_t a, std::int32_t b) const {
  const std::int32_t direct = std::abs(a - b);
  if (wrap_ == Wrap::Grid) return direct;
  return std::min(direct, side_ - direct);
}

Hop Lattice::distance(NodeId u, NodeId v) const {
  const Point pu = coord(u);
  const Point pv = coord(v);
  return static_cast<Hop>(axis_distance(pu.x, pv.x) +
                          axis_distance(pu.y, pv.y));
}

Hop Lattice::diameter() const {
  if (wrap_ == Wrap::Grid) return static_cast<Hop>(2 * (side_ - 1));
  return static_cast<Hop>(2 * (side_ / 2));
}

std::int32_t Lattice::torus_axis_multiplicity(std::int32_t a) const {
  // Number of x in [0, side) with ring distance exactly `a` from a fixed
  // origin: 1 at a = 0; 2 for 0 < a < side/2; 1 at a = side/2 when side is
  // even; 0 beyond.
  if (a == 0) return 1;
  if (2 * a < side_) return 2;
  if (2 * a == side_) return 1;  // even side only: a == side/2
  return 0;
}

std::size_t Lattice::shell_size(NodeId u, Hop d) const {
  const auto dist = static_cast<std::int32_t>(d);
  if (wrap_ == Wrap::Torus) {
    // Sum over the split of d into per-axis ring distances.
    const std::int32_t max_axis = side_ / 2;
    std::size_t total = 0;
    for (std::int32_t dx = 0; dx <= std::min(dist, max_axis); ++dx) {
      const std::int32_t dy = dist - dx;
      if (dy > max_axis) continue;
      total += static_cast<std::size_t>(torus_axis_multiplicity(dx)) *
               static_cast<std::size_t>(torus_axis_multiplicity(dy));
    }
    return total;
  }
  // Grid: count the in-bounds offsets directly.
  const Point p = coord(u);
  std::size_t total = 0;
  for (std::int32_t dx = -dist; dx <= dist; ++dx) {
    const std::int32_t x = p.x + dx;
    if (x < 0 || x >= side_) continue;
    const std::int32_t rem = dist - std::abs(dx);
    if (rem == 0) {
      ++total;
      continue;
    }
    if (p.y + rem < side_) ++total;
    if (p.y - rem >= 0) ++total;
  }
  return total;
}

std::size_t Lattice::ball_size(NodeId u, Hop r) const {
  const Hop cap = std::min<Hop>(r, diameter());
  std::size_t total = 0;
  for (Hop d = 0; d <= cap; ++d) total += shell_size(u, d);
  return total;
}

std::vector<NodeId> Lattice::neighbors(NodeId u) const {
  const Point p = coord(u);
  std::vector<NodeId> out;
  out.reserve(4);
  const Point candidates[4] = {Point{p.x + 1, p.y}, Point{p.x - 1, p.y},
                               Point{p.x, p.y + 1}, Point{p.x, p.y - 1}};
  for (const Point& c : candidates) {
    if (wrap_ == Wrap::Torus) {
      const NodeId v = node_wrapped(c);
      if (v != u && std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    } else if (c.x >= 0 && c.x < side_ && c.y >= 0 && c.y < side_) {
      out.push_back(node(c));
    }
  }
  return out;
}

void Lattice::visit_shell(NodeId u, Hop d, NodeVisitor fn) const {
  // Single source of truth for the enumeration order: the inlined template
  // in shells.hpp (which generic Topology callers reach through this
  // virtual, and lattice-typed hot paths call directly).
  for_each_at_distance(*this, u, d, [&](NodeId v) { fn(v); });
}

NodeId Lattice::central_node() const {
  return node(Point{side_ / 2, side_ / 2});
}

std::string Lattice::describe() const {
  std::ostringstream os;
  os << to_string(wrap_) << "(side=" << side_ << ")";
  return os.str();
}

std::string Lattice::node_label(NodeId u) const {
  const Point p = coord(u);
  std::ostringstream os;
  os << '(' << p.x << ", " << p.y << ')';
  return os.str();
}

double Lattice::mean_distance_to_random_node(NodeId u) const {
  double total = 0.0;
  for (Hop d = 1; d <= diameter(); ++d) {
    total += static_cast<double>(d) * static_cast<double>(shell_size(u, d));
  }
  return total / static_cast<double>(size());
}

}  // namespace proxcache
