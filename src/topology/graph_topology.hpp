#pragma once
/// \file graph_topology.hpp
/// Topology over an arbitrary connected undirected graph
/// (`graph/compact_graph.hpp` CSR representation) with exact BFS hop
/// distances, precomputed into a dense `n × n` uint16 matrix at
/// construction — queries are then O(1) lookups and shells are O(n) row
/// scans. This is the backing for irregular networks; the built-in random
/// geometric graph (`make_rgg_topology`) models servers scattered in the
/// unit square with radio-range links, the classic non-lattice testbed for
/// proximity-aware allocation.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/compact_graph.hpp"
#include "topology/topology.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Exact-distance topology over a connected CompactGraph.
class GraphTopology final : public Topology {
 public:
  /// Takes ownership of `graph`; throws std::invalid_argument when the
  /// graph is empty or not connected (every topology query assumes finite
  /// distances). `description` becomes `describe()`, canonically the spec
  /// string that built the graph. O(V·(V+E)) construction (all-pairs BFS),
  /// O(V²) memory in uint16.
  GraphTopology(CompactGraph graph, std::string description);

  [[nodiscard]] std::size_t size() const override {
    return static_cast<std::size_t>(graph_.num_vertices());
  }
  [[nodiscard]] Hop distance(NodeId u, NodeId v) const override;
  [[nodiscard]] Hop diameter() const override { return diameter_; }

  /// Row scan in node-id order (deterministic).
  void visit_shell(NodeId u, Hop d, NodeVisitor fn) const override;

  [[nodiscard]] std::size_t shell_size(NodeId u, Hop d) const override;
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId u) const override;
  [[nodiscard]] std::string describe() const override;

  /// The underlying graph (degree stats, edge counts for diagnostics).
  [[nodiscard]] const CompactGraph& graph() const { return graph_; }

 private:
  CompactGraph graph_;
  std::string description_;
  Hop diameter_ = 0;
  std::vector<std::uint16_t> dist_;  ///< row-major n × n hop distances
};

/// Deterministic random geometric graph topology: `n` points uniform in the
/// unit square (all randomness from `seed`), an edge between every pair at
/// Euclidean distance <= `radius`. When the raw graph is disconnected, each
/// minor component is stitched to the giant component through the
/// closest-pair link (deterministic repair; compare `graph().num_edges()`
/// against the raw radius graph to detect it) so distances stay finite.
std::shared_ptr<const GraphTopology> make_rgg_topology(std::size_t n,
                                                       double radius,
                                                       std::uint64_t seed);

}  // namespace proxcache
