#pragma once
/// \file graph_topology.hpp
/// Topology over an arbitrary connected undirected graph
/// (`graph/compact_graph.hpp` CSR representation) with BFS hop distances
/// served by the scalable `DistanceOracle` (graph/distance_oracle.hpp):
///
///  * small graphs (n <= `DistanceOracle::Options::dense_threshold`) keep
///    the historical dense all-pairs `uint16` matrix — O(1) exact queries,
///    bit-identical to the pre-oracle behavior, so every existing golden
///    master is preserved;
///  * large graphs switch to on-demand truncated BFS rows (LRU-cached) plus
///    landmark upper bounds for far pairs — memory proportional to what
///    queries visit, which is what lets graph-backed topologies reach
///    n = 10⁶–10⁷.
///
/// This is the backing for irregular networks; the built-in random
/// geometric graph (`make_rgg_topology`) models servers scattered in the
/// unit square with radio-range links, the classic non-lattice testbed for
/// proximity-aware allocation.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/compact_graph.hpp"
#include "graph/distance_oracle.hpp"
#include "topology/topology.hpp"
#include "util/types.hpp"

namespace proxcache {

/// BFS-distance topology over a connected CompactGraph.
class GraphTopology final : public Topology {
 public:
  using Options = DistanceOracle::Options;

  /// Takes ownership of `graph`; throws std::invalid_argument when the
  /// graph is empty, not connected (every topology query assumes finite
  /// distances), or deeper than the uint16 distance storage. `description`
  /// becomes `describe()`, canonically the spec string that built the
  /// graph. Below `options.dense_threshold` nodes this costs O(V·(V+E))
  /// construction and O(V²) memory (the exact dense regime); above it,
  /// construction is `num_landmarks` BFS passes and memory is O(k·V) plus
  /// the bounded row cache.
  GraphTopology(CompactGraph graph, std::string description,
                Options options = Options{});

  [[nodiscard]] std::size_t size() const override {
    return static_cast<std::size_t>(graph_.num_vertices());
  }
  [[nodiscard]] Hop distance(NodeId u, NodeId v) const override {
    return oracle_.distance(u, v);
  }
  [[nodiscard]] Hop diameter() const override { return oracle_.diameter(); }

  /// Exact shell in increasing node-id order (deterministic in both oracle
  /// regimes): a row scan when dense, the cached BFS level when sparse.
  void visit_shell(NodeId u, Hop d, NodeVisitor fn) const override;

  /// Sparse regime only: shells come straight off BFS levels, so the
  /// expanding-shell search is O(|ball|), not O(n · diameter).
  [[nodiscard]] bool directly_enumerates_shells() const override {
    return !oracle_.exact();
  }

  /// Sparse regime only: a ball walk beats scanning global replica lists.
  [[nodiscard]] bool prefers_local_enumeration() const override {
    return !oracle_.exact();
  }

  /// Sparse regime: walk only within the budget ball B*(u) — at most
  /// `distance_ball_budget` nodes, and exactly where `distance` answers
  /// exactly. Beyond it (notably small-diameter hyperbolic graphs, where
  /// B_8(u) is nearly everything) radius queries scan the replica list.
  [[nodiscard]] Hop local_enumeration_horizon(NodeId u) const override {
    return oracle_.budget_ball_depth(u);
  }

  [[nodiscard]] std::size_t shell_size(NodeId u, Hop d) const override {
    return oracle_.shell_size(u, d);
  }
  [[nodiscard]] std::size_t ball_size(NodeId u, Hop r) const override {
    return oracle_.ball_size(u, r);
  }
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId u) const override;
  [[nodiscard]] std::string describe() const override;

  /// The underlying graph (degree stats, edge counts for diagnostics).
  [[nodiscard]] const CompactGraph& graph() const { return graph_; }

  /// The distance layer itself (regime, stats, certified queries).
  [[nodiscard]] const DistanceOracle& oracle() const { return oracle_; }

 private:
  CompactGraph graph_;
  std::string description_;
  DistanceOracle oracle_;  ///< references graph_; declared after it
};

/// Deterministic random geometric graph topology: `n` points uniform in the
/// unit square (all randomness from `seed`), an edge between every pair at
/// Euclidean distance <= `radius`. Edge enumeration runs on a bucket grid
/// (O(n · expected degree), not O(n²)). When the raw graph is disconnected,
/// each minor component is stitched to the giant component through the
/// closest-pair link (deterministic repair; compare `graph().num_edges()`
/// against the raw radius graph to detect it) so distances stay finite.
std::shared_ptr<const GraphTopology> make_rgg_topology(
    std::size_t n, double radius, std::uint64_t seed,
    GraphTopology::Options options = GraphTopology::Options{});

}  // namespace proxcache
