#pragma once
/// \file topology.hpp
/// The cache network's topology seam: an abstract graph of `n` servers with
/// a hop metric and `B_r(u)` neighborhood enumeration — everything the
/// spatial query layer, the strategies and the workload generators need to
/// know about "where the servers are".
///
/// The paper states its results on a torus lattice (`Lattice`,
/// topology/lattice.hpp), but the load/proximity trade-off is a graph
/// phenomenon: Panigrahy et al. study the same policies on rings, trees and
/// random geometric graphs, and hierarchical cache tiers are trees. This
/// interface is what lets the simulator sweep that axis: `Lattice`
/// implements it bit-identically to its pre-interface behavior, and
/// `RingTopology` / `TreeTopology` / `GraphTopology` open the non-lattice
/// networks (see topology/registry.hpp for the spec-string catalog).
///
/// Contract for implementations:
///  * node ids are dense, `[0, size())`;
///  * `distance` is a metric in hops; `diameter()` is its maximum;
///  * `visit_shell(u, d, fn)` enumerates every node at distance exactly `d`
///    from `u`, each exactly once, in a *deterministic* order — the
///    reservoir-sampling query layer consumes RNG draws per visited node,
///    so enumeration order is part of the reproducibility contract;
///  * `central_node()` is the deterministic "center" used by hotspot/flash
///    workloads to anchor demand discs.

#include <cstdint>
#include <string>
#include <vector>

#include "util/function_ref.hpp"
#include "util/types.hpp"

namespace proxcache {

class Lattice;
class TieredTopology;

/// Visitor for shell/ball enumeration.
using NodeVisitor = FunctionRef<void(NodeId)>;

/// Abstract network topology: node count, hop metric, and neighborhood
/// enumeration. Implementations must be immutable after construction and
/// safe to query from multiple threads concurrently.
class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of servers `n`.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Hop (shortest-path) distance between two nodes.
  [[nodiscard]] virtual Hop distance(NodeId u, NodeId v) const = 0;

  /// Largest hop distance between any two nodes.
  [[nodiscard]] virtual Hop diameter() const = 0;

  /// Invoke `fn(v)` for every node at distance exactly `d` from `u`, each
  /// exactly once, in the implementation's deterministic order. The default
  /// scans all nodes in id order (O(n) per shell); structured topologies
  /// override with direct enumeration.
  virtual void visit_shell(NodeId u, Hop d, NodeVisitor fn) const;

  /// True when `visit_shell` enumerates a shell in ~O(|shell|) without
  /// scanning all nodes. The expanding-shell nearest-replica search is only
  /// profitable on such topologies; on scan-based ones it would degenerate
  /// to O(n · diameter) per query. Default: false (the base scan).
  [[nodiscard]] virtual bool directly_enumerates_shells() const {
    return false;
  }

  /// True when radius-limited queries should walk the ball around the
  /// requester (via `visit_shell`) instead of scanning global node/replica
  /// lists. Distinct from `directly_enumerates_shells`: ring/tree
  /// enumerate shells directly but answer `distance` in O(1), so list
  /// scans stay cheap there; a sparse graph oracle answers far-pair
  /// distances approximately and pays a BFS per new source, so local ball
  /// walks are both faster *and* exact. Default: false.
  [[nodiscard]] virtual bool prefers_local_enumeration() const {
    return false;
  }

  /// Largest radius for which a ball walk around `u` is still "local" —
  /// guaranteed to touch a bounded number of nodes. Radius queries on
  /// topologies that prefer local enumeration fall back to list scans
  /// beyond it: on small-diameter graphs (hyperbolic/expanders) even
  /// B_8(u) can be most of the graph. Must be a pure function of the
  /// topology (never of query history). Default: the diameter (every ball
  /// walk allowed).
  [[nodiscard]] virtual Hop local_enumeration_horizon(NodeId u) const {
    (void)u;
    return diameter();
  }

  /// Exact number of nodes at distance exactly `d` from `u`.
  [[nodiscard]] virtual std::size_t shell_size(NodeId u, Hop d) const;

  /// Exact `|B_r(u)|` — nodes within distance `r` of `u`, including `u`.
  [[nodiscard]] virtual std::size_t ball_size(NodeId u, Hop r) const;

  /// Direct neighbors of `u` (distance exactly 1).
  [[nodiscard]] virtual std::vector<NodeId> neighbors(NodeId u) const;

  /// Average hop distance from `u` to a uniformly random node (including
  /// `u` itself at distance 0) — the "no proximity constraint" reference
  /// communication cost.
  [[nodiscard]] virtual double mean_distance_to_random_node(NodeId u) const;

  /// Deterministic anchor node for spatially concentrated workloads
  /// (hotspot/flash discs). Defaults to `size() / 2`.
  [[nodiscard]] virtual NodeId central_node() const;

  /// Canonical one-line description, e.g. `torus(side=45)` — matches the
  /// registry spec string that would rebuild this topology.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Human-readable coordinate/debug label of a node (e.g. `(x, y)` on a
  /// lattice, `depth:index` on a tree). Defaults to the bare id.
  [[nodiscard]] virtual std::string node_label(NodeId u) const;

  /// Fast-path hook: the concrete `Lattice` when this topology is one,
  /// nullptr otherwise. The spatial layer uses it to keep the paper's
  /// torus/grid hot paths devirtualized and bucket-grid accelerated.
  [[nodiscard]] virtual const Lattice* as_lattice() const { return nullptr; }

  /// Hierarchy hook: the concrete `TieredTopology` when this topology is a
  /// tier composition (tier/tiered_topology.hpp), nullptr otherwise. The
  /// workload generators and cross-tier strategies use it to learn the
  /// tier/cluster structure without the core layers depending on it.
  [[nodiscard]] virtual const TieredTopology* as_tiered() const {
    return nullptr;
  }

  /// Number of nodes that originate requests — the prefix `[0,
  /// origin_universe())` of the id space. Flat topologies serve and
  /// originate everywhere (the default, `size()`); a tier composition
  /// restricts demand to its front-end tier while back-end/origin nodes
  /// only ever *serve*.
  [[nodiscard]] virtual std::size_t origin_universe() const { return size(); }
};

}  // namespace proxcache
