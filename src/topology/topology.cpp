#include "topology/topology.hpp"

#include <algorithm>

namespace proxcache {

void Topology::visit_shell(NodeId u, Hop d, NodeVisitor fn) const {
  // Generic fallback: scan all nodes in id order. Correct for any metric;
  // structured topologies override with direct enumeration.
  const std::size_t n = size();
  for (NodeId v = 0; v < n; ++v) {
    if (distance(u, v) == d) fn(v);
  }
}

std::size_t Topology::shell_size(NodeId u, Hop d) const {
  std::size_t count = 0;
  visit_shell(u, d, [&](NodeId) { ++count; });
  return count;
}

std::size_t Topology::ball_size(NodeId u, Hop r) const {
  const Hop cap = std::min<Hop>(r, diameter());
  std::size_t total = 0;
  for (Hop d = 0; d <= cap; ++d) total += shell_size(u, d);
  return total;
}

std::vector<NodeId> Topology::neighbors(NodeId u) const {
  std::vector<NodeId> out;
  visit_shell(u, 1, [&](NodeId v) { out.push_back(v); });
  return out;
}

double Topology::mean_distance_to_random_node(NodeId u) const {
  double total = 0.0;
  for (Hop d = 1; d <= diameter(); ++d) {
    total += static_cast<double>(d) * static_cast<double>(shell_size(u, d));
  }
  return total / static_cast<double>(size());
}

NodeId Topology::central_node() const {
  return static_cast<NodeId>(size() / 2);
}

std::string Topology::node_label(NodeId u) const {
  return std::to_string(u);
}

}  // namespace proxcache
