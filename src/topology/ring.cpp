#include "topology/ring.hpp"

#include <algorithm>
#include <sstream>

#include "util/contracts.hpp"

namespace proxcache {

RingTopology::RingTopology(std::size_t n) : n_(n) {
  PROXCACHE_REQUIRE(n >= 1, "ring needs >= 1 node");
  PROXCACHE_REQUIRE(n <= static_cast<std::size_t>(kInvalidNode),
                    "ring node count overflows NodeId");
}

Hop RingTopology::distance(NodeId u, NodeId v) const {
  PROXCACHE_REQUIRE(u < n_ && v < n_, "node id out of range");
  const std::size_t direct = u > v ? u - v : v - u;
  return static_cast<Hop>(std::min(direct, n_ - direct));
}

void RingTopology::visit_shell(NodeId u, Hop d, NodeVisitor fn) const {
  PROXCACHE_REQUIRE(u < n_, "node id out of range");
  if (d == 0) {
    fn(u);
    return;
  }
  const std::size_t dist = d;
  if (dist > n_ / 2) return;  // empty shell
  const auto forward =
      static_cast<NodeId>((static_cast<std::size_t>(u) + dist) % n_);
  fn(forward);
  // The antipode on an even ring coincides with the forward node.
  if (2 * dist != n_) {
    const auto backward = static_cast<NodeId>(
        (static_cast<std::size_t>(u) + n_ - dist) % n_);
    fn(backward);
  }
}

std::size_t RingTopology::shell_size(NodeId /*u*/, Hop d) const {
  if (d == 0) return 1;
  const std::size_t dist = d;
  if (dist > n_ / 2) return 0;
  return 2 * dist == n_ ? 1 : 2;
}

std::size_t RingTopology::ball_size(NodeId /*u*/, Hop r) const {
  const std::size_t dist = std::min<std::size_t>(r, n_ / 2);
  return std::min<std::size_t>(n_, 1 + 2 * dist);
}

std::string RingTopology::describe() const {
  std::ostringstream os;
  os << "ring(n=" << n_ << ")";
  return os.str();
}

}  // namespace proxcache
