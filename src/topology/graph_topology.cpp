#include "topology/graph_topology.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "random/rng.hpp"
#include "topology/spec.hpp"
#include "util/contracts.hpp"

namespace proxcache {

GraphTopology::GraphTopology(CompactGraph graph, std::string description,
                             Options options)
    : graph_(std::move(graph)),
      description_(std::move(description)),
      oracle_(graph_, options) {}

void GraphTopology::visit_shell(NodeId u, Hop d, NodeVisitor fn) const {
  oracle_.visit_shell(u, d, fn);
}

std::vector<NodeId> GraphTopology::neighbors(NodeId u) const {
  PROXCACHE_REQUIRE(u < size(), "node id out of range");
  const auto adjacency = graph_.neighbors(static_cast<std::uint32_t>(u));
  return {adjacency.begin(), adjacency.end()};
}

std::string GraphTopology::describe() const { return description_; }

namespace {

/// Uniform bucket grid over the unit square, sized so one cell spans at
/// least `radius`: all candidate neighbors of a point live in its 3×3 cell
/// neighborhood. Cells never exceed ceil(sqrt(n)) per axis, so the expected
/// occupancy stays O(1 + n·radius²).
struct UnitSquareGrid {
  std::size_t cells_per_axis;
  double cell_width;

  UnitSquareGrid(std::size_t n, double radius) {
    const auto by_radius =
        radius >= 1.0 ? std::size_t{1}
                      : static_cast<std::size_t>(std::floor(1.0 / radius));
    const auto by_count = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    cells_per_axis = std::max<std::size_t>(1, std::min(by_radius, by_count));
    cell_width = 1.0 / static_cast<double>(cells_per_axis);
  }

  [[nodiscard]] std::size_t axis_cell(double coordinate) const {
    const auto c = static_cast<std::size_t>(
        coordinate * static_cast<double>(cells_per_axis));
    return std::min(c, cells_per_axis - 1);
  }

  [[nodiscard]] std::size_t cell_of(double x, double y) const {
    return axis_cell(y) * cells_per_axis + axis_cell(x);
  }
};

}  // namespace

std::shared_ptr<const GraphTopology> make_rgg_topology(
    std::size_t n, double radius, std::uint64_t seed,
    GraphTopology::Options options) {
  PROXCACHE_REQUIRE(n >= 1, "rgg needs >= 1 node");
  PROXCACHE_REQUIRE(radius > 0.0, "rgg radius must be > 0");

  // Points uniform in the unit square; the draw order (x then y per point)
  // is part of the determinism contract.
  Rng rng(seed);
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform();
    ys[i] = rng.uniform();
  }

  const double radius_sq = radius * radius;
  const auto dist_sq = [&](std::size_t a, std::size_t b) {
    const double dx = xs[a] - xs[b];
    const double dy = ys[a] - ys[b];
    return dx * dx + dy * dy;
  };

  // Bucket-grid edge enumeration: each point tests only its 3×3 cell
  // neighborhood — O(n · expected degree) instead of the old O(n²)
  // pairwise scan. Emission order differs from the pairwise scan, but
  // CompactGraph::from_edges canonicalizes (sorts + dedupes), so the built
  // graph is identical.
  const UnitSquareGrid grid(n, radius);
  const std::size_t g = grid.cells_per_axis;
  std::vector<std::vector<std::uint32_t>> cells(g * g);
  for (std::size_t i = 0; i < n; ++i) {
    cells[grid.cell_of(xs[i], ys[i])].push_back(
        static_cast<std::uint32_t>(i));
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cx = grid.axis_cell(xs[i]);
    const std::size_t cy = grid.axis_cell(ys[i]);
    const std::size_t x_lo = cx > 0 ? cx - 1 : 0;
    const std::size_t x_hi = std::min(cx + 1, g - 1);
    const std::size_t y_lo = cy > 0 ? cy - 1 : 0;
    const std::size_t y_hi = std::min(cy + 1, g - 1);
    for (std::size_t y = y_lo; y <= y_hi; ++y) {
      for (std::size_t x = x_lo; x <= x_hi; ++x) {
        for (const std::uint32_t j : cells[y * g + x]) {
          if (j <= i) continue;
          if (dist_sq(i, j) <= radius_sq) {
            edges.emplace_back(static_cast<std::uint32_t>(i), j);
          }
        }
      }
    }
  }

  // Connectivity repair: label components (iterative DFS over an
  // adjacency list), then stitch every minor component to the giant one
  // through its closest pair of points. Deterministic: components are
  // labeled in order of their smallest node id, and ties in the closest
  // pair keep the pair minimizing (DFS-discovery rank in the minor
  // component, then DFS-discovery rank in the giant component).
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  for (const auto& [a, b] : edges) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  std::vector<std::uint32_t> component(
      n, std::numeric_limits<std::uint32_t>::max());
  std::vector<std::vector<std::uint32_t>> members;
  for (std::size_t start = 0; start < n; ++start) {
    if (component[start] != std::numeric_limits<std::uint32_t>::max()) {
      continue;
    }
    const auto label = static_cast<std::uint32_t>(members.size());
    members.emplace_back();
    std::vector<std::uint32_t> stack{static_cast<std::uint32_t>(start)};
    component[start] = label;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      members[label].push_back(u);
      for (const std::uint32_t v : adjacency[u]) {
        if (component[v] == std::numeric_limits<std::uint32_t>::max()) {
          component[v] = label;
          stack.push_back(v);
        }
      }
    }
  }
  if (members.size() > 1) {
    std::uint32_t giant = 0;
    for (std::uint32_t c = 1; c < members.size(); ++c) {
      if (members[c].size() > members[giant].size()) giant = c;
    }
    // Grid holding only giant-component members (by their discovery rank,
    // so tie-breaks fall out of the scan order). Each minor node searches
    // expanding Chebyshev rings of cells; a ring at index k is at least
    // (k-1)·cell_width away, which bounds the search once a candidate is
    // found.
    std::vector<std::vector<std::uint32_t>> giant_cells(g * g);
    for (std::uint32_t rank = 0;
         rank < static_cast<std::uint32_t>(members[giant].size()); ++rank) {
      const std::uint32_t v = members[giant][rank];
      giant_cells[grid.cell_of(xs[v], ys[v])].push_back(rank);
    }
    for (std::uint32_t c = 0; c < members.size(); ++c) {
      if (c == giant) continue;
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t best_rank_u = 0;
      std::uint32_t best_rank_v = 0;
      std::uint32_t best_u = 0;
      std::uint32_t best_v = 0;
      for (std::uint32_t rank_u = 0;
           rank_u < static_cast<std::uint32_t>(members[c].size());
           ++rank_u) {
        const std::uint32_t u = members[c][rank_u];
        const std::size_t cx = grid.axis_cell(xs[u]);
        const std::size_t cy = grid.axis_cell(ys[u]);
        const auto consider = [&](std::size_t x, std::size_t y) {
          for (const std::uint32_t rank_v : giant_cells[y * g + x]) {
            const std::uint32_t v = members[giant][rank_v];
            const double d = dist_sq(u, v);
            const bool wins =
                d < best ||
                (d == best &&
                 (rank_u < best_rank_u ||
                  (rank_u == best_rank_u && rank_v < best_rank_v)));
            if (wins) {
              best = d;
              best_rank_u = rank_u;
              best_rank_v = rank_v;
              best_u = u;
              best_v = v;
            }
          }
        };
        for (std::size_t k = 0; k < g; ++k) {
          if (k >= 1) {
            const double gap =
                static_cast<double>(k - 1) * grid.cell_width;
            if (gap * gap > best) break;
          }
          const std::size_t x_lo = cx >= k ? cx - k : 0;
          const std::size_t x_hi = std::min(cx + k, g - 1);
          const std::size_t y_lo = cy >= k ? cy - k : 0;
          const std::size_t y_hi = std::min(cy + k, g - 1);
          if (k == 0) {
            consider(cx, cy);
            continue;
          }
          for (std::size_t x = x_lo; x <= x_hi; ++x) {
            if (cy >= k && cy - k >= y_lo) consider(x, cy - k);
            if (cy + k <= g - 1) consider(x, cy + k);
          }
          for (std::size_t y = y_lo; y <= y_hi; ++y) {
            const bool on_corner_row =
                (cy >= k && y == cy - k) || (y == cy + k && cy + k <= g - 1);
            if (on_corner_row) continue;
            if (cx >= k && cx - k >= x_lo) consider(cx - k, y);
            if (cx + k <= g - 1) consider(cx + k, y);
          }
        }
      }
      edges.emplace_back(std::min(best_u, best_v), std::max(best_u, best_v));
    }
  }

  // The description is the exact spec string that rebuilds this topology:
  // format through TopologySpec::to_string so the radius survives a parse
  // round trip at full precision (plain ostream formatting would truncate).
  TopologySpec spec;
  spec.name = "rgg";
  spec.params["n"] = static_cast<double>(n);
  spec.params["radius"] = radius;
  spec.params["seed"] = static_cast<double>(seed);
  return std::make_shared<GraphTopology>(
      CompactGraph::from_edges(static_cast<std::uint32_t>(n),
                               std::move(edges)),
      spec.to_string(), options);
}

}  // namespace proxcache
