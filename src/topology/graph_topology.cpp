#include "topology/graph_topology.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "random/rng.hpp"
#include "topology/spec.hpp"
#include "util/contracts.hpp"

namespace proxcache {

namespace {

constexpr std::uint16_t kUnreached = std::numeric_limits<std::uint16_t>::max();

}  // namespace

GraphTopology::GraphTopology(CompactGraph graph, std::string description)
    : graph_(std::move(graph)), description_(std::move(description)) {
  const std::uint32_t n = graph_.num_vertices();
  PROXCACHE_REQUIRE(n >= 1, "graph topology needs >= 1 vertex");
  dist_.assign(static_cast<std::size_t>(n) * n, kUnreached);

  // All-pairs BFS; a frontier queue per source over the CSR adjacency.
  std::vector<std::uint32_t> frontier;
  frontier.reserve(n);
  for (std::uint32_t source = 0; source < n; ++source) {
    std::uint16_t* row = dist_.data() + static_cast<std::size_t>(source) * n;
    frontier.clear();
    frontier.push_back(source);
    row[source] = 0;
    std::uint16_t depth = 0;
    std::size_t begin = 0;
    while (begin < frontier.size()) {
      const std::size_t level_end = frontier.size();
      PROXCACHE_CHECK(depth < kUnreached - 1, "graph diameter overflow");
      ++depth;
      for (std::size_t i = begin; i < level_end; ++i) {
        for (const std::uint32_t v : graph_.neighbors(frontier[i])) {
          if (row[v] == kUnreached) {
            row[v] = depth;
            frontier.push_back(v);
          }
        }
      }
      begin = level_end;
    }
    if (frontier.size() != n) {
      throw std::invalid_argument(
          "graph topology requires a connected graph (vertex " +
          std::to_string(source) + " reaches only " +
          std::to_string(frontier.size()) + " of " + std::to_string(n) +
          " vertices)");
    }
    const std::uint16_t eccentricity = depth > 0 ? depth - 1 : 0;
    diameter_ = std::max<Hop>(diameter_, eccentricity);
  }
}

Hop GraphTopology::distance(NodeId u, NodeId v) const {
  const std::size_t n = size();
  PROXCACHE_REQUIRE(u < n && v < n, "node id out of range");
  return dist_[static_cast<std::size_t>(u) * n + v];
}

void GraphTopology::visit_shell(NodeId u, Hop d, NodeVisitor fn) const {
  const std::size_t n = size();
  PROXCACHE_REQUIRE(u < n, "node id out of range");
  if (d > diameter_) return;
  const std::uint16_t* row = dist_.data() + static_cast<std::size_t>(u) * n;
  const auto target = static_cast<std::uint16_t>(d);
  for (NodeId v = 0; v < n; ++v) {
    if (row[v] == target) fn(v);
  }
}

std::size_t GraphTopology::shell_size(NodeId u, Hop d) const {
  const std::size_t n = size();
  PROXCACHE_REQUIRE(u < n, "node id out of range");
  if (d > diameter_) return 0;
  const std::uint16_t* row = dist_.data() + static_cast<std::size_t>(u) * n;
  const auto target = static_cast<std::uint16_t>(d);
  std::size_t count = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (row[v] == target) ++count;
  }
  return count;
}

std::vector<NodeId> GraphTopology::neighbors(NodeId u) const {
  PROXCACHE_REQUIRE(u < size(), "node id out of range");
  const auto adjacency = graph_.neighbors(static_cast<std::uint32_t>(u));
  return {adjacency.begin(), adjacency.end()};
}

std::string GraphTopology::describe() const { return description_; }

std::shared_ptr<const GraphTopology> make_rgg_topology(std::size_t n,
                                                       double radius,
                                                       std::uint64_t seed) {
  PROXCACHE_REQUIRE(n >= 1, "rgg needs >= 1 node");
  PROXCACHE_REQUIRE(radius > 0.0, "rgg radius must be > 0");

  // Points uniform in the unit square; the draw order (x then y per point)
  // is part of the determinism contract.
  Rng rng(seed);
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform();
    ys[i] = rng.uniform();
  }

  const double radius_sq = radius * radius;
  const auto dist_sq = [&](std::size_t a, std::size_t b) {
    const double dx = xs[a] - xs[b];
    const double dy = ys[a] - ys[b];
    return dx * dx + dy * dy;
  };

  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dist_sq(i, j) <= radius_sq) {
        edges.emplace_back(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(j));
      }
    }
  }

  // Connectivity repair: label components (iterative DFS over an
  // adjacency list), then stitch every minor component to the giant one
  // through its closest pair of points. Deterministic: components are
  // labeled in order of their smallest node id, and ties in the closest
  // pair keep the first pair found in the fixed DFS-discovery iteration
  // order.
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  for (const auto& [a, b] : edges) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  std::vector<std::uint32_t> component(n, std::numeric_limits<std::uint32_t>::max());
  std::vector<std::vector<std::uint32_t>> members;
  for (std::size_t start = 0; start < n; ++start) {
    if (component[start] != std::numeric_limits<std::uint32_t>::max()) continue;
    const auto label = static_cast<std::uint32_t>(members.size());
    members.emplace_back();
    std::vector<std::uint32_t> stack{static_cast<std::uint32_t>(start)};
    component[start] = label;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      members[label].push_back(u);
      for (const std::uint32_t v : adjacency[u]) {
        if (component[v] == std::numeric_limits<std::uint32_t>::max()) {
          component[v] = label;
          stack.push_back(v);
        }
      }
    }
  }
  if (members.size() > 1) {
    std::uint32_t giant = 0;
    for (std::uint32_t c = 1; c < members.size(); ++c) {
      if (members[c].size() > members[giant].size()) giant = c;
    }
    for (std::uint32_t c = 0; c < members.size(); ++c) {
      if (c == giant) continue;
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t best_u = 0;
      std::uint32_t best_v = 0;
      for (const std::uint32_t u : members[c]) {
        for (const std::uint32_t v : members[giant]) {
          const double d = dist_sq(u, v);
          if (d < best) {
            best = d;
            best_u = u;
            best_v = v;
          }
        }
      }
      edges.emplace_back(std::min(best_u, best_v), std::max(best_u, best_v));
    }
  }

  // The description is the exact spec string that rebuilds this topology:
  // format through TopologySpec::to_string so the radius survives a parse
  // round trip at full precision (plain ostream formatting would truncate).
  TopologySpec spec;
  spec.name = "rgg";
  spec.params["n"] = static_cast<double>(n);
  spec.params["radius"] = radius;
  spec.params["seed"] = static_cast<double>(seed);
  return std::make_shared<GraphTopology>(
      CompactGraph::from_edges(static_cast<std::uint32_t>(n),
                               std::move(edges)),
      spec.to_string());
}

}  // namespace proxcache
