#include "topology/spec.hpp"

#include "util/kvspec.hpp"

namespace proxcache {

namespace {

/// No topology parameter has a symbolic keyword domain today; the empty
/// table still routes through the shared grammar so `inf` handling and
/// error messages match the strategy specs.
constexpr std::span<const SpecKeyword> kNoKeywords{};

}  // namespace

double TopologySpec::get_or(const std::string& key, double fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

std::string TopologySpec::to_string() const {
  return kv_spec_to_string(name, params, kNoKeywords);
}

TopologySpec parse_topology_spec(std::string_view text) {
  ParsedKvSpec parsed = parse_kv_spec(text, "topology", kNoKeywords);
  TopologySpec spec;
  spec.name = std::move(parsed.name);
  spec.params = std::move(parsed.params);
  return spec;
}

}  // namespace proxcache
