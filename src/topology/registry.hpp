#pragma once
/// \file registry.hpp
/// Open topology catalog: binds spec names to factories and per-parameter
/// validation rules, mirroring strategy/registry.hpp on the network side.
/// The simulator asks the registry — never `Lattice` directly — to build
/// the `Topology` for a run, so adding a network shape is: implement
/// `Topology`, append one `TopologyEntry`, done. Every CLI
/// (`--topology <spec>`), bench and golden-master harness picks it up
/// automatically.
///
/// Built-ins: `torus(side)` and `grid(side)` (the paper's lattice, exact
/// legacy behavior), `ring(n)`, `tree(branching, depth)` and
/// `rgg(n, radius, seed)` (graph-backed via src/graph/compact_graph with
/// BFS distances).
///
/// Entries also declare a cheap `node_count(spec)` so configs can resolve
/// `n` (request horizons, placement sizing) without materializing the
/// topology — materialization can be expensive (all-pairs BFS for graph
/// topologies) and happens once per SimulationContext.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "topology/lattice.hpp"
#include "topology/spec.hpp"
#include "topology/topology.hpp"

namespace proxcache {

/// One legal parameter of a topology: inclusive range plus the value used
/// when the spec leaves the key unset. (Same shape as StrategyParamRule —
/// kept separate so the topology layer stays decoupled from the strategy
/// module.)
struct TopologyParamRule {
  std::string key;
  double min_value;
  double max_value;  ///< inclusive; use infinity for unbounded keys
  double default_value;
  std::string doc;  ///< one-liner for --help / README tables
  /// Whole numbers only; counts and sides set this so e.g. `side=2.7` is
  /// rejected instead of silently truncating.
  bool integral = false;
};

/// Builds a ready-to-query Topology from a defaults-filled spec. Returned
/// as shared_ptr so contexts can share one materialized topology across a
/// scenario × strategy matrix (graph topologies carry O(n²) distance
/// tables).
using TopologyFactory =
    std::function<std::shared_ptr<const Topology>(const TopologySpec&)>;

/// One registered topology.
struct TopologyEntry {
  std::string name;     ///< registry key, canonical lowercase
  std::string summary;  ///< one-line description for --list output
  std::vector<TopologyParamRule> params;
  /// Node count implied by a defaults-filled spec (cheap, no
  /// materialization). Must agree with `factory(spec)->size()`.
  std::function<std::size_t(const TopologySpec&)> node_count;
  TopologyFactory factory;
};

/// Catalog of topology entries. `built_ins()` is the immutable default set;
/// custom registries start from `with_built_ins()` and `add` their own.
class TopologyRegistry {
 public:
  /// An empty registry (for fully custom catalogs).
  TopologyRegistry() = default;

  /// The shared immutable catalog of built-in topologies.
  static const TopologyRegistry& built_ins();

  /// A mutable copy of the built-in catalog to extend with `add`.
  static TopologyRegistry with_built_ins() { return built_ins(); }

  /// The process-wide catalog the simulator consults (`validate`,
  /// `SimulationContext`). Starts as a copy of `built_ins()`;
  /// `global().add(...)` makes a custom topology runnable everywhere specs
  /// are accepted. Register at startup, before experiments run.
  static TopologyRegistry& global();

  /// Register an entry; throws std::invalid_argument on a duplicate name
  /// or an entry without a factory or node_count.
  void add(TopologyEntry entry);

  /// All entries in registration order.
  [[nodiscard]] const std::vector<TopologyEntry>& all() const {
    return entries_;
  }

  /// Entry by name, or nullptr when absent.
  [[nodiscard]] const TopologyEntry* find(const std::string& name) const;

  /// Entry by name; throws std::invalid_argument listing the known names
  /// when absent.
  [[nodiscard]] const TopologyEntry& at(const std::string& name) const;

  /// Comma-separated names (for error messages and --help).
  [[nodiscard]] std::string names() const;

  /// Check `spec` against the named entry's parameter rules. Throws
  /// std::invalid_argument on an unknown topology name, an unknown
  /// parameter key, an out-of-range value, or a node count the id space
  /// cannot hold.
  void validate(const TopologySpec& spec) const;

  /// `spec`, validated, with every unset parameter filled in from the
  /// entry's declared defaults.
  [[nodiscard]] TopologySpec with_defaults(const TopologySpec& spec) const;

  /// Node count implied by `spec` after validation + defaults (no
  /// materialization).
  [[nodiscard]] std::size_t node_count(const TopologySpec& spec) const;

  /// Validate `spec` and build the topology through the entry's factory.
  [[nodiscard]] std::shared_ptr<const Topology> make(
      const TopologySpec& spec) const;

 private:
  std::vector<TopologyEntry> entries_;
};

/// Map the legacy lattice knobs (`num_nodes` perfect square + `Wrap`) onto
/// the equivalent registry spec — `torus(side=√n)` / `grid(side=√n)`. This
/// is the shim that keeps pre-TopologySpec configs running bit-identically.
[[nodiscard]] TopologySpec topology_spec_from_lattice(std::size_t num_nodes,
                                                      Wrap wrap);

/// Parse and validate a batch of spec strings (e.g. repeated `--topology`
/// flags) against `registry`, all up front. Throws std::invalid_argument
/// on the first bad spec.
[[nodiscard]] std::vector<TopologySpec> parse_validated_topology_specs(
    const std::vector<std::string>& texts,
    const TopologyRegistry& registry = TopologyRegistry::global());

}  // namespace proxcache
