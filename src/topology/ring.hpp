#pragma once
/// \file ring.hpp
/// A cycle of `n` servers — the 1-D analogue of the torus, and the
/// canonical "high diameter, tight neighborhoods" stress for proximity
/// policies (Panigrahy et al. study the same trade-off on rings). All
/// queries are closed-form; shells are the pair `{u+d, u-d}` (mod n).

#include <cstdint>
#include <string>

#include "topology/topology.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Cycle C_n with ring hop distance.
class RingTopology final : public Topology {
 public:
  /// `n >= 1` nodes; node `i` neighbors `i±1 (mod n)`.
  explicit RingTopology(std::size_t n);

  [[nodiscard]] std::size_t size() const override { return n_; }
  [[nodiscard]] Hop distance(NodeId u, NodeId v) const override;
  [[nodiscard]] Hop diameter() const override {
    return static_cast<Hop>(n_ / 2);
  }

  /// Shell order: `u+d (mod n)` first, then `u-d (mod n)` when distinct —
  /// mirroring the torus axis-offset order `{+a, -a}`.
  void visit_shell(NodeId u, Hop d, NodeVisitor fn) const override;

  [[nodiscard]] bool directly_enumerates_shells() const override {
    return true;
  }

  [[nodiscard]] std::size_t shell_size(NodeId u, Hop d) const override;
  [[nodiscard]] std::size_t ball_size(NodeId u, Hop r) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::size_t n_;
};

}  // namespace proxcache
