#pragma once
/// \file point.hpp
/// Integer lattice coordinates.

#include <cstdint>

namespace proxcache {

/// A coordinate on the √n × √n lattice; `x` is the column, `y` the row.
struct Point {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

}  // namespace proxcache
