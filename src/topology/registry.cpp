#include "topology/registry.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "topology/clique.hpp"
#include "topology/graph_topology.hpp"
#include "topology/hyperbolic.hpp"
#include "topology/ring.hpp"
#include "topology/tree.hpp"
#include "util/contracts.hpp"

namespace proxcache {

namespace {

/// Hard ceiling on materialized node counts: keeps accidental
/// `ring(n=1e18)` specs from being accepted by validation. Graph-backed
/// topologies scale past the old dense-matrix wall through the sparse
/// distance oracle (graph/distance_oracle.hpp), so the ceiling is now a
/// memory-sanity bound rather than an n² one; entries whose *construction*
/// is the bottleneck (rgg point stitching, hyperbolic edge scans) declare
/// tighter per-entry ranges.
constexpr std::size_t kMaxNodes = std::size_t{1} << 27;

std::string format_range(double lo, double hi) {
  std::ostringstream os;
  os << '[' << lo << ", ";
  if (std::isinf(hi)) {
    os << "inf";
  } else {
    os << hi;
  }
  os << ']';
  return os.str();
}

}  // namespace

void TopologyRegistry::add(TopologyEntry entry) {
  if (entry.name.empty()) {
    throw std::invalid_argument("topology entry needs a non-empty name");
  }
  if (!entry.factory) {
    throw std::invalid_argument("topology '" + entry.name +
                                "' registered without a factory");
  }
  if (!entry.node_count) {
    throw std::invalid_argument("topology '" + entry.name +
                                "' registered without a node_count");
  }
  if (find(entry.name) != nullptr) {
    throw std::invalid_argument("topology '" + entry.name +
                                "' is already registered");
  }
  entries_.push_back(std::move(entry));
}

const TopologyEntry* TopologyRegistry::find(const std::string& name) const {
  for (const TopologyEntry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const TopologyEntry& TopologyRegistry::at(const std::string& name) const {
  const TopologyEntry* entry = find(name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown topology '" + name +
                                "' (known: " + names() + ")");
  }
  return *entry;
}

std::string TopologyRegistry::names() const {
  std::string joined;
  for (const TopologyEntry& entry : entries_) {
    if (!joined.empty()) joined += ", ";
    joined += entry.name;
  }
  return joined;
}

void TopologyRegistry::validate(const TopologySpec& spec) const {
  const TopologyEntry& entry = at(spec.name);
  for (const auto& [key, value] : spec.params) {
    const TopologyParamRule* rule = nullptr;
    for (const TopologyParamRule& candidate : entry.params) {
      if (candidate.key == key) {
        rule = &candidate;
        break;
      }
    }
    if (rule == nullptr) {
      std::string known;
      for (const TopologyParamRule& candidate : entry.params) {
        if (!known.empty()) known += ", ";
        known += candidate.key;
      }
      throw std::invalid_argument(
          "topology '" + spec.name + "' does not take parameter '" + key +
          "' (known: " + (known.empty() ? "<none>" : known) + ")");
    }
    if (std::isnan(value) || value < rule->min_value ||
        value > rule->max_value) {
      std::ostringstream os;
      os << "topology '" << spec.name << "' parameter '" << key << "' = "
         << value << " is outside "
         << format_range(rule->min_value, rule->max_value);
      throw std::invalid_argument(os.str());
    }
    if (rule->integral && !std::isinf(value) &&
        value != std::floor(value)) {
      std::ostringstream os;
      os << "topology '" << spec.name << "' parameter '" << key << "' = "
         << value << " must be an integer";
      throw std::invalid_argument(os.str());
    }
  }
  // Cross-parameter check: the id space must hold the implied node count
  // (e.g. tree(branching=64, depth=20) passes per-key ranges but not this).
  TopologySpec filled = spec;
  for (const TopologyParamRule& rule : entry.params) {
    if (!filled.has(rule.key)) filled.params[rule.key] = rule.default_value;
  }
  const std::size_t nodes = entry.node_count(filled);
  if (nodes == 0 || nodes > kMaxNodes) {
    std::ostringstream os;
    os << "topology '" << spec.name << "' implies " << nodes
       << " nodes, outside [1, " << kMaxNodes << "]";
    throw std::invalid_argument(os.str());
  }
}

TopologySpec TopologyRegistry::with_defaults(const TopologySpec& spec) const {
  validate(spec);
  TopologySpec filled = spec;
  for (const TopologyParamRule& rule : at(spec.name).params) {
    if (!filled.has(rule.key)) filled.params[rule.key] = rule.default_value;
  }
  return filled;
}

std::size_t TopologyRegistry::node_count(const TopologySpec& spec) const {
  const TopologySpec filled = with_defaults(spec);
  return at(spec.name).node_count(filled);
}

std::shared_ptr<const Topology> TopologyRegistry::make(
    const TopologySpec& spec) const {
  return at(spec.name).factory(with_defaults(spec));
}

const TopologyRegistry& TopologyRegistry::built_ins() {
  static const TopologyRegistry registry = [] {
    // side_max² <= kMaxNodes keeps the declared per-key range satisfiable —
    // any in-range side also passes the node-count cross-check. 8192² is
    // 2^26 nodes: million-node tori (side=1000) are now well inside range.
    const double side_max = 8192.0;
    TopologyRegistry r;
    const auto lattice_nodes = [](const TopologySpec& spec) {
      const auto side = static_cast<std::size_t>(spec.get_or("side", 45.0));
      return side * side;
    };
    r.add({"torus",
           "side x side lattice, wraparound edges (the paper's model)",
           {{"side", 1.0, side_max, 45.0, "lattice side length",
             /*integral=*/true}},
           lattice_nodes,
           [](const TopologySpec& spec) -> std::shared_ptr<const Topology> {
             return std::make_shared<Lattice>(
                 static_cast<std::int32_t>(spec.get_or("side", 45.0)),
                 Wrap::Torus);
           }});
    r.add({"grid",
           "side x side bounded lattice with true boundaries",
           {{"side", 1.0, side_max, 45.0, "lattice side length",
             /*integral=*/true}},
           lattice_nodes,
           [](const TopologySpec& spec) -> std::shared_ptr<const Topology> {
             return std::make_shared<Lattice>(
                 static_cast<std::int32_t>(spec.get_or("side", 45.0)),
                 Wrap::Grid);
           }});
    r.add({"ring",
           "cycle of n servers (1-D torus; high diameter, tight "
           "neighborhoods)",
           {{"n", 1.0, static_cast<double>(kMaxNodes), 4096.0,
             "number of servers", /*integral=*/true}},
           [](const TopologySpec& spec) {
             return static_cast<std::size_t>(spec.get_or("n", 4096.0));
           },
           [](const TopologySpec& spec) -> std::shared_ptr<const Topology> {
             return std::make_shared<RingTopology>(
                 static_cast<std::size_t>(spec.get_or("n", 4096.0)));
           }});
    r.add({"clique",
           "complete graph K_n, every pair one hop apart (interchangeable "
           "origin/partition pools; the tier grammar's bare-count form)",
           {{"n", 1.0, 1048576.0, 16.0, "number of servers",
             /*integral=*/true}},
           [](const TopologySpec& spec) {
             return static_cast<std::size_t>(spec.get_or("n", 16.0));
           },
           [](const TopologySpec& spec) -> std::shared_ptr<const Topology> {
             return std::make_shared<CliqueTopology>(
                 static_cast<std::size_t>(spec.get_or("n", 16.0)));
           }});
    r.add({"tree",
           "complete b-ary tree (hierarchical cache tiers)",
           {{"branching", 1.0, 64.0, 4.0, "children per inner node",
             /*integral=*/true},
            {"depth", 0.0, 24.0, 6.0, "levels below the root",
             /*integral=*/true}},
           [](const TopologySpec& spec) {
             return TreeTopology::node_count(
                 static_cast<std::uint32_t>(spec.get_or("branching", 4.0)),
                 static_cast<std::uint32_t>(spec.get_or("depth", 6.0)));
           },
           [](const TopologySpec& spec) -> std::shared_ptr<const Topology> {
             return std::make_shared<TreeTopology>(
                 static_cast<std::uint32_t>(spec.get_or("branching", 4.0)),
                 static_cast<std::uint32_t>(spec.get_or("depth", 6.0)));
           }});
    r.add({"rgg",
           "random geometric graph in the unit square (BFS hop distances, "
           "deterministic in seed)",
           {{"n", 2.0, 16777216.0, 4096.0,
             "number of servers (dense distance table up to the oracle "
             "threshold, sparse BFS + landmarks beyond)",
             /*integral=*/true},
            {"radius", 1e-9, 1.5, 0.03, "Euclidean connection radius"},
            {"seed", 0.0, 9007199254740992.0, 1.0,
             "point-process seed", /*integral=*/true}},
           [](const TopologySpec& spec) {
             return static_cast<std::size_t>(spec.get_or("n", 4096.0));
           },
           [](const TopologySpec& spec) -> std::shared_ptr<const Topology> {
             return make_rgg_topology(
                 static_cast<std::size_t>(spec.get_or("n", 4096.0)),
                 spec.get_or("radius", 0.03),
                 static_cast<std::uint64_t>(spec.get_or("seed", 1.0)));
           }});
    r.add({"hyperbolic",
           "hyperbolic random graph in the Poincare disk (scale-free "
           "degrees, gamma = 2*alpha + 1; deterministic in seed)",
           {{"n", 1.0, 1048576.0, 4096.0, "number of servers",
             /*integral=*/true},
            {"degree", 1.0, 1024.0, 10.0, "target average degree"},
            {"alpha", 0.51, 8.0, 0.75, "radial dispersion (> 0.5)"},
            {"seed", 0.0, 9007199254740992.0, 1.0,
             "point-process seed", /*integral=*/true}},
           [](const TopologySpec& spec) {
             return static_cast<std::size_t>(spec.get_or("n", 4096.0));
           },
           [](const TopologySpec& spec) -> std::shared_ptr<const Topology> {
             return make_hyperbolic_topology(
                 static_cast<std::size_t>(spec.get_or("n", 4096.0)),
                 spec.get_or("degree", 10.0), spec.get_or("alpha", 0.75),
                 static_cast<std::uint64_t>(spec.get_or("seed", 1.0)));
           }});
    return r;
  }();
  return registry;
}

TopologyRegistry& TopologyRegistry::global() {
  static TopologyRegistry registry = with_built_ins();
  return registry;
}

TopologySpec topology_spec_from_lattice(std::size_t num_nodes, Wrap wrap) {
  PROXCACHE_REQUIRE(Lattice::is_perfect_square(num_nodes),
                    "num_nodes must be a perfect square, got " +
                        std::to_string(num_nodes));
  const std::int32_t side =
      Lattice::from_node_count(num_nodes, wrap).side();
  TopologySpec spec;
  spec.name = to_string(wrap);
  spec.params["side"] = static_cast<double>(side);
  return spec;
}

std::vector<TopologySpec> parse_validated_topology_specs(
    const std::vector<std::string>& texts, const TopologyRegistry& registry) {
  std::vector<TopologySpec> specs;
  specs.reserve(texts.size());
  for (const std::string& text : texts) {
    TopologySpec spec = parse_topology_spec(text);
    registry.validate(spec);
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace proxcache
