#pragma once
/// \file hyperbolic.hpp
/// Hyperbolic random graph topology (Krioukov et al., Phys. Rev. E 82,
/// 036106): `n` points in the Poincaré disk of radius `R`, angle uniform,
/// radius with density ∝ α·sinh(αr), an edge between every pair at
/// hyperbolic distance <= `R`. The model produces scale-free degree
/// distributions (exponent γ = 2α + 1), high clustering, and poly-log
/// diameters — the Internet-like expander regime with *exponential* shell
/// growth that the lattice/ring/tree catalog lacks.
///
/// `R` is calibrated so the expected average degree is `degree`:
/// R = 2·ln(2·n·ξ² / (π·degree)) with ξ = α/(α − ½) — which is why
/// `alpha` must exceed ½ (at α <= ½ the expected degree diverges).
///
/// Construction is subquadratic: points inside radius R/2 form a clique
/// and are pair-tested against everyone (their expected count is
/// O(n^(1−α))), while outer-outer pairs are found by an angle-sorted
/// forward scan bounded by the widest connectable angle at radius R/2.
/// Disconnected minors are stitched hub-to-hub (each minor's innermost
/// point to the giant component's innermost point) so distances stay
/// finite — deterministic, like the rgg repair.

#include <cstdint>
#include <memory>

#include "topology/graph_topology.hpp"

namespace proxcache {

/// Deterministic hyperbolic random graph topology. All randomness comes
/// from `seed`; the draw order (theta then radius quantile, per point in id
/// order) is part of the determinism contract. Throws std::invalid_argument
/// via the usual contract macros when `alpha <= 0.5` or `degree <= 0`.
std::shared_ptr<const GraphTopology> make_hyperbolic_topology(
    std::size_t n, double degree, double alpha, std::uint64_t seed,
    GraphTopology::Options options = GraphTopology::Options{});

}  // namespace proxcache
