#include "topology/shells.hpp"

namespace proxcache {

std::vector<NodeId> collect_shell(const Lattice& lattice, NodeId u, Hop d) {
  std::vector<NodeId> out;
  out.reserve(lattice.shell_size(u, d));
  for_each_at_distance(lattice, u, d, [&](NodeId v) { out.push_back(v); });
  return out;
}

std::vector<NodeId> collect_ball(const Lattice& lattice, NodeId u, Hop r) {
  std::vector<NodeId> out;
  out.reserve(lattice.ball_size(u, r));
  for_each_in_ball(lattice, u, r, [&](NodeId v, Hop) { out.push_back(v); });
  return out;
}

std::vector<NodeId> collect_shell(const Topology& topology, NodeId u, Hop d) {
  std::vector<NodeId> out;
  for_each_at_distance(topology, u, d, [&](NodeId v) { out.push_back(v); });
  return out;
}

std::vector<NodeId> collect_ball(const Topology& topology, NodeId u, Hop r) {
  std::vector<NodeId> out;
  out.reserve(topology.ball_size(u, r));
  for_each_in_ball(topology, u, r, [&](NodeId v, Hop) { out.push_back(v); });
  return out;
}

}  // namespace proxcache
