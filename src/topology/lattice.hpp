#pragma once
/// \file lattice.hpp
/// The paper's topology substrate: a `side × side` square lattice of
/// servers with hop (L1 / Manhattan) distance, in one of two wrap modes:
///
/// * `Wrap::Torus` — opposite edges identified (the paper's default model,
///   Remark 1: avoids boundary effects, all asymptotics carry to the grid);
/// * `Wrap::Grid`  — bounded grid with true boundaries (ablation).
///
/// Nodes are identified by `NodeId = y * side + x`. `Lattice` implements
/// the abstract `Topology` interface (topology/topology.hpp) bit-identically
/// to its pre-interface behavior — same distances, same shell enumeration
/// order — so the paper's goldens are unchanged by the topology seam. The
/// lattice-specific coordinate API (`coord`, `node`, `node_wrapped`) stays
/// public for the analyses that are genuinely lattice-bound (Voronoi cells,
/// the configuration graph, the bucket grid).

#include <cstdint>
#include <string>
#include <vector>

#include "topology/point.hpp"
#include "topology/topology.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Edge-identification mode of the lattice.
enum class Wrap : std::uint8_t {
  Torus,  ///< wraparound in both axes (paper default)
  Grid,   ///< bounded; no wraparound
};

/// Parse "torus"/"grid" into a Wrap. Tolerant of letter case and
/// surrounding whitespace (same tolerance as the strategy/topology spec
/// grammar); throws std::invalid_argument naming the offending token
/// otherwise.
Wrap wrap_from_string(const std::string& name);

/// Human-readable wrap-mode name.
std::string to_string(Wrap wrap);

/// A square lattice topology with L1 hop distance.
class Lattice final : public Topology {
 public:
  /// Construct a `side × side` lattice; `side >= 1`.
  Lattice(std::int32_t side, Wrap wrap);

  /// Construct from a node count that must be a perfect square.
  static Lattice from_node_count(std::size_t n, Wrap wrap);

  /// True iff `n` has an exact integer square root.
  static bool is_perfect_square(std::size_t n);

  [[nodiscard]] std::int32_t side() const { return side_; }
  [[nodiscard]] std::size_t size() const override {
    return static_cast<std::size_t>(side_) * static_cast<std::size_t>(side_);
  }
  [[nodiscard]] Wrap wrap() const { return wrap_; }

  /// Coordinate of a node id.
  [[nodiscard]] Point coord(NodeId u) const;

  /// Node id of an in-bounds coordinate.
  [[nodiscard]] NodeId node(Point p) const;

  /// Node id of a possibly out-of-bounds coordinate after wrap reduction.
  /// Only valid in torus mode; grid callers must pass in-bounds points.
  [[nodiscard]] NodeId node_wrapped(Point p) const;

  /// Hop (shortest-path) distance between two nodes.
  [[nodiscard]] Hop distance(NodeId u, NodeId v) const override;

  /// Largest possible hop distance between any two nodes (the diameter).
  [[nodiscard]] Hop diameter() const override;

  /// Exact `|B_r(u)|` — number of nodes within distance `r` of `u`
  /// (including `u`). On the torus this is independent of `u`.
  [[nodiscard]] std::size_t ball_size(NodeId u, Hop r) const override;

  /// Exact number of nodes at distance exactly `d` from `u`. On the
  /// bounded grid, shells truncated by the boundary are counted exactly —
  /// never approximated by the torus closed form.
  [[nodiscard]] std::size_t shell_size(NodeId u, Hop d) const override;

  /// Enumerate the shell at distance `d` (Topology conformance). Same
  /// order as the inlined `for_each_at_distance` template in shells.hpp.
  void visit_shell(NodeId u, Hop d, NodeVisitor fn) const override;

  [[nodiscard]] bool directly_enumerates_shells() const override {
    return true;
  }

  /// The 2–4 lattice neighbours of `u` (4 on a torus with side >= 3).
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId u) const override;

  /// Average hop distance from a fixed node to a uniformly random node.
  /// Used as the reference "no proximity constraint" communication cost,
  /// which is Θ(√n).
  [[nodiscard]] double mean_distance_to_random_node(NodeId u) const override;

  /// The lattice center `(side/2, side/2)` — the historical anchor of the
  /// hotspot and flash-crowd demand discs.
  [[nodiscard]] NodeId central_node() const override;

  /// Canonical spec string, e.g. `torus(side=45)`.
  [[nodiscard]] std::string describe() const override;

  /// `(x, y)` coordinate label.
  [[nodiscard]] std::string node_label(NodeId u) const override;

  [[nodiscard]] const Lattice* as_lattice() const override { return this; }

 private:
  /// Per-axis ring (torus) or line (grid) distance.
  [[nodiscard]] std::int32_t axis_distance(std::int32_t a, std::int32_t b) const;

  /// Number of axis offsets at ring distance exactly `a` (torus only).
  [[nodiscard]] std::int32_t torus_axis_multiplicity(std::int32_t a) const;

  std::int32_t side_;
  Wrap wrap_;
};

}  // namespace proxcache
