#include "topology/tree.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace proxcache {

std::size_t TreeTopology::node_count(std::uint32_t branching,
                                     std::uint32_t depth) {
  PROXCACHE_REQUIRE(branching >= 1, "tree branching must be >= 1");
  // Sum of b^l for l in [0, depth], with overflow checks against NodeId.
  const std::size_t limit = static_cast<std::size_t>(kInvalidNode);
  std::size_t total = 0;
  std::size_t level_size = 1;
  for (std::uint32_t l = 0; l <= depth; ++l) {
    PROXCACHE_REQUIRE(total <= limit - level_size,
                      "tree node count overflows NodeId");
    total += level_size;
    if (l < depth) {
      PROXCACHE_REQUIRE(level_size <= limit / branching,
                        "tree node count overflows NodeId");
      level_size *= branching;
    }
  }
  return total;
}

TreeTopology::TreeTopology(std::uint32_t branching, std::uint32_t depth)
    : branching_(branching),
      depth_(depth),
      size_(node_count(branching, depth)) {
  level_first_.reserve(depth_ + 2);
  std::size_t first = 0;
  std::size_t level_size = 1;
  for (std::uint32_t l = 0; l <= depth_; ++l) {
    level_first_.push_back(static_cast<NodeId>(first));
    first += level_size;
    level_size *= branching_;
  }
  level_first_.push_back(static_cast<NodeId>(first));  // one-past-the-end
}

std::uint32_t TreeTopology::level(NodeId u) const {
  PROXCACHE_REQUIRE(u < size_, "node id out of range");
  std::uint32_t l = 0;
  while (u >= level_first_[l + 1]) ++l;
  return l;
}

NodeId TreeTopology::parent(NodeId u) const {
  PROXCACHE_REQUIRE(u < size_, "node id out of range");
  if (u == 0) return 0;
  return (u - 1) / branching_;
}

Hop TreeTopology::distance(NodeId u, NodeId v) const {
  std::uint32_t lu = level(u);
  std::uint32_t lv = level(v);
  Hop hops = 0;
  while (lu > lv) {
    u = parent(u);
    --lu;
    ++hops;
  }
  while (lv > lu) {
    v = parent(v);
    --lv;
    ++hops;
  }
  while (u != v) {
    u = parent(u);
    v = parent(v);
    hops += 2;
  }
  return hops;
}

std::vector<NodeId> TreeTopology::neighbors(NodeId u) const {
  PROXCACHE_REQUIRE(u < size_, "node id out of range");
  std::vector<NodeId> out;
  if (u != 0) out.push_back(parent(u));
  const std::size_t first_child =
      static_cast<std::size_t>(u) * branching_ + 1;
  for (std::uint32_t c = 0; c < branching_; ++c) {
    const std::size_t child = first_child + c;
    if (child >= size_) break;
    out.push_back(static_cast<NodeId>(child));
  }
  return out;
}

std::string TreeTopology::describe() const {
  std::ostringstream os;
  os << "tree(branching=" << branching_ << ", depth=" << depth_ << ")";
  return os.str();
}

std::string TreeTopology::node_label(NodeId u) const {
  std::ostringstream os;
  os << level(u) << ':' << u;
  return os.str();
}

}  // namespace proxcache
