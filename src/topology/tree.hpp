#pragma once
/// \file tree.hpp
/// A complete rooted b-ary tree — the shape of hierarchical cache tiers
/// (edge → regional → origin, as in DistCache). Nodes are numbered in
/// level order: the root is 0 and the children of `i` are
/// `i*b + 1 … i*b + b`, so parent/level arithmetic is closed-form and
/// distances are computed by walking to the lowest common ancestor.

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Complete b-ary tree of the given depth (depth 0 = a single root).
class TreeTopology final : public Topology {
 public:
  /// `branching >= 1`, `depth >= 0`; throws when the node count overflows
  /// the NodeId space.
  TreeTopology(std::uint32_t branching, std::uint32_t depth);

  /// Nodes of a complete b-ary tree of the given depth, as a checked
  /// std::size_t (used by the registry to pre-validate specs).
  static std::size_t node_count(std::uint32_t branching, std::uint32_t depth);

  [[nodiscard]] std::uint32_t branching() const { return branching_; }
  [[nodiscard]] std::uint32_t depth() const { return depth_; }

  [[nodiscard]] std::size_t size() const override { return size_; }
  [[nodiscard]] Hop distance(NodeId u, NodeId v) const override;
  /// Leaf → root → leaf for a branching tree; a unary tree is a path, so
  /// its two most distant nodes are the root and the single deepest node.
  [[nodiscard]] Hop diameter() const override {
    return static_cast<Hop>(branching_ >= 2 ? 2 * depth_ : depth_);
  }
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId u) const override;

  /// Level (distance from the root) of node `u`.
  [[nodiscard]] std::uint32_t level(NodeId u) const;

  /// Parent of `u`; the root is its own parent.
  [[nodiscard]] NodeId parent(NodeId u) const;

  /// Demand discs anchor at the root: the natural "center" of a hierarchy.
  [[nodiscard]] NodeId central_node() const override { return 0; }

  [[nodiscard]] std::string describe() const override;

  /// `level:id` label, e.g. `2:5`.
  [[nodiscard]] std::string node_label(NodeId u) const override;

 private:
  std::uint32_t branching_;
  std::uint32_t depth_;
  std::size_t size_;
  std::vector<NodeId> level_first_;  ///< first id of each level
};

}  // namespace proxcache
