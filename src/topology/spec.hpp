#pragma once
/// \file spec.hpp
/// Typed, open-ended description of a network topology: a registry name
/// plus a flat `key -> double` parameter map, mirroring the strategy spec
/// (strategy/spec.hpp) — same grammar (util/kvspec.hpp), same tolerance,
/// same canonical round-trip:
///
///     torus(side=64)      grid(side=64)       ring(n=4096)
///     tree(branching=4, depth=6)
///     rgg(n=4096, radius=0.03, seed=1)
///
/// Configs carry a TopologySpec, the TopologyRegistry validates it and
/// binds it to a factory, and CLIs round-trip it through `--topology`.
/// Standalone (no dependency on the registry or the simulator).

#include <map>
#include <string>
#include <string_view>

namespace proxcache {

/// A named topology with keyword parameters. Unset keys mean "registry
/// default"; the registry's per-topology parameter rules decide which keys
/// are legal and in what range.
struct TopologySpec {
  std::string name;                      ///< registry key, canonical lowercase
  std::map<std::string, double> params;  ///< explicit parameters only

  /// True when no topology is named (configs fall back to the legacy
  /// `num_nodes` + `wrap` knobs).
  [[nodiscard]] bool empty() const { return name.empty(); }

  [[nodiscard]] bool has(const std::string& key) const {
    return params.find(key) != params.end();
  }

  /// Parameter value, or `fallback` when the key is not set.
  [[nodiscard]] double get_or(const std::string& key, double fallback) const;

  /// Canonical spec string, e.g. `tree(branching=4, depth=6)`. Keys are
  /// emitted in sorted order.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// Parse a topology spec string. Tolerates surrounding/internal whitespace
/// and any letter case; throws std::invalid_argument with a message
/// pinpointing the offending token on malformed input.
[[nodiscard]] TopologySpec parse_topology_spec(std::string_view text);

}  // namespace proxcache
