#include "catalog/goodness.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/contracts.hpp"

namespace proxcache {

namespace {

GoodnessReport distinct_only_report(const Placement& placement) {
  GoodnessReport report;
  const std::size_t n = placement.num_nodes();
  report.min_distinct = placement.distinct_count(0);
  report.max_distinct = report.min_distinct;
  double total = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    const std::size_t t = placement.distinct_count(u);
    report.min_distinct = std::min(report.min_distinct, t);
    report.max_distinct = std::max(report.max_distinct, t);
    total += static_cast<double>(t);
  }
  report.mean_distinct = total / static_cast<double>(n);
  return report;
}

}  // namespace

std::vector<std::size_t> distinct_counts(const Placement& placement) {
  std::vector<std::size_t> counts(placement.num_nodes());
  for (NodeId u = 0; u < placement.num_nodes(); ++u) {
    counts[u] = placement.distinct_count(u);
  }
  return counts;
}

GoodnessReport goodness_census(const Placement& placement) {
  GoodnessReport report = distinct_only_report(placement);

  // t(u, v) aggregated via replica lists: each file j contributes +1 to
  // every pair of nodes in S_j.
  std::unordered_map<std::uint64_t, std::uint32_t> pair_overlap;
  for (FileId j = 0; j < placement.num_files(); ++j) {
    const auto list = placement.replicas(j);
    for (std::size_t a = 0; a < list.size(); ++a) {
      for (std::size_t b = a + 1; b < list.size(); ++b) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(list[a]) << 32) | list[b];
        ++pair_overlap[key];
      }
    }
  }
  report.pairs_examined = pair_overlap.size();
  for (const auto& [key, count] : pair_overlap) {
    (void)key;
    report.max_overlap =
        std::max<std::size_t>(report.max_overlap, count);
  }
  return report;
}

GoodnessReport goodness_census_sampled(const Placement& placement,
                                       std::size_t sample_pairs, Rng& rng) {
  PROXCACHE_REQUIRE(placement.num_nodes() >= 2,
                    "pair sampling needs >= 2 nodes");
  GoodnessReport report = distinct_only_report(placement);
  report.pairs_examined = sample_pairs;
  for (std::size_t i = 0; i < sample_pairs; ++i) {
    const auto [a, b] = rng.distinct_pair(placement.num_nodes());
    report.max_overlap = std::max(
        report.max_overlap, placement.overlap(static_cast<NodeId>(a),
                                              static_cast<NodeId>(b)));
  }
  return report;
}

}  // namespace proxcache
