#pragma once
/// \file cache_state.hpp
/// Mutable cache contents for the event-driven dynamic mode. `Placement`
/// (placement.hpp) is deliberately immutable — the batch simulator's seed
/// contract depends on it — so evolving runs copy it into a `CacheState`:
/// per-node sorted content lists plus the inverted per-file replica lists,
/// both kept consistent under `insert`/`erase`. Which file to evict is the
/// `CachePolicy`'s call (event/cache_policy.hpp); this class only tracks
/// *where files are now*, serving the engine's hit tests and the
/// nearest-current-replica fetch on a miss.
///
/// Per-node lists stay small (~capacity M), so membership is a binary
/// search and mutation is an O(M) vector splice; per-file replica lists
/// are sorted by node id for deterministic fetch scans.

#include <span>
#include <vector>

#include "catalog/placement.hpp"
#include "util/types.hpp"

namespace proxcache {

class CacheState {
 public:
  /// Copy `placement`'s contents as the initial state.
  explicit CacheState(const Placement& placement);

  [[nodiscard]] std::size_t num_nodes() const { return node_files_.size(); }
  [[nodiscard]] std::size_t num_files() const { return replicas_.size(); }

  /// True when node `u` currently holds file `j`.
  [[nodiscard]] bool caches(NodeId u, FileId j) const;

  /// Files currently at node `u`, ascending.
  [[nodiscard]] std::span<const FileId> files_of(NodeId u) const {
    return node_files_[u];
  }
  [[nodiscard]] std::size_t size(NodeId u) const {
    return node_files_[u].size();
  }

  /// Nodes currently holding file `j`, ascending.
  [[nodiscard]] std::span<const NodeId> replicas(FileId j) const {
    return replicas_[j];
  }
  [[nodiscard]] std::size_t replica_count(FileId j) const {
    return replicas_[j].size();
  }

  /// Add file `j` at node `u`; no-op when already present.
  void insert(NodeId u, FileId j);

  /// Remove file `j` from node `u`; no-op when absent.
  void erase(NodeId u, FileId j);

 private:
  std::vector<std::vector<FileId>> node_files_;
  std::vector<std::vector<NodeId>> replicas_;
};

}  // namespace proxcache
