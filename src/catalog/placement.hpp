#pragma once
/// \file placement.hpp
/// Cache content placement (paper §II-B).
///
/// In the paper's placement phase each of the `n` servers independently
/// caches `M` files drawn from the popularity law **with replacement**
/// ("proportional placement"); duplicates occupy slots but only the distinct
/// set matters for serving. This module materializes a placement as
///
///   * per-node sorted distinct file lists (CSR layout), and
///   * per-file replica lists `S_j` (the nodes that cached file j),
///
/// which are the two access paths everything else (nearest-replica search,
/// two-choice candidate sampling, configuration graph, goodness statistics)
/// is built on. A distinct-sampling mode is kept as an ablation of the
/// design decision called out in DESIGN.md.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "catalog/popularity.hpp"
#include "random/rng.hpp"
#include "util/types.hpp"

namespace proxcache {

/// How the M cache slots of a node are filled.
enum class PlacementMode : std::uint8_t {
  /// Paper default: M i.i.d. draws from P, duplicates allowed
  /// (so `t(u) = |distinct(u)| <= M`).
  ProportionalWithReplacement,
  /// Ablation: M *distinct* files per node, drawn popularity-biased without
  /// replacement (all K files if `M >= K`).
  DistinctProportional,
};

/// Parse "replacement" / "distinct"; throws std::invalid_argument.
PlacementMode placement_mode_from_string(const std::string& name);

/// Human-readable mode name.
std::string to_string(PlacementMode mode);

/// An immutable cache placement for `n` nodes over a `K`-file library.
class Placement {
 public:
  /// Sample a placement for `num_nodes` servers with `cache_size` slots per
  /// node. Deterministic given `rng` state.
  static Placement generate(std::size_t num_nodes,
                            const Popularity& popularity,
                            std::size_t cache_size, PlacementMode mode,
                            Rng& rng);

  /// Every node caches the whole `num_files` library — the placement of an
  /// origin tier (an origin *has* everything; nothing to sample).
  static Placement full(std::size_t num_nodes, std::size_t num_files,
                        PlacementMode mode);

  /// Concatenate per-tier placements into one placement over the composed
  /// node-id space: part `i`'s node `u` becomes global node
  /// `sum of earlier part sizes + u`. All parts must cover the same file
  /// library; replica lists merge in part order (bases ascend, so they
  /// stay sorted). `cache_size()` of the composition is the largest
  /// per-part capacity.
  static Placement compose(std::span<const Placement> parts);

  [[nodiscard]] std::size_t num_nodes() const {
    return node_offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t num_files() const { return replicas_.size(); }
  [[nodiscard]] std::size_t cache_size() const { return cache_size_; }
  [[nodiscard]] PlacementMode mode() const { return mode_; }

  /// Sorted distinct files cached at node `u`.
  [[nodiscard]] std::span<const FileId> files_of(NodeId u) const {
    return {node_files_.data() + node_offsets_[u],
            node_offsets_[u + 1] - node_offsets_[u]};
  }

  /// Number of distinct files cached at `u` (the paper's `t(u)`).
  [[nodiscard]] std::size_t distinct_count(NodeId u) const {
    return node_offsets_[u + 1] - node_offsets_[u];
  }

  /// True iff node `u` cached file `j` (binary search, O(log M)).
  [[nodiscard]] bool caches(NodeId u, FileId j) const;

  /// Sorted list of nodes that cached file `j` (the paper's `S_j`).
  [[nodiscard]] std::span<const NodeId> replicas(FileId j) const {
    return replicas_[j];
  }

  /// `|S_j|`.
  [[nodiscard]] std::size_t replica_count(FileId j) const {
    return replicas_[j].size();
  }

  /// Number of library files with at least one replica network-wide.
  [[nodiscard]] std::size_t files_with_replicas() const;

  /// Distinct-file overlap `t(u, v) = |T(u, v)|` between two nodes
  /// (paper Definition 4/5); O(M) merge of the sorted lists.
  [[nodiscard]] std::size_t overlap(NodeId u, NodeId v) const;

 private:
  Placement(std::vector<std::uint32_t> offsets, std::vector<FileId> files,
            std::vector<std::vector<NodeId>> replicas, std::size_t cache_size,
            PlacementMode mode)
      : node_offsets_(std::move(offsets)),
        node_files_(std::move(files)),
        replicas_(std::move(replicas)),
        cache_size_(cache_size),
        mode_(mode) {}

  std::vector<std::uint32_t> node_offsets_;  // CSR offsets, size n+1
  std::vector<FileId> node_files_;           // concatenated sorted lists
  std::vector<std::vector<NodeId>> replicas_;
  std::size_t cache_size_;
  PlacementMode mode_;
};

}  // namespace proxcache
