#pragma once
/// \file popularity.hpp
/// File library popularity profiles (paper §II-B).
///
/// Two families are modelled exactly as in the paper: Uniform
/// (`p_i = 1/K`) and Zipf with parameter γ (`p_i ∝ i^{-γ}`, rank 1 most
/// popular). Also provides the generalized harmonic number `Λ(γ)` and the
/// closed-form Theorem 3 communication-cost reference
/// `C = Σ_j p_j / √(1 - (1 - p_j)^M)` (paper Eq. 13–14) that the Figure 2
/// and Theorem 3 benches compare against.

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace proxcache {

/// Popularity family tag.
enum class PopularityKind : std::uint8_t { Uniform, Zipf };

/// An immutable popularity profile `P = {p_1, …, p_K}` over a K-file library.
class Popularity {
 public:
  /// Uniform profile: `p_i = 1/K`.
  static Popularity uniform(std::size_t num_files);

  /// Zipf profile with parameter `gamma >= 0`:
  /// `p_i = i^{-γ} / Λ(γ)` for rank `i = 1..K` (file id `i-1`).
  static Popularity zipf(std::size_t num_files, double gamma);

  /// Parse "uniform" or "zipf" (the latter uses the supplied gamma).
  static Popularity from_name(const std::string& name, std::size_t num_files,
                              double gamma);

  [[nodiscard]] PopularityKind kind() const { return kind_; }
  [[nodiscard]] std::size_t num_files() const { return pmf_.size(); }
  [[nodiscard]] double gamma() const { return gamma_; }

  /// Probability of file `j` (0-based id; Zipf rank is `j+1`).
  [[nodiscard]] double pmf(FileId j) const { return pmf_[j]; }

  /// The whole probability vector (sums to 1 up to rounding).
  [[nodiscard]] const std::vector<double>& pmf() const { return pmf_; }

  /// Short identifier for table headers, e.g. "uniform" / "zipf(0.8)".
  [[nodiscard]] std::string describe() const;

 private:
  Popularity(PopularityKind kind, std::vector<double> pmf, double gamma)
      : kind_(kind), pmf_(std::move(pmf)), gamma_(gamma) {}

  PopularityKind kind_;
  std::vector<double> pmf_;
  double gamma_;
};

/// Generalized harmonic number `Λ(γ) = Σ_{j=1..K} j^{-γ}` (paper Eq. 17).
double generalized_harmonic(std::size_t num_files, double gamma);

/// Closed-form per-request expected probe distance of the nearest-replica
/// strategy up to a constant factor (paper Eq. 13–14):
/// `C ≈ Σ_j p_j / √(1 - (1 - p_j)^M)`. Exact in K and M, Θ-accurate in
/// shape; benches normalize by one measured point before comparing.
double nearest_cost_reference(const Popularity& popularity,
                              std::size_t cache_size);

/// Finite-network variant of `nearest_cost_reference`: corrects Eq. 13–14
/// for a torus of `num_nodes` servers under the Resample missing-file
/// policy. Two corrections matter at skewed popularity: (i) a file absent
/// from the whole network (probability `(1-q_j)^n`) is resampled, so its
/// probability mass is redistributed over the *available* files; (ii) no
/// probe can exceed the mean network distance (≈ √n/2 on the torus).
/// Reduces to the plain reference as `n → ∞`.
double nearest_cost_reference_finite(const Popularity& popularity,
                                     std::size_t cache_size,
                                     std::size_t num_nodes);

/// Asymptotic exponent table of Theorem 3 for Zipf (`M = Θ(1)`): returns the
/// predicted growth of C as a *description string* used in bench output,
/// e.g. "Θ(sqrt(K/M))" for γ<1.
std::string theorem3_regime(double gamma);

}  // namespace proxcache
