#include "catalog/placement.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "random/alias_sampler.hpp"
#include "util/contracts.hpp"

namespace proxcache {

PlacementMode placement_mode_from_string(const std::string& name) {
  if (name == "replacement") return PlacementMode::ProportionalWithReplacement;
  if (name == "distinct") return PlacementMode::DistinctProportional;
  throw std::invalid_argument("unknown placement mode '" + name +
                              "' (expected 'replacement' or 'distinct')");
}

std::string to_string(PlacementMode mode) {
  return mode == PlacementMode::ProportionalWithReplacement ? "replacement"
                                                            : "distinct";
}

Placement Placement::generate(std::size_t num_nodes,
                              const Popularity& popularity,
                              std::size_t cache_size, PlacementMode mode,
                              Rng& rng) {
  PROXCACHE_REQUIRE(num_nodes >= 1, "placement needs >= 1 node");
  PROXCACHE_REQUIRE(cache_size >= 1, "cache size must be >= 1");
  const std::size_t num_files = popularity.num_files();
  const AliasSampler sampler(popularity.pmf());

  std::vector<std::uint32_t> offsets;
  offsets.reserve(num_nodes + 1);
  offsets.push_back(0);
  std::vector<FileId> files;
  files.reserve(num_nodes * std::min(cache_size, num_files));
  std::vector<std::vector<NodeId>> replicas(num_files);

  std::vector<FileId> scratch;
  scratch.reserve(cache_size);
  for (std::size_t u = 0; u < num_nodes; ++u) {
    scratch.clear();
    if (mode == PlacementMode::ProportionalWithReplacement) {
      for (std::size_t slot = 0; slot < cache_size; ++slot) {
        scratch.push_back(sampler.sample(rng));
      }
      std::sort(scratch.begin(), scratch.end());
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
    } else {
      if (cache_size >= num_files) {
        for (FileId j = 0; j < num_files; ++j) scratch.push_back(j);
      } else {
        // Popularity-biased sampling without replacement via the
        // Efraimidis–Spirakis one-pass method: key_i = u_i^(1/w_i), take
        // the M largest keys. O(K log M) regardless of skew (a rejection
        // loop would stall when M approaches K under heavy Zipf skew).
        // Min-heap of (key, file) keeps the current top-M.
        std::vector<std::pair<double, FileId>> heap;
        heap.reserve(cache_size + 1);
        for (FileId j = 0; j < num_files; ++j) {
          const double w = popularity.pmf(j);
          if (w <= 0.0) continue;
          const double key = std::pow(rng.uniform(), 1.0 / w);
          if (heap.size() < cache_size) {
            heap.emplace_back(key, j);
            std::push_heap(heap.begin(), heap.end(), std::greater<>{});
          } else if (key > heap.front().first) {
            std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
            heap.back() = {key, j};
            std::push_heap(heap.begin(), heap.end(), std::greater<>{});
          }
        }
        for (const auto& [key, j] : heap) scratch.push_back(j);
        std::sort(scratch.begin(), scratch.end());
      }
    }
    for (const FileId j : scratch) {
      files.push_back(j);
      replicas[j].push_back(static_cast<NodeId>(u));
    }
    offsets.push_back(static_cast<std::uint32_t>(files.size()));
  }
  // Replica lists are already sorted (nodes appended in increasing order).
  return Placement(std::move(offsets), std::move(files), std::move(replicas),
                   cache_size, mode);
}

Placement Placement::full(std::size_t num_nodes, std::size_t num_files,
                          PlacementMode mode) {
  PROXCACHE_REQUIRE(num_nodes >= 1, "placement needs >= 1 node");
  PROXCACHE_REQUIRE(num_files >= 1, "placement needs >= 1 file");
  std::vector<std::uint32_t> offsets;
  offsets.reserve(num_nodes + 1);
  offsets.push_back(0);
  std::vector<FileId> files;
  files.reserve(num_nodes * num_files);
  std::vector<std::vector<NodeId>> replicas(num_files);
  for (std::size_t u = 0; u < num_nodes; ++u) {
    for (FileId j = 0; j < num_files; ++j) {
      files.push_back(j);
      replicas[j].push_back(static_cast<NodeId>(u));
    }
    offsets.push_back(static_cast<std::uint32_t>(files.size()));
  }
  return Placement(std::move(offsets), std::move(files), std::move(replicas),
                   num_files, mode);
}

Placement Placement::compose(std::span<const Placement> parts) {
  PROXCACHE_REQUIRE(!parts.empty(), "compose needs >= 1 placement");
  const std::size_t num_files = parts.front().num_files();
  std::size_t total_nodes = 0;
  std::size_t total_entries = 0;
  std::size_t cache_size = 0;
  for (const Placement& part : parts) {
    PROXCACHE_REQUIRE(part.num_files() == num_files,
                      "composed placements must share one file library");
    total_nodes += part.num_nodes();
    total_entries += part.node_files_.size();
    cache_size = std::max(cache_size, part.cache_size());
  }

  std::vector<std::uint32_t> offsets;
  offsets.reserve(total_nodes + 1);
  offsets.push_back(0);
  std::vector<FileId> files;
  files.reserve(total_entries);
  std::vector<std::vector<NodeId>> replicas(num_files);

  std::uint32_t base = 0;
  for (const Placement& part : parts) {
    for (NodeId u = 0; u < part.num_nodes(); ++u) {
      for (const FileId j : part.files_of(u)) files.push_back(j);
      offsets.push_back(static_cast<std::uint32_t>(files.size()));
    }
    for (FileId j = 0; j < num_files; ++j) {
      for (const NodeId u : part.replicas(j)) {
        replicas[j].push_back(base + u);
      }
    }
    base += static_cast<std::uint32_t>(part.num_nodes());
  }
  return Placement(std::move(offsets), std::move(files), std::move(replicas),
                   cache_size, parts.front().mode());
}

bool Placement::caches(NodeId u, FileId j) const {
  const auto list = files_of(u);
  return std::binary_search(list.begin(), list.end(), j);
}

std::size_t Placement::files_with_replicas() const {
  std::size_t count = 0;
  for (const auto& list : replicas_) {
    if (!list.empty()) ++count;
  }
  return count;
}

std::size_t Placement::overlap(NodeId u, NodeId v) const {
  const auto a = files_of(u);
  const auto b = files_of(v);
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

}  // namespace proxcache
