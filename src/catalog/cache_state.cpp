#include "catalog/cache_state.hpp"

#include <algorithm>

namespace proxcache {

CacheState::CacheState(const Placement& placement)
    : node_files_(placement.num_nodes()), replicas_(placement.num_files()) {
  for (NodeId u = 0; u < placement.num_nodes(); ++u) {
    const auto files = placement.files_of(u);
    auto& mine = node_files_[u];
    mine.assign(files.begin(), files.end());
    // files_of spans are sorted with possible duplicates (multi-copy
    // placements); contents are distinct files.
    mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
    for (const FileId j : mine) replicas_[j].push_back(u);
  }
  // Nodes were visited in ascending id order, so replica lists are sorted.
}

bool CacheState::caches(NodeId u, FileId j) const {
  const auto& mine = node_files_[u];
  return std::binary_search(mine.begin(), mine.end(), j);
}

void CacheState::insert(NodeId u, FileId j) {
  auto& mine = node_files_[u];
  const auto it = std::lower_bound(mine.begin(), mine.end(), j);
  if (it != mine.end() && *it == j) return;
  mine.insert(it, j);
  auto& holders = replicas_[j];
  holders.insert(std::lower_bound(holders.begin(), holders.end(), u), u);
}

void CacheState::erase(NodeId u, FileId j) {
  auto& mine = node_files_[u];
  const auto it = std::lower_bound(mine.begin(), mine.end(), j);
  if (it == mine.end() || *it != j) return;
  mine.erase(it);
  auto& holders = replicas_[j];
  const auto hit = std::lower_bound(holders.begin(), holders.end(), u);
  if (hit != holders.end() && *hit == u) holders.erase(hit);
}

}  // namespace proxcache
