#pragma once
/// \file goodness.hpp
/// The paper's "goodness" property of a placement (Definition 5, Lemma 2).
///
/// A placement is `(δ, µ)`-good when every node holds at least `δ·M`
/// distinct files (`t(u) >= δM`) and every *pair* of nodes shares fewer than
/// `µ` files (`t(u,v) < µ`). Lemma 2 proves proportional placement is good
/// w.h.p. for `K = n`, `M = n^α`, `α < 1/2`; the goodness census here lets
/// tests and the Lemma 3 bench verify that concretely.

#include <cstddef>
#include <vector>

#include "catalog/placement.hpp"
#include "random/rng.hpp"

namespace proxcache {

/// Census of the goodness statistics of a placement.
struct GoodnessReport {
  std::size_t min_distinct = 0;   ///< min_u t(u)
  std::size_t max_distinct = 0;   ///< max_u t(u)
  double mean_distinct = 0.0;     ///< avg_u t(u)
  std::size_t max_overlap = 0;    ///< max_{u != v} t(u, v) over examined pairs
  std::size_t pairs_examined = 0; ///< how many (u, v) pairs were inspected

  /// Definition 5 check: `t(u) >= delta * M` for all u and
  /// `t(u,v) < mu` for all examined pairs.
  [[nodiscard]] bool is_good(double delta, std::size_t mu,
                             std::size_t cache_size) const {
    return static_cast<double>(min_distinct) >=
               delta * static_cast<double>(cache_size) &&
           max_overlap < mu;
  }
};

/// Exhaustive goodness census. Pair statistics are computed exactly via the
/// per-file replica lists in `O(Σ_j |S_j|²)`; callers should keep that below
/// ~10^8 (fine for the paper's simulation sizes).
GoodnessReport goodness_census(const Placement& placement);

/// Monte-Carlo goodness census: overlap statistics over `sample_pairs`
/// uniformly random node pairs (O(M) each). Distinct-count statistics are
/// always exact.
GoodnessReport goodness_census_sampled(const Placement& placement,
                                       std::size_t sample_pairs, Rng& rng);

/// The per-node distinct-count vector `t(·)` (exact).
std::vector<std::size_t> distinct_counts(const Placement& placement);

}  // namespace proxcache
