#include "catalog/popularity.hpp"

#include <cmath>
#include <sstream>

#include "util/contracts.hpp"

namespace proxcache {

Popularity Popularity::uniform(std::size_t num_files) {
  PROXCACHE_REQUIRE(num_files >= 1, "library needs >= 1 file");
  std::vector<double> pmf(num_files, 1.0 / static_cast<double>(num_files));
  return Popularity(PopularityKind::Uniform, std::move(pmf), 0.0);
}

Popularity Popularity::zipf(std::size_t num_files, double gamma) {
  PROXCACHE_REQUIRE(num_files >= 1, "library needs >= 1 file");
  PROXCACHE_REQUIRE(gamma >= 0.0, "zipf gamma must be >= 0");
  std::vector<double> pmf(num_files);
  double norm = 0.0;
  for (std::size_t j = 0; j < num_files; ++j) {
    pmf[j] = std::pow(static_cast<double>(j + 1), -gamma);
    norm += pmf[j];
  }
  for (double& p : pmf) p /= norm;
  return Popularity(PopularityKind::Zipf, std::move(pmf), gamma);
}

Popularity Popularity::from_name(const std::string& name,
                                 std::size_t num_files, double gamma) {
  if (name == "uniform") return uniform(num_files);
  if (name == "zipf") return zipf(num_files, gamma);
  throw std::invalid_argument("unknown popularity '" + name +
                              "' (expected 'uniform' or 'zipf')");
}

std::string Popularity::describe() const {
  if (kind_ == PopularityKind::Uniform) return "uniform";
  std::ostringstream os;
  os << "zipf(" << gamma_ << ")";
  return os.str();
}

double generalized_harmonic(std::size_t num_files, double gamma) {
  double total = 0.0;
  for (std::size_t j = 1; j <= num_files; ++j) {
    total += std::pow(static_cast<double>(j), -gamma);
  }
  return total;
}

double nearest_cost_reference(const Popularity& popularity,
                              std::size_t cache_size) {
  PROXCACHE_REQUIRE(cache_size >= 1, "cache size must be >= 1");
  double cost = 0.0;
  for (FileId j = 0; j < popularity.num_files(); ++j) {
    const double p = popularity.pmf(j);
    if (p <= 0.0) continue;
    // Probability a given node caches file j under proportional placement
    // with replacement of M slots: q_j = 1 - (1 - p_j)^M.
    const double q =
        1.0 - std::pow(1.0 - p, static_cast<double>(cache_size));
    cost += p / std::sqrt(q);
  }
  return cost;
}

double nearest_cost_reference_finite(const Popularity& popularity,
                                     std::size_t cache_size,
                                     std::size_t num_nodes) {
  PROXCACHE_REQUIRE(cache_size >= 1, "cache size must be >= 1");
  PROXCACHE_REQUIRE(num_nodes >= 1, "need >= 1 node");
  const double cap = std::sqrt(static_cast<double>(num_nodes)) / 2.0;
  double weighted_cost = 0.0;
  double weight = 0.0;
  for (FileId j = 0; j < popularity.num_files(); ++j) {
    const double p = popularity.pmf(j);
    if (p <= 0.0) continue;
    const double q =
        1.0 - std::pow(1.0 - p, static_cast<double>(cache_size));
    // Availability: at least one of the n nodes cached file j.
    const double available =
        1.0 - std::pow(1.0 - q, static_cast<double>(num_nodes));
    if (available <= 0.0) continue;
    const double distance = std::min(1.0 / std::sqrt(q), cap);
    weighted_cost += p * available * distance;
    weight += p * available;
  }
  PROXCACHE_REQUIRE(weight > 0.0, "no file is ever available");
  return weighted_cost / weight;
}

std::string theorem3_regime(double gamma) {
  if (gamma < 1.0) return "Theta(sqrt(K/M))";
  if (gamma == 1.0) return "Theta(sqrt(K/(M log K)))";
  if (gamma < 2.0) return "Theta(K^(1-gamma/2)/sqrt(M))";
  if (gamma == 2.0) return "Theta(log(K)/sqrt(M))";
  return "Theta(1/sqrt(M))";
}

}  // namespace proxcache
