#include "stats/windowed.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace proxcache {

WindowedCollector::WindowedCollector(double horizon, std::uint32_t windows) {
  PROXCACHE_REQUIRE(horizon > 0.0, "windowed collector needs horizon > 0");
  PROXCACHE_REQUIRE(windows >= 1, "windowed collector needs >= 1 window");
  width_ = horizon / windows;
  series_.resize(windows);
  sojourns_.resize(windows);
  for (std::uint32_t i = 0; i < windows; ++i) {
    series_[i].t_begin = i * width_;
    series_[i].t_end = (i + 1) * width_;
  }
  series_.back().t_end = horizon;
}

std::size_t WindowedCollector::index_of(double t) const {
  if (t <= 0.0) return 0;
  const auto i = static_cast<std::size_t>(t / width_);
  return std::min(i, series_.size() - 1);
}

void WindowedCollector::record_completion(double t, double sojourn) {
  const std::size_t i = index_of(t);
  ++series_[i].completed;
  sojourns_[i].push_back(sojourn);
}

double sample_quantile(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  const auto n = values.size();
  // Nearest-rank: the ceil(q*n)-th order statistic (1-based).
  auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::min(std::max<std::size_t>(rank, 1), n) - 1;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(rank),
                   values.end());
  return values[rank];
}

std::vector<WindowMetrics> WindowedCollector::finalize() const {
  std::vector<WindowMetrics> out = series_;
  for (std::size_t i = 0; i < out.size(); ++i) {
    WindowMetrics& w = out[i];
    const std::uint64_t lookups = w.hits + w.misses;
    w.hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(w.hits) / static_cast<double>(lookups);
    std::vector<double> samples = sojourns_[i];
    if (!samples.empty()) {
      double total = 0.0;
      for (const double s : samples) total += s;
      w.mean_sojourn = total / static_cast<double>(samples.size());
      w.p99_sojourn = sample_quantile(samples, 0.99);
    }
  }
  return out;
}

}  // namespace proxcache
