#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace proxcache {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const {
  PROXCACHE_REQUIRE(count_ > 0, "mean of empty summary");
  return mean_;
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::standard_error() const {
  if (count_ < 1) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double Summary::ci95_halfwidth() const { return 1.96 * standard_error(); }

double Summary::min() const {
  PROXCACHE_REQUIRE(count_ > 0, "min of empty summary");
  return min_;
}

double Summary::max() const {
  PROXCACHE_REQUIRE(count_ > 0, "max of empty summary");
  return max_;
}

Summary Summary::of(const std::vector<double>& values) {
  Summary s;
  for (const double v : values) s.add(v);
  return s;
}

}  // namespace proxcache
