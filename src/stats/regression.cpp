#include "stats/regression.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace proxcache {

LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  PROXCACHE_REQUIRE(xs.size() == ys.size(), "x/y size mismatch");
  PROXCACHE_REQUIRE(xs.size() >= 2, "need >= 2 points");
  const auto n = static_cast<double>(xs.size());
  double sum_x = 0.0;
  double sum_y = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum_x += xs[i];
    sum_y += ys[i];
  }
  const double mean_x = sum_x / n;
  const double mean_y = sum_y / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  PROXCACHE_REQUIRE(sxx > 0.0, "predictor is constant");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  if (syy == 0.0) {
    fit.r2 = 1.0;  // constant response fitted exactly by slope 0
  } else {
    double ssr = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double pred = fit.intercept + fit.slope * xs[i];
      const double resid = ys[i] - pred;
      ssr += resid * resid;
    }
    fit.r2 = 1.0 - ssr / syy;
  }
  return fit;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  PROXCACHE_REQUIRE(xs.size() == ys.size(), "x/y size mismatch");
  PROXCACHE_REQUIRE(xs.size() >= 2, "need >= 2 points");
  const auto n = static_cast<double>(xs.size());
  double sum_x = 0.0;
  double sum_y = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum_x += xs[i];
    sum_y += ys[i];
  }
  const double mean_x = sum_x / n;
  const double mean_y = sum_y / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace proxcache
