#pragma once
/// \file scaling.hpp
/// Growth-law classification for measured series.
///
/// The paper's claims are asymptotic orders — `Θ(log n)` for Strategy I
/// (Thm. 1), `Θ(log log n)` for Strategy II in the good regime (Thm. 4),
/// `Θ(√n)` communication cost without a proximity cap. The benches verify a
/// measured series `y(n)` against those shapes by regressing `y` on each
/// candidate transform of `n` and reporting the R² ranking.

#include <cstdint>
#include <string>
#include <vector>

#include "stats/regression.hpp"

namespace proxcache {

/// Candidate growth laws.
enum class GrowthLaw : std::uint8_t {
  Constant,        ///< y = c
  LogLog,          ///< y ~ log log n
  LogOverLogLog,   ///< y ~ log n / log log n
  Log,             ///< y ~ log n
  Sqrt,            ///< y ~ sqrt(n)
  Linear,          ///< y ~ n
};

/// Transform `n` by the given law (the regression predictor).
double growth_transform(GrowthLaw law, double n);

/// Human-readable law name, e.g. "log n / log log n".
std::string to_string(GrowthLaw law);

/// One candidate's fit quality.
struct GrowthFit {
  GrowthLaw law;
  LinearFit fit;
};

/// Classification of a series against all candidate laws.
struct ScalingReport {
  std::vector<GrowthFit> candidates;  ///< sorted by descending R²
  GrowthLaw best;                     ///< highest-R² candidate

  /// R² of a particular law (0 if absent).
  [[nodiscard]] double r2_of(GrowthLaw law) const;
};

/// Fit `ys(ns)` against every candidate law. `ns` must contain at least
/// three distinct values >= 3 (so log log is defined and non-constant).
/// `Constant` is scored by the R² of a slope-0 fit, i.e. 0 unless the series
/// is flat; it ranks top only when no law explains any variance better.
ScalingReport classify_growth(const std::vector<double>& ns,
                              const std::vector<double>& ys);

}  // namespace proxcache
