#include "stats/scaling.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace proxcache {

double growth_transform(GrowthLaw law, double n) {
  PROXCACHE_REQUIRE(n >= 3.0, "growth transforms need n >= 3");
  switch (law) {
    case GrowthLaw::Constant:
      return 1.0;
    case GrowthLaw::LogLog:
      return std::log(std::log(n));
    case GrowthLaw::LogOverLogLog:
      return std::log(n) / std::log(std::log(n));
    case GrowthLaw::Log:
      return std::log(n);
    case GrowthLaw::Sqrt:
      return std::sqrt(n);
    case GrowthLaw::Linear:
      return n;
  }
  return n;  // unreachable
}

std::string to_string(GrowthLaw law) {
  switch (law) {
    case GrowthLaw::Constant:
      return "constant";
    case GrowthLaw::LogLog:
      return "log log n";
    case GrowthLaw::LogOverLogLog:
      return "log n / log log n";
    case GrowthLaw::Log:
      return "log n";
    case GrowthLaw::Sqrt:
      return "sqrt(n)";
    case GrowthLaw::Linear:
      return "n";
  }
  return "?";  // unreachable
}

double ScalingReport::r2_of(GrowthLaw law) const {
  for (const auto& candidate : candidates) {
    if (candidate.law == law) return candidate.fit.r2;
  }
  return 0.0;
}

ScalingReport classify_growth(const std::vector<double>& ns,
                              const std::vector<double>& ys) {
  PROXCACHE_REQUIRE(ns.size() == ys.size(), "n/y size mismatch");
  PROXCACHE_REQUIRE(ns.size() >= 3, "need >= 3 points");
  for (const double n : ns) {
    PROXCACHE_REQUIRE(n >= 3.0, "need n >= 3 for log log");
  }

  ScalingReport report;
  // Constant goes first: a perfectly flat series fits every law with slope
  // zero (R² = 1 across the board), and the stable sort below must then
  // keep Constant on top.
  {
    double mean = 0.0;
    for (const double y : ys) mean += y;
    mean /= static_cast<double>(ys.size());
    double sst = 0.0;
    for (const double y : ys) sst += (y - mean) * (y - mean);
    LinearFit flat;
    flat.intercept = mean;
    flat.slope = 0.0;
    flat.r2 = sst == 0.0 ? 1.0 : 0.0;
    report.candidates.push_back({GrowthLaw::Constant, flat});
  }
  const GrowthLaw laws[] = {GrowthLaw::LogLog, GrowthLaw::LogOverLogLog,
                            GrowthLaw::Log, GrowthLaw::Sqrt,
                            GrowthLaw::Linear};
  for (const GrowthLaw law : laws) {
    std::vector<double> xs(ns.size());
    for (std::size_t i = 0; i < ns.size(); ++i) {
      xs[i] = growth_transform(law, ns[i]);
    }
    report.candidates.push_back({law, linear_fit(xs, ys)});
  }
  std::stable_sort(report.candidates.begin(), report.candidates.end(),
                   [](const GrowthFit& a, const GrowthFit& b) {
                     return a.fit.r2 > b.fit.r2;
                   });
  report.best = report.candidates.front().law;
  return report;
}

}  // namespace proxcache
