#pragma once
/// \file summary.hpp
/// Streaming descriptive statistics (Welford's online algorithm) for
/// aggregating Monte-Carlo replications: mean, unbiased variance, standard
/// error and a normal-approximation 95% confidence interval.

#include <cstddef>
#include <vector>

namespace proxcache {

/// Order-independent streaming summary of a real-valued sample.
class Summary {
 public:
  /// Add one observation.
  void add(double x);

  /// Merge another summary (parallel reduction; Chan et al. update).
  void merge(const Summary& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance (0 for fewer than 2 observations).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double standard_error() const;
  /// Half-width of the normal-approximation 95% CI (1.96 · SE).
  [[nodiscard]] double ci95_halfwidth() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Summarize a whole vector at once.
  static Summary of(const std::vector<double>& values);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace proxcache
