#pragma once
/// \file gof.hpp
/// Chi-square goodness-of-fit machinery, used by the statistical tests to
/// validate the alias sampler, placement marginals and request traces
/// against their target laws.

#include <cstdint>
#include <vector>

namespace proxcache {

/// Pearson chi-square statistic of observed counts against expected
/// probabilities (which must sum to ~1 and be positive wherever a count is).
double chi_square_statistic(const std::vector<std::uint64_t>& observed,
                            const std::vector<double>& expected_probs);

/// Upper regularized incomplete gamma Q(s, x) = Γ(s, x)/Γ(s), s > 0, x >= 0.
/// Series expansion for x < s+1, Lentz continued fraction otherwise
/// (both standard; accurate to ~1e-12 here).
double regularized_gamma_q(double s, double x);

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: P(X >= stat) = Q(dof/2, stat/2).
double chi_square_sf(double stat, std::size_t dof);

/// Convenience: chi-square GOF p-value of counts vs probabilities with
/// dof = (#categories − 1 − `extra_constraints`).
double chi_square_pvalue(const std::vector<std::uint64_t>& observed,
                         const std::vector<double>& expected_probs,
                         std::size_t extra_constraints = 0);

}  // namespace proxcache
