#pragma once
/// \file histogram.hpp
/// Dense integer histogram for load distributions (`#nodes with load = k`),
/// mergeable across Monte-Carlo replications.

#include <cstdint>
#include <vector>

namespace proxcache {

/// Counts of non-negative integer observations.
class Histogram {
 public:
  /// Record one observation of `value`.
  void add(std::uint64_t value, std::uint64_t count = 1);

  /// Merge another histogram into this one.
  void merge(const Histogram& other);

  /// Count at exactly `value`.
  [[nodiscard]] std::uint64_t at(std::uint64_t value) const;

  /// Largest observed value (0 for an empty histogram).
  [[nodiscard]] std::uint64_t max_value() const;

  /// Total number of observations.
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Fraction of observations with value >= threshold (tail mass).
  [[nodiscard]] double tail_fraction(std::uint64_t threshold) const;

  /// Smallest value v such that at least `q`·total observations are <= v.
  /// `q` in (0, 1]; empty histogram returns 0.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// Mean observation value.
  [[nodiscard]] double mean() const;

  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace proxcache
