#pragma once
/// \file regression.hpp
/// Ordinary least squares on one predictor, used by the scaling-law
/// classifier to test which growth function (`log n`, `log log n`, …) best
/// explains a measured max-load or cost series.

#include <vector>

namespace proxcache {

/// Result of fitting `y ≈ intercept + slope · x`.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0, 1]; 1 when the fit is exact.
  /// Defined as 1 - SSR/SST; if the response is constant (SST = 0) the fit
  /// is exact and r2 = 1.
  double r2 = 0.0;
};

/// OLS fit; `xs` and `ys` must have equal size >= 2 and `xs` must not be
/// constant.
LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Pearson correlation coefficient of two equal-length samples (>= 2).
/// Returns 0 when either sample is constant.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace proxcache
