#pragma once
/// \file fairness.hpp
/// Load-fairness indices complementing the paper's max-load metric.
///
/// The maximum load L is a worst-case statistic; systems papers often also
/// report Jain's fairness index `(Σx)² / (n·Σx²)` (1 = perfectly even,
/// 1/n = all load on one server) and the coefficient of variation. These
/// are cheap one-pass functions over a load vector, used by the examples
/// and available to downstream users.

#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Jain's fairness index of a non-negative load vector; 1 when all equal.
/// A zero vector is perfectly fair by convention (returns 1).
inline double jain_fairness_index(const std::vector<Load>& loads) {
  PROXCACHE_REQUIRE(!loads.empty(), "fairness of empty load vector");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const Load x : loads) {
    const auto v = static_cast<double>(x);
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(loads.size()) * sum_sq);
}

/// Coefficient of variation (population stddev / mean) of a load vector.
/// A zero-mean vector returns 0.
inline double load_cv(const std::vector<Load>& loads) {
  PROXCACHE_REQUIRE(!loads.empty(), "cv of empty load vector");
  double sum = 0.0;
  for (const Load x : loads) sum += static_cast<double>(x);
  const double mean = sum / static_cast<double>(loads.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (const Load x : loads) {
    const double d = static_cast<double>(x) - mean;
    var += d * d;
  }
  var /= static_cast<double>(loads.size());
  return std::sqrt(var) / mean;
}

}  // namespace proxcache
