#include "stats/gof.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace proxcache {

double chi_square_statistic(const std::vector<std::uint64_t>& observed,
                            const std::vector<double>& expected_probs) {
  PROXCACHE_REQUIRE(observed.size() == expected_probs.size(),
                    "category count mismatch");
  PROXCACHE_REQUIRE(!observed.empty(), "need >= 1 category");
  std::uint64_t total = 0;
  for (const std::uint64_t c : observed) total += c;
  PROXCACHE_REQUIRE(total > 0, "need >= 1 observation");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected =
        expected_probs[i] * static_cast<double>(total);
    if (expected <= 0.0) {
      PROXCACHE_REQUIRE(observed[i] == 0,
                        "observed count in zero-probability category");
      continue;
    }
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

namespace {

// Lower regularized incomplete gamma P(s, x) by series (x < s + 1).
double gamma_p_series(double s, double x) {
  double term = 1.0 / s;
  double sum = term;
  double a = s;
  for (int i = 0; i < 1000; ++i) {
    a += 1.0;
    term *= x / a;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + s * std::log(x) - std::lgamma(s));
}

// Upper regularized incomplete gamma Q(s, x) by Lentz's continued fraction
// (x >= s + 1).
double gamma_q_cf(double s, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - s;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - s);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + s * std::log(x) - std::lgamma(s));
}

}  // namespace

double regularized_gamma_q(double s, double x) {
  PROXCACHE_REQUIRE(s > 0.0, "gamma Q needs s > 0");
  PROXCACHE_REQUIRE(x >= 0.0, "gamma Q needs x >= 0");
  if (x == 0.0) return 1.0;
  if (x < s + 1.0) return 1.0 - gamma_p_series(s, x);
  return gamma_q_cf(s, x);
}

double chi_square_sf(double stat, std::size_t dof) {
  PROXCACHE_REQUIRE(dof >= 1, "chi-square needs dof >= 1");
  if (stat <= 0.0) return 1.0;
  return regularized_gamma_q(static_cast<double>(dof) / 2.0, stat / 2.0);
}

double chi_square_pvalue(const std::vector<std::uint64_t>& observed,
                         const std::vector<double>& expected_probs,
                         std::size_t extra_constraints) {
  const double stat = chi_square_statistic(observed, expected_probs);
  PROXCACHE_REQUIRE(observed.size() > 1 + extra_constraints,
                    "not enough categories for the requested constraints");
  const std::size_t dof = observed.size() - 1 - extra_constraints;
  return chi_square_sf(stat, dof);
}

}  // namespace proxcache
