#include "stats/histogram.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace proxcache {

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  counts_[value] += count;
  total_ += count;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t v = 0; v < other.counts_.size(); ++v) {
    counts_[v] += other.counts_[v];
  }
  total_ += other.total_;
}

std::uint64_t Histogram::at(std::uint64_t value) const {
  return value < counts_.size() ? counts_[value] : 0;
}

std::uint64_t Histogram::max_value() const {
  for (std::size_t v = counts_.size(); v-- > 0;) {
    if (counts_[v] > 0) return v;
  }
  return 0;
}

double Histogram::tail_fraction(std::uint64_t threshold) const {
  if (total_ == 0) return 0.0;
  std::uint64_t tail = 0;
  for (std::size_t v = threshold; v < counts_.size(); ++v) tail += counts_[v];
  return static_cast<double>(tail) / static_cast<double>(total_);
}

std::uint64_t Histogram::quantile(double q) const {
  PROXCACHE_REQUIRE(q > 0.0 && q <= 1.0, "quantile needs q in (0, 1]");
  if (total_ == 0) return 0;
  const double target = q * static_cast<double>(total_);
  std::uint64_t cumulative = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    cumulative += counts_[v];
    if (static_cast<double>(cumulative) >= target) return v;
  }
  return max_value();
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    sum += static_cast<double>(v) * static_cast<double>(counts_[v]);
  }
  return sum / static_cast<double>(total_);
}

}  // namespace proxcache
