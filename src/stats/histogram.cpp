#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace proxcache {

namespace {

/// Exact ceil(q * total) for q in (0, 1], total >= 1 — no floating-point
/// rounding anywhere. A binary double is exactly mant * 2^(exp-53) for a
/// 53-bit integer mant (frexp/ldexp recover both losslessly), so q * total
/// is exactly (mant * total) * 2^(exp-53): the 117-bit product fits
/// unsigned __int128 and the power of two is a shift, making the ceiling a
/// pure integer computation.
///
/// One wrinkle: the caller's q is only known to half an ulp. The nearest
/// double to 0.9 lies *above* 9/10, so a literal ceil of the stored value
/// would answer 10, not 9, for the 0.9-quantile of ten singletons. Products
/// within total * ulp(q)/2 of an integer therefore snap to that integer —
/// at that distance the integer is the intended product. In the integer
/// domain the tolerance is exactly total/2 product units, so the snap is
/// itself exact; it is skipped when total >= 2^shift (huge totals, where
/// the tolerance would span past the midpoint and q has no sub-integer
/// precision left anyway — pure ceil applies).
std::uint64_t ceil_fraction(double q, std::uint64_t total) {
  int exp = 0;
  const double frac = std::frexp(q, &exp);
  const auto mant = static_cast<unsigned __int128>(
      static_cast<std::uint64_t>(std::ldexp(frac, 53)));
  const int shift = 53 - exp;
  const unsigned __int128 product = mant * total;
  if (shift <= 0) {  // unreachable for q <= 1; kept for local soundness
    return static_cast<std::uint64_t>(product << -shift);
  }
  if (shift >= 127) {
    return 1;  // 0 < q * total < 1: the ceiling is the first count
  }
  const unsigned __int128 step = static_cast<unsigned __int128>(1) << shift;
  const unsigned __int128 floor_part = product >> shift;
  const unsigned __int128 rem = product & (step - 1);
  std::uint64_t target = static_cast<std::uint64_t>(floor_part);
  if (rem != 0 && !(total < step && 2 * rem <= total)) {
    ++target;  // plain ceil; the snap window covers the other branch
  }
  if (target == 0) target = 1;  // q > 0: at least the first count
  return std::min(target, total);
}

}  // namespace

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  counts_[value] += count;
  total_ += count;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t v = 0; v < other.counts_.size(); ++v) {
    counts_[v] += other.counts_[v];
  }
  total_ += other.total_;
}

std::uint64_t Histogram::at(std::uint64_t value) const {
  return value < counts_.size() ? counts_[value] : 0;
}

std::uint64_t Histogram::max_value() const {
  for (std::size_t v = counts_.size(); v-- > 0;) {
    if (counts_[v] > 0) return v;
  }
  return 0;
}

double Histogram::tail_fraction(std::uint64_t threshold) const {
  if (total_ == 0) return 0.0;
  std::uint64_t tail = 0;
  for (std::size_t v = threshold; v < counts_.size(); ++v) tail += counts_[v];
  return static_cast<double>(tail) / static_cast<double>(total_);
}

std::uint64_t Histogram::quantile(double q) const {
  PROXCACHE_REQUIRE(q > 0.0 && q <= 1.0, "quantile needs q in (0, 1]");
  if (total_ == 0) return 0;
  // The q-quantile is the smallest value whose cumulative count reaches
  // ceil(q * total). Computed exactly in integers: the old double
  // comparison mis-seated boundary quantiles (q * total carries rounding
  // error in either direction — 0.7 * 10 is not 7.0 in binary — and
  // casting cumulative to double loses exactness past 2^53).
  const std::uint64_t target = ceil_fraction(q, total_);
  std::uint64_t cumulative = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    cumulative += counts_[v];
    if (cumulative >= target) return v;
  }
  return max_value();
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    sum += static_cast<double>(v) * static_cast<double>(counts_[v]);
  }
  return sum / static_cast<double>(total_);
}

}  // namespace proxcache
