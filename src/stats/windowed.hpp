#pragma once
/// \file windowed.hpp
/// Time-windowed metric collection for the event-driven dynamic mode: the
/// horizon is cut into `windows` equal slices and every observation is
/// binned by its event time, so a flash-crowd pulse shows up as a hit-rate
/// dip / sojourn spike *in the windows it covers* instead of being averaged
/// away. Aggregates (overall p99, hit rate) are computed over the same
/// stream by the engine; this collector owns only the per-window series.
///
/// Sojourn quantiles keep the raw per-window samples until `finalize` —
/// dynamic runs are horizon-bounded, so the memory is proportional to the
/// completions of one run, not a streaming histogram's resolution trade.

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace proxcache {

/// One time slice of a dynamic run.
struct WindowMetrics {
  double t_begin = 0.0;
  double t_end = 0.0;
  std::uint64_t arrivals = 0;   ///< requests admitted in the window
  std::uint64_t completed = 0;  ///< service completions in the window
  std::uint64_t hits = 0;       ///< cache lookups served locally
  std::uint64_t misses = 0;     ///< lookups that fetched from a replica
  Load max_queue = 0;           ///< largest queue length observed on a push
  double hit_rate = 0.0;        ///< hits / (hits + misses); 0 when idle
  double mean_sojourn = 0.0;    ///< mean completion sojourn; 0 when idle
  double p99_sojourn = 0.0;     ///< p99 completion sojourn; 0 when idle
};

/// Bins observations into equal time windows over `[0, horizon]`.
class WindowedCollector {
 public:
  /// `horizon > 0`, `windows >= 1`. Times at or past the horizon clamp
  /// into the last window.
  WindowedCollector(double horizon, std::uint32_t windows);

  void record_arrival(double t) { ++slot(t).arrivals; }
  void record_lookup(double t, bool hit) {
    WindowMetrics& w = slot(t);
    ++(hit ? w.hits : w.misses);
  }
  void record_completion(double t, double sojourn);
  /// Observe a post-push queue length (per-window max load).
  void record_queue_peak(double t, Load length) {
    WindowMetrics& w = slot(t);
    if (length > w.max_queue) w.max_queue = length;
  }

  [[nodiscard]] std::uint32_t windows() const {
    return static_cast<std::uint32_t>(series_.size());
  }
  [[nodiscard]] double width() const { return width_; }

  /// Derive hit_rate / mean / p99 per window and return the series.
  [[nodiscard]] std::vector<WindowMetrics> finalize() const;

 private:
  WindowMetrics& slot(double t) { return series_[index_of(t)]; }
  [[nodiscard]] std::size_t index_of(double t) const;

  double width_;
  std::vector<WindowMetrics> series_;
  std::vector<std::vector<double>> sojourns_;  // per-window samples
};

/// Smallest sample at or above the q-quantile of `values` (nearest-rank);
/// 0 when empty. `values` is consumed (partially sorted in place).
[[nodiscard]] double sample_quantile(std::vector<double>& values, double q);

}  // namespace proxcache
