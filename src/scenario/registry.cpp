#include "scenario/registry.hpp"

#include <stdexcept>

namespace proxcache {

namespace {

ExperimentConfig workload_base() {
  ExperimentConfig config;
  config.num_nodes = 2025;
  config.num_files = 500;
  config.cache_size = 10;
  return config;
}

Scenario make(std::string name, std::string summary, ExperimentConfig config) {
  Scenario scenario;
  scenario.name = std::move(name);
  scenario.summary = std::move(summary);
  scenario.config = std::move(config);
  return scenario;
}

}  // namespace

ScenarioRegistry::ScenarioRegistry() {
  {
    ExperimentConfig config = workload_base();
    scenarios_.push_back(make(
        "baseline-uniform",
        "paper model: uniform origins, uniform catalog", config));
  }
  {
    ExperimentConfig config = workload_base();
    config.popularity.kind = PopularityKind::Zipf;
    config.popularity.gamma = 0.8;
    scenarios_.push_back(make(
        "baseline-zipf",
        "paper model with a Zipf(0.8) catalog (Remark 2)", config));
  }
  {
    ExperimentConfig config = workload_base();
    config.popularity.kind = PopularityKind::Zipf;
    config.popularity.gamma = 0.8;
    config.origins.kind = OriginKind::Hotspot;
    config.origins.hotspot_fraction = 0.6;
    config.origins.hotspot_radius = 4;
    scenarios_.push_back(make(
        "hotspot",
        "static hotspot: 60% of demand born in a radius-4 disc", config));
  }
  {
    ExperimentConfig config = workload_base();
    config.popularity.kind = PopularityKind::Zipf;
    config.popularity.gamma = 0.8;
    config.trace.kind = TraceKind::FlashCrowd;
    config.trace.flash_peak = 0.9;
    config.trace.flash_start = 0.25;
    config.trace.flash_end = 0.75;
    config.trace.flash_radius = 4;
    scenarios_.push_back(make(
        "flash-crowd",
        "demand pulse: in-disc fraction ramps 0 -> 0.9 -> 0 mid-trace",
        config));
  }
  {
    ExperimentConfig config = workload_base();
    config.popularity.kind = PopularityKind::Zipf;
    config.popularity.gamma = 0.8;
    config.trace.kind = TraceKind::Diurnal;
    config.trace.diurnal_amplitude = 0.4;
    config.trace.diurnal_cycles = 2;
    scenarios_.push_back(make(
        "diurnal",
        "Zipf exponent oscillates 0.8 +/- 0.4 over two cycles", config));
  }
  {
    ExperimentConfig config = workload_base();
    config.popularity.kind = PopularityKind::Zipf;
    config.popularity.gamma = 0.8;
    config.trace.kind = TraceKind::Churn;
    config.trace.churn_offline_fraction = 0.25;
    config.trace.churn_epochs = 8;
    scenarios_.push_back(make(
        "churn",
        "catalog churn: 25% of files offline, reshuffled over 8 epochs",
        config));
  }
  {
    ExperimentConfig config = workload_base();
    config.popularity.kind = PopularityKind::Zipf;
    config.popularity.gamma = 0.8;
    config.trace.kind = TraceKind::TemporalLocality;
    config.trace.locality_prob = 0.4;
    config.trace.locality_depth = 64;
    scenarios_.push_back(make(
        "temporal-locality",
        "40% of requests reuse one of the last 64 requested files", config));
  }
  {
    ExperimentConfig config = workload_base();
    config.popularity.kind = PopularityKind::Zipf;
    config.popularity.gamma = 0.8;
    config.trace.kind = TraceKind::Adversarial;
    config.trace.attack_fraction = 0.5;
    config.trace.attack_top_k = 4;
    scenarios_.push_back(make(
        "adversarial-topk",
        "adversary pins half the requests to the 4 hottest files", config));
  }
  for (const Scenario& scenario : scenarios_) {
    scenario.config.validate();
  }
}

const ScenarioRegistry& ScenarioRegistry::built_ins() {
  static const ScenarioRegistry registry;
  return registry;
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

const Scenario& ScenarioRegistry::at(const std::string& name) const {
  const Scenario* scenario = find(name);
  if (scenario == nullptr) {
    throw std::invalid_argument("unknown scenario '" + name +
                                "' (known: " + names() + ")");
  }
  return *scenario;
}

std::string ScenarioRegistry::names() const {
  std::string joined;
  for (const Scenario& scenario : scenarios_) {
    if (!joined.empty()) joined += ", ";
    joined += scenario.name;
  }
  return joined;
}

}  // namespace proxcache
