#pragma once
/// \file generators.hpp
/// The concrete trace processes behind `TraceSource`. Each one documents its
/// *declared marginal* — the distribution a long trace's origins/files must
/// match — which the statistical envelope tests (tests/test_scenario_stats)
/// verify by chi-square goodness of fit.

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/popularity.hpp"
#include "core/config.hpp"
#include "random/alias_sampler.hpp"
#include "scenario/trace_source.hpp"
#include "scenario/trace_spec.hpp"
#include "topology/topology.hpp"

namespace proxcache {

/// Samples request origins per an `OriginSpec`, reproducing the legacy
/// `generate_trace` draw order exactly: Uniform = one `below(n)` draw;
/// Hotspot = `bernoulli(fraction)`, then `below(|disc|)` or `below(n)`.
class OriginModel {
 public:
  /// Uniform origins over `num_nodes` servers.
  explicit OriginModel(std::size_t num_nodes);

  /// Origins per `spec` on `topology` (hotspot disc around
  /// `topology.central_node()`).
  OriginModel(const Topology& topology, const OriginSpec& spec);

  [[nodiscard]] NodeId sample(Rng& rng) const;

  /// The hotspot disc (empty for Uniform origins).
  [[nodiscard]] const std::vector<NodeId>& disc() const { return disc_; }

 private:
  std::size_t num_nodes_;
  double fraction_ = 0.0;
  std::vector<NodeId> disc_;
};

/// The paper's model (and the pre-scenario simulator): origin ~ OriginSpec,
/// file i.i.d. from a fixed popularity law. Declared marginals: the
/// OriginSpec mixture over nodes and `popularity.pmf()` over files.
class StaticTraceSource final : public TraceSource {
 public:
  StaticTraceSource(std::size_t num_nodes, const Popularity& popularity);
  StaticTraceSource(const Topology& topology, const OriginSpec& origins,
                    const Popularity& popularity);

  Request next(Rng& rng) override;
  [[nodiscard]] std::string describe() const override;

 private:
  OriginModel origins_;
  AliasSampler files_;
};

/// Flash crowd: a triangular pulse of spatially concentrated demand. The
/// in-disc probability rises linearly from 0 at `flash_start·m` to
/// `flash_peak` at the window midpoint, then falls back to 0 at
/// `flash_end·m`; outside the window origins are uniform. Files are i.i.d.
/// from the fixed popularity law. Declared origin marginal: node u gets
/// (1-F)/n + F·[u ∈ disc]/|disc| where F = mean of `pulse_fraction` over
/// the horizon (≈ flash_peak·(end-start)/2).
class FlashCrowdTraceSource final : public TraceSource {
 public:
  FlashCrowdTraceSource(const Topology& topology, const Popularity& popularity,
                        const TraceSpec& spec, std::size_t horizon);

  Request next(Rng& rng) override;
  [[nodiscard]] std::string describe() const override;

  /// In-disc probability at request index `t` (the triangular pulse).
  [[nodiscard]] double pulse_fraction(std::size_t t) const;

  /// Exact mean of `pulse_fraction` over the horizon.
  [[nodiscard]] double mean_pulse() const;

  [[nodiscard]] const std::vector<NodeId>& disc() const { return disc_; }

 private:
  std::size_t num_nodes_;
  std::vector<NodeId> disc_;
  AliasSampler files_;
  TraceSpec spec_;
  std::size_t horizon_;
  std::size_t clock_ = 0;
};

/// Diurnal popularity: the Zipf exponent oscillates over the trace,
/// gamma(t) = gamma + A·sin(2π·t·cycles/m), discretized into `kPhases`
/// buckets per cycle (one alias sampler each). Origins follow the supplied
/// OriginModel (so a static hotspot composes with the popularity cycle).
/// Declared file marginal: the bucket-occupancy-weighted mixture of the
/// per-bucket Zipf laws (`marginal_pmf`).
class DiurnalTraceSource final : public TraceSource {
 public:
  static constexpr std::uint32_t kPhases = 8;

  DiurnalTraceSource(OriginModel origins, const Popularity& popularity,
                     const TraceSpec& spec, std::size_t horizon);

  Request next(Rng& rng) override;
  [[nodiscard]] std::string describe() const override;

  /// Phase bucket of request index `t`, in [0, kPhases).
  [[nodiscard]] std::uint32_t phase_of(std::size_t t) const;

  /// Zipf exponent of phase bucket `phase`.
  [[nodiscard]] double phase_gamma(std::uint32_t phase) const;

  /// Exact file marginal of a `horizon`-length trace: the mixture of the
  /// per-phase pmfs weighted by how often each phase is visited.
  [[nodiscard]] std::vector<double> marginal_pmf() const;

 private:
  OriginModel origins_;
  double base_gamma_;
  std::vector<std::vector<double>> phase_pmfs_;
  std::vector<AliasSampler> phase_samplers_;
  TraceSpec spec_;
  std::size_t horizon_;
  std::size_t clock_ = 0;
};

/// Catalog churn: the trace is split into `churn_epochs` equal epochs; at
/// each epoch boundary a fresh uniform subset of
/// `floor(K·churn_offline_fraction)` files goes offline and requests for
/// them are redrawn (rejection against the fixed popularity law). Origins
/// follow the supplied OriginModel. Within an epoch the file marginal is
/// the popularity law conditioned on the online set. Caveat: the
/// offline-file invariant holds for the *generated* trace; the later
/// missing-file repair (`sanitize_trace`, core/request.hpp) redraws
/// zero-replica requests from the unconditioned base law — it repairs
/// placement gaps and knows nothing of the epoch clock, so a repaired
/// request may land on an offline-but-cached file.
class ChurnTraceSource final : public TraceSource {
 public:
  ChurnTraceSource(OriginModel origins, const Popularity& popularity,
                   const TraceSpec& spec, std::size_t horizon);

  Request next(Rng& rng) override;
  [[nodiscard]] std::string describe() const override;

  /// True if `file` is offline in the current epoch (tests observe this
  /// right after `next` to assert no offline file is ever requested).
  [[nodiscard]] bool is_offline(FileId file) const {
    return offline_[file];
  }

 private:
  void rotate_offline_set(Rng& rng);

  OriginModel origins_;
  AliasSampler files_;
  std::size_t num_files_;
  TraceSpec spec_;
  std::size_t epoch_length_;
  std::vector<bool> offline_;
  std::size_t offline_count_;
  std::size_t clock_ = 0;
};

/// Temporal locality: with probability `locality_prob` the request reuses a
/// uniformly chosen file from the last `locality_depth` requests (an
/// LRU-stack-correlated redraw); otherwise it draws fresh from the
/// popularity law. Origins follow the supplied OriginModel. The stationary
/// file marginal is the popularity law itself (reuse draws resample past
/// marginal draws), which the envelope test checks with a
/// correlation-tolerant threshold.
class TemporalLocalityTraceSource final : public TraceSource {
 public:
  TemporalLocalityTraceSource(OriginModel origins,
                              const Popularity& popularity,
                              const TraceSpec& spec);

  Request next(Rng& rng) override;
  [[nodiscard]] std::string describe() const override;

 private:
  OriginModel origins_;
  AliasSampler files_;
  TraceSpec spec_;
  std::vector<FileId> window_;  ///< ring buffer of recent files
  std::size_t filled_ = 0;
  std::size_t head_ = 0;
};

/// Adversarial hot keys: with probability `attack_fraction` the request
/// targets a uniform file among the `attack_top_k` most popular; otherwise
/// it draws from the popularity law. Origins follow the supplied
/// OriginModel. Declared file marginal: (1-a)·p_j + a·[j ∈ topk]/k.
class AdversarialTraceSource final : public TraceSource {
 public:
  AdversarialTraceSource(OriginModel origins, const Popularity& popularity,
                         const TraceSpec& spec);

  Request next(Rng& rng) override;
  [[nodiscard]] std::string describe() const override;

  /// The attacked file set (ids of the top-k most popular files).
  [[nodiscard]] const std::vector<FileId>& hot_set() const { return hot_; }

  /// Exact file marginal of the mixed process.
  [[nodiscard]] std::vector<double> marginal_pmf() const;

 private:
  OriginModel origins_;
  AliasSampler files_;
  std::vector<double> base_pmf_;
  TraceSpec spec_;
  std::vector<FileId> hot_;
};

}  // namespace proxcache
