#pragma once
/// \file trace_source.hpp
/// The workload-generation seam of the simulator: a `TraceSource` streams
/// one `Request` per call, drawing all randomness from the caller-supplied
/// trace-phase RNG (`derive_seed(config.seed, {run, kTrace})`), so a trace
/// is a pure function of (config, run_index) regardless of which process
/// produced it. `run_simulation` consumes a source instead of inlining
/// origin + file sampling; the paper's model is the `Static` source
/// (scenario/generators.hpp), which reproduces the legacy `generate_trace`
/// draw sequence bit-for-bit.
///
/// Sources declare marginals over the trace they *generate*. The
/// missing-file repair that follows (`sanitize_trace`, core/request.hpp)
/// is a placement-side fix: it redraws requests for zero-replica files
/// from the base popularity law, outside the trace process — a deliberate
/// trade to keep the seed contract (repair draws follow all generation
/// draws on one stream), at the cost of slightly diluting a dynamic
/// source's declared marginal when a placement leaves files uncached.

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/request.hpp"

namespace proxcache {

/// Streaming request generator. `next` is called once per request index in
/// order; implementations may keep internal clocks (request counters) but
/// must take all randomness from the passed `rng`.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produce the next request of the stream.
  virtual Request next(Rng& rng) = 0;

  /// One-line description for logs and tables.
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Drain `count` requests from `source` into a vector.
std::vector<Request> materialize(TraceSource& source, std::size_t count,
                                 Rng& rng);

/// Build the trace source described by `config.trace` (falling back to the
/// Static source over `config.origins` / `popularity`). `lattice` and
/// `popularity` must outlive the returned source. `horizon` is the number
/// of requests the run will draw — time-varying processes scale their
/// schedules (pulse window, cycles, epochs) to it.
std::unique_ptr<TraceSource> make_trace_source(const ExperimentConfig& config,
                                               const Lattice& lattice,
                                               const Popularity& popularity,
                                               std::size_t horizon);

}  // namespace proxcache
