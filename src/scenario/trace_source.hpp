#pragma once
/// \file trace_source.hpp
/// The workload-generation seam of the simulator: a `TraceSource` streams
/// one `Request` per call, drawing all randomness from the caller-supplied
/// trace-phase RNG (`derive_seed(config.seed, {run, kTrace})`), so a trace
/// is a pure function of (config, run_index) regardless of which process
/// produced it. `run_simulation` consumes a source instead of inlining
/// origin + file sampling; the paper's model is the `Static` source
/// (scenario/generators.hpp), which reproduces the legacy `generate_trace`
/// draw sequence bit-for-bit.
///
/// Sources declare marginals over the trace they *generate*. The
/// missing-file repair that follows (`sanitize_trace`, core/request.hpp)
/// is a placement-side fix: it redraws requests for zero-replica files
/// from the base popularity law, outside the trace process — a deliberate
/// trade to keep the seed contract (repair draws follow all generation
/// draws on one stream), at the cost of slightly diluting a dynamic
/// source's declared marginal when a placement leaves files uncached.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/request.hpp"
#include "random/alias_sampler.hpp"

namespace proxcache {

/// Streaming request generator. `next` is called once per request index in
/// order; implementations may keep internal clocks (request counters) but
/// must take all randomness from the passed `rng`.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produce the next request of the stream.
  virtual Request next(Rng& rng) = 0;

  /// One-line description for logs and tables.
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Drain `count` requests from `source` into a vector. Compatibility shim
/// for tests and offline trace inspection — the simulation loop streams
/// requests one at a time (`SimulationContext::run`) and never materializes
/// a trace.
std::vector<Request> materialize(TraceSource& source, std::size_t count,
                                 Rng& rng);

/// Streaming decorator over a `TraceSource`: applies the missing-file
/// policies of `sanitize_trace` (core/request.hpp) one request at a time,
/// so the trace never exists in memory. Draws up to `horizon` requests
/// from `inner`, and per request either passes it through (file cached),
/// redraws its file (Resample), silently skips it (Drop, counted), or
/// throws (Strict) — exactly the per-request behavior of the materialized
/// sanitize pass, in the same order.
///
/// Draw-order contract (bit-compatibility with the materialized pipeline):
/// generation draws come from the rng passed to `try_next`; Resample repair
/// draws come from the separate `repair_rng`. The materialized pipeline
/// drew all repairs *after* the full generation sequence on one stream, so
/// a caller that needs bit-identical results must position `repair_rng` at
/// that post-generation state (see `SimulationContext::run`, which advances
/// a scout copy only when the placement actually leaves files uncached —
/// otherwise no repair draw ever happens and the position is irrelevant).
class SanitizingTraceSource final : public TraceSource {
 public:
  /// `inner`, `placement`, `popularity`, and `repair_rng` must outlive this
  /// decorator.
  SanitizingTraceSource(TraceSource& inner, std::size_t horizon,
                        const Placement& placement,
                        const Popularity& popularity, MissingFilePolicy policy,
                        Rng& repair_rng);

  /// Produce the next admitted request, consuming inner requests (and
  /// skipping Drop-rejected ones) as needed. Returns false once all
  /// `horizon` inner requests are consumed.
  bool try_next(Rng& rng, Request& out);

  /// TraceSource conformance; throws std::invalid_argument when drained.
  Request next(Rng& rng) override;

  [[nodiscard]] std::string describe() const override;

  /// Repair/drop counters accumulated so far (totals once drained).
  [[nodiscard]] const SanitizeStats& stats() const { return stats_; }

  /// Inner requests consumed so far (admitted + dropped).
  [[nodiscard]] std::size_t consumed() const { return consumed_; }
  [[nodiscard]] bool exhausted() const { return consumed_ == horizon_; }

 private:
  TraceSource* inner_;
  std::size_t horizon_;
  std::size_t consumed_ = 0;
  const Placement* placement_;
  const Popularity* popularity_;
  MissingFilePolicy policy_;
  Rng* repair_rng_;
  bool any_cached_ = false;
  std::optional<AliasSampler> sampler_;  // built lazily on the first repair
  SanitizeStats stats_;
};

/// Build the trace source described by `config.trace` (falling back to the
/// Static source over `config.origins` / `popularity`). `topology` and
/// `popularity` must outlive the returned source. `horizon` is the number
/// of requests the run will draw — time-varying processes scale their
/// schedules (pulse window, cycles, epochs) to it.
std::unique_ptr<TraceSource> make_trace_source(const ExperimentConfig& config,
                                               const Topology& topology,
                                               const Popularity& popularity,
                                               std::size_t horizon);

}  // namespace proxcache
