#pragma once
/// \file trace_spec.hpp
/// Declarative description of a workload trace process. The paper's model
/// (uniform origins, static Uniform/Zipf catalog) is `TraceKind::Static`;
/// the other kinds open workloads the paper cannot express: time-varying
/// hotspots, popularity cycles, catalog churn, request locality, and
/// adversarial hot keys. A `TraceSpec` only carries knobs — the processes
/// themselves live in scenario/generators.hpp and are materialized per run
/// from the trace-phase RNG stream, so every scenario inherits the
/// simulator's determinism contract.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/types.hpp"

namespace proxcache {

/// Which trace process generates the request stream.
enum class TraceKind : std::uint8_t {
  Static,           ///< paper model: OriginSpec origins, fixed PopularitySpec
  FlashCrowd,       ///< triangular pulse of spatially concentrated demand
  Diurnal,          ///< Zipf exponent oscillates over the trace (day/night)
  Churn,            ///< files leave/rejoin the requestable catalog per epoch
  TemporalLocality, ///< LRU-stack-correlated redraws of recent files
  Adversarial,      ///< a fraction of requests hammers the top-k hot files
};

/// Human-readable kind name ("static", "flash-crowd", …).
inline const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::Static: return "static";
    case TraceKind::FlashCrowd: return "flash-crowd";
    case TraceKind::Diurnal: return "diurnal";
    case TraceKind::Churn: return "churn";
    case TraceKind::TemporalLocality: return "temporal-locality";
    case TraceKind::Adversarial: return "adversarial";
  }
  return "?";
}

/// Parse a kind name produced by `to_string`; throws std::invalid_argument.
inline TraceKind trace_kind_from_string(const std::string& name) {
  if (name == "static") return TraceKind::Static;
  if (name == "flash-crowd") return TraceKind::FlashCrowd;
  if (name == "diurnal") return TraceKind::Diurnal;
  if (name == "churn") return TraceKind::Churn;
  if (name == "temporal-locality") return TraceKind::TemporalLocality;
  if (name == "adversarial") return TraceKind::Adversarial;
  throw std::invalid_argument("unknown trace kind '" + name + "'");
}

/// Knobs of every trace process (only the active kind's block is read).
/// Time-varying processes are parameterized in *fractions of the trace
/// length*, so the same spec scales from test-sized to paper-sized runs.
struct TraceSpec {
  TraceKind kind = TraceKind::Static;

  // --- Timed arrivals (event-driven dynamic mode, event/engine.hpp). ---
  /// Per-node Poisson arrival rate λ: requests arrive network-wide at
  /// aggregate rate n·λ. Read only by the event engine — the batch
  /// simulator is untimed and ignores it. Must be > 0.
  double arrival_rate = 0.7;

  // --- FlashCrowd: hotspot demand ramps 0 → peak → 0 over a window. ---
  /// Fraction of requests born in the crowd disc at the pulse peak.
  double flash_peak = 0.9;
  /// Pulse window as fractions of the trace, 0 <= start < end <= 1.
  double flash_start = 0.25;
  double flash_end = 0.75;
  /// Crowd disc radius around the lattice center.
  Hop flash_radius = 4;

  // --- Diurnal: Zipf exponent gamma(t) = gamma + A sin(2π t·cycles/m). ---
  /// Oscillation amplitude A; requires gamma - A >= 0.
  double diurnal_amplitude = 0.4;
  /// Full day/night cycles per trace.
  std::uint32_t diurnal_cycles = 2;

  // --- Churn: per epoch, a fresh subset of files goes offline. ---
  /// Fraction of the library offline in any epoch, in [0, 1).
  double churn_offline_fraction = 0.25;
  /// Number of equal-length epochs per trace.
  std::uint32_t churn_epochs = 8;

  // --- TemporalLocality: redraw from the recent-request window. ---
  /// Probability a request reuses a recently requested file.
  double locality_prob = 0.3;
  /// Size of the recency window (LRU stack depth).
  std::uint32_t locality_depth = 64;

  // --- Adversarial: hammer the k most popular files. ---
  /// Fraction of requests the adversary redirects to the hot set.
  double attack_fraction = 0.5;
  /// Size of the hot set (top-k by popularity).
  std::uint32_t attack_top_k = 4;
};

}  // namespace proxcache
