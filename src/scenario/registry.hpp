#pragma once
/// \file registry.hpp
/// Named workload presets ("scenarios"): an `ExperimentConfig` with the
/// workload knobs (popularity, origins, trace process) filled in and the
/// strategy left at its default, so runners can sweep a scenario × strategy
/// matrix. The built-in registry covers the paper's baselines plus one
/// preset per trace process in scenario/generators.hpp.

#include <string>
#include <vector>

#include "core/config.hpp"

namespace proxcache {

/// One named workload preset.
struct Scenario {
  std::string name;     ///< registry key, e.g. "flash-crowd"
  std::string summary;  ///< one-line description for --list output
  ExperimentConfig config;
};

/// Immutable collection of named scenarios.
class ScenarioRegistry {
 public:
  /// The built-in presets (constructed once, validated).
  static const ScenarioRegistry& built_ins();

  /// All scenarios in registration order.
  [[nodiscard]] const std::vector<Scenario>& all() const { return scenarios_; }

  /// Scenario by name, or nullptr when absent.
  [[nodiscard]] const Scenario* find(const std::string& name) const;

  /// Scenario by name; throws std::invalid_argument listing the known
  /// names when absent.
  [[nodiscard]] const Scenario& at(const std::string& name) const;

  /// Comma-separated names (for error messages and --help).
  [[nodiscard]] std::string names() const;

 private:
  ScenarioRegistry();

  std::vector<Scenario> scenarios_;
};

}  // namespace proxcache
