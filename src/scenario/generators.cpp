#include "scenario/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "tier/tier_set.hpp"
#include "tier/tiered_topology.hpp"
#include "topology/shells.hpp"
#include "util/contracts.hpp"

namespace proxcache {

namespace {

/// Demand-disc anchor shared by the hotspot origin model and the
/// flash-crowd pulse. Flat topologies keep the historical single disc
/// around `central_node()` bit-exactly. On a tier hierarchy a single
/// global disc would be wrong twice over — `central_node()` is one front
/// cluster's center (the other edge PoPs would see no hotspot), and a
/// composed-metric ball leaks through the gateway into back-end/origin
/// nodes, which never originate requests — so the disc is anchored *per
/// front-end cluster*: the inner ball around each cluster's own center,
/// mapped to global ids.
std::vector<NodeId> anchor_disc(const Topology& topology, Hop radius) {
  const TieredTopology* tiered = topology.as_tiered();
  if (tiered == nullptr) {
    return collect_ball(topology, topology.central_node(), radius);
  }
  const TierLevel& front = tiered->tier_set().levels().front();
  const std::vector<NodeId> inner =
      collect_ball(*front.inner, front.inner->central_node(), radius);
  std::vector<NodeId> disc;
  disc.reserve(static_cast<std::size_t>(inner.size()) * front.clusters);
  for (std::uint32_t k = 0; k < front.clusters; ++k) {
    const NodeId cluster_base = front.base + k * front.cluster_nodes;
    for (const NodeId v : inner) disc.push_back(cluster_base + v);
  }
  return disc;
}

}  // namespace

// ---------------------------------------------------------------------------
// OriginModel
// ---------------------------------------------------------------------------

OriginModel::OriginModel(std::size_t num_nodes) : num_nodes_(num_nodes) {
  PROXCACHE_REQUIRE(num_nodes >= 1, "need >= 1 node");
}

OriginModel::OriginModel(const Topology& topology, const OriginSpec& spec)
    : num_nodes_(topology.origin_universe()) {
  if (spec.kind == OriginKind::Uniform) return;
  PROXCACHE_REQUIRE(
      spec.hotspot_fraction >= 0.0 && spec.hotspot_fraction <= 1.0,
      "hotspot fraction must be in [0, 1]");
  fraction_ = spec.hotspot_fraction;
  disc_ = anchor_disc(topology, spec.hotspot_radius);
}

NodeId OriginModel::sample(Rng& rng) const {
  if (disc_.empty()) {
    return static_cast<NodeId>(rng.below(num_nodes_));
  }
  if (rng.bernoulli(fraction_)) {
    return disc_[rng.below(disc_.size())];
  }
  return static_cast<NodeId>(rng.below(num_nodes_));
}

// ---------------------------------------------------------------------------
// StaticTraceSource
// ---------------------------------------------------------------------------

StaticTraceSource::StaticTraceSource(std::size_t num_nodes,
                                     const Popularity& popularity)
    : origins_(num_nodes), files_(popularity.pmf()) {}

StaticTraceSource::StaticTraceSource(const Topology& topology,
                                     const OriginSpec& origins,
                                     const Popularity& popularity)
    : origins_(topology, origins), files_(popularity.pmf()) {}

Request StaticTraceSource::next(Rng& rng) {
  Request request;
  request.origin = origins_.sample(rng);
  request.file = files_.sample(rng);
  return request;
}

std::string StaticTraceSource::describe() const {
  return origins_.disc().empty() ? "static" : "static(hotspot origins)";
}

// ---------------------------------------------------------------------------
// FlashCrowdTraceSource
// ---------------------------------------------------------------------------

FlashCrowdTraceSource::FlashCrowdTraceSource(const Topology& topology,
                                             const Popularity& popularity,
                                             const TraceSpec& spec,
                                             std::size_t horizon)
    : num_nodes_(topology.origin_universe()),
      files_(popularity.pmf()),
      spec_(spec),
      horizon_(horizon) {
  PROXCACHE_REQUIRE(horizon >= 1, "need >= 1 request");
  disc_ = anchor_disc(topology, spec.flash_radius);
}

double FlashCrowdTraceSource::pulse_fraction(std::size_t t) const {
  const auto m = static_cast<double>(horizon_);
  const double start = spec_.flash_start * m;
  const double end = spec_.flash_end * m;
  const double mid = 0.5 * (start + end);
  const auto x = static_cast<double>(t);
  if (x < start || x >= end || end <= start) return 0.0;
  if (x < mid) return spec_.flash_peak * (x - start) / (mid - start);
  return spec_.flash_peak * (end - x) / (end - mid);
}

double FlashCrowdTraceSource::mean_pulse() const {
  double sum = 0.0;
  for (std::size_t t = 0; t < horizon_; ++t) sum += pulse_fraction(t);
  return sum / static_cast<double>(horizon_);
}

Request FlashCrowdTraceSource::next(Rng& rng) {
  const double p = pulse_fraction(clock_++);
  Request request;
  if (rng.bernoulli(p)) {
    request.origin = disc_[rng.below(disc_.size())];
  } else {
    request.origin = static_cast<NodeId>(rng.below(num_nodes_));
  }
  request.file = files_.sample(rng);
  return request;
}

std::string FlashCrowdTraceSource::describe() const {
  std::ostringstream os;
  os << "flash-crowd(peak=" << spec_.flash_peak << " window=["
     << spec_.flash_start << "," << spec_.flash_end
     << "] r=" << spec_.flash_radius << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// DiurnalTraceSource
// ---------------------------------------------------------------------------

DiurnalTraceSource::DiurnalTraceSource(OriginModel origins,
                                       const Popularity& popularity,
                                       const TraceSpec& spec,
                                       std::size_t horizon)
    : origins_(std::move(origins)),
      base_gamma_(popularity.gamma()),
      spec_(spec),
      horizon_(horizon) {
  PROXCACHE_REQUIRE(horizon >= 1, "need >= 1 request");
  PROXCACHE_REQUIRE(popularity.gamma() - spec.diurnal_amplitude >= 0.0,
                    "diurnal amplitude must not push gamma below 0");
  const std::size_t num_files = popularity.num_files();
  phase_pmfs_.reserve(kPhases);
  phase_samplers_.reserve(kPhases);
  for (std::uint32_t b = 0; b < kPhases; ++b) {
    const Popularity phase_pop = Popularity::zipf(num_files, phase_gamma(b));
    phase_pmfs_.push_back(phase_pop.pmf());
    phase_samplers_.emplace_back(phase_pop.pmf());
  }
}

std::uint32_t DiurnalTraceSource::phase_of(std::size_t t) const {
  const double cycle_pos =
      std::fmod(static_cast<double>(t) *
                    static_cast<double>(spec_.diurnal_cycles) /
                    static_cast<double>(horizon_),
                1.0);
  const auto phase = static_cast<std::uint32_t>(
      cycle_pos * static_cast<double>(kPhases));
  return std::min(phase, kPhases - 1);
}

double DiurnalTraceSource::phase_gamma(std::uint32_t phase) const {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double angle = kTwoPi * (static_cast<double>(phase) + 0.5) /
                       static_cast<double>(kPhases);
  return base_gamma_ + spec_.diurnal_amplitude * std::sin(angle);
}

std::vector<double> DiurnalTraceSource::marginal_pmf() const {
  std::vector<std::size_t> occupancy(kPhases, 0);
  for (std::size_t t = 0; t < horizon_; ++t) ++occupancy[phase_of(t)];
  std::vector<double> marginal(phase_pmfs_[0].size(), 0.0);
  for (std::uint32_t b = 0; b < kPhases; ++b) {
    const double weight = static_cast<double>(occupancy[b]) /
                          static_cast<double>(horizon_);
    for (std::size_t j = 0; j < marginal.size(); ++j) {
      marginal[j] += weight * phase_pmfs_[b][j];
    }
  }
  return marginal;
}

Request DiurnalTraceSource::next(Rng& rng) {
  Request request;
  request.origin = origins_.sample(rng);
  request.file = phase_samplers_[phase_of(clock_++)].sample(rng);
  return request;
}

std::string DiurnalTraceSource::describe() const {
  std::ostringstream os;
  os << "diurnal(A=" << spec_.diurnal_amplitude
     << " cycles=" << spec_.diurnal_cycles << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// ChurnTraceSource
// ---------------------------------------------------------------------------

ChurnTraceSource::ChurnTraceSource(OriginModel origins,
                                   const Popularity& popularity,
                                   const TraceSpec& spec, std::size_t horizon)
    : origins_(std::move(origins)),
      files_(popularity.pmf()),
      num_files_(popularity.num_files()),
      spec_(spec),
      offline_(popularity.num_files(), false) {
  PROXCACHE_REQUIRE(horizon >= 1, "need >= 1 request");
  PROXCACHE_REQUIRE(
      spec.churn_offline_fraction >= 0.0 && spec.churn_offline_fraction < 1.0,
      "churn offline fraction must be in [0, 1)");
  PROXCACHE_REQUIRE(spec.churn_epochs >= 1, "need >= 1 churn epoch");
  epoch_length_ = std::max<std::size_t>(
      1, (horizon + spec.churn_epochs - 1) / spec.churn_epochs);
  offline_count_ = static_cast<std::size_t>(
      spec.churn_offline_fraction * static_cast<double>(num_files_));
}

void ChurnTraceSource::rotate_offline_set(Rng& rng) {
  std::fill(offline_.begin(), offline_.end(), false);
  // Partial Fisher-Yates over file ids: the first `offline_count_` positions
  // of a fresh permutation form a uniform subset.
  std::vector<FileId> ids(num_files_);
  std::iota(ids.begin(), ids.end(), FileId{0});
  for (std::size_t i = 0; i < offline_count_; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(
                                  rng.below(num_files_ - i));
    std::swap(ids[i], ids[j]);
    offline_[ids[i]] = true;
  }
}

Request ChurnTraceSource::next(Rng& rng) {
  if (clock_ % epoch_length_ == 0) rotate_offline_set(rng);
  ++clock_;
  Request request;
  request.origin = origins_.sample(rng);
  do {
    request.file = files_.sample(rng);
  } while (offline_[request.file]);
  return request;
}

std::string ChurnTraceSource::describe() const {
  std::ostringstream os;
  os << "churn(offline=" << spec_.churn_offline_fraction
     << " epochs=" << spec_.churn_epochs << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// TemporalLocalityTraceSource
// ---------------------------------------------------------------------------

TemporalLocalityTraceSource::TemporalLocalityTraceSource(
    OriginModel origins, const Popularity& popularity, const TraceSpec& spec)
    : origins_(std::move(origins)),
      files_(popularity.pmf()),
      spec_(spec),
      window_(spec.locality_depth, 0) {
  PROXCACHE_REQUIRE(spec.locality_depth >= 1, "locality depth must be >= 1");
  PROXCACHE_REQUIRE(spec.locality_prob >= 0.0 && spec.locality_prob <= 1.0,
                    "locality probability must be in [0, 1]");
}

Request TemporalLocalityTraceSource::next(Rng& rng) {
  Request request;
  request.origin = origins_.sample(rng);
  const bool reuse = rng.bernoulli(spec_.locality_prob);
  if (reuse && filled_ > 0) {
    request.file = window_[rng.below(filled_)];
  } else {
    request.file = files_.sample(rng);
  }
  window_[head_] = request.file;
  head_ = (head_ + 1) % window_.size();
  filled_ = std::min(filled_ + 1, window_.size());
  return request;
}

std::string TemporalLocalityTraceSource::describe() const {
  std::ostringstream os;
  os << "temporal-locality(p=" << spec_.locality_prob
     << " depth=" << spec_.locality_depth << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// AdversarialTraceSource
// ---------------------------------------------------------------------------

AdversarialTraceSource::AdversarialTraceSource(OriginModel origins,
                                               const Popularity& popularity,
                                               const TraceSpec& spec)
    : origins_(std::move(origins)),
      files_(popularity.pmf()),
      base_pmf_(popularity.pmf()),
      spec_(spec) {
  PROXCACHE_REQUIRE(spec.attack_fraction >= 0.0 && spec.attack_fraction <= 1.0,
                    "attack fraction must be in [0, 1]");
  PROXCACHE_REQUIRE(
      spec.attack_top_k >= 1 && spec.attack_top_k <= popularity.num_files(),
      "attack top-k must be in [1, K]");
  std::vector<FileId> ids(popularity.num_files());
  std::iota(ids.begin(), ids.end(), FileId{0});
  std::stable_sort(ids.begin(), ids.end(), [&](FileId a, FileId b) {
    return base_pmf_[a] > base_pmf_[b];
  });
  hot_.assign(ids.begin(), ids.begin() + spec.attack_top_k);
}

std::vector<double> AdversarialTraceSource::marginal_pmf() const {
  const double a = spec_.attack_fraction;
  std::vector<double> marginal(base_pmf_.size());
  for (std::size_t j = 0; j < marginal.size(); ++j) {
    marginal[j] = (1.0 - a) * base_pmf_[j];
  }
  for (const FileId j : hot_) {
    marginal[j] += a / static_cast<double>(hot_.size());
  }
  return marginal;
}

Request AdversarialTraceSource::next(Rng& rng) {
  Request request;
  request.origin = origins_.sample(rng);
  if (rng.bernoulli(spec_.attack_fraction)) {
    request.file = hot_[rng.below(hot_.size())];
  } else {
    request.file = files_.sample(rng);
  }
  return request;
}

std::string AdversarialTraceSource::describe() const {
  std::ostringstream os;
  os << "adversarial(a=" << spec_.attack_fraction
     << " top-k=" << spec_.attack_top_k << ")";
  return os.str();
}

}  // namespace proxcache
