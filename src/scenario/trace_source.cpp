#include "scenario/trace_source.hpp"

#include <stdexcept>
#include <utility>

#include "scenario/generators.hpp"
#include "util/contracts.hpp"

namespace proxcache {

std::vector<Request> materialize(TraceSource& source, std::size_t count,
                                 Rng& rng) {
  std::vector<Request> trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace.push_back(source.next(rng));
  }
  return trace;
}

SanitizingTraceSource::SanitizingTraceSource(TraceSource& inner,
                                             std::size_t horizon,
                                             const Placement& placement,
                                             const Popularity& popularity,
                                             MissingFilePolicy policy,
                                             Rng& repair_rng)
    : inner_(&inner),
      horizon_(horizon),
      placement_(&placement),
      popularity_(&popularity),
      policy_(policy),
      repair_rng_(&repair_rng),
      any_cached_(placement.files_with_replicas() > 0) {}

bool SanitizingTraceSource::try_next(Rng& rng, Request& out) {
  while (consumed_ < horizon_) {
    Request request = inner_->next(rng);
    ++consumed_;
    if (placement_->replica_count(request.file) > 0) {
      out = request;
      return true;
    }
    switch (policy_) {
      case MissingFilePolicy::Strict:
        throw std::runtime_error(
            "request for uncached file " + std::to_string(request.file) +
            " under Strict missing-file policy");
      case MissingFilePolicy::Drop:
        ++stats_.dropped;
        continue;
      case MissingFilePolicy::Resample: {
        // Redraw from P restricted to cached files via rejection; guard the
        // empty-support pathology first.
        PROXCACHE_REQUIRE(any_cached_,
                          "no file has any replica; cannot resample trace");
        if (!sampler_) sampler_.emplace(popularity_->pmf());
        ++stats_.resampled;
        do {
          request.file = sampler_->sample(*repair_rng_);
        } while (placement_->replica_count(request.file) == 0);
        out = request;
        return true;
      }
    }
  }
  return false;
}

Request SanitizingTraceSource::next(Rng& rng) {
  Request request;
  const bool available = try_next(rng, request);
  PROXCACHE_REQUIRE(available, "sanitizing trace source exhausted");
  return request;
}

std::string SanitizingTraceSource::describe() const {
  const char* policy = policy_ == MissingFilePolicy::Resample ? "resample"
                       : policy_ == MissingFilePolicy::Drop   ? "drop"
                                                              : "strict";
  return inner_->describe() + " | sanitize(" + policy + ")";
}

std::unique_ptr<TraceSource> make_trace_source(const ExperimentConfig& config,
                                               const Topology& topology,
                                               const Popularity& popularity,
                                               std::size_t horizon) {
  const TraceSpec& spec = config.trace;
  switch (spec.kind) {
    case TraceKind::Static:
      return std::make_unique<StaticTraceSource>(topology, config.origins,
                                                 popularity);
    case TraceKind::FlashCrowd:
      // FlashCrowd defines its own (time-varying) origin process;
      // validate() rejects non-uniform OriginSpec for this kind.
      return std::make_unique<FlashCrowdTraceSource>(topology, popularity,
                                                     spec, horizon);
    case TraceKind::Diurnal:
      return std::make_unique<DiurnalTraceSource>(
          OriginModel(topology, config.origins), popularity, spec, horizon);
    case TraceKind::Churn:
      return std::make_unique<ChurnTraceSource>(
          OriginModel(topology, config.origins), popularity, spec, horizon);
    case TraceKind::TemporalLocality:
      return std::make_unique<TemporalLocalityTraceSource>(
          OriginModel(topology, config.origins), popularity, spec);
    case TraceKind::Adversarial:
      return std::make_unique<AdversarialTraceSource>(
          OriginModel(topology, config.origins), popularity, spec);
  }
  throw std::logic_error("unhandled TraceKind");
}

}  // namespace proxcache
