#include "scenario/trace_source.hpp"

#include <stdexcept>
#include <utility>

#include "scenario/generators.hpp"

namespace proxcache {

std::vector<Request> materialize(TraceSource& source, std::size_t count,
                                 Rng& rng) {
  std::vector<Request> trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace.push_back(source.next(rng));
  }
  return trace;
}

std::unique_ptr<TraceSource> make_trace_source(const ExperimentConfig& config,
                                               const Lattice& lattice,
                                               const Popularity& popularity,
                                               std::size_t horizon) {
  const TraceSpec& spec = config.trace;
  switch (spec.kind) {
    case TraceKind::Static:
      return std::make_unique<StaticTraceSource>(lattice, config.origins,
                                                 popularity);
    case TraceKind::FlashCrowd:
      // FlashCrowd defines its own (time-varying) origin process;
      // validate() rejects non-uniform OriginSpec for this kind.
      return std::make_unique<FlashCrowdTraceSource>(lattice, popularity,
                                                     spec, horizon);
    case TraceKind::Diurnal:
      return std::make_unique<DiurnalTraceSource>(
          OriginModel(lattice, config.origins), popularity, spec, horizon);
    case TraceKind::Churn:
      return std::make_unique<ChurnTraceSource>(
          OriginModel(lattice, config.origins), popularity, spec, horizon);
    case TraceKind::TemporalLocality:
      return std::make_unique<TemporalLocalityTraceSource>(
          OriginModel(lattice, config.origins), popularity, spec);
    case TraceKind::Adversarial:
      return std::make_unique<AdversarialTraceSource>(
          OriginModel(lattice, config.origins), popularity, spec);
  }
  throw std::logic_error("unhandled TraceKind");
}

}  // namespace proxcache
