#pragma once
/// \file seeding.hpp
/// Hierarchical deterministic seed derivation.
///
/// Every experiment is reproducible from one root seed. Sub-streams (per
/// replication, per phase) are derived by hashing the root with a path of
/// integer ids, so results do not depend on execution order or thread count.

#include <cstdint>
#include <initializer_list>

#include "random/splitmix64.hpp"

namespace proxcache {

/// Derive a child seed from `root` and a path of ids, e.g.
/// `derive_seed(root, {run_index, kPlacementPhase})`.
inline std::uint64_t derive_seed(std::uint64_t root,
                                 std::initializer_list<std::uint64_t> path) {
  std::uint64_t h = rng::mix64(root ^ 0x5851F42D4C957F2DULL);
  for (const std::uint64_t id : path) {
    h = rng::mix64(h ^ rng::mix64(id + 0x14057B7EF767814FULL));
  }
  return h;
}

/// Well-known phase ids so placement / trace / strategy randomness stay
/// decoupled (changing one phase's draw count never shifts another's).
namespace seed_phase {
inline constexpr std::uint64_t kPlacement = 1;
inline constexpr std::uint64_t kTrace = 2;
inline constexpr std::uint64_t kStrategy = 3;
inline constexpr std::uint64_t kQueueing = 4;
}  // namespace seed_phase

}  // namespace proxcache
