#pragma once
/// \file seeding.hpp
/// Hierarchical deterministic seed derivation.
///
/// Every experiment is reproducible from one root seed. Sub-streams (per
/// replication, per phase) are derived by hashing the root with a path of
/// integer ids, so results do not depend on execution order or thread count.

#include <cstdint>
#include <initializer_list>

#include "random/splitmix64.hpp"

namespace proxcache {

/// Derive a child seed from `root` and a path of ids, e.g.
/// `derive_seed(root, {run_index, kPlacementPhase})`.
inline std::uint64_t derive_seed(std::uint64_t root,
                                 std::initializer_list<std::uint64_t> path) {
  std::uint64_t h = rng::mix64(root ^ 0x5851F42D4C957F2DULL);
  for (const std::uint64_t id : path) {
    h = rng::mix64(h ^ rng::mix64(id + 0x14057B7EF767814FULL));
  }
  return h;
}

/// Batched derivation, split at the last path element: `derive_seed(root,
/// {a, b, c})` == `derive_seed_leaf(derive_seed_prefix(root, {a, b}), c)`
/// for every path. The sharded engine's producer derives the per-request
/// pinned strategy streams for a whole batch in one pass — the constant
/// `(run_index, kStrategy)` prefix is hashed once per run and each ordinal
/// costs exactly two mixes instead of re-folding the full path
/// (tests/test_rng.cpp locks the equality).
[[nodiscard]] inline std::uint64_t derive_seed_prefix(
    std::uint64_t root, std::initializer_list<std::uint64_t> path) {
  return derive_seed(root, path);
}

[[nodiscard]] inline std::uint64_t derive_seed_leaf(std::uint64_t prefix,
                                                    std::uint64_t id) {
  return rng::mix64(prefix ^ rng::mix64(id + 0x14057B7EF767814FULL));
}

/// Well-known phase ids so placement / trace / strategy randomness stay
/// decoupled (changing one phase's draw count never shifts another's).
namespace seed_phase {
inline constexpr std::uint64_t kPlacement = 1;
inline constexpr std::uint64_t kTrace = 2;
inline constexpr std::uint64_t kStrategy = 3;
inline constexpr std::uint64_t kQueueing = 4;
}  // namespace seed_phase

}  // namespace proxcache
