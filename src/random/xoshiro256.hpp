#pragma once
/// \file xoshiro256.hpp
/// xoshiro256** 1.0 (Blackman & Vigna) — the simulator's workhorse engine.
/// Fast (sub-ns per draw), 256-bit state, equidistributed in 4 dimensions;
/// far better statistical quality than std::minstd and much faster than
/// std::mt19937_64 for this workload. Seeded via SplitMix64 per the authors'
/// recommendation.

#include <array>
#include <cstdint>

#include "random/splitmix64.hpp"

namespace proxcache::rng {

/// xoshiro256** engine satisfying UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Expands `seed` into the 256-bit state with SplitMix64. A zero seed is
  /// fine — the expansion never produces the forbidden all-zero state.
  explicit Xoshiro256(std::uint64_t seed = 0xA02B0C0DE5EEDULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t s1 = state_[1];
    const std::uint64_t result = rotl(s1 * 5, 7) * 9;
    const std::uint64_t t = s1 << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// 2^128-step jump: produces a stream non-overlapping with the original
  /// for up to 2^128 draws. Used to derive parallel streams.
  void jump() {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
        0x39ABDC4529B1661CULL};
    std::array<std::uint64_t, 4> acc{};
    for (const std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace proxcache::rng
