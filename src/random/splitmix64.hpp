#pragma once
/// \file splitmix64.hpp
/// SplitMix64 — the standard 64-bit seeding/mixing generator (Steele,
/// Lea & Flood, OOPSLA'14 "Fast splittable pseudorandom number generators").
/// Used here to expand a single user seed into engine state and to derive
/// independent per-run streams; see seeding.hpp.

#include <cstdint>

namespace proxcache::rng {

/// One SplitMix64 mixing step: advances `state` and returns the next output.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless mixer: maps an arbitrary 64-bit value to a well-mixed one.
/// Equivalent to a single `splitmix64_next` from state `x`.
inline std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t state = x;
  return splitmix64_next(state);
}

/// Minimal SplitMix64 engine satisfying UniformRandomBitGenerator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return splitmix64_next(state_); }

 private:
  std::uint64_t state_;
};

}  // namespace proxcache::rng
