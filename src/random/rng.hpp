#pragma once
/// \file rng.hpp
/// The simulator's random-number facade: a Xoshiro256-backed generator with
/// unbiased bounded integers (Lemire's multiply-shift rejection method),
/// doubles in [0,1), Bernoulli draws, distinct-pair sampling and Fisher-Yates
/// shuffling. All simulator randomness flows through this type so runs are
/// reproducible from a single 64-bit seed.

#include <cstdint>
#include <utility>
#include <vector>

#include "random/splitmix64.hpp"
#include "random/xoshiro256.hpp"
#include "util/contracts.hpp"

namespace proxcache {

/// Deterministic pseudo-random generator; cheap to copy, never shared across
/// threads (each parallel task derives its own via `child`).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEE)
      : engine_(seed), seed_hint_(seed) {}

  /// Raw 64 random bits.
  std::uint64_t bits() { return engine_(); }

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Unbiased via Lemire's method (Lemire, ACM TOMACS 2019).
  std::uint64_t below(std::uint64_t bound) {
    PROXCACHE_REQUIRE(bound > 0, "below() needs a positive bound");
    __extension__ using u128 = unsigned __int128;
    std::uint64_t x = engine_();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = engine_();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    PROXCACHE_REQUIRE(lo <= hi, "between() needs lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Uniformly random *distinct* pair of indices from [0, n); n >= 2.
  std::pair<std::uint64_t, std::uint64_t> distinct_pair(std::uint64_t n) {
    PROXCACHE_REQUIRE(n >= 2, "distinct_pair() needs n >= 2");
    const std::uint64_t first = below(n);
    std::uint64_t second = below(n - 1);
    if (second >= first) ++second;
    return {first, second};
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child generator identified by `stream`.
  /// Children with different stream ids (or from different parents) are
  /// statistically independent; the derivation is deterministic.
  [[nodiscard]] Rng child(std::uint64_t stream) const {
    std::uint64_t state = seed_hint_;
    state ^= rng::mix64(stream + 0x9E3779B97F4A7C15ULL);
    Rng derived;
    derived.engine_ = rng::Xoshiro256(rng::mix64(state));
    derived.seed_hint_ = rng::mix64(state);
    return derived;
  }

 private:
  rng::Xoshiro256 engine_;
  std::uint64_t seed_hint_ = 0xC0FFEE;
};

}  // namespace proxcache
