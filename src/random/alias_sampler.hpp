#pragma once
/// \file alias_sampler.hpp
/// Walker/Vose alias method for O(1) sampling from an arbitrary discrete
/// distribution. Used for file popularity draws (Uniform and Zipf) in both
/// trace generation and cache placement, where billions of draws occur per
/// benchmark sweep.

#include <cstdint>
#include <vector>

#include "random/rng.hpp"

namespace proxcache {

/// O(1)-per-draw sampler over `{0, …, K-1}` with probabilities proportional
/// to the constructor weights. Construction is O(K) (Vose's algorithm).
class AliasSampler {
 public:
  /// Build from non-negative weights; at least one must be positive.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draw one index with the configured probabilities.
  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

  /// Number of categories K.
  [[nodiscard]] std::size_t size() const { return prob_.size(); }

  /// Exact probability of category `i` as encoded by the alias table
  /// (reconstructed from the internal tables; used by tests to verify the
  /// construction is lossless up to floating-point rounding).
  [[nodiscard]] std::vector<double> encoded_pmf() const;

 private:
  std::vector<double> prob_;          // acceptance threshold per column
  std::vector<std::uint32_t> alias_;  // alias target per column
};

}  // namespace proxcache
