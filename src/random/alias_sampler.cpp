#include "random/alias_sampler.hpp"

#include <limits>
#include <numeric>

#include "util/contracts.hpp"

namespace proxcache {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  PROXCACHE_REQUIRE(!weights.empty(), "alias sampler needs >= 1 category");
  PROXCACHE_REQUIRE(weights.size() <= std::numeric_limits<std::uint32_t>::max(),
                    "too many categories");
  double total = 0.0;
  for (const double w : weights) {
    PROXCACHE_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  PROXCACHE_REQUIRE(total > 0.0, "at least one weight must be positive");

  const std::size_t k = weights.size();
  prob_.assign(k, 0.0);
  alias_.assign(k, 0);

  // Vose's algorithm: scale weights to mean 1, split into small/large piles,
  // pair each small column with a large donor.
  std::vector<double> scaled(k);
  for (std::size_t i = 0; i < k; ++i) {
    scaled[i] = weights[i] * static_cast<double>(k) / total;
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(k);
  large.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<std::uint32_t>(i));
    } else {
      large.push_back(static_cast<std::uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Numerical leftovers are exactly-1 columns.
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

std::uint32_t AliasSampler::sample(Rng& rng) const {
  const auto column = static_cast<std::uint32_t>(rng.below(prob_.size()));
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

std::vector<double> AliasSampler::encoded_pmf() const {
  const std::size_t k = prob_.size();
  std::vector<double> pmf(k, 0.0);
  const double column_mass = 1.0 / static_cast<double>(k);
  for (std::size_t i = 0; i < k; ++i) {
    pmf[i] += column_mass * prob_[i];
    pmf[alias_[i]] += column_mass * (1.0 - prob_[i]);
  }
  return pmf;
}

}  // namespace proxcache
