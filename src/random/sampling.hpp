#pragma once
/// \file sampling.hpp
/// Streaming sampling utilities.
///
/// Strategy II must pick two uniform candidates from the *filtered* stream
/// "replicas of file j within distance r of u" without materializing it.
/// `ReservoirPair` does exactly that in one pass and O(1) space (classic
/// Vitter reservoir sampling with k = 2), also reporting the stream length
/// `|F_j(u)|` which the theory cares about.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>

#include "random/rng.hpp"

namespace proxcache {

/// Uniform 2-element reservoir over a one-pass stream of uint32 items.
class ReservoirPair {
 public:
  explicit ReservoirPair(Rng& rng) : rng_(&rng) {}

  /// Offer the next stream element.
  void offer(std::uint32_t item) {
    ++seen_;
    if (seen_ == 1) {
      first_ = item;
    } else if (seen_ == 2) {
      second_ = item;
      // Keep the pair order-uniform as well.
      if (rng_->bernoulli(0.5)) std::swap(first_, second_);
    } else {
      // Element i (1-based) replaces a reservoir slot w.p. 2/i.
      const std::uint64_t slot = rng_->below(seen_);
      if (slot == 0) first_ = item;
      else if (slot == 1) second_ = item;
    }
  }

  /// Number of elements offered so far (|F_j(u)| once the pass completes).
  [[nodiscard]] std::uint64_t count() const { return seen_; }

  /// The sampled pair; valid only when count() >= 2. Both elements are
  /// distinct *positions* of the stream (values may repeat if the stream
  /// itself has duplicates).
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> pair() const {
    return {first_, second_};
  }

  /// The single sampled element; valid only when count() >= 1.
  [[nodiscard]] std::uint32_t single() const { return first_; }

 private:
  Rng* rng_;
  std::uint64_t seen_ = 0;
  std::uint32_t first_ = 0;
  std::uint32_t second_ = 0;
};

/// Uniform k-element reservoir over a one-pass stream (Vitter's algorithm R).
/// Generalizes ReservoirPair to the d-choice strategy; `k` is small (<= 8).
class ReservoirK {
 public:
  ReservoirK(Rng& rng, std::uint32_t k) : rng_(&rng), k_(k) {
    PROXCACHE_REQUIRE(k >= 1 && k <= 8, "reservoir supports 1 <= k <= 8");
  }

  void offer(std::uint32_t item) {
    ++seen_;
    if (kept_ < k_) {
      slots_[kept_++] = item;
      return;
    }
    const std::uint64_t slot = rng_->below(seen_);
    if (slot < k_) slots_[slot] = item;
  }

  /// Number of elements offered so far.
  [[nodiscard]] std::uint64_t count() const { return seen_; }

  /// Sampled elements (min(k, count()) of them), uniform without
  /// replacement over the stream positions.
  [[nodiscard]] std::span<const std::uint32_t> sample() const {
    return {slots_.data(), kept_};
  }

 private:
  Rng* rng_;
  std::uint32_t k_;
  std::uint32_t kept_ = 0;
  std::uint64_t seen_ = 0;
  std::array<std::uint32_t, 8> slots_{};
};

/// Uniform 1-element reservoir (used for nearest-replica tie breaking among
/// the equidistant shell hits).
class ReservoirOne {
 public:
  explicit ReservoirOne(Rng& rng) : rng_(&rng) {}

  void offer(std::uint32_t item) {
    ++seen_;
    if (rng_->below(seen_) == 0) keep_ = item;
  }

  [[nodiscard]] std::uint64_t count() const { return seen_; }

  [[nodiscard]] std::optional<std::uint32_t> value() const {
    if (seen_ == 0) return std::nullopt;
    return keep_;
  }

 private:
  Rng* rng_;
  std::uint64_t seen_ = 0;
  std::uint32_t keep_ = 0;
};

}  // namespace proxcache
