#pragma once
/// \file theory.hpp
/// Closed-form reference curves from the balls-into-bins literature, used by
/// the benchmark harnesses to print "theory" columns next to measurements.
/// All are leading-order asymptotics (the Θ constants are not pinned by the
/// paper), so benches compare *shape* after normalizing at one point.

#include <cstddef>

namespace proxcache::ballsbins {

/// `ln ln n / ln d` — the d-choice maximum load at m = n balls
/// (Azar, Broder, Karlin & Upfal). Defined for n >= 3, d >= 2.
double two_choice_reference(std::size_t n, unsigned d = 2);

/// `ln n / ln ln n` — the one-choice maximum load at m = n balls, equal in
/// order to the maximum of n i.i.d. Po(1) variables (paper §II, Example 2).
double one_choice_reference(std::size_t n);

/// `ln n` — the Strategy I maximum-load order of Theorem 1.
double log_reference(std::size_t n);

/// Theorem 5's bound for an almost Δ-regular graph:
/// `Θ(log log n) + O(log n / log(Δ / log⁴ n))`. Returns the two terms'
/// sum with unit constants; +inf collapses to one-choice order when
/// Δ <= log⁴ n (the bound is vacuous there).
double kenthapadi_bound(std::size_t n, double delta);

/// The paper's Theorem 4 regime test: true iff
/// `α + 2β >= 1 + 2·log log n / log n` (with K = n, M = n^α, r = n^β).
bool theorem4_regime_holds(std::size_t n, double alpha, double beta);

}  // namespace proxcache::ballsbins
