#pragma once
/// \file graph_choice.hpp
/// Balanced allocation on graphs (Kenthapadi & Panigrahy, SODA'06) — the
/// engine behind the paper's Theorem 5. Bins are graph vertices; each ball
/// picks a random edge and joins the lesser-loaded endpoint. On sufficiently
/// dense almost-regular graphs the maximum load is `Θ(log log n)`; on sparse
/// graphs (e.g. a cycle) it degrades — exactly the dichotomy the paper maps
/// onto cache networks via the configuration graph H.

#include <cstdint>
#include <utility>
#include <vector>

#include "random/rng.hpp"
#include "util/types.hpp"

namespace proxcache::ballsbins {

/// Undirected edge list; vertices are 0-based.
using EdgeList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Result of a graph allocation run.
struct GraphAllocationResult {
  std::vector<Load> loads;
  Load max_load = 0;
};

/// Throw `balls` balls on the vertex set of `edges` (vertex count
/// `num_vertices`): each ball picks a uniform random edge and joins the
/// lesser-loaded endpoint (uniform tie break).
GraphAllocationResult graph_choice(std::size_t num_vertices,
                                   const EdgeList& edges, std::size_t balls,
                                   Rng& rng);

/// Same process but the ball's edge is drawn from the supplied non-negative
/// weights (Theorem 5's generalization: "each edge is chosen with
/// probability at most O(1/e(G))").
GraphAllocationResult graph_choice_weighted(std::size_t num_vertices,
                                            const EdgeList& edges,
                                            const std::vector<double>& weights,
                                            std::size_t balls, Rng& rng);

/// Convenience: edge list of the complete graph K_n (for which the process
/// coincides with the classical two-choice process up to the "distinct
/// choices" detail). Quadratic size — intended for tests.
EdgeList complete_graph_edges(std::uint32_t n);

/// Convenience: edge list of the n-cycle (a sparse graph on which graph
/// choice does *not* achieve log log n).
EdgeList cycle_graph_edges(std::uint32_t n);

}  // namespace proxcache::ballsbins
