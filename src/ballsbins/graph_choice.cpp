#include "ballsbins/graph_choice.hpp"

#include <algorithm>

#include "random/alias_sampler.hpp"
#include "util/contracts.hpp"

namespace proxcache::ballsbins {

namespace {

GraphAllocationResult run_process(std::size_t num_vertices,
                                  const EdgeList& edges, std::size_t balls,
                                  Rng& rng, const AliasSampler* edge_sampler) {
  PROXCACHE_REQUIRE(num_vertices >= 1, "need >= 1 vertex");
  PROXCACHE_REQUIRE(!edges.empty(), "need >= 1 edge");
  for (const auto& [a, b] : edges) {
    PROXCACHE_REQUIRE(a < num_vertices && b < num_vertices,
                      "edge endpoint out of range");
  }
  GraphAllocationResult result;
  result.loads.assign(num_vertices, 0);
  for (std::size_t i = 0; i < balls; ++i) {
    const std::size_t e =
        edge_sampler ? edge_sampler->sample(rng)
                     : static_cast<std::size_t>(rng.below(edges.size()));
    const auto [a, b] = edges[e];
    std::uint32_t chosen;
    if (result.loads[a] < result.loads[b]) {
      chosen = a;
    } else if (result.loads[b] < result.loads[a]) {
      chosen = b;
    } else {
      chosen = rng.bernoulli(0.5) ? a : b;
    }
    result.max_load = std::max(result.max_load, ++result.loads[chosen]);
  }
  return result;
}

}  // namespace

GraphAllocationResult graph_choice(std::size_t num_vertices,
                                   const EdgeList& edges, std::size_t balls,
                                   Rng& rng) {
  return run_process(num_vertices, edges, balls, rng, nullptr);
}

GraphAllocationResult graph_choice_weighted(std::size_t num_vertices,
                                            const EdgeList& edges,
                                            const std::vector<double>& weights,
                                            std::size_t balls, Rng& rng) {
  PROXCACHE_REQUIRE(weights.size() == edges.size(),
                    "one weight per edge required");
  const AliasSampler sampler(weights);
  return run_process(num_vertices, edges, balls, rng, &sampler);
}

EdgeList complete_graph_edges(std::uint32_t n) {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) edges.emplace_back(a, b);
  }
  return edges;
}

EdgeList cycle_graph_edges(std::uint32_t n) {
  EdgeList edges;
  edges.reserve(n);
  for (std::uint32_t a = 0; a < n; ++a) edges.emplace_back(a, (a + 1) % n);
  return edges;
}

}  // namespace proxcache::ballsbins
