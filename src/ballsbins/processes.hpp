#pragma once
/// \file processes.hpp
/// Classical balls-into-bins allocation processes.
///
/// These are the theoretical baselines the paper builds on (§I, §IV
/// examples): one-choice (uniform random bin) with `Θ(log n / log log n)`
/// maximum load at `m = n`, and the Azar et al. d-choice process with
/// `log log n / log d + Θ(1)` maximum load. The cache-network strategies
/// reduce to these in the memoryless regimes (Example 1), which the
/// integration tests exploit.

#include <cstdint>
#include <vector>

#include "random/rng.hpp"
#include "util/types.hpp"

namespace proxcache::ballsbins {

/// Outcome of an allocation process.
struct AllocationResult {
  std::vector<Load> loads;  ///< final per-bin load
  Load max_load = 0;        ///< max element of `loads`

  /// Total balls allocated (Σ loads).
  [[nodiscard]] std::uint64_t total() const;
};

/// Allocate `balls` balls into `bins` bins, one uniform choice each.
AllocationResult one_choice(std::size_t bins, std::size_t balls, Rng& rng);

/// Azar et al. process: each ball draws `d >= 1` *distinct* uniform bins and
/// joins the least loaded (uniform among ties). `d = 1` degenerates to
/// one-choice; `d` must not exceed `bins`.
AllocationResult d_choice(std::size_t bins, std::size_t balls, std::uint32_t d,
                          Rng& rng);

/// Incremental d-choice allocator for processes that interleave with other
/// state (used by the queueing extension and tests).
class DChoiceAllocator {
 public:
  DChoiceAllocator(std::size_t bins, std::uint32_t d);

  /// Place one ball; returns the chosen bin.
  std::size_t place(Rng& rng);

  [[nodiscard]] const std::vector<Load>& loads() const { return loads_; }
  [[nodiscard]] Load max_load() const { return max_load_; }

 private:
  std::vector<Load> loads_;
  std::uint32_t d_;
  Load max_load_ = 0;
};

}  // namespace proxcache::ballsbins
