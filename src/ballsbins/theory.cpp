#include "ballsbins/theory.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace proxcache::ballsbins {

double two_choice_reference(std::size_t n, unsigned d) {
  PROXCACHE_REQUIRE(n >= 3, "need n >= 3");
  PROXCACHE_REQUIRE(d >= 2, "need d >= 2");
  return std::log(std::log(static_cast<double>(n))) /
         std::log(static_cast<double>(d));
}

double one_choice_reference(std::size_t n) {
  PROXCACHE_REQUIRE(n >= 3, "need n >= 3");
  const double ln = std::log(static_cast<double>(n));
  return ln / std::log(ln);
}

double log_reference(std::size_t n) {
  PROXCACHE_REQUIRE(n >= 2, "need n >= 2");
  return std::log(static_cast<double>(n));
}

double kenthapadi_bound(std::size_t n, double delta) {
  PROXCACHE_REQUIRE(n >= 3, "need n >= 3");
  const double ln = std::log(static_cast<double>(n));
  const double loglog = std::log(ln);
  const double log4 = std::pow(ln, 4.0);
  if (delta <= log4) return one_choice_reference(n);
  return loglog + ln / std::log(delta / log4);
}

bool theorem4_regime_holds(std::size_t n, double alpha, double beta) {
  PROXCACHE_REQUIRE(n >= 3, "need n >= 3");
  const double ln = std::log(static_cast<double>(n));
  return alpha + 2.0 * beta >= 1.0 + 2.0 * std::log(ln) / ln;
}

}  // namespace proxcache::ballsbins
