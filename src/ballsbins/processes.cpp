#include "ballsbins/processes.hpp"

#include <algorithm>
#include <numeric>

#include "util/contracts.hpp"

namespace proxcache::ballsbins {

std::uint64_t AllocationResult::total() const {
  return std::accumulate(loads.begin(), loads.end(), std::uint64_t{0});
}

AllocationResult one_choice(std::size_t bins, std::size_t balls, Rng& rng) {
  PROXCACHE_REQUIRE(bins >= 1, "need >= 1 bin");
  AllocationResult result;
  result.loads.assign(bins, 0);
  for (std::size_t i = 0; i < balls; ++i) {
    const auto bin = static_cast<std::size_t>(rng.below(bins));
    result.max_load = std::max(result.max_load, ++result.loads[bin]);
  }
  return result;
}

DChoiceAllocator::DChoiceAllocator(std::size_t bins, std::uint32_t d)
    : loads_(bins, 0), d_(d) {
  PROXCACHE_REQUIRE(bins >= 1, "need >= 1 bin");
  PROXCACHE_REQUIRE(d >= 1 && d <= bins, "need 1 <= d <= bins");
}

std::size_t DChoiceAllocator::place(Rng& rng) {
  // Draw d distinct bins by rejection (d is tiny; collisions are rare for
  // d << bins and the loop always terminates since d <= bins).
  std::size_t candidates[8];
  const std::uint32_t d = std::min<std::uint32_t>(d_, 8);
  std::uint32_t have = 0;
  while (have < d) {
    const auto bin = static_cast<std::size_t>(rng.below(loads_.size()));
    bool duplicate = false;
    for (std::uint32_t i = 0; i < have; ++i) {
      if (candidates[i] == bin) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) candidates[have++] = bin;
  }
  // Least-loaded with uniform tie break via a single pass reservoir.
  std::size_t chosen = candidates[0];
  Load best = loads_[chosen];
  std::uint32_t ties = 1;
  for (std::uint32_t i = 1; i < have; ++i) {
    const Load load = loads_[candidates[i]];
    if (load < best) {
      best = load;
      chosen = candidates[i];
      ties = 1;
    } else if (load == best) {
      ++ties;
      if (rng.below(ties) == 0) chosen = candidates[i];
    }
  }
  max_load_ = std::max(max_load_, ++loads_[chosen]);
  return chosen;
}

AllocationResult d_choice(std::size_t bins, std::size_t balls, std::uint32_t d,
                          Rng& rng) {
  PROXCACHE_REQUIRE(d <= 8, "d-choice supports d <= 8");
  DChoiceAllocator allocator(bins, d);
  for (std::size_t i = 0; i < balls; ++i) allocator.place(rng);
  AllocationResult result;
  result.loads = allocator.loads();
  result.max_load = allocator.max_load();
  return result;
}

}  // namespace proxcache::ballsbins
