#pragma once
/// \file contracts.hpp
/// Lightweight precondition / invariant checking.
///
/// `PROXCACHE_REQUIRE` guards public API preconditions and always fires
/// (throws `std::invalid_argument`), following the Core Guidelines advice to
/// validate at module boundaries. `PROXCACHE_CHECK` guards internal
/// invariants and throws `std::logic_error`. Both build the message lazily.

#include <sstream>
#include <stdexcept>
#include <string>

namespace proxcache::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& what) {
  std::ostringstream os;
  os << "precondition violated: (" << expr << ") at " << file << ':' << line;
  if (!what.empty()) os << " — " << what;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file,
                                     int line, const std::string& what) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!what.empty()) os << " — " << what;
  throw std::logic_error(os.str());
}

}  // namespace proxcache::detail

/// Validate a caller-supplied argument; throws std::invalid_argument.
#define PROXCACHE_REQUIRE(cond, msg)                                        \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::proxcache::detail::throw_require(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (false)

/// Validate an internal invariant; throws std::logic_error.
#define PROXCACHE_CHECK(cond, msg)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::proxcache::detail::throw_check(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)
