#include "util/kvspec.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace proxcache {

namespace {

[[noreturn]] void fail(const std::string& message, std::string_view kind,
                       std::string_view text) {
  throw std::invalid_argument("bad " + std::string(kind) + " spec '" +
                              std::string(text) + "': " + message);
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
         c == '_' || c == '+' || c == '.';
}

std::string lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Cursor over the spec text; skips whitespace between every token.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool done() {
    skip_space();
    return pos_ >= text_.size();
  }

  [[nodiscard]] char peek() {
    skip_space();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Longest run of name characters (identifier or value token).
  std::string token() {
    skip_space();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && is_name_char(text_[pos_])) ++pos_;
    return lower(text_.substr(start, pos_ - start));
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

double parse_value(const std::string& key, const std::string& token,
                   std::string_view kind, std::string_view text,
                   std::span<const SpecKeyword> keywords) {
  if (token == "inf" || token == "infinity") {
    return std::numeric_limits<double>::infinity();
  }
  for (const SpecKeyword& keyword : keywords) {
    if (key == keyword.param && token == keyword.word) return keyword.code;
  }
  const char* begin = token.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    fail("value '" + token + "' for key '" + key +
             "' is neither a number nor a known keyword",
         kind, text);
  }
  return value;
}

/// Minimal representation that survives a parse round trip: integers print
/// bare, `inf` stays symbolic, and anything else gets just enough digits.
std::string format_value(const std::string& key, double value,
                         std::span<const SpecKeyword> keywords) {
  if (std::isinf(value) && value > 0.0) return "inf";
  for (const SpecKeyword& keyword : keywords) {
    if (key == keyword.param && value == keyword.code) return keyword.word;
  }
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(value);
    return os.str();
  }
  std::ostringstream os;
  os << value;
  if (std::strtod(os.str().c_str(), nullptr) == value) return os.str();
  std::ostringstream precise;
  precise.precision(std::numeric_limits<double>::max_digits10);
  precise << value;
  return precise.str();
}

}  // namespace

ParsedKvSpec parse_kv_spec(std::string_view text, std::string_view kind,
                           std::span<const SpecKeyword> keywords) {
  Scanner scanner(text);
  ParsedKvSpec spec;
  spec.name = scanner.token();
  if (spec.name.empty()) {
    fail("expected a " + std::string(kind) + " name", kind, text);
  }
  if (scanner.done()) return spec;
  if (!scanner.consume('(')) {
    fail(std::string("unexpected character '") + scanner.peek() +
             "' after the " + std::string(kind) + " name (expected '(')",
         kind, text);
  }
  if (!scanner.consume(')')) {
    while (true) {
      const std::string key = scanner.token();
      if (key.empty()) fail("expected a parameter key", kind, text);
      if (!scanner.consume('=')) {
        fail("parameter '" + key + "' is missing '=value'", kind, text);
      }
      const std::string token = scanner.token();
      if (token.empty()) {
        fail("parameter '" + key + "' is missing a value", kind, text);
      }
      if (spec.params.find(key) != spec.params.end()) {
        fail("duplicate parameter '" + key + "'", kind, text);
      }
      spec.params[key] = parse_value(key, token, kind, text, keywords);
      if (scanner.consume(',')) continue;
      if (scanner.consume(')')) break;
      fail("expected ',' or ')' after parameter '" + key + "'", kind, text);
    }
  }
  if (!scanner.done()) {
    fail(std::string("trailing characters after ')': '") + scanner.peek() +
             "...'",
         kind, text);
  }
  return spec;
}

std::string kv_spec_to_string(const std::string& name,
                              const std::map<std::string, double>& params,
                              std::span<const SpecKeyword> keywords) {
  if (params.empty()) return name;
  std::ostringstream os;
  os << name << '(';
  bool first = true;
  for (const auto& [key, value] : params) {  // std::map: sorted keys
    if (!first) os << ", ";
    first = false;
    os << key << '=' << format_value(key, value, keywords);
  }
  os << ')';
  return os.str();
}

}  // namespace proxcache
