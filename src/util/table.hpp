#pragma once
/// \file table.hpp
/// Console table and CSV emitters used by the benchmark harnesses to print
/// the paper's figure series ("same rows the paper reports").

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace proxcache {

/// One table cell: text, integer, or floating point with fixed precision.
class Cell {
 public:
  Cell(std::string text) : value_(std::move(text)) {}          // NOLINT
  Cell(const char* text) : value_(std::string(text)) {}        // NOLINT
  Cell(std::int64_t v) : value_(v) {}                          // NOLINT
  Cell(int v) : value_(static_cast<std::int64_t>(v)) {}        // NOLINT
  Cell(std::size_t v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Cell(double v, int precision = 3) : value_(Real{v, precision}) {}  // NOLINT

  /// Render the cell to a string (fixed notation for doubles).
  [[nodiscard]] std::string str() const;

 private:
  struct Real {
    double value;
    int precision;
  };
  std::variant<std::string, std::int64_t, Real> value_;
};

/// Builds an aligned monospace table and renders it to a stream.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must match the header arity.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Render with column alignment and a header separator.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (no quoting of embedded commas needed here,
  /// but quotes are applied when a cell contains a comma or quote).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace proxcache
