#include "util/json_slice.hpp"

#include <cctype>
#include <cstddef>

namespace proxcache::jsonslice {

namespace {

/// Advance past the string literal whose opening quote sits at `i` (which
/// must index a '"'). Returns the index one past the closing quote, or
/// `json.size()` when the literal never closes.
std::size_t skip_string(std::string_view json, std::size_t i) {
  ++i;  // opening quote
  while (i < json.size()) {
    const char c = json[i];
    if (c == '\\') {
      i += 2;  // escaped character (also covers \" and \\)
      continue;
    }
    if (c == '"') return i + 1;
    ++i;
  }
  return json.size();
}

std::size_t skip_whitespace(std::string_view json, std::size_t i) {
  while (i < json.size() &&
         std::isspace(static_cast<unsigned char>(json[i]))) {
    ++i;
  }
  return i;
}

/// End index (exclusive) of the value starting at `i`: a balanced {...} or
/// [...] span, a string literal, or a bare scalar running to the next
/// depth-0 ',' / '}' / ']'. Returns `json.size()` when unterminated.
std::size_t value_end(std::string_view json, std::size_t i) {
  if (i >= json.size()) return json.size();
  if (json[i] == '"') return skip_string(json, i);
  if (json[i] == '{' || json[i] == '[') {
    int depth = 0;
    while (i < json.size()) {
      const char c = json[i];
      if (c == '"') {
        i = skip_string(json, i);
        continue;
      }
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        --depth;
        if (depth == 0) return i + 1;
      }
      ++i;
    }
    return json.size();
  }
  while (i < json.size() && json[i] != ',' && json[i] != '}' &&
         json[i] != ']' &&
         !std::isspace(static_cast<unsigned char>(json[i]))) {
    ++i;
  }
  return i;
}

/// Locate top-level `key`'s value span [value_begin, value_stop) in the
/// object `json`. On a miss, `close_brace` still reports the index of the
/// object's closing brace (npos when the object never closes) so callers
/// can append. Returns true on a hit.
bool find_top_level(std::string_view json, std::string_view key,
                    std::size_t& value_begin, std::size_t& value_stop,
                    std::size_t& close_brace) {
  value_begin = value_stop = 0;
  close_brace = std::string_view::npos;
  std::size_t i = skip_whitespace(json, 0);
  if (i >= json.size() || json[i] != '{') return false;
  ++i;
  while (i < json.size()) {
    const char c = json[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '}') {
      close_brace = i;
      return false;
    }
    if (c == ',') {
      ++i;
      continue;
    }
    if (c != '"') return false;  // keys only at depth 1 in an object
    const std::size_t key_end = skip_string(json, i);
    const std::string_view name =
        json.substr(i + 1, key_end - i - 2);  // without the quotes
    std::size_t after = skip_whitespace(json, key_end);
    if (after >= json.size() || json[after] != ':') return false;
    after = skip_whitespace(json, after + 1);
    const std::size_t end = value_end(json, after);
    if (name == key) {
      value_begin = after;
      value_stop = end;
      return true;
    }
    // Not ours: step over the value (it may contain nested same-named
    // keys, which must not match).
    i = end;
  }
  return false;
}

}  // namespace

std::string extract_top_level(std::string_view json, std::string_view key) {
  std::size_t begin = 0;
  std::size_t stop = 0;
  std::size_t close = 0;
  if (!find_top_level(json, key, begin, stop, close)) return {};
  return std::string(json.substr(begin, stop - begin));
}

std::string replace_top_level(std::string_view json, std::string_view key,
                              std::string_view value) {
  std::size_t begin = 0;
  std::size_t stop = 0;
  std::size_t close = 0;
  std::string out;
  if (find_top_level(json, key, begin, stop, close)) {
    out.append(json.substr(0, begin));
    out.append(value);
    out.append(json.substr(stop));
    return out;
  }
  if (close == std::string_view::npos) {
    // Not a scannable object: start one fresh.
    out = "{\n  \"";
    out.append(key);
    out.append("\": ");
    out.append(value);
    out.append("\n}\n");
    return out;
  }
  // Append before the closing brace; a comma is needed unless the object
  // was empty.
  std::size_t last = close;
  while (last > 0 &&
         std::isspace(static_cast<unsigned char>(json[last - 1]))) {
    --last;
  }
  const bool empty_object = last > 0 && json[last - 1] == '{';
  out.append(json.substr(0, last));
  out.append(empty_object ? "\n  \"" : ",\n  \"");
  out.append(key);
  out.append("\": ");
  out.append(value);
  out.append("\n");
  out.append(json.substr(close));
  return out;
}

std::vector<std::string> split_top_level_array(std::string_view array_text) {
  std::vector<std::string> elements;
  std::size_t i = skip_whitespace(array_text, 0);
  if (i >= array_text.size() || array_text[i] != '[') return elements;
  ++i;
  while (true) {
    i = skip_whitespace(array_text, i);
    if (i >= array_text.size()) return elements;  // unterminated
    if (array_text[i] == ']') return elements;
    const std::size_t end = value_end(array_text, i);
    elements.emplace_back(array_text.substr(i, end - i));
    i = skip_whitespace(array_text, end);
    if (i < array_text.size() && array_text[i] == ',') ++i;
  }
}

}  // namespace proxcache::jsonslice
