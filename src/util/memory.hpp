#pragma once
/// \file memory.hpp
/// Process memory introspection for benches: peak resident set size, used
/// by `micro_throughput` to demonstrate that the streaming request loop
/// runs in O(num_nodes) space regardless of trace length.

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace proxcache {

/// Peak resident set size of the calling process in bytes; 0 when the
/// platform offers no getrusage. Linux reports ru_maxrss in KiB, macOS in
/// bytes.
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

}  // namespace proxcache
