#pragma once
/// \file function_ref.hpp
/// A minimal non-owning callable reference (the shape of C++26
/// `std::function_ref`), used where a virtual interface needs to accept an
/// arbitrary callback without the allocation and copy cost of
/// `std::function`. The referenced callable must outlive the FunctionRef —
/// which is always the case for the visitor lambdas passed down the
/// topology enumeration paths.

#include <type_traits>
#include <utility>

namespace proxcache {

template <typename Signature>
class FunctionRef;

/// Non-owning type-erased reference to a callable with signature
/// `R(Args...)`.
template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function_ref — callers pass lambdas directly.
  FunctionRef(F&& f) noexcept
      : object_(const_cast<void*>(static_cast<const void*>(&f))),
        invoke_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*invoke_)(void*, Args...);
};

}  // namespace proxcache
