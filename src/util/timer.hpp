#pragma once
/// \file timer.hpp
/// Monotonic wall-clock timing helpers for benches and progress reporting.

#include <chrono>

namespace proxcache {

/// Simple monotonic stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace proxcache
