#pragma once
/// \file catalogs.hpp
/// Shared `--list` implementation: prints every open catalog — scenarios,
/// strategies, topologies, cache policies, and tier presets — as aligned
/// tables. Both `scenario_runner` and `dynamic_runner` route their --list
/// flags through here so a newly registered entry shows up in every CLI
/// surface without touching the binaries.

#include <iosfwd>

namespace proxcache {

/// Print the five catalogs to `os`, one table per registry, blank-line
/// separated, in scenario / strategy / topology / cache-policy / tier
/// order.
void print_catalogs(std::ostream& os);

}  // namespace proxcache
