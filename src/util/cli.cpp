#include "util/cli.hpp"

#include <charconv>
#include <sstream>

#include "util/contracts.hpp"

namespace proxcache {

namespace {

std::int64_t parse_int(const std::string& name, const std::string& text) {
  std::int64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    throw CliError("option --" + name + " expects an integer, got '" + text +
                   "'");
  }
  return value;
}

double parse_double(const std::string& name, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw CliError("option --" + name + " expects a number, got '" + text +
                   "'");
  }
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::register_option(const std::string& name, Option opt) {
  PROXCACHE_REQUIRE(!name.empty(), "option name must be non-empty");
  PROXCACHE_REQUIRE(options_.find(name) == options_.end(),
                    "duplicate option --" + name);
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void ArgParser::add_int(const std::string& name, std::int64_t def,
                        const std::string& help) {
  Option opt;
  opt.kind = Kind::Int;
  opt.help = help;
  opt.int_value = def;
  register_option(name, std::move(opt));
}

void ArgParser::add_double(const std::string& name, double def,
                           const std::string& help) {
  Option opt;
  opt.kind = Kind::Double;
  opt.help = help;
  opt.double_value = def;
  register_option(name, std::move(opt));
}

void ArgParser::add_string(const std::string& name, std::string def,
                           const std::string& help) {
  Option opt;
  opt.kind = Kind::String;
  opt.help = help;
  opt.string_value = std::move(def);
  register_option(name, std::move(opt));
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  Option opt;
  opt.kind = Kind::Flag;
  opt.help = help;
  register_option(name, std::move(opt));
}

void ArgParser::add_string_list(const std::string& name,
                                std::vector<std::string> defaults,
                                const std::string& help) {
  Option opt;
  opt.kind = Kind::StringList;
  opt.help = help;
  opt.list_value = std::move(defaults);
  register_option(name, std::move(opt));
}

ArgParser& ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      help_requested_ = true;
      continue;
    }
    if (token.rfind("--", 0) != 0) {
      throw CliError("unexpected positional argument '" + token + "'");
    }
    std::string name = token.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      throw CliError("unknown option --" + name + " (try --help)");
    }
    Option& opt = it->second;
    // The first command-line occurrence of a list option clears the
    // registered defaults; later occurrences append.
    if (opt.kind == Kind::StringList && !opt.set_on_cli) {
      opt.list_value.clear();
    }
    opt.set_on_cli = true;
    if (opt.kind == Kind::Flag) {
      if (has_inline) {
        throw CliError("flag --" + name + " does not take a value");
      }
      opt.flag_value = true;
      continue;
    }
    std::string value;
    if (has_inline) {
      value = inline_value;
    } else {
      if (i + 1 >= argc) {
        throw CliError("option --" + name + " requires a value");
      }
      value = argv[++i];
    }
    switch (opt.kind) {
      case Kind::Int:
        opt.int_value = parse_int(name, value);
        break;
      case Kind::Double:
        opt.double_value = parse_double(name, value);
        break;
      case Kind::String:
        opt.string_value = value;
        break;
      case Kind::StringList:
        opt.list_value.push_back(value);
        break;
      case Kind::Flag:
        break;  // handled above
    }
  }
  return *this;
}

const ArgParser::Option& ArgParser::find(const std::string& name,
                                         Kind kind) const {
  auto it = options_.find(name);
  PROXCACHE_REQUIRE(it != options_.end(), "option --" + name + " not declared");
  PROXCACHE_REQUIRE(it->second.kind == kind,
                    "option --" + name + " accessed with wrong type");
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return find(name, Kind::Int).int_value;
}

double ArgParser::get_double(const std::string& name) const {
  return find(name, Kind::Double).double_value;
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::String).string_value;
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name, Kind::Flag).flag_value;
}

const std::vector<std::string>& ArgParser::get_string_list(
    const std::string& name) const {
  return find(name, Kind::StringList).list_value;
}

bool ArgParser::was_set(const std::string& name) const {
  auto it = options_.find(name);
  PROXCACHE_REQUIRE(it != options_.end(), "option --" + name + " not declared");
  return it->second.set_on_cli;
}

std::string ArgParser::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::Int:
        os << " <int>      (default " << opt.int_value << ")";
        break;
      case Kind::Double:
        os << " <float>    (default " << opt.double_value << ")";
        break;
      case Kind::String:
        os << " <string>   (default '" << opt.string_value << "')";
        break;
      case Kind::StringList: {
        os << " <string>   (repeatable; default";
        if (opt.list_value.empty()) os << " empty";
        for (const std::string& item : opt.list_value) {
          os << " '" << item << "'";
        }
        os << ")";
        break;
      }
      case Kind::Flag:
        os << "            (flag)";
        break;
    }
    os << "\n      " << opt.help << "\n";
  }
  return os.str();
}

}  // namespace proxcache
