#pragma once
/// \file types.hpp
/// Fundamental identifier and size types shared across all proxcache modules.
///
/// The simulator deals with three id spaces: nodes (servers on the lattice),
/// files (library entries) and requests. They are kept as distinct aliases so
/// signatures document which space a value lives in; all are dense 0-based
/// indices.

#include <cstdint>
#include <limits>

namespace proxcache {

/// Index of a caching server on the lattice, in `[0, n)`.
using NodeId = std::uint32_t;

/// Index of a file in the library, in `[0, K)`.
using FileId = std::uint32_t;

/// Hop count (L1 distance on the lattice).
using Hop = std::uint32_t;

/// Per-node request load counter.
using Load = std::uint32_t;

/// Sentinel for "no node" (e.g. a nearest-replica query on an uncached file).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no file".
inline constexpr FileId kInvalidFile = std::numeric_limits<FileId>::max();

/// Sentinel radius meaning "no proximity constraint" (`r = ∞` in the paper).
inline constexpr Hop kUnboundedRadius = std::numeric_limits<Hop>::max();

}  // namespace proxcache
