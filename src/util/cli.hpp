#pragma once
/// \file cli.hpp
/// Minimal dependency-free command-line option parser used by all bench and
/// example binaries.
///
/// Usage:
/// ```
/// ArgParser args("fig5_tradeoff", "Reproduces Figure 5");
/// args.add_int("n", 2025, "number of servers (perfect square)");
/// args.add_flag("full", "run at paper-scale replication counts");
/// args.parse(argc, argv);          // throws CliError on bad input
/// const auto n = args.get_int("n");
/// ```
/// `--help` prints the registered options and causes `parse` to report
/// `help_requested() == true`; callers are expected to exit cleanly.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace proxcache {

/// Raised on malformed command lines (unknown flag, missing/bad value).
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Declarative command-line parser for `--name value` / `--flag` options.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Register an integer option with a default value.
  void add_int(const std::string& name, std::int64_t def,
               const std::string& help);
  /// Register a floating-point option with a default value.
  void add_double(const std::string& name, double def, const std::string& help);
  /// Register a string option with a default value.
  void add_string(const std::string& name, std::string def,
                  const std::string& help);
  /// Register a boolean flag (false unless present on the command line).
  void add_flag(const std::string& name, const std::string& help);
  /// Register a repeatable string option: every occurrence appends to the
  /// list, so `--strategy a --strategy b` yields {"a", "b"}. The defaults
  /// apply only when the option never appears.
  void add_string_list(const std::string& name,
                       std::vector<std::string> defaults,
                       const std::string& help);

  /// Parse `argv`; throws CliError on malformed input. Returns *this.
  ArgParser& parse(int argc, const char* const* argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& get_string_list(
      const std::string& name) const;

  /// True if `--help` appeared; callers should print `help_text()` and exit.
  [[nodiscard]] bool help_requested() const { return help_requested_; }

  /// Human-readable option summary.
  [[nodiscard]] std::string help_text() const;

  /// True if the option was explicitly set on the command line.
  [[nodiscard]] bool was_set(const std::string& name) const;

 private:
  enum class Kind { Int, Double, String, Flag, StringList };

  struct Option {
    Kind kind;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    std::vector<std::string> list_value;
    bool flag_value = false;
    bool set_on_cli = false;
  };

  const Option& find(const std::string& name, Kind kind) const;
  void register_option(const std::string& name, Option opt);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  bool help_requested_ = false;
};

}  // namespace proxcache
