#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace proxcache {

std::string Cell::str() const {
  if (const auto* text = std::get_if<std::string>(&value_)) return *text;
  if (const auto* integer = std::get_if<std::int64_t>(&value_)) {
    return std::to_string(*integer);
  }
  const auto& real = std::get<Real>(value_);
  std::ostringstream os;
  os << std::fixed << std::setprecision(real.precision) << real.value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PROXCACHE_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  PROXCACHE_REQUIRE(cells.size() == headers_.size(),
                    "row arity does not match header arity");
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (const auto& cell : cells) row.push_back(cell.str());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace proxcache
