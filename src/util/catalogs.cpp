#include "util/catalogs.hpp"

#include <ostream>

#include "event/cache_policy.hpp"
#include "scenario/registry.hpp"
#include "strategy/registry.hpp"
#include "tier/registry.hpp"
#include "topology/registry.hpp"
#include "util/table.hpp"

namespace proxcache {

void print_catalogs(std::ostream& os) {
  Table scenarios({"scenario", "summary"});
  for (const Scenario& scenario : ScenarioRegistry::built_ins().all()) {
    scenarios.add_row({Cell(scenario.name), Cell(scenario.summary)});
  }
  scenarios.print(os);
  os << "\n";

  Table strategies({"strategy", "summary"});
  for (const StrategyEntry& entry : StrategyRegistry::global().all()) {
    std::string summary = entry.summary;
    if (entry.requires_tiers) summary += " [needs --tiers]";
    strategies.add_row({Cell(entry.name), Cell(std::move(summary))});
  }
  strategies.print(os);
  os << "\n";

  Table topologies({"topology", "summary"});
  for (const TopologyEntry& entry : TopologyRegistry::global().all()) {
    topologies.add_row({Cell(entry.name), Cell(entry.summary)});
  }
  topologies.print(os);
  os << "\n";

  Table policies({"cache policy", "summary"});
  for (const CachePolicyEntry& entry : CachePolicyRegistry::built_ins().all()) {
    policies.add_row({Cell(entry.name), Cell(entry.summary)});
  }
  policies.print(os);
  os << "\n";

  Table tiers({"tier preset", "spec", "summary"});
  for (const TierPreset& preset : TierRegistry::built_ins().all()) {
    tiers.add_row({Cell(preset.name), Cell(preset.spec.to_string()),
                   Cell(preset.summary)});
  }
  tiers.print(os);
}

}  // namespace proxcache
