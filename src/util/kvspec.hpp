#pragma once
/// \file kvspec.hpp
/// The shared `name(key=value, ...)` spec-string grammar behind both the
/// strategy specs (strategy/spec.hpp) and the topology specs
/// (topology/spec.hpp). One scanner, one value formatter — so the two
/// grammars cannot drift apart: both are whitespace- and case-insensitive,
/// accept numbers / `inf` / per-key symbolic keywords, and emit the same
/// canonical lowercase form with sorted keys.
///
/// Deliberately standalone (no dependency on the registries or the
/// simulator) so external tools can speak the grammar too.

#include <map>
#include <span>
#include <string>
#include <string_view>

namespace proxcache {

/// A symbolic keyword value for one parameter key (e.g. `fallback=expand`
/// canonicalizing to code 0). The tables are per-spec-kind and teach both
/// the parser and the formatter.
struct SpecKeyword {
  const char* param;
  const char* word;
  double code;
};

/// Parsed `name(key=value, ...)` form.
struct ParsedKvSpec {
  std::string name;
  std::map<std::string, double> params;
};

/// Parse `text` as `name` or `name(k=v, ...)`. `kind` names the grammar in
/// error messages ("strategy", "topology"): malformed input throws
/// std::invalid_argument as `bad <kind> spec '<text>': <detail>` with the
/// offending token pinpointed.
[[nodiscard]] ParsedKvSpec parse_kv_spec(std::string_view text,
                                         std::string_view kind,
                                         std::span<const SpecKeyword> keywords);

/// Canonical spec string: lowercase name, sorted keys, integers bare,
/// `inf` and keywords symbolic.
[[nodiscard]] std::string kv_spec_to_string(
    const std::string& name, const std::map<std::string, double>& params,
    std::span<const SpecKeyword> keywords);

}  // namespace proxcache
