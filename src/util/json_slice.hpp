#pragma once
/// \file json_slice.hpp
/// Minimal read-side JSON slicing: extract the raw text of one top-level
/// key's value from a JSON object document.
///
/// The repo's benches emit JSON by hand and deliberately carry no JSON
/// library dependency; what they do need is to *preserve* sibling blocks
/// they did not regenerate (BENCH_throughput.json holds both the default
/// `results` sweep and the separately-produced `large_topology` rows — a
/// rerun of one must not clobber the other). That requires locating one
/// top-level value verbatim, not parsing the document: this scanner tracks
/// brace/bracket depth, skips string literals (with escapes), and returns
/// the value's exact character span, so re-emitting it round-trips
/// byte-for-byte.

#include <string>
#include <string_view>
#include <vector>

namespace proxcache::jsonslice {

/// Raw text of the value of top-level `key` in the JSON object `json`
/// (whitespace-trimmed, e.g. `{"rows": [...]}` or `42` or `"torus"`).
/// Returns an empty string when the document has no such top-level key or
/// the document is not a well-formed-enough object to scan. Nested objects
/// may contain a same-named key; only depth-1 keys match.
[[nodiscard]] std::string extract_top_level(std::string_view json,
                                            std::string_view key);

/// Return `json` with top-level `key`'s value replaced by `value` (raw JSON
/// text), appending the pair before the object's closing brace when the key
/// is absent. Every other byte of the document is preserved verbatim. When
/// `json` is not a scannable object, returns a fresh two-space-indented
/// object holding only the pair.
[[nodiscard]] std::string replace_top_level(std::string_view json,
                                            std::string_view key,
                                            std::string_view value);

/// Split the raw text of a JSON array (as returned by extract_top_level)
/// into its top-level elements, each whitespace-trimmed and returned
/// verbatim. Returns an empty vector when `array_text` is not a scannable
/// array.
[[nodiscard]] std::vector<std::string> split_top_level_array(
    std::string_view array_text);

}  // namespace proxcache::jsonslice
