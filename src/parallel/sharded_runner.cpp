#include "parallel/sharded_runner.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <exception>
#include <thread>

#include "core/run_harness.hpp"
#include "random/seeding.hpp"
#include "strategy/registry.hpp"
#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace proxcache {

namespace {

/// Requests per worker task. Small enough that a batch splits into more
/// chunks than workers (load balancing), large enough to amortize the
/// submit/future overhead against ~100ns-per-request propose work.
constexpr std::size_t kChunkRequests = 512;

/// Speculation candidate cap: requests whose window is wider than this are
/// chosen serially (`ShardStats::spec_bypassed`). Snapshotting + validating
/// a wide window (least-loaded at radius 8 records ~145 candidates) costs
/// more than the choose it replaces, and a wide window almost surely
/// conflicts. 16 covers every sampling strategy (d <= 8) plus typical
/// replication factors.
constexpr std::uint32_t kSpecMaxCandidates = 16;

/// Speculation-window lifecycle, advanced monotonically through
/// `BatchBuffer::win_state`. The committer moves kSnapPending -> kSnapReady
/// (snapshot published); the chase task or the committer claims
/// kSnapReady -> kClaimed and finishes kClaimed -> kDone.
constexpr std::uint32_t kSnapPending = 0;
constexpr std::uint32_t kSnapReady = 1;
constexpr std::uint32_t kClaimed = 2;
constexpr std::uint32_t kDone = 3;

/// One request in flight: its proposal plus the post-propose state of its
/// pinned Rng stream (the Rng is 40 bytes — cheap to park in the slot so
/// `choose` can resume the exact stream `propose` left off), plus the
/// speculation result handed from the chase task to the committer.
struct Slot {
  Request request;
  Proposal proposal;
  Rng rng{0};
  Assignment spec_assignment;
  /// True once a speculative choose wrote `spec_assignment`. Stays false
  /// when the chase died mid-window (the committer then re-chooses
  /// serially; the chase's exception surfaces at join).
  bool spec_ok = false;
};

/// One half of the double buffer: the slots of a batch, a private arena per
/// chunk, and the in-flight futures. Workers touch only their own chunk's
/// slot range and arena; the speculation fields follow the window-state
/// handover protocol.
struct BatchBuffer {
  std::vector<Slot> slots;
  std::size_t count = 0;    ///< admitted requests in this batch
  std::uint64_t base = 0;   ///< ordinal of slots[0] in the admitted stream
  std::vector<CandidateArena> arenas;
  /// Per-chunk snapshot loads, indexed exactly like the chunk's arena:
  /// `snaps[chunk][proposal.first + i]` is the effective load of candidate
  /// i as of this request's snapshot point.
  std::vector<std::vector<Load>> snaps;
  std::vector<std::future<void>> futures;
  /// Propose wall time per chunk, written by the propose task and folded
  /// into ShardStats after its future is joined.
  std::vector<double> chunk_seconds;
  /// Per-window lifecycle states (kSnapPending..kDone); length is the
  /// maximum window count, reset per batch before the chase is dispatched.
  std::unique_ptr<std::atomic<std::uint32_t>[]> win_state;
  std::size_t win_count = 0;  ///< windows in the current batch
  /// Chase-side speculate wall time, one slot per chase task (the window
  /// state machine admits any number of claimants; two are submitted when
  /// the pool has the workers to run them concurrently).
  double chase_seconds[2] = {0.0, 0.0};
};

/// LoadView over one request's candidate window mapped to its snapshot
/// loads: `load(v)` answers with the snapshot value recorded for candidate
/// v. Strategies that declare `choose_reads_candidates_only()` query only
/// window members, so a linear scan suffices — and because their scans walk
/// the window roughly in order, the rotating cursor makes the common case
/// O(1) per read. A query for a non-member means the strategy lied about
/// the contract; failing loud beats silently wrong speculation.
class WindowSnapshotView final : public LoadView {
 public:
  void bind(const ProposedCandidate* candidates, const Load* snaps,
            std::uint32_t count) {
    candidates_ = candidates;
    snaps_ = snaps;
    count_ = count;
    cursor_ = 0;
  }

  [[nodiscard]] Load load(NodeId server) const override {
    for (std::uint32_t step = 0; step < count_; ++step) {
      std::uint32_t i = cursor_ + step;
      if (i >= count_) i -= count_;
      if (candidates_[i].node == server) {
        cursor_ = i + 1 == count_ ? 0 : i + 1;
        return snaps_[i];
      }
    }
    PROXCACHE_CHECK(false,
                    "speculative choose read a load outside its candidate "
                    "window; the strategy's choose_reads_candidates_only() "
                    "claim is wrong");
    return 0;
  }

 private:
  const ProposedCandidate* candidates_ = nullptr;
  const Load* snaps_ = nullptr;
  std::uint32_t count_ = 0;
  mutable std::uint32_t cursor_ = 0;
};

}  // namespace

ShardedRunner::ShardedRunner(const SimulationContext& context,
                             ShardedRunOptions options)
    : context_(&context), options_(options) {
  PROXCACHE_REQUIRE(options.threads >= 1 && options.threads <= 1024,
                    "sharded engine threads must be in [1, 1024]");
  PROXCACHE_REQUIRE(options.batch >= 1, "shard batch must be >= 1");
  PROXCACHE_REQUIRE(options.spec_window >= 1 &&
                        options.spec_window <= (1u << 20),
                    "speculation window must be in [1, 2^20]");
  if (options_.threads >= 2) {
    pool_ = std::make_unique<ThreadPool>(options_.threads - 1);
  }
}

RunResult ShardedRunner::run(std::uint64_t run_index,
                             ShardStats* stats) const {
  RunHarness harness(*context_, run_index);
  const ExperimentConfig& config = context_->config();
  const std::uint64_t seed = config.seed;
  const bool split = harness.strategy->split_phase();
  // Speculation is an implementation detail of the commit loop: it engages
  // only when the strategy certifies that choose reads nothing but its own
  // candidates' loads, and it never changes a result either way.
  const bool speculative = split && options_.speculate &&
                           harness.strategy->choose_reads_candidates_only();
  const std::size_t batch = options_.batch;
  const std::size_t window = options_.spec_window;
  const std::size_t chunks = (batch + kChunkRequests - 1) / kChunkRequests;
  const std::size_t max_windows = (batch + window - 1) / window;

  std::array<BatchBuffer, 2> buffers;
  for (BatchBuffer& buffer : buffers) {
    buffer.slots.resize(batch);
    buffer.arenas.resize(split ? chunks : 0);
    buffer.snaps.resize(speculative ? chunks : 0);
    buffer.futures.reserve(chunks);
    buffer.chunk_seconds.assign(split ? chunks : 0, 0.0);
    if (speculative) {
      buffer.win_state.reset(new std::atomic<std::uint32_t>[max_windows]);
      for (std::size_t w = 0; w < max_windows; ++w) {
        buffer.win_state[w].store(kSnapPending, std::memory_order_relaxed);
      }
    }
  }

  // Lane-private strategy instances: `propose` may mutate strategy-local
  // scratch, so every chunk slot of every buffer gets its own instance from
  // the registry factory. `harness.strategy` stays the commit thread's
  // instance (`choose` is const and safe alongside in-flight proposes and
  // concurrent speculative chooses).
  std::vector<std::unique_ptr<Strategy>> lanes;
  if (split) {
    const StrategyRegistry& registry = StrategyRegistry::global();
    const StrategyEntry& entry = registry.at(harness.spec.name);
    lanes.reserve(2 * chunks);
    for (std::size_t i = 0; i < 2 * chunks; ++i) {
      lanes.push_back(entry.factory(harness.spec, harness.index,
                                    context_->topology(), config));
    }
  }
  if (stats) {
    *stats = ShardStats{};
    stats->lane_requests.assign(split ? chunks : 0, 0);
    stats->lane_seconds.assign(split ? chunks : 0, 0.0);
  }

  std::uint64_t next_ordinal = 0;
  // Mirrors tracker.assigned() exactly, but stays current *within* a
  // speculation window where the tracker's counter is settled only at
  // window end (apply_window) — the stale view's refresh cadence needs the
  // per-assignment value.
  std::uint64_t committed_total = 0;
  // Raised when the committer unwinds so the chase task never spins on a
  // snapshot that will no longer be published.
  std::atomic<bool> abort{false};
  // The constant (run, phase) prefix of every pinned stream, hashed once;
  // fill() then derives each request's stream in two mixes.
  const std::uint64_t strategy_prefix =
      derive_seed_prefix(seed, {run_index, seed_phase::kStrategy});

  // Serial producer: trace generation + sanitize on the legacy sequential
  // streams — the admitted request stream is identical to the serial
  // engine's — plus the batched derivation of every pinned strategy stream.
  auto fill = [&](BatchBuffer& buffer) {
    WallTimer timer;
    buffer.base = next_ordinal;
    buffer.count = 0;
    Request request;
    while (buffer.count < batch &&
           harness.sanitized.try_next(harness.trace_rng, request)) {
      Slot& slot = buffer.slots[buffer.count];
      slot.request = request;
      slot.rng = Rng(
          derive_seed_leaf(strategy_prefix, buffer.base + buffer.count));
      ++buffer.count;
    }
    next_ordinal += buffer.count;
    if (stats) stats->fill_seconds += timer.seconds();
    return buffer.count > 0;
  };

  auto propose_chunk = [&](BatchBuffer& buffer, std::size_t buffer_id,
                           std::size_t chunk) {
    WallTimer timer;
    const std::size_t begin = chunk * kChunkRequests;
    const std::size_t end = std::min(begin + kChunkRequests, buffer.count);
    Strategy& lane = *lanes[buffer_id * chunks + chunk];
    CandidateArena& arena = buffer.arenas[chunk];
    arena.clear();
    for (std::size_t j = begin; j < end; ++j) {
      Slot& slot = buffer.slots[j];
      slot.proposal = Proposal{};
      slot.spec_ok = false;
      lane.propose(slot.request, slot.rng, arena, slot.proposal);
    }
    buffer.chunk_seconds[chunk] = timer.seconds();
  };

  auto dispatch = [&](BatchBuffer& buffer, std::size_t buffer_id) {
    if (!split || buffer.count == 0) return;
    const std::size_t used =
        (buffer.count + kChunkRequests - 1) / kChunkRequests;
    for (std::size_t chunk = 0; chunk < used; ++chunk) {
      if (pool_) {
        buffer.futures.push_back(pool_->submit(
            [&buffer, buffer_id, chunk, &propose_chunk] {
              propose_chunk(buffer, buffer_id, chunk);
            }));
      } else {
        propose_chunk(buffer, buffer_id, chunk);
      }
    }
  };

  auto join = [&](BatchBuffer& buffer) {
    WallTimer timer;
    std::exception_ptr error;
    for (std::future<void>& future : buffer.futures) {
      try {
        future.get();
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    buffer.futures.clear();
    if (error) std::rethrow_exception(error);
    if (stats) {
      stats->join_seconds += timer.seconds();
      if (split) {
        const std::size_t used =
            (buffer.count + kChunkRequests - 1) / kChunkRequests;
        for (std::size_t chunk = 0; chunk < used; ++chunk) {
          stats->propose_seconds += buffer.chunk_seconds[chunk];
          stats->lane_seconds[chunk] += buffer.chunk_seconds[chunk];
        }
      }
    }
  };

  /// True when the slot's choose is worth speculating: load-dependent and
  /// within the candidate cap. Pure function of the proposal, so the chase
  /// and the committer agree without coordination.
  auto speculable = [](const Proposal& proposal) {
    return !proposal.decided && proposal.count <= kSpecMaxCandidates;
  };

  // Record, for every candidate of every speculable request in window `w`,
  // the load the strategy's effective view currently reports — the exact
  // array `choose` would read. Publishing the window's kSnapReady state
  // with release order hands the snapshot to whoever claims the window.
  auto publish_snapshot = [&](BatchBuffer& buffer, std::size_t w) {
    if (w >= buffer.win_count) return;
    const Load* effective =
        harness.stale ? harness.stale->data() : harness.tracker.data();
    const std::size_t begin = w * window;
    const std::size_t end = std::min(begin + window, buffer.count);
    for (std::size_t j = begin; j < end; ++j) {
      const Proposal& proposal = buffer.slots[j].proposal;
      if (!speculable(proposal)) continue;
      const std::size_t chunk = j / kChunkRequests;
      const ProposedCandidate* candidates =
          buffer.arenas[chunk].data() + proposal.first;
      Load* snaps = buffer.snaps[chunk].data() + proposal.first;
      for (std::uint32_t i = 0; i < proposal.count; ++i) {
        snaps[i] = effective[candidates[i].node];
      }
    }
    buffer.win_state[w].store(kSnapReady, std::memory_order_release);
  };

  // Execute the speculative chooses of one claimed window: for each
  // speculable slot, run choose against the snapshot through the adapter
  // view, on a copy of the pinned stream and a scratch copy of the
  // candidate window (prox-weighted zeroes winner weights in place — the
  // authoritative window must stay pristine for a conflict re-choose).
  auto run_window = [&](BatchBuffer& buffer, std::size_t w,
                        CandidateArena& scratch, WindowSnapshotView& view,
                        double& seconds) {
    WallTimer timer;
    const std::size_t begin = w * window;
    const std::size_t end = std::min(begin + window, buffer.count);
    for (std::size_t j = begin; j < end; ++j) {
      Slot& slot = buffer.slots[j];
      const Proposal& proposal = slot.proposal;
      if (!speculable(proposal)) continue;
      const std::size_t chunk = j / kChunkRequests;
      const CandidateArena& arena = buffer.arenas[chunk];
      scratch.assign(arena.begin() + proposal.first,
                     arena.begin() + proposal.first + proposal.count);
      view.bind(scratch.data(),
                buffer.snaps[chunk].data() + proposal.first, proposal.count);
      Proposal local = proposal;
      local.first = 0;
      Rng rng = slot.rng;
      slot.spec_assignment = harness.strategy->choose(slot.request, local,
                                                      scratch, view, rng);
      slot.spec_ok = true;
    }
    seconds += timer.seconds();
  };

  // The chase tasks: long-lived pool tasks per batch that claim windows
  // in schedule order as their snapshots appear. Claiming is a CAS, so
  // chase tasks and the help-stealing committer (which at threads = 1 runs
  // the whole schedule inline) compete freely without double execution —
  // a loser simply moves to the next window. `task` selects the private
  // wall-time slot; determinism is unaffected by who wins a claim because
  // every claimant computes the same value-validated speculation.
  auto chase_batch = [&](BatchBuffer& buffer, std::size_t task) {
    CandidateArena scratch;
    WindowSnapshotView view;
    buffer.chase_seconds[task] = 0.0;
    for (std::size_t w = 0; w < buffer.win_count; ++w) {
      std::atomic<std::uint32_t>& state = buffer.win_state[w];
      std::uint32_t seen = state.load(std::memory_order_acquire);
      while (seen == kSnapPending) {
        if (abort.load(std::memory_order_acquire)) return;
        std::this_thread::yield();
        seen = state.load(std::memory_order_acquire);
      }
      if (seen != kSnapReady ||
          !state.compare_exchange_strong(seen, kClaimed,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        continue;  // the committer already claimed or finished it
      }
      try {
        run_window(buffer, w, scratch, view, buffer.chase_seconds[task]);
      } catch (...) {
        // Unblock the committer (slots not reached keep spec_ok = false
        // and are re-chosen serially), then let the future carry the error.
        state.store(kDone, std::memory_order_release);
        throw;
      }
      state.store(kDone, std::memory_order_release);
    }
  };

  // Serial committer: request order, effective loads — the exact tail of
  // the serial loop. In speculative mode the per-window protocol is:
  // wait-or-help until the window's speculation is done, validate each
  // speculation against the loads the serial choose would read, accept on
  // equality or re-choose on the untouched post-propose stream, and settle
  // the window's metrics in one apply_window call.
  auto commit = [&](BatchBuffer& buffer) {
    WallTimer timer;
    std::uint64_t hits = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t decided = 0;
    std::uint64_t bypassed = 0;
    double helper_seconds = 0.0;
    if (speculative && buffer.count > 0) {
      buffer.win_count = (buffer.count + window - 1) / window;
      for (std::size_t w = 0; w < buffer.win_count; ++w) {
        buffer.win_state[w].store(kSnapPending, std::memory_order_relaxed);
      }
      for (std::size_t chunk = 0; chunk < buffer.snaps.size(); ++chunk) {
        buffer.snaps[chunk].resize(buffer.arenas[chunk].size());
      }
      publish_snapshot(buffer, 0);
      publish_snapshot(buffer, 1);
      std::array<std::future<void>, 2> chases;
      if (pool_) {
        chases[0] =
            pool_->submit([&buffer, &chase_batch] { chase_batch(buffer, 0); });
        // A second chaser pays off only when the pool has a worker for it
        // beyond the first (threads - 1 pool workers); otherwise it would
        // just queue behind the first and find every window claimed.
        if (options_.threads >= 3) {
          chases[1] = pool_->submit(
              [&buffer, &chase_batch] { chase_batch(buffer, 1); });
        }
      }
      try {
        CandidateArena helper_scratch;
        WindowSnapshotView helper_view;
        CommitWindowDelta delta;
        for (std::size_t w = 0; w < buffer.win_count; ++w) {
          std::atomic<std::uint32_t>& state = buffer.win_state[w];
          for (;;) {
            std::uint32_t seen = state.load(std::memory_order_acquire);
            if (seen == kDone) break;
            if (seen == kSnapReady &&
                state.compare_exchange_strong(seen, kClaimed,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
              run_window(buffer, w, helper_scratch, helper_view,
                         helper_seconds);
              state.store(kDone, std::memory_order_release);
              break;
            }
            std::this_thread::yield();  // chase mid-window: let it finish
          }

          delta.clear();
          const std::size_t begin = w * window;
          const std::size_t end = std::min(begin + window, buffer.count);
          for (std::size_t j = begin; j < end; ++j) {
            Slot& slot = buffer.slots[j];
            const Proposal& proposal = slot.proposal;
            Assignment assignment;
            if (proposal.decided) {
              assignment = decided_assignment(proposal);
              ++decided;
            } else if (!speculable(proposal)) {
              const std::size_t chunk = j / kChunkRequests;
              assignment = harness.strategy->choose(
                  slot.request, proposal, buffer.arenas[chunk],
                  *harness.load_view, slot.rng);
              ++bypassed;
            } else {
              // Validate: the speculation holds iff no candidate's
              // effective load moved since the snapshot. Loads are
              // monotone counters, so value equality is an exact
              // changed-since test — an accepted speculation read the
              // very loads the serial choose would read now.
              const Load* effective = harness.stale
                                          ? harness.stale->data()
                                          : harness.tracker.data();
              const std::size_t chunk = j / kChunkRequests;
              const ProposedCandidate* candidates =
                  buffer.arenas[chunk].data() + proposal.first;
              const Load* snaps =
                  buffer.snaps[chunk].data() + proposal.first;
              bool valid = slot.spec_ok;
              if (valid) {
                for (std::uint32_t i = 0; i < proposal.count; ++i) {
                  if (effective[candidates[i].node] != snaps[i]) {
                    valid = false;
                    break;
                  }
                }
              }
              if (valid) {
                assignment = slot.spec_assignment;
                ++hits;
              } else {
                assignment = harness.strategy->choose(
                    slot.request, proposal, buffer.arenas[chunk],
                    *harness.load_view, slot.rng);
                ++conflicts;
              }
            }

            // Batched commit tail: same effects as RunHarness::commit, with
            // the counter bookkeeping folded into the window delta. Loads
            // themselves bump eagerly so LoadView reads and stale refreshes
            // stay exact mid-window.
            if (assignment.fallback) ++delta.fallbacks;
            if (assignment.server == kInvalidNode) {
              ++delta.dropped;
            } else {
              const Load post = harness.tracker.bump(assignment.server);
              if (post > delta.max_load) delta.max_load = post;
              ++delta.assigned;
              delta.total_hops += assignment.hops;
              ++committed_total;
              if (harness.stale) harness.stale->on_assignment(committed_total);
            }
          }
          harness.tracker.apply_window(delta);
          publish_snapshot(buffer, w + 2);
        }
        for (std::future<void>& chase : chases) {
          if (chase.valid()) chase.get();
        }
      } catch (...) {
        abort.store(true, std::memory_order_release);
        for (std::future<void>& chase : chases) {
          if (!chase.valid()) continue;
          try {
            chase.get();
          } catch (...) {  // NOLINT(bugprone-empty-catch) first error wins
          }
        }
        throw;
      }
    } else {
      // Plain serial commit: split strategies resume each pinned stream for
      // choose; non-split strategies run whole on the commit thread on the
      // same pre-derived stream — deterministic, just not sped up.
      for (std::size_t j = 0; j < buffer.count; ++j) {
        Slot& slot = buffer.slots[j];
        Assignment assignment;
        if (split) {
          assignment = harness.strategy->choose(
              slot.request, slot.proposal, buffer.arenas[j / kChunkRequests],
              *harness.load_view, slot.rng);
        } else {
          assignment = harness.strategy->assign(slot.request,
                                                *harness.load_view, slot.rng);
        }
        harness.commit(assignment);
      }
    }
    if (stats) {
      ++stats->batches;
      stats->requests += buffer.count;
      stats->commit_seconds += timer.seconds();
      if (speculative && buffer.count > 0) {
        stats->spec_windows += buffer.win_count;
        stats->spec_attempted += hits + conflicts;
        stats->spec_hits += hits;
        stats->spec_conflicts += conflicts;
        stats->spec_decided += decided;
        stats->spec_bypassed += bypassed;
        stats->speculate_seconds += helper_seconds + buffer.chase_seconds[0] +
                                    buffer.chase_seconds[1];
      }
      if (split) {
        if (pool_) stats->proposed_off_thread += buffer.count;
        const std::size_t used =
            (buffer.count + kChunkRequests - 1) / kChunkRequests;
        for (std::size_t chunk = 0; chunk < used; ++chunk) {
          const std::size_t begin = chunk * kChunkRequests;
          stats->lane_requests[chunk] +=
              std::min(buffer.count - begin, kChunkRequests);
        }
      }
    }
  };

  // Tasks capture the stack-local buffers: never unwind past them with
  // futures in flight.
  auto drain_all = [&]() noexcept {
    abort.store(true, std::memory_order_release);
    for (BatchBuffer& buffer : buffers) {
      for (std::future<void>& future : buffer.futures) {
        try {
          future.get();
        } catch (...) {  // NOLINT(bugprone-empty-catch)
        }
      }
      buffer.futures.clear();
    }
  };

  try {
    BatchBuffer* current = &buffers[0];
    BatchBuffer* next = &buffers[1];
    std::size_t current_id = 0;
    bool have = fill(*current);
    dispatch(*current, current_id);
    while (have) {
      // Overlap: generate the next batch while the current one proposes.
      const bool have_next = fill(*next);
      join(*current);
      if (have_next) dispatch(*next, 1 - current_id);
      commit(*current);
      std::swap(current, next);
      current_id = 1 - current_id;
      have = have_next;
    }
  } catch (...) {
    drain_all();
    throw;
  }

  return harness.finalize();
}

}  // namespace proxcache
