#include "parallel/sharded_runner.hpp"

#include <algorithm>
#include <array>
#include <exception>

#include "core/run_harness.hpp"
#include "random/seeding.hpp"
#include "strategy/registry.hpp"
#include "util/contracts.hpp"

namespace proxcache {

namespace {

/// Requests per worker task. Small enough that a batch splits into more
/// chunks than workers (load balancing), large enough to amortize the
/// submit/future overhead against ~100ns-per-request propose work.
constexpr std::size_t kChunkRequests = 512;

/// One request in flight: its proposal plus the post-propose state of its
/// pinned Rng stream (the Rng is 40 bytes — cheap to park in the slot so
/// `choose` can resume the exact stream `propose` left off).
struct Slot {
  Request request;
  Proposal proposal;
  Rng rng{0};
};

/// One half of the double buffer: the slots of a batch, a private arena per
/// chunk, and the in-flight futures. Workers touch only their own chunk's
/// slot range and arena.
struct BatchBuffer {
  std::vector<Slot> slots;
  std::size_t count = 0;    ///< admitted requests in this batch
  std::uint64_t base = 0;   ///< ordinal of slots[0] in the admitted stream
  std::vector<CandidateArena> arenas;
  std::vector<std::future<void>> futures;
};

}  // namespace

ShardedRunner::ShardedRunner(const SimulationContext& context,
                             ShardedRunOptions options)
    : context_(&context), options_(options) {
  PROXCACHE_REQUIRE(options.threads >= 1 && options.threads <= 1024,
                    "sharded engine threads must be in [1, 1024]");
  PROXCACHE_REQUIRE(options.batch >= 1, "shard batch must be >= 1");
  if (options_.threads >= 2) {
    pool_ = std::make_unique<ThreadPool>(options_.threads - 1);
  }
}

RunResult ShardedRunner::run(std::uint64_t run_index,
                             ShardStats* stats) const {
  RunHarness harness(*context_, run_index);
  const ExperimentConfig& config = context_->config();
  const std::uint64_t seed = config.seed;
  const bool split = harness.strategy->split_phase();
  const std::size_t batch = options_.batch;
  const std::size_t chunks = (batch + kChunkRequests - 1) / kChunkRequests;

  std::array<BatchBuffer, 2> buffers;
  for (BatchBuffer& buffer : buffers) {
    buffer.slots.resize(batch);
    buffer.arenas.resize(split ? chunks : 0);
    buffer.futures.reserve(chunks);
  }

  // Lane-private strategy instances: `propose` may mutate strategy-local
  // scratch, so every chunk slot of every buffer gets its own instance from
  // the registry factory. `harness.strategy` stays the commit thread's
  // instance (`choose` is const and safe alongside in-flight proposes).
  std::vector<std::unique_ptr<Strategy>> lanes;
  if (split) {
    const StrategyRegistry& registry = StrategyRegistry::global();
    const StrategyEntry& entry = registry.at(harness.spec.name);
    lanes.reserve(2 * chunks);
    for (std::size_t i = 0; i < 2 * chunks; ++i) {
      lanes.push_back(entry.factory(harness.spec, harness.index,
                                    context_->topology(), config));
    }
  }
  if (stats) {
    *stats = ShardStats{};
    stats->lane_requests.assign(split ? chunks : 0, 0);
  }

  std::uint64_t next_ordinal = 0;

  // Serial producer: trace generation + sanitize on the legacy sequential
  // streams — the admitted request stream is identical to the serial
  // engine's.
  auto fill = [&](BatchBuffer& buffer) {
    buffer.base = next_ordinal;
    buffer.count = 0;
    Request request;
    while (buffer.count < batch &&
           harness.sanitized.try_next(harness.trace_rng, request)) {
      buffer.slots[buffer.count].request = request;
      ++buffer.count;
    }
    next_ordinal += buffer.count;
    return buffer.count > 0;
  };

  auto propose_chunk = [&](BatchBuffer& buffer, std::size_t buffer_id,
                           std::size_t chunk) {
    const std::size_t begin = chunk * kChunkRequests;
    const std::size_t end = std::min(begin + kChunkRequests, buffer.count);
    Strategy& lane = *lanes[buffer_id * chunks + chunk];
    CandidateArena& arena = buffer.arenas[chunk];
    arena.clear();
    for (std::size_t j = begin; j < end; ++j) {
      Slot& slot = buffer.slots[j];
      slot.rng = Rng(derive_seed(
          seed, {run_index, seed_phase::kStrategy, buffer.base + j}));
      slot.proposal = Proposal{};
      lane.propose(slot.request, slot.rng, arena, slot.proposal);
    }
  };

  auto dispatch = [&](BatchBuffer& buffer, std::size_t buffer_id) {
    if (!split || buffer.count == 0) return;
    const std::size_t used =
        (buffer.count + kChunkRequests - 1) / kChunkRequests;
    for (std::size_t chunk = 0; chunk < used; ++chunk) {
      if (pool_) {
        buffer.futures.push_back(pool_->submit(
            [&buffer, buffer_id, chunk, &propose_chunk] {
              propose_chunk(buffer, buffer_id, chunk);
            }));
      } else {
        propose_chunk(buffer, buffer_id, chunk);
      }
    }
  };

  auto join = [&](BatchBuffer& buffer) {
    std::exception_ptr error;
    for (std::future<void>& future : buffer.futures) {
      try {
        future.get();
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    buffer.futures.clear();
    if (error) std::rethrow_exception(error);
  };

  // Serial committer: request order, live loads — the exact tail of the
  // serial loop, with each request's pinned stream resumed for its
  // load-dependent draws.
  auto commit = [&](BatchBuffer& buffer) {
    for (std::size_t j = 0; j < buffer.count; ++j) {
      Slot& slot = buffer.slots[j];
      Assignment assignment;
      if (split) {
        assignment = harness.strategy->choose(
            slot.request, slot.proposal, buffer.arenas[j / kChunkRequests],
            *harness.load_view, slot.rng);
      } else {
        // Non-split strategies run whole on the commit thread, same
        // per-request stream contract — deterministic, just not sped up.
        Rng rng(derive_seed(
            seed, {run_index, seed_phase::kStrategy, buffer.base + j}));
        assignment =
            harness.strategy->assign(slot.request, *harness.load_view, rng);
      }
      harness.commit(assignment);
    }
    if (stats) {
      ++stats->batches;
      stats->requests += buffer.count;
      if (split) {
        if (pool_) stats->proposed_off_thread += buffer.count;
        const std::size_t used =
            (buffer.count + kChunkRequests - 1) / kChunkRequests;
        for (std::size_t chunk = 0; chunk < used; ++chunk) {
          const std::size_t begin = chunk * kChunkRequests;
          stats->lane_requests[chunk] +=
              std::min(buffer.count - begin, kChunkRequests);
        }
      }
    }
  };

  // Tasks capture the stack-local buffers: never unwind past them with
  // futures in flight.
  auto drain_all = [&]() noexcept {
    for (BatchBuffer& buffer : buffers) {
      for (std::future<void>& future : buffer.futures) {
        try {
          future.get();
        } catch (...) {  // NOLINT(bugprone-empty-catch)
        }
      }
      buffer.futures.clear();
    }
  };

  try {
    BatchBuffer* current = &buffers[0];
    BatchBuffer* next = &buffers[1];
    std::size_t current_id = 0;
    bool have = fill(*current);
    dispatch(*current, current_id);
    while (have) {
      // Overlap: generate the next batch while the current one proposes.
      const bool have_next = fill(*next);
      join(*current);
      if (have_next) dispatch(*next, 1 - current_id);
      commit(*current);
      std::swap(current, next);
      current_id = 1 - current_id;
      have = have_next;
    }
  } catch (...) {
    drain_all();
    throw;
  }

  return harness.finalize();
}

}  // namespace proxcache
