#pragma once
/// \file parallel_for.hpp
/// Bulk-parallel helpers on top of ThreadPool.
///
/// `parallel_map` is the pattern the Monte-Carlo experiment runner uses:
/// `results[i] = fn(i)` for i in [0, count), computed on the pool, with the
/// output order fixed by index — so aggregated statistics are bit-identical
/// regardless of thread count.

#include <cstddef>
#include <future>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/contracts.hpp"

namespace proxcache {

/// Evaluate `fn(i)` for every index in [0, count) on the pool and return the
/// results in index order. `fn` must be invocable from multiple threads
/// concurrently (it receives only the index — per-task state should be
/// derived inside, e.g. a child Rng keyed by `i`).
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t count, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  using R = std::invoke_result_t<Fn, std::size_t>;
  std::vector<std::future<R>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([fn, i]() { return fn(i); }));
  }
  std::vector<R> results;
  results.reserve(count);
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

/// Run `fn(i)` for every index in [0, count) on the pool; blocks until done.
/// Exceptions from any task propagate (the first one encountered in index
/// order is rethrown).
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t count, Fn fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([fn, i]() { fn(i); }));
  }
  for (auto& future : futures) future.get();
}

}  // namespace proxcache
