#pragma once
/// \file parallel_for.hpp
/// Bulk-parallel helpers on top of ThreadPool.
///
/// `parallel_map` is the pattern the Monte-Carlo experiment runner uses:
/// `results[i] = fn(i)` for i in [0, count), computed on the pool, with the
/// output order fixed by index — so aggregated statistics are bit-identical
/// regardless of thread count.
///
/// Work is submitted in contiguous index chunks — a few tasks per worker,
/// not one future per index — so a 10k-replication experiment enqueues
/// ~4 × pool.size() tasks instead of 10k packaged_task/future pairs.

#include <algorithm>
#include <cstddef>
#include <future>
#include <iterator>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace proxcache {

namespace detail {

/// Number of contiguous chunks for `count` indices on `pool`: a small
/// multiple of the worker count smooths imbalance between chunks of
/// unequal cost, capped at one index per chunk.
inline std::size_t parallel_chunk_count(const ThreadPool& pool,
                                        std::size_t count) {
  const std::size_t workers = pool.size() > 0 ? pool.size() : 1;
  return std::min(count, workers * 4);
}

}  // namespace detail

/// Evaluate `fn(i)` for every index in [0, count) on the pool and return the
/// results in index order. `fn` must be invocable from multiple threads
/// concurrently (it receives only the index — per-task state should be
/// derived inside, e.g. a child Rng keyed by `i`). If tasks throw, the
/// remaining indices of each failing chunk are not evaluated (fail-fast
/// per chunk), every other chunk still runs to completion, and the
/// exception from the lowest-indexed failing chunk is rethrown — only
/// after all chunks have finished, so no task can outlive the call and
/// touch captured caller state.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t count, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  using R = std::invoke_result_t<Fn, std::size_t>;
  if (count == 0) return {};
  const std::size_t chunks = detail::parallel_chunk_count(pool, count);
  std::vector<std::future<std::vector<R>>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = count * c / chunks;
    const std::size_t end = count * (c + 1) / chunks;
    futures.push_back(pool.submit([fn, begin, end]() {
      std::vector<R> part;
      part.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) part.push_back(fn(i));
      return part;
    }));
  }
  std::vector<R> results;
  results.reserve(count);
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      std::vector<R> part = future.get();
      std::move(part.begin(), part.end(), std::back_inserter(results));
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

/// Run `fn(i)` for every index in [0, count) on the pool; blocks until every
/// chunk has finished, even when rethrowing. Exceptions from any task
/// propagate (the one from the lowest-indexed failing chunk is rethrown).
/// As with parallel_map, a throwing `fn(i)` skips the remaining indices of
/// its own chunk — callers needing every-index side effects despite
/// failures must catch inside `fn`.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t count, Fn fn) {
  if (count == 0) return;
  const std::size_t chunks = detail::parallel_chunk_count(pool, count);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = count * c / chunks;
    const std::size_t end = count * (c + 1) / chunks;
    futures.push_back(pool.submit([fn, begin, end]() {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace proxcache
