#include "parallel/thread_pool.hpp"

namespace proxcache {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& worker : workers_) worker.request_stop();
  ready_.notify_all();
  // std::jthread joins on destruction; worker_loop drains the queue first.
}

void ThreadPool::worker_loop(const std::stop_token& stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) {
        // Stop requested and no work left.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace proxcache
