#pragma once
/// \file sharded_runner.hpp
/// The sharded split-phase execution engine: parallelism *within* one run.
///
/// ## Why the serial loop cannot simply be replayed in parallel
/// The serial engine draws one sequential strategy stream whose per-request
/// draw *count* depends on live loads (tie-break draws happen only on load
/// equality), so request i's stream position depends on every prior
/// assignment — under that contract nothing is parallelizable. The sharded
/// engine therefore pins an independent strategy stream per request:
///
///     Rng(derive_seed(seed, {run_index, seed_phase::kStrategy, ordinal}))
///
/// where `ordinal` is the request's admitted position in the (unchanged,
/// serially generated) trace. That makes the load-independent half of every
/// decision a pure function of (request, ordinal) — computable on any
/// thread, in any order — while the load-dependent half commits serially in
/// request order against live loads, preserving the paper's sequential
/// balls-into-bins semantics exactly.
///
/// ## Pipeline
///
///     main thread                     worker pool (threads - 1)
///     ───────────                     ─────────────────────────
///     fill batch B  ──chunks──▶       propose chunk (lane-private
///     (trace gen + sanitize +          strategy + CandidateArena,
///      per-request pinned Rng          per-request pinned Rng)
///      derivation, serial, legacy
///      streams)
///     fill batch B+1 (overlapped)
///     join B ◀────────────────        …
///     commit B (windowed,      ──▶    speculation chase task:
///      speculative: validate +         choose() window w against the
///      batched load-delta apply;       committer's two-windows-ahead
///      serial re-choose on              candidate-load snapshots
///      conflict)
///
/// Two batch buffers double-buffer the pipeline: while batch B's proposals
/// are in flight, the main thread generates batch B+1; while B+1 proposes,
/// B commits. Each chunk owns a private strategy instance ("lane") and
/// arena, so workers share only immutable state (topology, placement,
/// replica index).
///
/// ## Speculative choose with validation (the commit-side fast path)
///
/// The serial commit loop is the engine's Amdahl wall: cheap-propose
/// strategies (two-choice d=2) spend most of their per-request time in
/// `choose` + metric bookkeeping, all on one thread. The speculative path
/// moves `choose` itself off-thread without changing a single result:
///
/// - the batch's commit phase is cut into **speculation windows** of
///   `spec_window` requests (default 32);
/// - right after committing window w, the committer records, for every
///   candidate of every request in window w+2, that candidate's load as
///   seen by the strategy's effective view (live tracker, or the stale
///   snapshot when `stale > 1`) — a per-candidate **snapshot** written into
///   the batch buffer, published with one release store;
/// - a single **chase task** on the pool claims windows in order and runs
///   `choose` for each request against its snapshot (through a small
///   candidate-local LoadView adapter, on a *copy* of the pinned Rng and a
///   *copy* of the candidate window, so the authoritative post-propose
///   state stays pristine);
/// - when the committer reaches window w it waits for (or claims and runs
///   inline — on narrow pools the committer steals windows rather than
///   spin) the speculation, then **validates** each request: the
///   speculation is accepted iff every candidate's current effective load
///   equals its snapshot value. Because per-node loads are monotone
///   counters (and stale snapshots only ever jump them upward at refresh),
///   the value *is* a per-node version stamp: equality proves the loads
///   `choose` read are exactly the loads the serial commit would have read,
///   so the accepted assignment — and nothing else, since each request's
///   pinned stream is never read again after its commit — is bit-identical
///   by construction. On a mismatch the committer falls back to a serial
///   re-choose on the untouched post-propose Rng and arena window: again
///   exactly the serial result.
///
/// Accepted speculations skip `choose`'s virtual LoadView dispatch
/// entirely: validation compares the slot's snapshot values against the raw
/// contiguous load array (`LoadTracker::data` / `StaleLoadView::data`), the
/// load increment goes through `LoadTracker::bump`, and the per-request
/// metric bookkeeping is batched into one `CommitWindowDelta` applied per
/// window — the batched load-delta commit path.
///
/// Because snapshot points (after window w-2), validation inputs, and the
/// per-request streams are all schedule-determined — never timing-
/// determined — the hit/conflict *counters* are deterministic too: the same
/// (batch, spec_window) pair reproduces them exactly at every engine width,
/// including width 1, which executes the identical schedule inline.
/// Speculation applies only to strategies with `split_phase() &&
/// choose_reads_candidates_only()`; others keep the plain serial commit.
/// Within a speculated batch, requests whose candidate window exceeds a
/// small cap (wide least-loaded radii) are chosen serially too
/// (`spec_bypassed`): snapshotting and validating a 100+-candidate window
/// costs more than the choose it would save, and wide windows conflict
/// almost surely anyway. The cap is a schedule-determined property of the
/// proposal, so bypasses are as deterministic as every other counter.
///
/// ## Determinism
/// Results are bit-identical across every thread count >= 1 (of *this*
/// engine), every batch size, every speculation window, and with
/// speculation on or off, because no value ever depends on scheduling: the
/// trace is generated serially on the legacy streams, each proposal is a
/// pure function of its pinned stream, the commit order is the request
/// order, and a speculation is only accepted when validation proves it
/// equals the serial choice. They are *not* bit-identical to the serial
/// engine's single-stream contract (`config.threads == 1`) — locked either
/// way by tests/test_sharded_equivalence.cpp and the golden masters in
/// tests/test_determinism.cpp.
///
/// Strategies that do not implement the split-phase protocol
/// (`split_phase() == false`, e.g. registry extensions) are executed
/// entirely on the commit thread with the same per-request pinned streams:
/// still deterministic, no speedup.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/simulation.hpp"
#include "parallel/thread_pool.hpp"

namespace proxcache {

/// Engine knobs. `threads = 1` runs the sharded *schedule* inline (the
/// equivalence suites' serial reference); `threads >= 2` spawns a pool of
/// `threads - 1` workers, the main thread being the generator/committer.
struct ShardedRunOptions {
  std::uint32_t threads = 2;
  std::size_t batch = 4096;  ///< requests per pipeline batch
  /// Commit mode: speculative choose + validation (default) or the plain
  /// serial commit loop. Results are bit-identical either way; the knob
  /// exists for the differential suites and the bench's Amdahl story.
  bool speculate = true;
  /// Requests per speculation window. Smaller windows validate against
  /// fresher snapshots (higher hit rate — staleness is ~1.5 windows of
  /// commits); larger windows amortize the per-window synchronization.
  std::size_t spec_window = 32;
};

/// Per-run engine counters and per-stage wall times (reported by
/// bench/micro_throughput.cpp — the measured, not asserted, Amdahl story).
struct ShardStats {
  std::uint64_t batches = 0;    ///< pipeline batches filled
  std::uint64_t requests = 0;   ///< admitted requests committed
  std::uint64_t proposed_off_thread = 0;  ///< requests proposed on the pool

  // Speculation outcome counters (deterministic for a fixed
  // (batch, spec_window) schedule — identical at every width).
  std::uint64_t spec_windows = 0;    ///< speculation windows processed
  std::uint64_t spec_attempted = 0;  ///< load-dependent requests speculated
  std::uint64_t spec_hits = 0;       ///< speculations validated + accepted
  std::uint64_t spec_conflicts = 0;  ///< validation failures (re-chosen)
  std::uint64_t spec_decided = 0;    ///< proposals final before choose
                                     ///  (e.g. nearest): nothing to validate
  std::uint64_t spec_bypassed = 0;   ///< candidate window over the
                                     ///  speculation cap: chosen serially

  // Per-stage wall time, seconds, accumulated over the run. fill/join/
  // commit are main-thread stages; propose/speculate sum the task-side wall
  // time across workers (so propose_seconds > commit wall time means the
  // pool genuinely carried the load).
  double fill_seconds = 0.0;
  double propose_seconds = 0.0;
  double join_seconds = 0.0;
  double speculate_seconds = 0.0;
  double commit_seconds = 0.0;

  /// Requests proposed per lane (chunk slot within a batch). Lanes are the
  /// unit of worker-side sharding; the vector length is the chunk count.
  std::vector<std::uint64_t> lane_requests;
  /// Propose wall time per lane, seconds — the lane-utilization profile.
  std::vector<double> lane_seconds;

  /// Speculation hit rate over the requests that had anything to validate.
  [[nodiscard]] double spec_hit_rate() const {
    const std::uint64_t attempted = spec_hits + spec_conflicts;
    return attempted == 0
               ? 0.0
               : static_cast<double>(spec_hits) /
                     static_cast<double>(attempted);
  }
};

/// The engine. Construct once per (context, options); `run` is const and
/// builds only per-run state, like `SimulationContext::run`.
class ShardedRunner {
 public:
  ShardedRunner(const SimulationContext& context, ShardedRunOptions options);

  /// Execute replication `run_index` under the sharded seed contract.
  /// Optionally reports engine counters into `stats`.
  [[nodiscard]] RunResult run(std::uint64_t run_index,
                              ShardStats* stats = nullptr) const;

  [[nodiscard]] std::uint32_t threads() const { return options_.threads; }
  [[nodiscard]] std::size_t batch() const { return options_.batch; }
  [[nodiscard]] bool speculate() const { return options_.speculate; }
  [[nodiscard]] std::size_t spec_window() const {
    return options_.spec_window;
  }

 private:
  const SimulationContext* context_;
  ShardedRunOptions options_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when threads == 1
};

}  // namespace proxcache
