#pragma once
/// \file sharded_runner.hpp
/// The sharded split-phase execution engine: parallelism *within* one run.
///
/// ## Why the serial loop cannot simply be replayed in parallel
/// The serial engine draws one sequential strategy stream whose per-request
/// draw *count* depends on live loads (tie-break draws happen only on load
/// equality), so request i's stream position depends on every prior
/// assignment — under that contract nothing is parallelizable. The sharded
/// engine therefore pins an independent strategy stream per request:
///
///     Rng(derive_seed(seed, {run_index, seed_phase::kStrategy, ordinal}))
///
/// where `ordinal` is the request's admitted position in the (unchanged,
/// serially generated) trace. That makes the load-independent half of every
/// decision a pure function of (request, ordinal) — computable on any
/// thread, in any order — while the load-dependent half commits serially in
/// request order against live loads, preserving the paper's sequential
/// balls-into-bins semantics exactly.
///
/// ## Pipeline
///
///     main thread                     worker pool (threads - 1)
///     ───────────                     ─────────────────────────
///     fill batch B  ──chunks──▶       propose chunk (lane-private
///     (trace gen + sanitize,           strategy + CandidateArena,
///      serial, legacy streams)         per-request pinned Rng)
///     fill batch B+1 (overlapped)
///     join B ◀────────────────        …
///     commit B serially in order
///     (choose on live loads, tie
///      draws resume each request's
///      pinned stream; tracker +
///      stale view exactly as the
///      serial loop)
///
/// Two batch buffers double-buffer the pipeline: while batch B's proposals
/// are in flight, the main thread generates batch B+1; while B+1 proposes,
/// B commits. Each chunk owns a private strategy instance ("lane") and
/// arena, so workers share only immutable state (topology, placement,
/// replica index).
///
/// ## Determinism
/// Results are bit-identical across every thread count >= 1 (of *this*
/// engine) and every batch size, because no value ever depends on
/// scheduling: the trace is generated serially on the legacy streams, each
/// proposal is a pure function of its pinned stream, and the commit order
/// is the request order. They are *not* bit-identical to the serial
/// engine's single-stream contract (`config.threads == 1`) — locked either
/// way by tests/test_sharded_equivalence.cpp and the golden masters in
/// tests/test_determinism.cpp.
///
/// Strategies that do not implement the split-phase protocol
/// (`split_phase() == false`, e.g. registry extensions) are executed
/// entirely on the commit thread with the same per-request pinned streams:
/// still deterministic, no speedup.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/simulation.hpp"
#include "parallel/thread_pool.hpp"

namespace proxcache {

/// Engine knobs. `threads = 1` runs the sharded *schedule* inline (the
/// equivalence suites' serial reference); `threads >= 2` spawns a pool of
/// `threads - 1` workers, the main thread being the generator/committer.
struct ShardedRunOptions {
  std::uint32_t threads = 2;
  std::size_t batch = 4096;  ///< requests per pipeline batch
};

/// Per-run engine counters (reported by bench/micro_throughput.cpp).
struct ShardStats {
  std::uint64_t batches = 0;    ///< pipeline batches filled
  std::uint64_t requests = 0;   ///< admitted requests committed
  std::uint64_t proposed_off_thread = 0;  ///< requests proposed on the pool
  /// Requests proposed per lane (chunk slot within a batch). Lanes are the
  /// unit of worker-side sharding; the vector length is the chunk count.
  std::vector<std::uint64_t> lane_requests;
};

/// The engine. Construct once per (context, options); `run` is const and
/// builds only per-run state, like `SimulationContext::run`.
class ShardedRunner {
 public:
  ShardedRunner(const SimulationContext& context, ShardedRunOptions options);

  /// Execute replication `run_index` under the sharded seed contract.
  /// Optionally reports engine counters into `stats`.
  [[nodiscard]] RunResult run(std::uint64_t run_index,
                              ShardStats* stats = nullptr) const;

  [[nodiscard]] std::uint32_t threads() const { return options_.threads; }
  [[nodiscard]] std::size_t batch() const { return options_.batch; }

 private:
  const SimulationContext* context_;
  ShardedRunOptions options_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when threads == 1
};

}  // namespace proxcache
