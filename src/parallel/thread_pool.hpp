#pragma once
/// \file thread_pool.hpp
/// Fixed-size RAII worker pool.
///
/// Follows the C++ Core Guidelines concurrency rules: threads are joined by
/// RAII (`std::jthread`), shared state is confined behind one mutex, and
/// work items communicate results exclusively through futures (CP.23/CP.32:
/// no raw shared data, pass by value into tasks). Exceptions thrown inside a
/// task surface at `future::get()`.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace proxcache {

/// Fixed-size thread pool; destruction drains already-submitted work.
class ThreadPool {
 public:
  /// Spawn `threads` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Blocks until all queued tasks complete, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      std::scoped_lock lock(mutex_);
      queue_.emplace_back([packaged]() { (*packaged)(); });
    }
    ready_.notify_one();
    return result;
  }

 private:
  void worker_loop(const std::stop_token& stop);

  std::mutex mutex_;
  std::condition_variable_any ready_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::jthread> workers_;
};

}  // namespace proxcache
