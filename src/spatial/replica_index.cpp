#include "spatial/replica_index.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace proxcache {

ReplicaIndex::ReplicaIndex(const Lattice& lattice, const Placement& placement,
                           std::size_t bucket_threshold)
    : lattice_(&lattice), placement_(&placement) {
  PROXCACHE_REQUIRE(lattice.size() == placement.num_nodes(),
                    "lattice and placement disagree on node count");
  buckets_.resize(placement.num_files());
  if (bucket_threshold == 0) return;
  for (FileId j = 0; j < placement.num_files(); ++j) {
    const auto list = placement.replicas(j);
    if (list.size() >= bucket_threshold) {
      buckets_[j] = std::make_unique<BucketGrid>(
          lattice, std::vector<NodeId>(list.begin(), list.end()));
    }
  }
}

NearestResult ReplicaIndex::nearest_by_scan(NodeId u, FileId j,
                                            Rng& rng) const {
  const auto list = placement_->replicas(j);
  NearestResult result;
  if (list.empty()) return result;

  Hop best = lattice_->diameter() + 1;
  ReservoirOne reservoir(rng);
  for (const NodeId v : list) {
    const Hop d = lattice_->distance(u, v);
    if (d < best) {
      best = d;
      reservoir = ReservoirOne(rng);  // restart ties at the new minimum
      reservoir.offer(v);
    } else if (d == best) {
      reservoir.offer(v);
    }
  }
  result.server = *reservoir.value();
  result.distance = best;
  result.ties = static_cast<std::uint32_t>(reservoir.count());
  return result;
}

NearestResult ReplicaIndex::nearest_by_shells(NodeId u, FileId j,
                                              Rng& rng) const {
  NearestResult result;
  const Hop diameter = lattice_->diameter();
  for (Hop d = 0; d <= diameter; ++d) {
    ReservoirOne reservoir(rng);
    for_each_at_distance(*lattice_, u, d, [&](NodeId v) {
      if (placement_->caches(v, j)) reservoir.offer(v);
    });
    if (reservoir.count() > 0) {
      result.server = *reservoir.value();
      result.distance = d;
      result.ties = static_cast<std::uint32_t>(reservoir.count());
      return result;
    }
  }
  return result;  // no replica anywhere
}

NearestResult ReplicaIndex::nearest(NodeId u, FileId j, Rng& rng) const {
  const std::size_t replicas = placement_->replica_count(j);
  if (replicas == 0) return NearestResult{};
  // List scan costs ~|S_j| distance evaluations; the shell scan visits
  // ~n/|S_j| nodes before the first hit. Crossover at |S_j|² ≈ n.
  const std::size_t n = lattice_->size();
  if (replicas * replicas <= n) {
    return nearest_by_scan(u, j, rng);
  }
  return nearest_by_shells(u, j, rng);
}

std::size_t ReplicaIndex::count_replicas_within(NodeId u, FileId j,
                                                Hop r) const {
  std::size_t count = 0;
  for_each_replica_within(u, j, r, [&](NodeId, Hop) { ++count; });
  return count;
}

}  // namespace proxcache
