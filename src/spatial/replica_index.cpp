#include "spatial/replica_index.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace proxcache {

namespace {

/// One copy of the nearest-scan logic (minimum distance, ties reservoir-
/// sampled), instantiated for the devirtualized lattice path and the
/// generic Topology path.
template <typename TopologyT>
NearestResult nearest_on(const TopologyT& topology,
                         std::span<const NodeId> list, NodeId u,
                         Hop sentinel, Rng& rng) {
  NearestResult result;
  Hop best = sentinel;
  ReservoirOne reservoir(rng);
  for (const NodeId v : list) {
    const Hop d = topology.distance(u, v);
    if (d < best) {
      best = d;
      reservoir = ReservoirOne(rng);  // restart ties at the new minimum
      reservoir.offer(v);
    } else if (d == best) {
      reservoir.offer(v);
    }
  }
  result.server = *reservoir.value();
  result.distance = best;
  result.ties = static_cast<std::uint32_t>(reservoir.count());
  return result;
}

}  // namespace

ReplicaIndex::ReplicaIndex(const Topology& topology,
                           const Placement& placement,
                           std::size_t bucket_threshold)
    : topology_(&topology),
      lattice_(topology.as_lattice()),
      placement_(&placement) {
  PROXCACHE_REQUIRE(topology.size() == placement.num_nodes(),
                    "topology and placement disagree on node count");
  buckets_.resize(placement.num_files());
  // Bucket grids are a lattice coordinate structure; other topologies
  // answer radius queries through the replica-list scan.
  if (bucket_threshold == 0 || lattice_ == nullptr) return;
  for (FileId j = 0; j < placement.num_files(); ++j) {
    const auto list = placement.replicas(j);
    if (list.size() >= bucket_threshold) {
      buckets_[j] = std::make_unique<BucketGrid>(
          *lattice_, std::vector<NodeId>(list.begin(), list.end()));
    }
  }
}

NearestResult ReplicaIndex::nearest_by_scan(NodeId u, FileId j,
                                            Rng& rng) const {
  const auto list = placement_->replicas(j);
  if (list.empty()) return NearestResult{};

  const Hop sentinel = topology_->diameter() + 1;
  if (lattice_ != nullptr) {
    return nearest_on(*lattice_, list, u, sentinel, rng);
  }
  return nearest_on(*topology_, list, u, sentinel, rng);
}

NearestResult ReplicaIndex::nearest_by_shells(NodeId u, FileId j,
                                              Rng& rng) const {
  NearestResult result;
  const Hop diameter = topology_->diameter();
  for (Hop d = 0; d <= diameter; ++d) {
    ReservoirOne reservoir(rng);
    for_each_at_distance(*topology_, u, d, [&](NodeId v) {
      if (placement_->caches(v, j)) reservoir.offer(v);
    });
    if (reservoir.count() > 0) {
      result.server = *reservoir.value();
      result.distance = d;
      result.ties = static_cast<std::uint32_t>(reservoir.count());
      return result;
    }
  }
  return result;  // no replica anywhere
}

NearestResult ReplicaIndex::nearest(NodeId u, FileId j, Rng& rng) const {
  const std::size_t replicas = placement_->replica_count(j);
  if (replicas == 0) return NearestResult{};
  // List scan costs ~|S_j| distance evaluations; the shell scan visits
  // ~n/|S_j| nodes before the first hit. Crossover at |S_j|² ≈ n — but
  // only where shells enumerate directly; on scan-based topologies every
  // shell is itself O(n), so the list scan always wins there.
  const std::size_t n = topology_->size();
  if (replicas * replicas <= n ||
      !topology_->directly_enumerates_shells()) {
    return nearest_by_scan(u, j, rng);
  }
  return nearest_by_shells(u, j, rng);
}

std::size_t ReplicaIndex::count_replicas_within(NodeId u, FileId j,
                                                Hop r) const {
  std::size_t count = 0;
  for_each_replica_within(u, j, r, [&](NodeId, Hop) { ++count; });
  return count;
}

}  // namespace proxcache
