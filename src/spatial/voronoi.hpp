#pragma once
/// \file voronoi.hpp
/// Per-file Voronoi tessellation of the lattice (paper §III, Lemma 1).
///
/// Strategy I induces, for each file `j`, a Voronoi partition of the torus
/// around the replica set `S_j`: every node belongs to the cell of its
/// nearest replica. Lemma 1 bounds the maximum cell size by
/// `O(K log n / M)`; the tessellation here lets tests cross-check the
/// nearest-replica search and lets `bench/lemma1_voronoi_cells` measure the
/// actual cell-size distribution.
///
/// Ties are resolved to the smallest center id, which yields a deterministic
/// partition (the layered multi-source BFS propagates the minimum owner
/// exactly; see the correctness note in voronoi.cpp).

#include <cstddef>
#include <vector>

#include "topology/lattice.hpp"
#include "util/types.hpp"

namespace proxcache {

/// A complete assignment of lattice nodes to their nearest center.
class VoronoiTessellation {
 public:
  /// Multi-source BFS from `centers` (at least one). O(n) time and space.
  VoronoiTessellation(const Lattice& lattice,
                      const std::vector<NodeId>& centers);

  /// Owning center of node `u` (smallest id among equidistant centers).
  [[nodiscard]] NodeId owner(NodeId u) const { return owner_[u]; }

  /// Hop distance from `u` to its nearest center.
  [[nodiscard]] Hop distance(NodeId u) const { return distance_[u]; }

  /// Number of nodes owned by `center` (0 if not a center).
  [[nodiscard]] std::size_t cell_size(NodeId center) const;

  /// Largest cell size across all centers.
  [[nodiscard]] std::size_t max_cell_size() const;

  /// Average distance of a node to its nearest center (= the exact
  /// communication cost of Strategy I for this file under smallest-id tie
  /// breaking; random tie breaking has the same distances).
  [[nodiscard]] double mean_distance() const;

  [[nodiscard]] const std::vector<NodeId>& owners() const { return owner_; }
  [[nodiscard]] const std::vector<Hop>& distances() const { return distance_; }

 private:
  std::vector<NodeId> owner_;
  std::vector<Hop> distance_;
  std::vector<std::size_t> cell_sizes_;  // indexed by center id, sparse
};

}  // namespace proxcache
