#include "spatial/voronoi.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/contracts.hpp"

namespace proxcache {

// Correctness of min-owner propagation: let c*(v) be the smallest-id center
// at minimal distance d(v). Any shortest path v → c*(v) steps first to a
// neighbour u with d(u) = d(v) − 1 (u cannot be closer to any other center,
// otherwise v would be closer than d(v)). c*(v) is among u's nearest
// centers, and no nearest center c' of u with c' < c*(v) can exist — it
// would also be at distance ≤ d(v) from v, contradicting minimality of
// c*(v). Hence owner(v) = min over BFS predecessors' owners, which is what
// the FIFO layered relaxation below computes: all layer-(d−1) owners are
// final before any layer-d node is dequeued.
VoronoiTessellation::VoronoiTessellation(const Lattice& lattice,
                                         const std::vector<NodeId>& centers) {
  PROXCACHE_REQUIRE(!centers.empty(), "tessellation needs >= 1 center");
  const std::size_t n = lattice.size();
  constexpr Hop kUnreached = std::numeric_limits<Hop>::max();
  owner_.assign(n, kInvalidNode);
  distance_.assign(n, kUnreached);

  std::deque<NodeId> frontier;
  for (const NodeId c : centers) {
    PROXCACHE_REQUIRE(c < n, "center id out of range");
    if (distance_[c] == 0 && owner_[c] != kInvalidNode) {
      owner_[c] = std::min(owner_[c], c);
      continue;  // duplicate center
    }
    distance_[c] = 0;
    owner_[c] = std::min(owner_[c] == kInvalidNode ? c : owner_[c], c);
    frontier.push_back(c);
  }

  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const NodeId v : lattice.neighbors(u)) {
      if (distance_[v] == kUnreached) {
        distance_[v] = distance_[u] + 1;
        owner_[v] = owner_[u];
        frontier.push_back(v);
      } else if (distance_[v] == distance_[u] + 1) {
        owner_[v] = std::min(owner_[v], owner_[u]);
      }
    }
  }

  cell_sizes_.assign(n, 0);
  for (const NodeId o : owner_) {
    PROXCACHE_CHECK(o != kInvalidNode, "lattice must be fully covered");
    ++cell_sizes_[o];
  }
}

std::size_t VoronoiTessellation::cell_size(NodeId center) const {
  PROXCACHE_REQUIRE(center < cell_sizes_.size(), "center id out of range");
  return cell_sizes_[center];
}

std::size_t VoronoiTessellation::max_cell_size() const {
  return *std::max_element(cell_sizes_.begin(), cell_sizes_.end());
}

double VoronoiTessellation::mean_distance() const {
  double total = 0.0;
  for (const Hop d : distance_) total += static_cast<double>(d);
  return total / static_cast<double>(distance_.size());
}

}  // namespace proxcache
