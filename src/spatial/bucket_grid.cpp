#include "spatial/bucket_grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace proxcache {

BucketGrid::BucketGrid(const Lattice& lattice, std::vector<NodeId> points,
                       std::int32_t cell_hint)
    : lattice_(&lattice) {
  if (cell_hint > 0) {
    cell_ = cell_hint;
  } else {
    // Target roughly one point per cell: cell ≈ side / sqrt(|points|).
    const double target = static_cast<double>(lattice.side()) /
                          std::sqrt(static_cast<double>(
                              std::max<std::size_t>(points.size(), 1)));
    cell_ = std::max<std::int32_t>(1, static_cast<std::int32_t>(target));
  }
  cell_ = std::min(cell_, lattice.side());
  if (lattice.wrap() == Wrap::Torus) {
    // Wraparound cell arithmetic requires cell_ | side; round down to the
    // nearest divisor (terminates at 1, which always divides).
    while (lattice.side() % cell_ != 0) --cell_;
  }
  cells_per_axis_ = (lattice.side() + cell_ - 1) / cell_;

  const std::size_t num_cells = static_cast<std::size_t>(cells_per_axis_) *
                                static_cast<std::size_t>(cells_per_axis_);
  std::vector<std::uint32_t> counts(num_cells, 0);
  const auto cell_of = [&](NodeId p) {
    const Point pt = lattice_->coord(p);
    const std::size_t cx = static_cast<std::size_t>(pt.x / cell_);
    const std::size_t cy = static_cast<std::size_t>(pt.y / cell_);
    return cy * static_cast<std::size_t>(cells_per_axis_) + cx;
  };
  for (const NodeId p : points) ++counts[cell_of(p)];

  offsets_.assign(num_cells + 1, 0);
  for (std::size_t i = 0; i < num_cells; ++i) {
    offsets_[i + 1] = offsets_[i] + counts[i];
  }
  points_.resize(points.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const NodeId p : points) {
    points_[cursor[cell_of(p)]++] = p;
  }
}

}  // namespace proxcache
