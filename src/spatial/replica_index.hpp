#pragma once
/// \file replica_index.hpp
/// Spatial queries over a placement: nearest replica of a file (with exact
/// uniform tie breaking) and radius-filtered replica streams. This is the
/// query layer all allocation strategies are built on, and it works over
/// any `Topology` (topology/topology.hpp).
///
/// Two complementary algorithms answer nearest-replica queries:
///
///  * **replica-list scan** — O(|S_j|): walk the file's replica list,
///    tracking the minimum distance (reservoir-sampled among ties);
///  * **expanding-shell scan** — O(|B_d*|·log M): walk shells of increasing
///    distance around the requester until the first shell containing a
///    replica (then finish that shell for ties).
///
/// The first wins when replicas are sparse, the second when they are dense;
/// `nearest()` picks automatically (`|S_j|² ≶ n` crossover). Both are exact
/// and tests cross-validate them. Radius streams use the replica list or a
/// per-file bucket grid (built for files with large `|S_j|` — lattice
/// topologies only; the grid is a coordinate structure).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "catalog/placement.hpp"
#include "random/rng.hpp"
#include "random/sampling.hpp"
#include "spatial/bucket_grid.hpp"
#include "topology/lattice.hpp"
#include "topology/shells.hpp"
#include "topology/topology.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Result of a nearest-replica query.
struct NearestResult {
  NodeId server = kInvalidNode;  ///< chosen replica (invalid if none exists)
  Hop distance = 0;              ///< hop distance to it
  std::uint32_t ties = 0;        ///< number of equidistant candidates
};

/// Spatial query index bound to one (topology, placement) pair. Holds
/// references; the topology and placement must outlive the index.
class ReplicaIndex {
 public:
  /// Build the index. On lattice topologies, files whose replica list
  /// exceeds `bucket_threshold` get a bucket grid for radius queries
  /// (0 disables bucket grids; non-lattice topologies never build them).
  ReplicaIndex(const Topology& topology, const Placement& placement,
               std::size_t bucket_threshold = 512);

  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] const Placement& placement() const { return *placement_; }

  /// Nearest replica of `j` to `u`, uniform among ties; automatic algorithm
  /// selection. Returns an invalid server if the file has no replica.
  NearestResult nearest(NodeId u, FileId j, Rng& rng) const;

  /// Nearest replica via the replica-list scan (always exact).
  NearestResult nearest_by_scan(NodeId u, FileId j, Rng& rng) const;

  /// Nearest replica via the expanding-shell scan (always exact).
  NearestResult nearest_by_shells(NodeId u, FileId j, Rng& rng) const;

  /// Invoke `fn(NodeId replica, Hop distance)` for every replica of `j`
  /// within distance `r` of `u` (including `u` itself if it caches `j`).
  /// Each replica visited exactly once, unspecified order.
  template <typename Fn>
  void for_each_replica_within(NodeId u, FileId j, Hop r, Fn&& fn) const {
    if (r >= topology_->diameter()) {
      // Unconstrained: the whole replica list qualifies.
      scan_replicas(u, j, kUnboundedRadius, std::forward<Fn>(fn));
      return;
    }
    if (buckets_[j]) {
      buckets_[j]->for_each_within(u, r, std::forward<Fn>(fn));
      return;
    }
    if (topology_->prefers_local_enumeration() &&
        r <= topology_->local_enumeration_horizon(u)) {
      // Sparse graph oracles, inside the budget ball: walk the ball around
      // the requester — exact distances, touches a bounded number of nodes
      // — instead of scanning the global replica list through
      // (approximate, per-source-BFS) far-pair distance queries. Beyond
      // the horizon the "ball" can be most of the graph (hyperbolic /
      // expander topologies have diameter O(log n)), so the list scan wins
      // again; there `d` may be a landmark upper bound, which only ever
      // *excludes* replicas whose true distance is within r, never admits
      // one beyond.
      for_each_in_ball(*topology_, u, r, [&](NodeId v, Hop d) {
        if (placement_->caches(v, j)) fn(v, d);
      });
      return;
    }
    scan_replicas(u, j, r, std::forward<Fn>(fn));
  }

  /// `|F_j(u)|` — number of replicas of `j` within distance `r` of `u`.
  [[nodiscard]] std::size_t count_replicas_within(NodeId u, FileId j,
                                                  Hop r) const;

  /// True iff file `j` has a bucket grid (exposed for tests/benches).
  [[nodiscard]] bool has_bucket_grid(FileId j) const {
    return buckets_[j] != nullptr;
  }

 private:
  /// One copy of the replica-list scan, instantiated for the concrete
  /// lattice type (devirtualized distance — Lattice is final) and for the
  /// generic Topology. `r = kUnboundedRadius` admits every replica.
  template <typename TopologyT, typename Fn>
  static void scan_replicas_on(const TopologyT& topology,
                               std::span<const NodeId> list, NodeId u, Hop r,
                               Fn&& fn) {
    for (const NodeId v : list) {
      const Hop d = topology.distance(u, v);
      if (r == kUnboundedRadius || d <= r) fn(v, d);
    }
  }

  /// Dispatch the scan to the devirtualized lattice path when possible.
  template <typename Fn>
  void scan_replicas(NodeId u, FileId j, Hop r, Fn&& fn) const {
    const auto list = placement_->replicas(j);
    if (lattice_ != nullptr) {
      scan_replicas_on(*lattice_, list, u, r, std::forward<Fn>(fn));
    } else {
      scan_replicas_on(*topology_, list, u, r, std::forward<Fn>(fn));
    }
  }

  const Topology* topology_;
  const Lattice* lattice_;  ///< `topology_->as_lattice()`, cached
  const Placement* placement_;
  std::vector<std::unique_ptr<BucketGrid>> buckets_;
};

}  // namespace proxcache
