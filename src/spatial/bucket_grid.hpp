#pragma once
/// \file bucket_grid.hpp
/// Uniform bucket-grid spatial index over a point set on the lattice.
///
/// Used by the replica index to answer "replicas of file j within hop
/// distance r of u" without scanning the whole replica list when `|S_j|` is
/// large. Cells are `cell × cell` squares; a radius query visits only the
/// cells intersecting the L1 ball's bounding box (with torus wraparound) and
/// applies the exact distance predicate per point.

#include <cstdint>
#include <vector>

#include "topology/lattice.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Immutable bucket-grid over a fixed set of lattice nodes.
class BucketGrid {
 public:
  /// Index `points` (node ids on `lattice`); `cell_hint == 0` picks a cell
  /// size targeting ~1 point per cell.
  BucketGrid(const Lattice& lattice, std::vector<NodeId> points,
             std::int32_t cell_hint = 0);

  /// Number of indexed points.
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Chosen cell edge length.
  [[nodiscard]] std::int32_t cell() const { return cell_; }

  /// Invoke `fn(NodeId point, Hop distance)` for every indexed point within
  /// hop distance `r` of `center`. Order is unspecified; each point is
  /// visited exactly once.
  template <typename Fn>
  void for_each_within(NodeId center, Hop r, Fn&& fn) const {
    const Point c = lattice_->coord(center);
    const auto radius = static_cast<std::int32_t>(
        std::min<Hop>(r, lattice_->diameter()));
    // Bounding box of the L1 ball in cell coordinates. In torus mode the
    // constructor guarantees cell_ | side, so shifting a coordinate by
    // ±side shifts the cell index by ±cells_per_axis_ — modular reduction
    // of cell indices is then exact.
    std::int32_t lo_cx = floor_div(c.x - radius, cell_);
    std::int32_t hi_cx = floor_div(c.x + radius, cell_);
    std::int32_t lo_cy = floor_div(c.y - radius, cell_);
    std::int32_t hi_cy = floor_div(c.y + radius, cell_);
    if (lattice_->wrap() == Wrap::Grid) {
      lo_cx = std::max(lo_cx, 0);
      lo_cy = std::max(lo_cy, 0);
      hi_cx = std::min(hi_cx, cells_per_axis_ - 1);
      hi_cy = std::min(hi_cy, cells_per_axis_ - 1);
      if (lo_cx > hi_cx || lo_cy > hi_cy) return;
    }
    // Never visit the same cell twice when the box wraps all the way round.
    const std::int32_t span_x =
        std::min(hi_cx - lo_cx + 1, cells_per_axis_);
    const std::int32_t span_y =
        std::min(hi_cy - lo_cy + 1, cells_per_axis_);
    for (std::int32_t dy = 0; dy < span_y; ++dy) {
      for (std::int32_t dx = 0; dx < span_x; ++dx) {
        const std::int32_t cx = wrap_cell(lo_cx + dx);
        const std::int32_t cy = wrap_cell(lo_cy + dy);
        const std::size_t cell_index =
            static_cast<std::size_t>(cy) *
                static_cast<std::size_t>(cells_per_axis_) +
            static_cast<std::size_t>(cx);
        for (std::uint32_t i = offsets_[cell_index];
             i < offsets_[cell_index + 1]; ++i) {
          const NodeId point = points_[i];
          const Hop d = lattice_->distance(center, point);
          if (d <= r) fn(point, d);
        }
      }
    }
  }

 private:
  static std::int32_t floor_div(std::int32_t a, std::int32_t b) {
    std::int32_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
  }

  [[nodiscard]] std::int32_t wrap_cell(std::int32_t c) const {
    if (lattice_->wrap() == Wrap::Grid) return c;  // caller bounds-checks
    c %= cells_per_axis_;
    if (c < 0) c += cells_per_axis_;
    return c;
  }

  const Lattice* lattice_;
  std::int32_t cell_;
  std::int32_t cells_per_axis_;
  std::vector<std::uint32_t> offsets_;  // CSR over cells
  std::vector<NodeId> points_;          // bucket-sorted point ids
};

}  // namespace proxcache
