#pragma once
/// \file run_harness.hpp
/// Per-replication state shared by both execution engines.
///
/// `SimulationContext::run` historically built all per-run state inline:
/// placement, trace source + sanitizer (with the repair-stream scout
/// pre-advance), replica index, strategy, load tracker, stale view. The
/// sharded engine (src/parallel/sharded_runner.hpp) needs the *same* state
/// built in the *same* order — any drift would silently break the engines'
/// shared semantics — so the construction lives here once and both engines
/// drive the resulting bundle. The members are deliberately public: this is
/// a plain state bundle with an invariant-free surface, not an abstraction;
/// the engines own the control flow.

#include <cstdint>
#include <memory>

#include "catalog/placement.hpp"
#include "core/metrics.hpp"
#include "core/simulation.hpp"
#include "core/stale_view.hpp"
#include "core/strategy.hpp"
#include "random/rng.hpp"
#include "scenario/trace_source.hpp"
#include "spatial/replica_index.hpp"
#include "strategy/spec.hpp"

namespace proxcache {

/// Everything one replication needs, constructed exactly as the historical
/// serial loop did (same seed phases, same scout pre-advance condition, same
/// registry path). Non-copyable: the sanitizer and stale view hold stable
/// pointers into sibling members.
class RunHarness {
 public:
  RunHarness(const SimulationContext& context, std::uint64_t run_index);
  RunHarness(const RunHarness&) = delete;
  RunHarness& operator=(const RunHarness&) = delete;

  [[nodiscard]] const SimulationContext& context() const { return *context_; }

  /// Apply one decision to the trackers — the exact tail of the historical
  /// request loop (fallback note, drop handling, stale refresh).
  void commit(const Assignment& assignment) {
    if (assignment.fallback) tracker.note_fallback();
    if (assignment.server == kInvalidNode) {
      tracker.drop();
      return;
    }
    tracker.assign(assignment.server, assignment.hops);
    if (stale) stale->on_assignment(tracker.assigned());
  }

  /// Collect the RunResult once the trace is drained.
  [[nodiscard]] RunResult finalize() const;

 private:
  const SimulationContext* context_;

 public:
  // Members in construction (= historical) order; later members point into
  // earlier ones.
  Placement placement;
  Rng trace_rng;
  /// Positioned per the repair-stream contract: a copy of the fresh trace
  /// stream, scout-advanced through the whole generation sequence only when
  /// the Resample policy can actually fire (see trace_source.hpp).
  Rng repair_rng;
  std::unique_ptr<TraceSource> source;
  SanitizingTraceSource sanitized;
  ReplicaIndex index;
  StrategySpec spec;  ///< resolved strategy spec, registry defaults filled
  std::unique_ptr<Strategy> strategy;
  Rng strategy_rng;  ///< the serial engine's sequential strategy stream
  LoadTracker tracker;
  std::unique_ptr<StaleLoadView> stale;  ///< non-null when spec stale > 1
  const LoadView* load_view;             ///< stale snapshot or live tracker
};

}  // namespace proxcache
