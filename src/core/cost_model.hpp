#pragma once
/// \file cost_model.hpp
/// Exact finite-network communication-cost model for Strategy I.
///
/// Under proportional placement each node caches file `j` independently
/// with probability `q_j = 1 - (1 - p_j)^M`. The nearest-replica distance
/// D_j from a uniform origin then has the exact survival function
///
///   P(D_j > d) = (1 - q_j)^{|B_d(u)|}           (torus: u-independent)
///
/// so `E[D_j | file j available] = Σ_d P(D_j > d | available)` is a closed
/// form in the lattice's ball sizes. Combining files weighted by the
/// Resample policy (mass of absent files is redistributed over available
/// ones) gives a cost prediction that matches simulation within Monte-Carlo
/// noise at *all* popularity skews — unlike the asymptotic Eq. 13–14
/// references, which ignore finite-n saturation. Used by the Figure 2 and
/// Theorem 3 benches.

#include "catalog/popularity.hpp"
#include "topology/topology.hpp"

namespace proxcache {

/// Exact `E[D | at least one replica exists]` for per-node caching
/// probability `q` in (0, 1]. O(diameter) per call (ball sizes are
/// evaluated from the topology's central node; exact on the torus, a
/// center-node approximation on topologies whose shells depend on the
/// origin — the bounded grid, trees, irregular graphs).
double expected_nearest_distance(const Topology& topology, double q);

/// Exact Strategy I communication cost model under the Resample
/// missing-file policy: availability-weighted mixture of
/// `expected_nearest_distance` over the library.
double nearest_cost_model(const Topology& topology,
                          const Popularity& popularity,
                          std::size_t cache_size);

}  // namespace proxcache
