#pragma once
/// \file metrics.hpp
/// Load and communication-cost accounting (paper Definition 1).
///
/// `LoadTracker` is both the strategies' read path (Strategy II compares
/// current loads) and the metrics sink: per-server assignment counts `T_i`,
/// the running maximum load `L = max_i T_i`, and the cumulative hop count
/// whose mean over requests is the communication cost `C`. It is the only
/// state the streaming request loop accumulates — O(num_nodes), never
/// O(trace length) — which is what keeps `SimulationContext::run` in
/// constant space at any request volume.

#include <cstdint>
#include <vector>

#include "stats/histogram.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Read-only view of per-server load used by the strategies' comparisons.
/// The batch simulator supplies cumulative assignment counts (LoadTracker);
/// the queueing extension supplies instantaneous queue lengths.
class LoadView {
 public:
  virtual ~LoadView() = default;

  /// Current load of `server`.
  [[nodiscard]] virtual Load load(NodeId server) const = 0;
};

/// A view over a plain load vector — the adapter strategies use when the
/// effective loads live in a raw SoA buffer rather than a LoadTracker
/// (e.g. the sharded engine's speculation snapshots).
class VectorLoadView final : public LoadView {
 public:
  explicit VectorLoadView(const std::vector<Load>& loads) : loads_(&loads) {}

  [[nodiscard]] Load load(NodeId server) const override {
    return (*loads_)[server];
  }

 private:
  const std::vector<Load>* loads_;
};

/// One window's worth of commit-side metric deltas, accumulated by the
/// sharded engine's commit loop and applied to the tracker in one call per
/// speculation window (`LoadTracker::apply_window`). The per-request hot
/// path then touches only the contiguous load vector (`bump`) plus these
/// plain counters — no virtual LoadView dispatch, no per-request metric
/// bookkeeping.
struct CommitWindowDelta {
  std::uint64_t assigned = 0;   ///< assignments applied via bump()
  std::uint64_t total_hops = 0; ///< Σ hops over those assignments
  std::uint64_t dropped = 0;    ///< requests dropped (invalid server)
  std::uint64_t fallbacks = 0;  ///< fallback paths taken
  Load max_load = 0;            ///< max post-bump load observed this window

  void clear() { *this = CommitWindowDelta{}; }
};

/// Mutable per-run load state and metric accumulator.
class LoadTracker : public LoadView {
 public:
  explicit LoadTracker(std::size_t num_nodes);

  /// Record an assignment of one request to `server` at `hops` distance.
  void assign(NodeId server, Hop hops);

  /// Batched commit path (sharded engine): increment `server`'s load and
  /// nothing else. The caller owns the metric accounting in a
  /// CommitWindowDelta and settles it with `apply_window` once per window.
  /// Returns the post-increment load so the caller can fold its window max
  /// without a second read.
  Load bump(NodeId server) { return ++loads_[server]; }

  /// Settle one window's accumulated metrics. Loads themselves were already
  /// applied eagerly through `bump` (so LoadView reads and StaleLoadView
  /// refreshes stay exact mid-window); this folds in the counters and the
  /// window max.
  void apply_window(const CommitWindowDelta& delta) {
    assigned_ += delta.assigned;
    total_hops_ += delta.total_hops;
    dropped_ += delta.dropped;
    fallbacks_ += delta.fallbacks;
    if (delta.max_load > max_load_) max_load_ = delta.max_load;
  }

  /// Raw contiguous view of the per-server loads (the SoA read path of the
  /// sharded commit loop: speculation validation compares against this
  /// array directly instead of going through the virtual `load`).
  [[nodiscard]] const Load* data() const { return loads_.data(); }

  /// Record a dropped request (Drop policies); counted but not assigned.
  void drop() { ++dropped_; }

  /// Record that a fallback path was taken (radius expansion etc.).
  void note_fallback() { ++fallbacks_; }

  /// Current load of `server` (the strategies' comparison read).
  [[nodiscard]] Load load(NodeId server) const override {
    return loads_[server];
  }

  /// Current maximum load `L`.
  [[nodiscard]] Load max_load() const { return max_load_; }

  /// Number of assigned requests so far.
  [[nodiscard]] std::uint64_t assigned() const { return assigned_; }

  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t fallbacks() const { return fallbacks_; }

  /// Mean hops per assigned request (0 if none) — the paper's `C`.
  [[nodiscard]] double comm_cost() const;

  [[nodiscard]] std::uint64_t total_hops() const { return total_hops_; }

  [[nodiscard]] const std::vector<Load>& loads() const { return loads_; }

  /// Load-distribution histogram over servers (`#servers with load = k`).
  [[nodiscard]] Histogram load_histogram() const;

 private:
  std::vector<Load> loads_;
  Load max_load_ = 0;
  std::uint64_t assigned_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t total_hops_ = 0;
};

}  // namespace proxcache
