#pragma once
/// \file two_choice.hpp
/// Strategy II (paper Definition 3): the proximity-aware power of two
/// choices — the paper's primary contribution, generalized to `d` choices.
///
/// For a request born at `u` for file `j`, sample `d` (default 2) uniform
/// candidates from `F_j(u)` = replicas of `j` within hop distance `r` of `u`
/// (a single streaming pass with a k-reservoir — no candidate list is
/// materialized), then serve at the least-loaded candidate (uniform tie
/// break). `r = ∞` samples from the global replica list `S_j` directly.
///
/// When `|F_j(u)| == 0` the configured FallbackPolicy applies (the paper's
/// theorems guarantee this is vanishingly rare in the good regime; we count
/// every fallback so benches can report the rate). A lone candidate is used
/// directly. An optional observer receives each sampled candidate pair,
/// which is how `bench/lemma3_config_graph` measures the edge-sampling
/// probabilities of Lemma 3(b).

#include <functional>

#include "core/config.hpp"
#include "core/strategy.hpp"
#include "spatial/replica_index.hpp"

namespace proxcache {

/// Strategy II options (bound from the `two-choice` spec parameters).
struct TwoChoiceOptions {
  Hop radius = kUnboundedRadius;
  std::uint32_t num_choices = 2;
  bool with_replacement = false;
  FallbackPolicy fallback = FallbackPolicy::ExpandRadius;
  /// (1+β) process: probability of performing the d-choice comparison;
  /// otherwise a single uniform candidate is used. β = 1 ⇒ paper model.
  double beta = 1.0;
};

/// The proximity-aware d-choice strategy. Split-phase: the (1+β) draw,
/// candidate sampling, fallback handling and per-candidate distances all
/// happen in `propose`; `choose` is just the d-way min-load comparison.
class TwoChoiceStrategy final : public SplitPhaseStrategy {
 public:
  TwoChoiceStrategy(const ReplicaIndex& index, TwoChoiceOptions options);

  void propose(const Request& request, Rng& rng, CandidateArena& arena,
               Proposal& out) override;
  [[nodiscard]] Assignment choose(const Request& request,
                                  const Proposal& proposal,
                                  CandidateArena& arena, const LoadView& loads,
                                  Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

  /// `choose` is the d-way min-load scan over the recorded window only.
  [[nodiscard]] bool choose_reads_candidates_only() const override {
    return true;
  }

  /// Observer invoked with the full candidate set of every request that
  /// sampled >= 2 candidates (before the load comparison). Used by the
  /// Lemma 3(b) instrumentation; pass nullptr to disable.
  using PairObserver = std::function<void(std::span<const NodeId>)>;
  void set_observer(PairObserver observer) { observer_ = std::move(observer); }

 private:
  /// Sample up to `num_choices` candidates within `radius` of `origin`;
  /// returns the number found (all replicas if fewer than num_choices).
  std::uint32_t sample_candidates(NodeId origin, FileId file, Hop radius,
                                  Rng& rng, NodeId out[8]) const;

  const ReplicaIndex* index_;
  TwoChoiceOptions options_;
  PairObserver observer_;
};

}  // namespace proxcache
