#include "core/metrics.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace proxcache {

LoadTracker::LoadTracker(std::size_t num_nodes) : loads_(num_nodes, 0) {
  PROXCACHE_REQUIRE(num_nodes >= 1, "tracker needs >= 1 node");
}

void LoadTracker::assign(NodeId server, Hop hops) {
  PROXCACHE_REQUIRE(server < loads_.size(), "server id out of range");
  max_load_ = std::max(max_load_, ++loads_[server]);
  ++assigned_;
  total_hops_ += hops;
}

double LoadTracker::comm_cost() const {
  if (assigned_ == 0) return 0.0;
  return static_cast<double>(total_hops_) / static_cast<double>(assigned_);
}

Histogram LoadTracker::load_histogram() const {
  Histogram histogram;
  for (const Load load : loads_) histogram.add(load);
  return histogram;
}

}  // namespace proxcache
