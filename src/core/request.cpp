#include "core/request.hpp"

#include <stdexcept>

#include "random/alias_sampler.hpp"
#include "scenario/generators.hpp"
#include "util/contracts.hpp"

namespace proxcache {

// Both legacy entry points delegate to the Static trace source
// (scenario/generators.hpp), which is the single implementation of the
// paper-model draw sequence — so `generate_trace` and a `Static`-configured
// `run_simulation` are bit-identical by construction.

std::vector<Request> generate_trace(std::size_t num_nodes,
                                    const Popularity& popularity,
                                    std::size_t count, Rng& rng) {
  StaticTraceSource source(num_nodes, popularity);
  return materialize(source, count, rng);
}

std::vector<Request> generate_trace(const Lattice& lattice,
                                    const OriginSpec& origins,
                                    const Popularity& popularity,
                                    std::size_t count, Rng& rng) {
  StaticTraceSource source(lattice, origins, popularity);
  return materialize(source, count, rng);
}

SanitizeStats sanitize_trace(std::vector<Request>& trace,
                             const Placement& placement,
                             const Popularity& popularity,
                             MissingFilePolicy policy, Rng& rng) {
  SanitizeStats stats;
  const auto is_cached = [&](FileId j) {
    return placement.replica_count(j) > 0;
  };

  if (policy == MissingFilePolicy::Strict) {
    for (const Request& request : trace) {
      if (!is_cached(request.file)) {
        throw std::runtime_error(
            "request for uncached file " + std::to_string(request.file) +
            " under Strict missing-file policy");
      }
    }
    return stats;
  }

  if (policy == MissingFilePolicy::Drop) {
    std::vector<Request> kept;
    kept.reserve(trace.size());
    for (const Request& request : trace) {
      if (is_cached(request.file)) {
        kept.push_back(request);
      } else {
        ++stats.dropped;
      }
    }
    trace = std::move(kept);
    return stats;
  }

  // Resample: redraw offending files from P restricted to cached files via
  // rejection. Guard against the empty-support pathology first.
  bool any_cached = placement.files_with_replicas() > 0;
  const AliasSampler sampler(popularity.pmf());
  for (Request& request : trace) {
    if (is_cached(request.file)) continue;
    PROXCACHE_REQUIRE(any_cached,
                      "no file has any replica; cannot resample trace");
    ++stats.resampled;
    do {
      request.file = sampler.sample(rng);
    } while (!is_cached(request.file));
  }
  return stats;
}

}  // namespace proxcache
