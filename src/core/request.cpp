#include "core/request.hpp"

#include <string>

#include "scenario/generators.hpp"
#include "scenario/trace_source.hpp"

namespace proxcache {

// Both legacy entry points delegate to the Static trace source
// (scenario/generators.hpp), which is the single implementation of the
// paper-model draw sequence — so `generate_trace` and a `Static`-configured
// `run_simulation` are bit-identical by construction.

std::vector<Request> generate_trace(std::size_t num_nodes,
                                    const Popularity& popularity,
                                    std::size_t count, Rng& rng) {
  StaticTraceSource source(num_nodes, popularity);
  return materialize(source, count, rng);
}

std::vector<Request> generate_trace(const Topology& topology,
                                    const OriginSpec& origins,
                                    const Popularity& popularity,
                                    std::size_t count, Rng& rng) {
  StaticTraceSource source(topology, origins, popularity);
  return materialize(source, count, rng);
}

namespace {

/// Replays an already-materialized trace as a TraceSource (no rng draws).
class ReplaySource final : public TraceSource {
 public:
  explicit ReplaySource(const std::vector<Request>& trace) : trace_(&trace) {}
  Request next(Rng& /*rng*/) override { return (*trace_)[index_++]; }
  [[nodiscard]] std::string describe() const override { return "replay"; }

 private:
  const std::vector<Request>* trace_;
  std::size_t index_ = 0;
};

}  // namespace

SanitizeStats sanitize_trace(std::vector<Request>& trace,
                             const Placement& placement,
                             const Popularity& popularity,
                             MissingFilePolicy policy, Rng& rng) {
  // Compatibility shim over the streaming decorator — the single
  // implementation of the missing-file policies. The caller's rng doubles
  // as the repair stream, which preserves the historical draw order: the
  // trace was generated first, so every repair draw follows every
  // generation draw on that stream. Admitted requests are compacted in
  // place (the replay cursor never trails the write cursor).
  ReplaySource replay(trace);
  SanitizingTraceSource sanitized(replay, trace.size(), placement, popularity,
                                  policy, rng);
  std::size_t write = 0;
  Request request;
  while (sanitized.try_next(rng, request)) {
    trace[write++] = request;
  }
  trace.resize(write);
  return sanitized.stats();
}

}  // namespace proxcache
