#include "core/request.hpp"

#include <stdexcept>

#include "random/alias_sampler.hpp"
#include "topology/shells.hpp"
#include "util/contracts.hpp"

namespace proxcache {

std::vector<Request> generate_trace(std::size_t num_nodes,
                                    const Popularity& popularity,
                                    std::size_t count, Rng& rng) {
  PROXCACHE_REQUIRE(num_nodes >= 1, "need >= 1 node");
  const AliasSampler sampler(popularity.pmf());
  std::vector<Request> trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Request request;
    request.origin = static_cast<NodeId>(rng.below(num_nodes));
    request.file = sampler.sample(rng);
    trace.push_back(request);
  }
  return trace;
}

std::vector<Request> generate_trace(const Lattice& lattice,
                                    const OriginSpec& origins,
                                    const Popularity& popularity,
                                    std::size_t count, Rng& rng) {
  if (origins.kind == OriginKind::Uniform) {
    return generate_trace(lattice.size(), popularity, count, rng);
  }
  PROXCACHE_REQUIRE(
      origins.hotspot_fraction >= 0.0 && origins.hotspot_fraction <= 1.0,
      "hotspot fraction must be in [0, 1]");
  const NodeId center =
      lattice.node(Point{lattice.side() / 2, lattice.side() / 2});
  const std::vector<NodeId> disc =
      collect_ball(lattice, center, origins.hotspot_radius);
  const AliasSampler sampler(popularity.pmf());
  std::vector<Request> trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Request request;
    if (rng.bernoulli(origins.hotspot_fraction)) {
      request.origin = disc[rng.below(disc.size())];
    } else {
      request.origin = static_cast<NodeId>(rng.below(lattice.size()));
    }
    request.file = sampler.sample(rng);
    trace.push_back(request);
  }
  return trace;
}

SanitizeStats sanitize_trace(std::vector<Request>& trace,
                             const Placement& placement,
                             const Popularity& popularity,
                             MissingFilePolicy policy, Rng& rng) {
  SanitizeStats stats;
  const auto is_cached = [&](FileId j) {
    return placement.replica_count(j) > 0;
  };

  if (policy == MissingFilePolicy::Strict) {
    for (const Request& request : trace) {
      if (!is_cached(request.file)) {
        throw std::runtime_error(
            "request for uncached file " + std::to_string(request.file) +
            " under Strict missing-file policy");
      }
    }
    return stats;
  }

  if (policy == MissingFilePolicy::Drop) {
    std::vector<Request> kept;
    kept.reserve(trace.size());
    for (const Request& request : trace) {
      if (is_cached(request.file)) {
        kept.push_back(request);
      } else {
        ++stats.dropped;
      }
    }
    trace = std::move(kept);
    return stats;
  }

  // Resample: redraw offending files from P restricted to cached files via
  // rejection. Guard against the empty-support pathology first.
  bool any_cached = placement.files_with_replicas() > 0;
  const AliasSampler sampler(popularity.pmf());
  for (Request& request : trace) {
    if (is_cached(request.file)) continue;
    PROXCACHE_REQUIRE(any_cached,
                      "no file has any replica; cannot resample trace");
    ++stats.resampled;
    do {
      request.file = sampler.sample(rng);
    } while (!is_cached(request.file));
  }
  return stats;
}

}  // namespace proxcache
