#pragma once
/// \file nearest_replica.hpp
/// Strategy I (paper Definition 2): every request is served by the nearest
/// node — in lattice hop distance — that cached the requested file, with
/// uniform tie breaking. Minimum possible communication cost; load-oblivious
/// (max load grows as Θ(log n) / Ω(log n / log log n), Theorems 1–2).

#include "core/strategy.hpp"
#include "spatial/replica_index.hpp"

namespace proxcache {

/// Strategy I. Holds a reference to the query index (which must outlive it).
/// Split-phase trivially: load-oblivious, so the whole decision happens in
/// `propose` and `choose` only replays it.
class NearestReplicaStrategy final : public SplitPhaseStrategy {
 public:
  explicit NearestReplicaStrategy(const ReplicaIndex& index) : index_(&index) {}

  void propose(const Request& request, Rng& rng, CandidateArena& arena,
               Proposal& out) override;
  [[nodiscard]] Assignment choose(const Request& request,
                                  const Proposal& proposal,
                                  CandidateArena& arena, const LoadView& loads,
                                  Rng& rng) const override;

  [[nodiscard]] std::string name() const override { return "nearest-replica"; }

  /// Load-oblivious: `choose` reads no loads at all (decided proposals).
  [[nodiscard]] bool choose_reads_candidates_only() const override {
    return true;
  }

 private:
  const ReplicaIndex* index_;
};

}  // namespace proxcache
