#include "core/cost_model.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace proxcache {

double expected_nearest_distance(const Topology& topology, double q) {
  PROXCACHE_REQUIRE(q > 0.0 && q <= 1.0, "q must be in (0, 1]");
  const std::size_t n = topology.size();
  const NodeId origin = topology.central_node();
  const double log_miss = std::log1p(-std::min(q, 1.0 - 1e-15));
  // P(no replica anywhere) — conditioning denominator.
  const double p_empty = std::exp(static_cast<double>(n) * log_miss);
  const double available = 1.0 - p_empty;
  if (available <= 0.0) return 0.0;

  double expected = 0.0;
  std::size_t ball = 0;
  for (Hop d = 0; d < topology.diameter(); ++d) {
    ball += topology.shell_size(origin, d);
    // P(D > d) unconditioned = (1-q)^{|B_d|}; condition on availability.
    const double survivor =
        std::exp(static_cast<double>(ball) * log_miss);
    expected += (survivor - p_empty) / available;
  }
  return expected;
}

double nearest_cost_model(const Topology& topology,
                          const Popularity& popularity,
                          std::size_t cache_size) {
  PROXCACHE_REQUIRE(cache_size >= 1, "cache size must be >= 1");
  const auto n = static_cast<double>(topology.size());
  double weighted_cost = 0.0;
  double weight = 0.0;
  for (FileId j = 0; j < popularity.num_files(); ++j) {
    const double p = popularity.pmf(j);
    if (p <= 0.0) continue;
    const double q =
        1.0 - std::pow(1.0 - p, static_cast<double>(cache_size));
    const double availability = 1.0 - std::exp(n * std::log1p(-q));
    if (availability <= 0.0) continue;
    weighted_cost += p * availability * expected_nearest_distance(topology, q);
    weight += p * availability;
  }
  PROXCACHE_REQUIRE(weight > 0.0, "no file is ever available");
  return weighted_cost / weight;
}

}  // namespace proxcache
