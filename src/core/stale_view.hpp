#pragma once
/// \file stale_view.hpp
/// Stale load information (paper §VI): in a distributed deployment the
/// requesting server learns queue lengths by *periodic polling*, not by
/// reading ground truth. `StaleLoadView` models that: the strategies
/// compare loads from a snapshot that is refreshed only every `period`
/// assignments. `period = 1` degenerates to the paper's fresh-information
/// model; large periods quantify how much staleness the power of two
/// choices tolerates (bench: `ext_stale_info`).

#include <vector>

#include "core/metrics.hpp"
#include "util/contracts.hpp"
#include "util/types.hpp"

namespace proxcache {

/// LoadView that lags the live tracker by up to `period` assignments.
class StaleLoadView final : public LoadView {
 public:
  /// Snapshot `live` now and thereafter on every `period`-th assignment.
  StaleLoadView(const LoadTracker& live, std::uint32_t period)
      : live_(&live), period_(period), snapshot_(live.loads()) {
    PROXCACHE_REQUIRE(period >= 1, "refresh period must be >= 1");
  }

  /// Load as of the last refresh (never the live value unless period = 1
  /// and refresh() is called per assignment).
  [[nodiscard]] Load load(NodeId server) const override {
    return snapshot_[server];
  }

  /// Call after every assignment; refreshes when `assigned_so_far` crosses
  /// a multiple of the period.
  void on_assignment(std::uint64_t assigned_so_far) {
    if (assigned_so_far % period_ == 0) refresh();
  }

  /// Force-refresh the snapshot from the live tracker.
  void refresh() { snapshot_ = live_->loads(); }

  [[nodiscard]] std::uint32_t period() const { return period_; }

  /// Raw contiguous view of the snapshot (the sharded engine's speculation
  /// validation reads it directly; see parallel/sharded_runner.hpp). The
  /// per-node values change only at refresh points, and each refresh can
  /// only raise them (the live loads are monotone counters), so a value
  /// comparison against this array is an exact "changed since?" test.
  [[nodiscard]] const Load* data() const { return snapshot_.data(); }

 private:
  const LoadTracker* live_;
  std::uint32_t period_;
  std::vector<Load> snapshot_;
};

}  // namespace proxcache
