#pragma once
/// \file strategy.hpp
/// The assignment-strategy interface: given the next request and the
/// current loads, pick the serving node (paper §II-B "assignment strategy").
///
/// Two protocols live here:
///
///  * `Strategy::assign` — the historical one-shot call: request + loads +
///    rng in, decision out. Every strategy implements it (custom registry
///    extensions may implement only it).
///
///  * The split-phase pair `propose`/`choose` — the seam the sharded engine
///    (src/parallel/sharded_runner.hpp) parallelizes across. The key
///    observation: for every built-in policy the *expensive* per-request
///    work (candidate discovery via shell walks or reservoir passes,
///    distance and weight computation, fallback-radius expansion) never
///    reads the load vector, while the *cheap* final step (min-load
///    comparison plus tie-break draws) is the only load-dependent part.
///    `propose` performs all load-independent work — including every RNG
///    draw whose count does not depend on loads — and records the candidate
///    set; `choose` consumes live loads and finishes the decision on the
///    same stream. The composition `propose; choose` on one Rng is
///    bit-identical to the historical `assign` (locked by the golden
///    masters in tests/test_determinism.cpp), which is what lets the serial
///    engine run unchanged while the sharded engine runs `propose` on a
///    worker pool and `choose` serially in request order.

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/request.hpp"
#include "random/rng.hpp"
#include "util/contracts.hpp"
#include "util/types.hpp"

namespace proxcache {

/// A single assignment decision.
struct Assignment {
  NodeId server = kInvalidNode;  ///< chosen server; invalid = dropped
  Hop hops = 0;                  ///< requester→server distance (charged to C)
  bool fallback = false;         ///< a fallback path was taken
};

/// The shared ExpandRadius fallback schedule (Strategy II semantics, also
/// used by least-loaded): 0 → 1, then doubling, saturating at the lattice
/// diameter. One definition so the strategies cannot drift apart.
[[nodiscard]] inline Hop next_fallback_radius(Hop radius, Hop diameter) {
  if (radius == 0) return 1;
  return radius >= diameter / 2 ? diameter : static_cast<Hop>(radius * 2);
}

/// One candidate recorded by `propose`: the node plus everything `choose`
/// would otherwise have to recompute (distance; sampling weight for the
/// weighted policies). Kept flat (SoA-of-requests is the arena itself) so a
/// worker's whole scratch is one contiguous, cache-friendly buffer.
struct ProposedCandidate {
  NodeId node = kInvalidNode;
  Hop hops = 0;
  double weight = 0.0;
  /// Hierarchy tier the candidate lives in (tier/strategies.hpp); 0 on
  /// flat topologies. Rides the arena so cross-tier `choose` can apply
  /// depth tie-breaks without re-locating the node.
  std::uint32_t tier = 0;
};

/// Per-shard scratch: `propose` appends candidates here; slices are handed
/// to `choose` by [first, count) windows. One arena per worker lane — never
/// shared across threads.
using CandidateArena = std::vector<ProposedCandidate>;

/// The load-independent half of a decision, produced by `propose`.
///
/// Either the decision is already final (`decided` — nearest-replica, the
/// NearestReplica/Drop fallbacks) and `server`/`hops` hold it, or
/// `arena[first .. first+count)` holds the candidate window that `choose`
/// resolves against live loads.
struct Proposal {
  std::uint32_t first = 0;     ///< arena index of this request's window
  std::uint32_t count = 0;     ///< candidates recorded (0 when decided)
  NodeId server = kInvalidNode;  ///< final server when `decided`
  Hop hops = 0;                  ///< final distance when `decided`
  double total_weight = 0.0;   ///< Σ candidate weights (weighted policies)
  bool decided = false;        ///< load-independent decision already final
  bool fallback = false;       ///< a fallback path was taken
};

/// Sequential request-to-server mapper. Implementations must be
/// deterministic given the Rng stream and may read (never write) the
/// tracker's current loads.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Decide where `request` is served.
  virtual Assignment assign(const Request& request, const LoadView& loads,
                            Rng& rng) = 0;

  /// True when this strategy implements the split-phase protocol below and
  /// the sharded engine may run `propose` off-thread. Strategies that only
  /// implement `assign` (e.g. registry extensions) return false and are
  /// executed on the serial commit path — still correct, just not sped up.
  [[nodiscard]] virtual bool split_phase() const { return false; }

  /// The speculative-choose seam: true when `choose` reads *only* the loads
  /// of the candidates recorded in its proposal window (never some other
  /// node's load). That property is what lets the sharded engine run
  /// `choose` speculatively off-thread against a per-candidate load
  /// snapshot and accept the result once the committer proves those loads
  /// did not change (see parallel/sharded_runner.hpp). All four built-ins
  /// qualify; the conservative default keeps out-of-tree strategies on the
  /// non-speculative commit path unless they opt in.
  [[nodiscard]] virtual bool choose_reads_candidates_only() const {
    return false;
  }

  /// Load-independent half: discover candidates (appending them to
  /// `arena`), run fallback handling, and perform every RNG draw whose
  /// count does not depend on loads. May mutate strategy-local scratch, so
  /// each concurrent caller needs its own instance ("lane").
  virtual void propose(const Request& request, Rng& rng,
                       CandidateArena& arena, Proposal& out) {
    (void)request;
    (void)rng;
    (void)arena;
    (void)out;
    PROXCACHE_CHECK(false, "propose() called on a non-split-phase strategy");
  }

  /// Load-dependent half: finish `proposal` against live `loads`,
  /// continuing on the *same* Rng stream `propose` left off. Must be
  /// callable concurrently with `propose` on *other* instances — and with
  /// other `choose` calls on *this* instance (the speculation chase task
  /// and the committer overlap on the shared commit-side strategy) — hence
  /// const: it may not touch strategy-local scratch (the arena window is
  /// its scratch — it may mutate that in place).
  [[nodiscard]] virtual Assignment choose(const Request& request,
                                          const Proposal& proposal,
                                          CandidateArena& arena,
                                          const LoadView& loads,
                                          Rng& rng) const {
    (void)request;
    (void)proposal;
    (void)arena;
    (void)loads;
    (void)rng;
    PROXCACHE_CHECK(false, "choose() called on a non-split-phase strategy");
    return {};
  }

  /// Short identifier for logs/tables, e.g. "nearest" or "two-choice(r=16)".
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Base for strategies implementing the split-phase protocol: `assign` is
/// pinned to the `propose; choose` composition on the caller's stream, so
/// the one-shot and split-phase paths cannot drift apart — the serial
/// engine's golden masters transitively lock the sharded engine's halves.
class SplitPhaseStrategy : public Strategy {
 public:
  [[nodiscard]] bool split_phase() const final { return true; }

  Assignment assign(const Request& request, const LoadView& loads,
                    Rng& rng) final {
    scratch_.clear();
    Proposal proposal;
    propose(request, rng, scratch_, proposal);
    return choose(request, proposal, scratch_, loads, rng);
  }

  void propose(const Request& request, Rng& rng, CandidateArena& arena,
               Proposal& out) override = 0;
  [[nodiscard]] Assignment choose(const Request& request,
                                  const Proposal& proposal,
                                  CandidateArena& arena, const LoadView& loads,
                                  Rng& rng) const override = 0;

 private:
  CandidateArena scratch_;  ///< one-shot path's private arena
};

/// Shared tail of `choose` for proposals `propose` already finalized.
[[nodiscard]] inline Assignment decided_assignment(const Proposal& proposal) {
  Assignment assignment;
  assignment.server = proposal.server;
  assignment.hops = proposal.hops;
  assignment.fallback = proposal.fallback;
  return assignment;
}

}  // namespace proxcache
