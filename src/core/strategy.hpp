#pragma once
/// \file strategy.hpp
/// The assignment-strategy interface: given the next request and the
/// current loads, pick the serving node (paper §II-B "assignment strategy").

#include <string>

#include "core/metrics.hpp"
#include "core/request.hpp"
#include "random/rng.hpp"
#include "util/types.hpp"

namespace proxcache {

/// A single assignment decision.
struct Assignment {
  NodeId server = kInvalidNode;  ///< chosen server; invalid = dropped
  Hop hops = 0;                  ///< requester→server distance (charged to C)
  bool fallback = false;         ///< a fallback path was taken
};

/// The shared ExpandRadius fallback schedule (Strategy II semantics, also
/// used by least-loaded): 0 → 1, then doubling, saturating at the lattice
/// diameter. One definition so the strategies cannot drift apart.
[[nodiscard]] inline Hop next_fallback_radius(Hop radius, Hop diameter) {
  if (radius == 0) return 1;
  return radius >= diameter / 2 ? diameter : static_cast<Hop>(radius * 2);
}

/// Sequential request-to-server mapper. Implementations must be
/// deterministic given the Rng stream and may read (never write) the
/// tracker's current loads.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Decide where `request` is served.
  virtual Assignment assign(const Request& request, const LoadView& loads,
                            Rng& rng) = 0;

  /// Short identifier for logs/tables, e.g. "nearest" or "two-choice(r=16)".
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace proxcache
