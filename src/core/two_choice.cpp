#include "core/two_choice.hpp"

#include <algorithm>
#include <sstream>

#include "core/nearest_replica.hpp"
#include "random/sampling.hpp"
#include "util/contracts.hpp"

namespace proxcache {

TwoChoiceStrategy::TwoChoiceStrategy(const ReplicaIndex& index,
                                     TwoChoiceOptions options)
    : index_(&index), options_(options) {
  PROXCACHE_REQUIRE(options.num_choices >= 1 && options.num_choices <= 8,
                    "num_choices must be in [1, 8]");
  PROXCACHE_REQUIRE(options.beta >= 0.0 && options.beta <= 1.0,
                    "beta must be in [0, 1]");
}

std::string TwoChoiceStrategy::name() const {
  std::ostringstream os;
  os << (options_.num_choices == 2 ? "two-choice"
                                   : std::to_string(options_.num_choices) +
                                         "-choice");
  if (options_.radius != kUnboundedRadius) {
    os << "(r=" << options_.radius << ")";
  } else {
    os << "(r=inf)";
  }
  return os.str();
}

std::uint32_t TwoChoiceStrategy::sample_candidates(NodeId origin, FileId file,
                                                   Hop radius, Rng& rng,
                                                   NodeId out[8]) const {
  const std::uint32_t d = options_.num_choices;
  const Topology& topology = index_->topology();
  const auto& placement = index_->placement();

  if (radius >= topology.diameter()) {
    // Unconstrained: sample directly from the replica list S_j.
    const auto replicas = placement.replicas(file);
    const std::size_t count = replicas.size();
    if (count == 0) return 0;
    if (options_.with_replacement) {
      for (std::uint32_t i = 0; i < d; ++i) {
        out[i] = replicas[rng.below(count)];
      }
      return d;
    }
    if (count <= d) {
      for (std::size_t i = 0; i < count; ++i) out[i] = replicas[i];
      return static_cast<std::uint32_t>(count);
    }
    if (d == 2) {
      const auto [a, b] = rng.distinct_pair(count);
      out[0] = replicas[a];
      out[1] = replicas[b];
      return 2;
    }
    // General d: rejection over indices (d << count in practice).
    std::uint32_t have = 0;
    std::size_t picked[8];
    while (have < d) {
      const std::size_t idx = rng.below(count);
      bool duplicate = false;
      for (std::uint32_t i = 0; i < have; ++i) {
        if (picked[i] == idx) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        picked[have] = idx;
        out[have++] = replicas[idx];
      }
    }
    return d;
  }

  // Radius-constrained: one streaming pass with a k-reservoir.
  if (options_.with_replacement) {
    // With replacement: d independent 1-reservoirs over the same pass.
    ReservoirOne reservoirs[8] = {ReservoirOne(rng), ReservoirOne(rng),
                                  ReservoirOne(rng), ReservoirOne(rng),
                                  ReservoirOne(rng), ReservoirOne(rng),
                                  ReservoirOne(rng), ReservoirOne(rng)};
    index_->for_each_replica_within(origin, file, radius,
                                    [&](NodeId v, Hop) {
                                      for (std::uint32_t i = 0; i < d; ++i) {
                                        reservoirs[i].offer(v);
                                      }
                                    });
    if (reservoirs[0].count() == 0) return 0;
    for (std::uint32_t i = 0; i < d; ++i) out[i] = *reservoirs[i].value();
    return d;
  }
  ReservoirK reservoir(rng, options_.num_choices);
  index_->for_each_replica_within(origin, file, radius,
                                  [&](NodeId v, Hop) { reservoir.offer(v); });
  const auto sample = reservoir.sample();
  for (std::size_t i = 0; i < sample.size(); ++i) out[i] = sample[i];
  return static_cast<std::uint32_t>(sample.size());
}

void TwoChoiceStrategy::propose(const Request& request, Rng& rng,
                                CandidateArena& arena, Proposal& out) {
  const Topology& topology = index_->topology();
  out.first = static_cast<std::uint32_t>(arena.size());

  NodeId candidates[8];
  Hop radius = options_.radius;
  // (1+β): occasionally skip the comparison entirely and take one uniform
  // candidate. The draw happens before sampling so the Rng stream stays
  // aligned across β values with the same seed.
  const std::uint32_t saved_choices = options_.num_choices;
  if (options_.beta < 1.0 && !rng.bernoulli(options_.beta)) {
    options_.num_choices = 1;
  }
  std::uint32_t found = sample_candidates(request.origin, request.file,
                                          radius, rng, candidates);
  options_.num_choices = saved_choices;

  while (found == 0) {
    // Fallback paths; the paper's good regime makes these measure-zero, but
    // the simulator must be total. All of them are load-independent, so the
    // whole ladder lives in the propose phase.
    out.fallback = true;
    switch (options_.fallback) {
      case FallbackPolicy::Drop:
        out.decided = true;  // invalid server signals the drop
        return;
      case FallbackPolicy::NearestReplica: {
        const NearestResult nearest =
            index_->nearest(request.origin, request.file, rng);
        PROXCACHE_CHECK(nearest.server != kInvalidNode,
                        "uncached file reached the strategy; "
                        "sanitize_trace must run first");
        out.decided = true;
        out.server = nearest.server;
        out.hops = nearest.distance;
        return;
      }
      case FallbackPolicy::ExpandRadius: {
        const Hop diameter = topology.diameter();
        radius = next_fallback_radius(radius, diameter);
        found = sample_candidates(request.origin, request.file, radius, rng,
                                  candidates);
        if (found == 0 && radius >= diameter) {
          PROXCACHE_CHECK(false,
                          "uncached file reached the strategy; "
                          "sanitize_trace must run first");
        }
        break;
      }
    }
  }

  if (observer_ && found >= 2) {
    observer_(std::span<const NodeId>(candidates, found));
  }

  for (std::uint32_t i = 0; i < found; ++i) {
    arena.push_back({candidates[i],
                     topology.distance(request.origin, candidates[i]), 0.0});
  }
  out.count = found;
}

Assignment TwoChoiceStrategy::choose(const Request& request,
                                     const Proposal& proposal,
                                     CandidateArena& arena,
                                     const LoadView& loads, Rng& rng) const {
  (void)request;
  if (proposal.decided) return decided_assignment(proposal);
  Assignment assignment;
  assignment.fallback = proposal.fallback;

  // Least-loaded candidate, uniform among ties (single-pass reservoir).
  const ProposedCandidate* candidates = arena.data() + proposal.first;
  NodeId chosen = candidates[0].node;
  Hop hops = candidates[0].hops;
  Load best = loads.load(chosen);
  std::uint32_t ties = 1;
  for (std::uint32_t i = 1; i < proposal.count; ++i) {
    const Load load = loads.load(candidates[i].node);
    if (load < best) {
      best = load;
      chosen = candidates[i].node;
      hops = candidates[i].hops;
      ties = 1;
    } else if (load == best) {
      ++ties;
      if (rng.below(ties) == 0) {
        chosen = candidates[i].node;
        hops = candidates[i].hops;
      }
    }
  }
  assignment.server = chosen;
  assignment.hops = hops;
  return assignment;
}

}  // namespace proxcache
