#include "core/run_harness.hpp"

#include <algorithm>

#include "random/seeding.hpp"
#include "strategy/registry.hpp"
#include "tier/materialize.hpp"
#include "tier/tier_set.hpp"
#include "tier/tiered_topology.hpp"

namespace proxcache {

namespace {

Placement make_placement(const SimulationContext& context,
                         std::uint64_t run_index) {
  return materialize_placement(context.config(), context.topology(),
                               context.popularity(), run_index);
}

/// Repair-stream contract: the materialized pipeline drew all Resample
/// repairs *after* the full generation sequence, on the one trace-phase
/// stream. When the placement leaves files uncached, advance a scout copy
/// of that stream through the whole generation sequence to find the repair
/// start state (a second source instance replays the identical request
/// sequence — all generator state is deterministic in the rng). With full
/// coverage no repair draw ever happens, so the scout pass is skipped.
Rng positioned_repair_rng(const SimulationContext& context,
                          const Placement& placement, Rng repair_rng) {
  const ExperimentConfig& config = context.config();
  if (config.missing == MissingFilePolicy::Resample &&
      placement.files_with_replicas() < config.num_files) {
    const std::unique_ptr<TraceSource> scout = make_trace_source(
        config, context.topology(), context.popularity(), context.horizon());
    for (std::size_t i = 0; i < context.horizon(); ++i) {
      (void)scout->next(repair_rng);
    }
  }
  return repair_rng;
}

std::unique_ptr<StaleLoadView> make_stale(const LoadTracker& tracker,
                                          const StrategySpec& spec) {
  // Stale-information model (§VI): the strategy compares loads from a
  // periodically refreshed snapshot instead of the live tracker. `stale` is
  // a universal spec parameter because the snapshot wraps the LoadView
  // outside the strategy proper.
  const auto stale_batch =
      static_cast<std::uint32_t>(spec.get_or("stale", 1.0));
  if (stale_batch <= 1) return nullptr;
  return std::make_unique<StaleLoadView>(tracker, stale_batch);
}

}  // namespace

RunHarness::RunHarness(const SimulationContext& context,
                       std::uint64_t run_index)
    : context_(&context),
      placement(make_placement(context, run_index)),
      trace_rng(
          derive_seed(context.config().seed, {run_index, seed_phase::kTrace})),
      repair_rng(positioned_repair_rng(context, placement, trace_rng)),
      source(make_trace_source(context.config(), context.topology(),
                               context.popularity(), context.horizon())),
      sanitized(*source, context.horizon(), placement, context.popularity(),
                context.config().missing, repair_rng),
      index(context.topology(), placement),
      // Every strategy — the paper pair and any extension registered on the
      // global catalog — is constructed by the open registry from the
      // resolved spec; there is no enum dispatch. `with_defaults` validates
      // and fills unset parameters from the registry rules (so the `stale`
      // read below sees the entry's declared default), after which the
      // entry's factory is invoked directly — replications pay for one
      // validation pass, not two.
      spec(StrategyRegistry::global().with_defaults(
          context.config().resolved_strategy())),
      strategy(StrategyRegistry::global().at(spec.name).factory(
          spec, index, context.topology(), context.config())),
      strategy_rng(derive_seed(context.config().seed,
                               {run_index, seed_phase::kStrategy})),
      tracker(context.config().num_nodes),
      stale(make_stale(tracker, spec)),
      load_view(stale ? static_cast<const LoadView*>(stale.get())
                      : static_cast<const LoadView*>(&tracker)) {}

RunResult RunHarness::finalize() const {
  const SanitizeStats& sanitize = sanitized.stats();
  RunResult result;
  result.max_load = tracker.max_load();
  result.comm_cost = tracker.comm_cost();
  result.requests = tracker.assigned();
  result.fallbacks = tracker.fallbacks();
  result.resampled = sanitize.resampled;
  result.dropped = sanitize.dropped + tracker.dropped();
  result.load_histogram = tracker.load_histogram();
  result.placement_min_distinct = placement.distinct_count(0);
  for (NodeId u = 0; u < placement.num_nodes(); ++u) {
    result.placement_min_distinct =
        std::min(result.placement_min_distinct, placement.distinct_count(u));
  }
  result.files_with_replicas = placement.files_with_replicas();
  if (const TieredTopology* tiered = context_->topology().as_tiered()) {
    // Slice the one global load vector by tier ranges — the engines track
    // loads tier-blind; hierarchy metrics are a pure post-pass.
    const std::vector<Load>& loads = tracker.loads();
    std::vector<Load> slice;
    for (const TierLevel& level : tiered->tier_set().levels()) {
      slice.assign(loads.begin() + level.base,
                   loads.begin() + level.base + level.nodes);
      TierLoadStats stats;
      stats.role = level.spec.role;
      for (const Load value : slice) {
        stats.served += value;
        stats.max_load = std::max(stats.max_load, value);
      }
      std::sort(slice.begin(), slice.end());
      stats.tail_p99 = slice[((slice.size() - 1) * 99) / 100];
      result.tier_loads.push_back(std::move(stats));
    }
  }
  return result;
}

}  // namespace proxcache
