#include "core/config.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace proxcache {

void ExperimentConfig::validate() const {
  PROXCACHE_REQUIRE(Lattice::is_perfect_square(num_nodes),
                    "num_nodes must be a perfect square, got " +
                        std::to_string(num_nodes));
  PROXCACHE_REQUIRE(num_files >= 1, "num_files must be >= 1");
  PROXCACHE_REQUIRE(cache_size >= 1, "cache_size must be >= 1");
  PROXCACHE_REQUIRE(strategy.num_choices >= 1 && strategy.num_choices <= 8,
                    "num_choices must be in [1, 8]");
  if (popularity.kind == PopularityKind::Zipf) {
    PROXCACHE_REQUIRE(popularity.gamma >= 0.0, "zipf gamma must be >= 0");
  }
}

std::string ExperimentConfig::describe() const {
  std::ostringstream os;
  os << "n=" << num_nodes << " K=" << num_files << " M=" << cache_size
     << " " << to_string(wrap) << " "
     << popularity.materialize(num_files).describe() << " ";
  if (strategy.kind == StrategyKind::NearestReplica) {
    os << "strategy=nearest";
  } else {
    os << "strategy=" << strategy.num_choices << "-choice r=";
    if (strategy.radius == kUnboundedRadius) {
      os << "inf";
    } else {
      os << strategy.radius;
    }
  }
  return os.str();
}

}  // namespace proxcache
