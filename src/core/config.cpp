#include "core/config.hpp"

#include <sstream>

#include "strategy/registry.hpp"
#include "util/contracts.hpp"

namespace proxcache {

StrategySpec ExperimentConfig::resolved_strategy() const {
  return strategy_spec.empty() ? strategy_spec_from_config(strategy)
                               : strategy_spec;
}

void ExperimentConfig::validate() const {
  PROXCACHE_REQUIRE(Lattice::is_perfect_square(num_nodes),
                    "num_nodes must be a perfect square, got " +
                        std::to_string(num_nodes));
  PROXCACHE_REQUIRE(num_files >= 1, "num_files must be >= 1");
  PROXCACHE_REQUIRE(cache_size >= 1, "cache_size must be >= 1");
  // Per-strategy validation is the registry's job: unknown names, unknown
  // parameter keys and out-of-range values all throw from here. The global
  // catalog is consulted so registered custom strategies validate too.
  StrategyRegistry::global().validate(resolved_strategy());
  // The legacy knobs keep their historical checks (they apply even when a
  // spec overrides them, so stale configs fail loudly rather than silently).
  PROXCACHE_REQUIRE(strategy.num_choices >= 1 && strategy.num_choices <= 8,
                    "num_choices must be in [1, 8]");
  PROXCACHE_REQUIRE(strategy.beta >= 0.0 && strategy.beta <= 1.0,
                    "beta must be in [0, 1]");
  PROXCACHE_REQUIRE(strategy.stale_batch >= 1,
                    "stale_batch must be >= 1 (1 = always-fresh loads)");
  if (popularity.kind == PopularityKind::Zipf) {
    PROXCACHE_REQUIRE(popularity.gamma >= 0.0, "zipf gamma must be >= 0");
  }

  const auto side = static_cast<Hop>(
      Lattice::from_node_count(num_nodes, wrap).side());
  if (origins.kind == OriginKind::Hotspot) {
    PROXCACHE_REQUIRE(
        origins.hotspot_fraction >= 0.0 && origins.hotspot_fraction <= 1.0,
        "hotspot_fraction must be in [0, 1]");
    PROXCACHE_REQUIRE(origins.hotspot_radius < side,
                      "hotspot_radius must be smaller than the lattice side");
  }

  switch (trace.kind) {
    case TraceKind::Static:
      break;
    case TraceKind::FlashCrowd:
      PROXCACHE_REQUIRE(origins.kind == OriginKind::Uniform,
                        "flash-crowd traces define their own origin process; "
                        "use uniform OriginSpec");
      PROXCACHE_REQUIRE(trace.flash_peak >= 0.0 && trace.flash_peak <= 1.0,
                        "flash_peak must be in [0, 1]");
      PROXCACHE_REQUIRE(
          trace.flash_start >= 0.0 && trace.flash_start < trace.flash_end &&
              trace.flash_end <= 1.0,
          "flash window must satisfy 0 <= start < end <= 1");
      PROXCACHE_REQUIRE(trace.flash_radius < side,
                        "flash_radius must be smaller than the lattice side");
      break;
    case TraceKind::Diurnal:
      PROXCACHE_REQUIRE(popularity.kind == PopularityKind::Zipf,
                        "diurnal traces modulate a Zipf catalog");
      PROXCACHE_REQUIRE(trace.diurnal_amplitude >= 0.0 &&
                            popularity.gamma - trace.diurnal_amplitude >= 0.0,
                        "diurnal_amplitude must be in [0, gamma]");
      PROXCACHE_REQUIRE(trace.diurnal_cycles >= 1,
                        "diurnal_cycles must be >= 1");
      break;
    case TraceKind::Churn:
      PROXCACHE_REQUIRE(trace.churn_offline_fraction >= 0.0 &&
                            trace.churn_offline_fraction < 1.0,
                        "churn_offline_fraction must be in [0, 1)");
      PROXCACHE_REQUIRE(trace.churn_epochs >= 1, "churn_epochs must be >= 1");
      break;
    case TraceKind::TemporalLocality:
      PROXCACHE_REQUIRE(
          trace.locality_prob >= 0.0 && trace.locality_prob <= 1.0,
          "locality_prob must be in [0, 1]");
      PROXCACHE_REQUIRE(trace.locality_depth >= 1,
                        "locality_depth must be >= 1");
      break;
    case TraceKind::Adversarial:
      PROXCACHE_REQUIRE(
          trace.attack_fraction >= 0.0 && trace.attack_fraction <= 1.0,
          "attack_fraction must be in [0, 1]");
      PROXCACHE_REQUIRE(
          trace.attack_top_k >= 1 && trace.attack_top_k <= num_files,
          "attack_top_k must be in [1, num_files]");
      break;
  }
}

std::string ExperimentConfig::describe() const {
  std::ostringstream os;
  os << "n=" << num_nodes << " K=" << num_files << " M=" << cache_size
     << " " << to_string(wrap) << " "
     << popularity.materialize(num_files).describe() << " ";
  if (trace.kind != TraceKind::Static) {
    os << "trace=" << to_string(trace.kind) << " ";
  }
  os << "strategy=" << resolved_strategy().to_string();
  return os.str();
}

}  // namespace proxcache
