#include "core/config.hpp"

#include <cmath>
#include <sstream>

#include "strategy/registry.hpp"
#include "topology/registry.hpp"
#include "util/contracts.hpp"

namespace proxcache {

namespace {

/// True when the spec names one of the two lattice entries — the only
/// topologies with a `side` the legacy radius checks can compare against.
bool is_lattice_spec(const TopologySpec& spec) {
  return spec.name == "torus" || spec.name == "grid";
}

}  // namespace

TopologySpec ExperimentConfig::resolved_topology() const {
  PROXCACHE_REQUIRE(!tiered(),
                    "a tiered config has no single registry topology; "
                    "materialize it through tier/materialize.hpp");
  if (!tier_spec.empty()) return tier_spec.levels.front().topology;
  return topology_spec.empty() ? topology_spec_from_lattice(num_nodes, wrap)
                               : topology_spec;
}

std::size_t ExperimentConfig::resolved_nodes() const {
  if (!tier_spec.empty()) {
    const TopologyRegistry& registry = TopologyRegistry::global();
    std::size_t total = 0;
    for (const TierLevelSpec& level : tier_spec.levels) {
      total += level.clusters * registry.node_count(level.topology);
    }
    return total;
  }
  if (topology_spec.empty()) return num_nodes;
  return TopologyRegistry::global().node_count(topology_spec);
}

StrategySpec ExperimentConfig::resolved_strategy() const {
  if (!strategy_spec.empty()) return strategy_spec;
  StrategySpec spec;
  spec.name = "two-choice";
  return spec;
}

void ExperimentConfig::validate() const {
  PROXCACHE_REQUIRE(tier_spec.empty() || topology_spec.empty(),
                    "tier_spec and topology_spec are mutually exclusive; "
                    "a tier spec names its inner topologies itself");
  if (topology_spec.empty() && tier_spec.empty()) {
    PROXCACHE_REQUIRE(Lattice::is_perfect_square(num_nodes),
                      "num_nodes must be a perfect square, got " +
                          std::to_string(num_nodes));
  }
  // Per-topology and per-strategy validation is the registries' job:
  // unknown names, unknown parameter keys and out-of-range values all throw
  // from here. The global catalogs are consulted so registered custom
  // entries validate too.
  // with_defaults validates (unknown name/key, ranges, node-count cap)
  // and returns the defaults-filled spec the side check below reads —
  // one registry pass, no drift from the declared defaults.
  TopologySpec topology;
  if (tiered()) {
    // Every inner topology must validate; the composed node count is
    // bounded by TierSet::build. The tier grammar already enforced the
    // structural rules (role order, single deepest cluster, capacities).
    for (const TierLevelSpec& level : tier_spec.levels) {
      (void)TopologyRegistry::global().with_defaults(level.topology);
    }
  } else {
    topology = TopologyRegistry::global().with_defaults(resolved_topology());
  }
  PROXCACHE_REQUIRE(num_files >= 1, "num_files must be >= 1");
  PROXCACHE_REQUIRE(cache_size >= 1, "cache_size must be >= 1");
  PROXCACHE_REQUIRE(threads >= 1 && threads <= 1024,
                    "threads must be in [1, 1024]");
  PROXCACHE_REQUIRE(shard_batch >= 1 && shard_batch <= (1u << 22),
                    "shard_batch must be in [1, 2^22]");
  PROXCACHE_REQUIRE(shard_spec_window >= 1 && shard_spec_window <= (1u << 20),
                    "shard_spec_window must be in [1, 2^20]");
  const StrategySpec strategy = resolved_strategy();
  StrategyRegistry::global().validate(strategy);
  if (StrategyRegistry::global().at(strategy.name).requires_tiers) {
    PROXCACHE_REQUIRE(tiered(),
                      "strategy '" + strategy.name +
                          "' routes across cache tiers; configure a tier "
                          "hierarchy (e.g. front=torus(side=8)x8, "
                          "back=ring(n=64), origin=1)");
  }
  if (popularity.kind == PopularityKind::Zipf) {
    PROXCACHE_REQUIRE(popularity.gamma >= 0.0, "zipf gamma must be >= 0");
  }

  // Demand-disc radii are bounded by the lattice side on lattice
  // topologies (the historical check). Non-lattice topologies have no
  // side; their discs are simply capped at the diameter when collected.
  const bool lattice_backed = is_lattice_spec(topology);
  const auto side = lattice_backed
                        ? static_cast<Hop>(topology.get_or("side", 0.0))
                        : Hop{0};
  if (origins.kind == OriginKind::Hotspot) {
    PROXCACHE_REQUIRE(
        origins.hotspot_fraction >= 0.0 && origins.hotspot_fraction <= 1.0,
        "hotspot_fraction must be in [0, 1]");
    if (lattice_backed) {
      PROXCACHE_REQUIRE(
          origins.hotspot_radius < side,
          "hotspot_radius must be smaller than the lattice side");
    }
  }

  // The batch simulator never reads the arrival rate, but it is validated
  // here with the other trace knobs so a bad dynamic-mode config fails at
  // the same place every other bad config does.
  PROXCACHE_REQUIRE(std::isfinite(trace.arrival_rate) && trace.arrival_rate > 0.0,
                    "arrival rate must be > 0");

  switch (trace.kind) {
    case TraceKind::Static:
      break;
    case TraceKind::FlashCrowd:
      PROXCACHE_REQUIRE(origins.kind == OriginKind::Uniform,
                        "flash-crowd traces define their own origin process; "
                        "use uniform OriginSpec");
      PROXCACHE_REQUIRE(trace.flash_peak >= 0.0 && trace.flash_peak <= 1.0,
                        "flash_peak must be in [0, 1]");
      PROXCACHE_REQUIRE(
          trace.flash_start >= 0.0 && trace.flash_start < trace.flash_end &&
              trace.flash_end <= 1.0,
          "flash window must satisfy 0 <= start < end <= 1");
      if (lattice_backed) {
        PROXCACHE_REQUIRE(
            trace.flash_radius < side,
            "flash_radius must be smaller than the lattice side");
      }
      break;
    case TraceKind::Diurnal:
      PROXCACHE_REQUIRE(popularity.kind == PopularityKind::Zipf,
                        "diurnal traces modulate a Zipf catalog");
      PROXCACHE_REQUIRE(trace.diurnal_amplitude >= 0.0 &&
                            popularity.gamma - trace.diurnal_amplitude >= 0.0,
                        "diurnal_amplitude must be in [0, gamma]");
      PROXCACHE_REQUIRE(trace.diurnal_cycles >= 1,
                        "diurnal_cycles must be >= 1");
      break;
    case TraceKind::Churn:
      PROXCACHE_REQUIRE(trace.churn_offline_fraction >= 0.0 &&
                            trace.churn_offline_fraction < 1.0,
                        "churn_offline_fraction must be in [0, 1)");
      PROXCACHE_REQUIRE(trace.churn_epochs >= 1, "churn_epochs must be >= 1");
      break;
    case TraceKind::TemporalLocality:
      PROXCACHE_REQUIRE(
          trace.locality_prob >= 0.0 && trace.locality_prob <= 1.0,
          "locality_prob must be in [0, 1]");
      PROXCACHE_REQUIRE(trace.locality_depth >= 1,
                        "locality_depth must be >= 1");
      break;
    case TraceKind::Adversarial:
      PROXCACHE_REQUIRE(
          trace.attack_fraction >= 0.0 && trace.attack_fraction <= 1.0,
          "attack_fraction must be in [0, 1]");
      PROXCACHE_REQUIRE(
          trace.attack_top_k >= 1 && trace.attack_top_k <= num_files,
          "attack_top_k must be in [1, num_files]");
      break;
  }
}

std::string ExperimentConfig::describe() const {
  std::ostringstream os;
  os << "n=" << resolved_nodes() << " K=" << num_files << " M=" << cache_size
     << " "
     << (tiered() ? tier_spec.to_string() : resolved_topology().to_string())
     << " "
     << popularity.materialize(num_files).describe() << " ";
  if (trace.kind != TraceKind::Static) {
    os << "trace=" << to_string(trace.kind) << " ";
  }
  os << "strategy=" << resolved_strategy().to_string();
  if (threads > 1) {
    os << " threads=" << threads;
    if (!shard_speculate) os << " commit=serial";
  }
  return os.str();
}

}  // namespace proxcache
