#pragma once
/// \file simulation.hpp
/// One complete simulated time block (paper §II-B): cache placement →
/// trace source (scenario/trace_source.hpp) → sequential assignment →
/// metrics. A run is a pure function of (config, run_index): all
/// randomness derives from `derive_seed(config.seed, {run_index, phase})`.

#include <cstdint>

#include "core/config.hpp"
#include "stats/histogram.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Metrics of one simulation run.
struct RunResult {
  Load max_load = 0;           ///< L = max_i T_i
  double comm_cost = 0.0;      ///< C = mean hops per served request
  std::uint64_t requests = 0;  ///< served requests
  std::uint64_t fallbacks = 0; ///< Strategy II fallback events
  std::uint64_t resampled = 0; ///< trace repairs (missing-file policy)
  std::uint64_t dropped = 0;   ///< dropped requests (Drop policies)
  Histogram load_histogram;    ///< #servers with load = k
  /// Placement-side observables (cheap; always collected).
  std::size_t placement_min_distinct = 0;  ///< min_u t(u)
  std::size_t files_with_replicas = 0;
};

/// Execute one run of the configured experiment.
RunResult run_simulation(const ExperimentConfig& config,
                         std::uint64_t run_index);

}  // namespace proxcache
