#pragma once
/// \file simulation.hpp
/// One complete simulated time block (paper §II-B): cache placement →
/// trace source (scenario/trace_source.hpp) → streaming sanitize →
/// sequential assignment → metrics. A run is a pure function of
/// (config, run_index): all randomness derives from
/// `derive_seed(config.seed, {run_index, phase})`.
///
/// The request loop *streams*: requests are drawn, sanitized, and assigned
/// one at a time, so peak memory is O(num_nodes) regardless of
/// `effective_requests()` — traces of tens of millions of requests run in
/// constant space. `SimulationContext` factors out the per-config state
/// (lattice, materialized popularity) so replications share it instead of
/// rebuilding it per run.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "stats/histogram.hpp"
#include "topology/topology.hpp"
#include "util/types.hpp"

namespace proxcache {

/// Per-tier slice of one run's load metrics (tiered runs only; flat runs
/// leave `RunResult::tier_loads` empty). Sliced by RunHarness::finalize
/// from the one global LoadTracker — the engines never track tiers.
struct TierLoadStats {
  std::string role;            ///< tier role ("front", "back", "origin"…)
  std::uint64_t served = 0;    ///< requests served by this tier's nodes
  Load max_load = 0;           ///< max per-node load within the tier
  Load tail_p99 = 0;           ///< 99th-percentile per-node load in the tier
};

/// Metrics of one simulation run.
struct RunResult {
  Load max_load = 0;           ///< L = max_i T_i
  double comm_cost = 0.0;      ///< C = mean hops per served request
  std::uint64_t requests = 0;  ///< served requests
  std::uint64_t fallbacks = 0; ///< Strategy II fallback events
  std::uint64_t resampled = 0; ///< trace repairs (missing-file policy)
  std::uint64_t dropped = 0;   ///< dropped requests (Drop policies)
  Histogram load_histogram;    ///< #servers with load = k
  /// Placement-side observables (cheap; always collected).
  std::size_t placement_min_distinct = 0;  ///< min_u t(u)
  std::size_t files_with_replicas = 0;
  /// Per-tier load slices, one entry per tier in hierarchy order (empty on
  /// flat runs).
  std::vector<TierLoadStats> tier_loads;

  /// Requests the origin tier absorbed (0 when no origin tier exists).
  [[nodiscard]] std::uint64_t origin_hits() const;
  /// Fraction of served requests the cache tiers kept *off* the origin:
  /// `1 - origin_hits / requests` (1.0 when nothing reached the origin or
  /// no origin tier exists).
  [[nodiscard]] double origin_offload() const;
};

/// Immutable per-config state shared by every replication of one
/// experiment: the validated config plus the materialized topology and
/// popularity profile. Construct once, then call `run` from any thread —
/// `run` is const and builds only per-run state (placement, replica index,
/// strategy, tracker), all sized by the network, never by the trace.
///
/// The topology is built once through the TopologyRegistry (which can be
/// expensive — all-pairs BFS for graph topologies) and shared by reference
/// with rebound contexts; `config().num_nodes` is synchronized to the
/// materialized node count so every downstream consumer agrees on `n`.
class SimulationContext {
 public:
  /// Validates `config` (throws std::invalid_argument when inconsistent)
  /// and materializes the shared state once.
  explicit SimulationContext(const ExperimentConfig& config);

  /// Rebind `base`'s experiment to a different assignment strategy without
  /// rebuilding the topology or popularity profile — the scenario ×
  /// strategy matrix fast path (the shared state is strategy-independent).
  /// Validates the resulting config.
  SimulationContext(const SimulationContext& base, StrategySpec strategy);

  /// Build a context for `config` reusing an already-materialized
  /// `topology` — the matrix fast path along the *scenario* axis, where
  /// many configs share one (potentially O(n²)-construction) topology.
  /// `topology` must be the one `config.resolved_topology()` describes;
  /// enforced by a node-count check plus the registry's validation.
  SimulationContext(const ExperimentConfig& config,
                    std::shared_ptr<const Topology> topology);

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] const Popularity& popularity() const { return popularity_; }
  /// `config().effective_requests()`, resolved once at construction.
  [[nodiscard]] std::size_t horizon() const { return horizon_; }

  /// Execute replication `run_index` with the streaming request loop.
  /// `config().threads == 1`: the historical serial loop, bit-identical to
  /// the materialize-then-iterate pipeline. `threads >= 2`: dispatches to
  /// the sharded split-phase engine (src/parallel/sharded_runner.hpp),
  /// deterministic across thread counts under its own seed contract.
  [[nodiscard]] RunResult run(std::uint64_t run_index) const;

 private:
  ExperimentConfig config_;
  std::shared_ptr<const Topology> topology_;
  Popularity popularity_;
  /// `config().effective_requests()`, resolved once at construction so
  /// replications never re-resolve the topology spec.
  std::size_t horizon_ = 0;
};

/// Execute one run of the configured experiment. One-shot convenience over
/// `SimulationContext`; loops over replications should construct the
/// context once instead.
RunResult run_simulation(const ExperimentConfig& config,
                         std::uint64_t run_index);

}  // namespace proxcache
