#include "core/nearest_replica.hpp"

#include "util/contracts.hpp"

namespace proxcache {

void NearestReplicaStrategy::propose(const Request& request, Rng& rng,
                                     CandidateArena& arena, Proposal& out) {
  (void)arena;  // Strategy I is load-oblivious: the decision is final here.
  const NearestResult nearest = index_->nearest(request.origin, request.file,
                                                rng);
  PROXCACHE_CHECK(nearest.server != kInvalidNode,
                  "request for uncached file reached the strategy; "
                  "sanitize_trace must run first");
  out.decided = true;
  out.server = nearest.server;
  out.hops = nearest.distance;
}

Assignment NearestReplicaStrategy::choose(const Request& request,
                                          const Proposal& proposal,
                                          CandidateArena& arena,
                                          const LoadView& loads,
                                          Rng& rng) const {
  (void)request;
  (void)arena;
  (void)loads;
  (void)rng;
  return decided_assignment(proposal);
}

}  // namespace proxcache
