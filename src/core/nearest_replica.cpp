#include "core/nearest_replica.hpp"

#include "util/contracts.hpp"

namespace proxcache {

Assignment NearestReplicaStrategy::assign(const Request& request,
                                          const LoadView& loads, Rng& rng) {
  (void)loads;  // Strategy I is load-oblivious by definition.
  const NearestResult nearest = index_->nearest(request.origin, request.file,
                                                rng);
  PROXCACHE_CHECK(nearest.server != kInvalidNode,
                  "request for uncached file reached the strategy; "
                  "sanitize_trace must run first");
  Assignment assignment;
  assignment.server = nearest.server;
  assignment.hops = nearest.distance;
  return assignment;
}

}  // namespace proxcache
