#pragma once
/// \file config.hpp
/// Declarative configuration of one cache-network experiment (paper §II).
/// An `ExperimentConfig` pins every model knob — topology, library,
/// popularity, placement, request volume, assignment strategy, and the
/// policies that close the paper's model gaps (see DESIGN.md) — plus the
/// root seed, so a run is a pure function of its config and run index.

#include <cstdint>
#include <string>

#include "catalog/placement.hpp"
#include "catalog/popularity.hpp"
#include "scenario/trace_spec.hpp"
#include "strategy/spec.hpp"
#include "topology/lattice.hpp"
#include "util/types.hpp"

namespace proxcache {

/// \deprecated Compat shim for pre-StrategySpec code. The strategy layer is
/// open now (strategy/registry.hpp); new code should set
/// `ExperimentConfig::strategy_spec` (e.g. `parse_strategy_spec("nearest")`)
/// instead of this closed enum. Scheduled for removal once the remaining
/// legacy call sites migrate.
enum class StrategyKind : std::uint8_t {
  NearestReplica,  ///< paper Strategy I (Definition 2)
  TwoChoice,       ///< paper Strategy II (Definition 3), generalized to d
};

/// What to do when a requested file has no replica anywhere (possible under
/// i.i.d. placement; the paper's analysis conditions on cached files).
enum class MissingFilePolicy : std::uint8_t {
  Resample,  ///< redraw the request's file from P until cached (default)
  Drop,      ///< discard the request (counted)
  Strict,    ///< treat as an error (throw)
};

/// What Strategy II does when fewer than `num_choices` candidates exist
/// within radius `r` (a single candidate is always used directly).
enum class FallbackPolicy : std::uint8_t {
  ExpandRadius,     ///< double r until candidates appear (default)
  NearestReplica,   ///< fall back to Strategy I for this request
  Drop,             ///< discard the request (counted)
};

/// Spatial distribution of request origins. The paper assumes uniform
/// origins; the Hotspot extension concentrates a fraction of the demand in
/// a disc, stressing the proximity constraint (servers near the hotspot
/// are the only in-radius candidates).
enum class OriginKind : std::uint8_t {
  Uniform,  ///< paper model: origin uniform over the n servers
  Hotspot,  ///< mixture: with prob `fraction`, uniform in B_radius(center)
};

/// Origin-distribution spec (materialized per run).
struct OriginSpec {
  OriginKind kind = OriginKind::Uniform;
  /// Fraction of requests born inside the hotspot (Hotspot only).
  double hotspot_fraction = 0.5;
  /// Hotspot disc radius (Hotspot only).
  Hop hotspot_radius = 5;
};

/// Popularity profile spec (materialized per run).
struct PopularitySpec {
  PopularityKind kind = PopularityKind::Uniform;
  double gamma = 0.8;  ///< Zipf parameter; ignored for Uniform

  [[nodiscard]] Popularity materialize(std::size_t num_files) const {
    return kind == PopularityKind::Uniform
               ? Popularity::uniform(num_files)
               : Popularity::zipf(num_files, gamma);
  }
};

/// \deprecated Compat shim: legacy strategy knobs, honored only while
/// `ExperimentConfig::strategy_spec` is empty (see `resolved_strategy()`,
/// which maps them onto an equivalent StrategySpec bit-identically). New
/// code should express strategies as specs — they cover every knob here
/// (`d`, `r`, `beta`, `fallback`, `wr`, `stale`) plus the registry's
/// extension strategies. Scheduled for removal with StrategyKind.
struct StrategyConfig {
  StrategyKind kind = StrategyKind::TwoChoice;
  /// Proximity radius `r` (Strategy II only); kUnboundedRadius = r = ∞.
  Hop radius = kUnboundedRadius;
  /// Number of candidate choices `d` (Strategy II only); paper uses 2.
  std::uint32_t num_choices = 2;
  /// Draw candidates with replacement (ablation; default without).
  bool with_replacement = false;
  FallbackPolicy fallback = FallbackPolicy::ExpandRadius;
  /// Mitzenmacher's (1+β) process: with probability `beta` use the full
  /// d-choice comparison, otherwise a single uniform candidate. β = 1 is
  /// the paper's strategy; β < 1 models saving load-probe traffic.
  double beta = 1.0;
  /// Load-information staleness (paper §VI "periodic polling"): the
  /// strategy compares loads from a snapshot refreshed every
  /// `stale_batch` requests. 1 = always fresh (paper model).
  std::uint32_t stale_batch = 1;
};

/// Full experiment description.
struct ExperimentConfig {
  std::size_t num_nodes = 2025;  ///< n; must be a perfect square
  Wrap wrap = Wrap::Torus;
  std::size_t num_files = 500;   ///< K
  std::size_t cache_size = 10;   ///< M
  PlacementMode placement_mode = PlacementMode::ProportionalWithReplacement;
  PopularitySpec popularity;
  OriginSpec origins;
  /// Which trace process generates the request stream. `Static` (default)
  /// is the paper's model driven by `origins` + `popularity`; other kinds
  /// (scenario/trace_spec.hpp) open time-varying and adversarial workloads.
  TraceSpec trace;
  /// Number of sequential requests; 0 means "n requests" (paper default).
  std::size_t num_requests = 0;
  MissingFilePolicy missing = MissingFilePolicy::Resample;
  /// Which assignment strategy serves requests, as a registry spec
  /// (strategy/registry.hpp), e.g. `parse_strategy_spec("least-loaded(r=8)")`.
  /// When empty (the default) the legacy `strategy` knobs below apply.
  StrategySpec strategy_spec;
  /// \deprecated Legacy strategy knobs; see StrategyConfig. Ignored when
  /// `strategy_spec` is set.
  StrategyConfig strategy;
  std::uint64_t seed = 0x5EED;

  [[nodiscard]] std::size_t effective_requests() const {
    return num_requests == 0 ? num_nodes : num_requests;
  }

  /// The strategy actually in effect: `strategy_spec` when set, otherwise
  /// the legacy `strategy` knobs mapped onto an equivalent spec. This is
  /// what the simulator hands to StrategyRegistry::make.
  [[nodiscard]] StrategySpec resolved_strategy() const;

  /// Throws std::invalid_argument when inconsistent (n not square, M < 1…).
  void validate() const;

  /// One-line description for logs/tables.
  [[nodiscard]] std::string describe() const;
};

}  // namespace proxcache
