#pragma once
/// \file config.hpp
/// Declarative configuration of one cache-network experiment (paper §II).
/// An `ExperimentConfig` pins every model knob — topology, library,
/// popularity, placement, request volume, assignment strategy, and the
/// policies that close the paper's model gaps (see DESIGN.md) — plus the
/// root seed, so a run is a pure function of its config and run index.

#include <cstdint>
#include <string>

#include "catalog/placement.hpp"
#include "catalog/popularity.hpp"
#include "scenario/trace_spec.hpp"
#include "strategy/spec.hpp"
#include "tier/spec.hpp"
#include "topology/lattice.hpp"
#include "topology/spec.hpp"
#include "util/types.hpp"

namespace proxcache {

/// What to do when a requested file has no replica anywhere (possible under
/// i.i.d. placement; the paper's analysis conditions on cached files).
enum class MissingFilePolicy : std::uint8_t {
  Resample,  ///< redraw the request's file from P until cached (default)
  Drop,      ///< discard the request (counted)
  Strict,    ///< treat as an error (throw)
};

/// What Strategy II does when fewer than `num_choices` candidates exist
/// within radius `r` (a single candidate is always used directly).
enum class FallbackPolicy : std::uint8_t {
  ExpandRadius,     ///< double r until candidates appear (default)
  NearestReplica,   ///< fall back to Strategy I for this request
  Drop,             ///< discard the request (counted)
};

/// Spatial distribution of request origins. The paper assumes uniform
/// origins; the Hotspot extension concentrates a fraction of the demand in
/// a disc, stressing the proximity constraint (servers near the hotspot
/// are the only in-radius candidates).
enum class OriginKind : std::uint8_t {
  Uniform,  ///< paper model: origin uniform over the n servers
  Hotspot,  ///< mixture: with prob `fraction`, uniform in B_radius(center)
};

/// Origin-distribution spec (materialized per run).
struct OriginSpec {
  OriginKind kind = OriginKind::Uniform;
  /// Fraction of requests born inside the hotspot (Hotspot only).
  double hotspot_fraction = 0.5;
  /// Hotspot disc radius (Hotspot only). The disc is `B_radius` around the
  /// topology's `central_node()`.
  Hop hotspot_radius = 5;
};

/// Popularity profile spec (materialized per run).
struct PopularitySpec {
  PopularityKind kind = PopularityKind::Uniform;
  double gamma = 0.8;  ///< Zipf parameter; ignored for Uniform

  [[nodiscard]] Popularity materialize(std::size_t num_files) const {
    return kind == PopularityKind::Uniform
               ? Popularity::uniform(num_files)
               : Popularity::zipf(num_files, gamma);
  }
};

/// Full experiment description.
struct ExperimentConfig {
  /// Legacy lattice knobs: used only while `topology_spec` is empty, and
  /// then mapped bit-identically onto a `torus(side=√n)` / `grid(side=√n)`
  /// registry spec by `resolved_topology()`. When `topology_spec` is set
  /// these two are ignored and the node count derives from the spec.
  std::size_t num_nodes = 2025;  ///< n; must be a perfect square
  Wrap wrap = Wrap::Torus;
  /// Which network topology the servers form, as a registry spec
  /// (topology/registry.hpp), e.g. `parse_topology_spec("ring(n=4096)")`.
  /// When empty (the default) the legacy lattice knobs above apply.
  TopologySpec topology_spec;
  /// Optional cache hierarchy (tier/spec.hpp): compose registered
  /// topologies into front/mid/back/origin tiers, e.g.
  /// `parse_tier_spec("front=torus(side=8)x8, back=ring(n=64), origin=1")`.
  /// Empty (the default) keeps the flat single-tier engine; a *degenerate*
  /// spec (one cache tier, one cluster, no capacity override) resolves to
  /// its inner topology and runs the flat path bit-identically. Mutually
  /// exclusive with `topology_spec`.
  TierSpec tier_spec;
  std::size_t num_files = 500;   ///< K
  std::size_t cache_size = 10;   ///< M
  PlacementMode placement_mode = PlacementMode::ProportionalWithReplacement;
  PopularitySpec popularity;
  OriginSpec origins;
  /// Which trace process generates the request stream. `Static` (default)
  /// is the paper's model driven by `origins` + `popularity`; other kinds
  /// (scenario/trace_spec.hpp) open time-varying and adversarial workloads.
  TraceSpec trace;
  /// Number of sequential requests; 0 means "n requests" (paper default).
  std::size_t num_requests = 0;
  MissingFilePolicy missing = MissingFilePolicy::Resample;
  /// Which assignment strategy serves requests, as a registry spec
  /// (strategy/registry.hpp), e.g. `parse_strategy_spec("least-loaded(r=8)")`.
  /// When empty (the default) the paper's two-choice strategy with registry
  /// defaults applies.
  StrategySpec strategy_spec;
  std::uint64_t seed = 0x5EED;
  /// Execution engine selector. `1` (default) runs the historical serial
  /// request loop; `>= 2` runs the sharded split-phase engine
  /// (src/parallel/sharded_runner.hpp) on that many threads. The two
  /// engines are *each* fully deterministic but follow different
  /// strategy-randomness contracts: the serial loop draws one sequential
  /// strategy stream, while the sharded engine pins an independent stream
  /// per request (`derive_seed(seed, {run, kStrategy, request_index})`) so
  /// proposals can run on any thread. Consequently every `threads >= 2`
  /// value (and every `shard_batch`) yields bit-identical results to every
  /// other, but not to `threads = 1`.
  std::uint32_t threads = 1;
  /// Requests per pipeline batch of the sharded engine (`threads >= 2`).
  /// Pure throughput/memory dial — results are bit-identical across all
  /// values (locked by tests/test_sharded_equivalence.cpp).
  std::size_t shard_batch = 4096;
  /// Sharded-engine commit mode: speculative choose with validation
  /// (default) or the plain serial commit loop. Results are bit-identical
  /// either way — speculations are only accepted when validation proves
  /// them equal to the serial choice (parallel/sharded_runner.hpp) — so
  /// this too is purely a throughput dial.
  bool shard_speculate = true;
  /// Requests per speculation window of the sharded engine's commit loop.
  /// Smaller windows validate against fresher snapshots (fewer conflicts);
  /// larger windows amortize per-window synchronization. Bit-identical
  /// results across all values.
  std::uint32_t shard_spec_window = 32;

  /// True when the experiment runs the composed multi-tier hierarchy
  /// (tier/tier_set.hpp). Degenerate single-tier specs do not count: they
  /// resolve to their inner topology and take the flat path.
  [[nodiscard]] bool tiered() const {
    return !tier_spec.empty() && !tier_spec.degenerate();
  }

  /// The node count actually in effect: the composed tier total when
  /// `tier_spec` is set, the topology registry's count for `topology_spec`
  /// when set, otherwise `num_nodes`.
  [[nodiscard]] std::size_t resolved_nodes() const;

  [[nodiscard]] std::size_t effective_requests() const {
    return num_requests == 0 ? resolved_nodes() : num_requests;
  }

  /// The topology actually in effect for the *flat* path: `topology_spec`
  /// when set, a degenerate `tier_spec`'s inner topology, otherwise the
  /// legacy lattice knobs mapped onto an equivalent registry spec. This is
  /// what the simulator hands to TopologyRegistry::make. Throws when the
  /// config is tiered — a composed hierarchy has no single registry spec;
  /// tiered callers materialize through tier/materialize.hpp instead.
  [[nodiscard]] TopologySpec resolved_topology() const;

  /// The strategy actually in effect: `strategy_spec` when set, otherwise
  /// the registry-default two-choice strategy. This is what the simulator
  /// hands to StrategyRegistry::make.
  [[nodiscard]] StrategySpec resolved_strategy() const;

  /// Throws std::invalid_argument when inconsistent (n not square, M < 1…).
  void validate() const;

  /// One-line description for logs/tables.
  [[nodiscard]] std::string describe() const;
};

}  // namespace proxcache
