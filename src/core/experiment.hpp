#pragma once
/// \file experiment.hpp
/// Monte-Carlo experiment runner: independent replications of one
/// configuration, executed on a thread pool, aggregated into summary
/// statistics. Results are deterministic in (config.seed, runs) and
/// independent of thread count — each replication derives its own seed.

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/simulation.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace proxcache {

/// Per-tier aggregates across replications (tiered configs only).
struct TierSummary {
  std::string role;   ///< tier role, hierarchy order preserved
  Summary served;     ///< requests absorbed by the tier, across runs
  Summary max_load;   ///< per-run max node load within the tier
  Summary tail_p99;   ///< per-run p99 node load within the tier
};

/// Aggregated metrics over replications.
struct ExperimentResult {
  Summary max_load;        ///< distribution of L across runs
  Summary comm_cost;       ///< distribution of C across runs
  double fallback_rate = 0.0;  ///< fallbacks per served request (pooled)
  double resample_rate = 0.0;  ///< trace repairs per request (pooled)
  double drop_rate = 0.0;      ///< drops per request (pooled)
  Histogram pooled_load_histogram;  ///< merged server-load histogram
  std::size_t runs = 0;
  /// Hierarchy metrics, one entry per tier (empty on flat configs).
  std::vector<TierSummary> tiers;
  /// Distribution of the per-run origin-offload ratio (empty on flat
  /// configs — check `tiers.empty()` before reading).
  Summary origin_offload;
};

/// Run `runs` independent replications sharing `context`'s per-config
/// state (lattice, popularity) across all of them, on `pool` (sequentially
/// when `pool` is nullptr). Replications are submitted to the pool in
/// worker-sized batches, not one future per run.
ExperimentResult run_experiment(const SimulationContext& context,
                                std::size_t runs,
                                ThreadPool* pool = nullptr);

/// Convenience overload: builds the SimulationContext from `config` once,
/// then runs as above.
ExperimentResult run_experiment(const ExperimentConfig& config,
                                std::size_t runs,
                                ThreadPool* pool = nullptr);

}  // namespace proxcache
