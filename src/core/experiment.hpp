#pragma once
/// \file experiment.hpp
/// Monte-Carlo experiment runner: independent replications of one
/// configuration, executed on a thread pool, aggregated into summary
/// statistics. Results are deterministic in (config.seed, runs) and
/// independent of thread count — each replication derives its own seed.

#include <cstdint>

#include "core/config.hpp"
#include "core/simulation.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace proxcache {

/// Aggregated metrics over replications.
struct ExperimentResult {
  Summary max_load;        ///< distribution of L across runs
  Summary comm_cost;       ///< distribution of C across runs
  double fallback_rate = 0.0;  ///< fallbacks per served request (pooled)
  double resample_rate = 0.0;  ///< trace repairs per request (pooled)
  double drop_rate = 0.0;      ///< drops per request (pooled)
  Histogram pooled_load_histogram;  ///< merged server-load histogram
  std::size_t runs = 0;
};

/// Run `runs` independent replications sharing `context`'s per-config
/// state (lattice, popularity) across all of them, on `pool` (sequentially
/// when `pool` is nullptr). Replications are submitted to the pool in
/// worker-sized batches, not one future per run.
ExperimentResult run_experiment(const SimulationContext& context,
                                std::size_t runs,
                                ThreadPool* pool = nullptr);

/// Convenience overload: builds the SimulationContext from `config` once,
/// then runs as above.
ExperimentResult run_experiment(const ExperimentConfig& config,
                                std::size_t runs,
                                ThreadPool* pool = nullptr);

}  // namespace proxcache
