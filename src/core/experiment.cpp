#include "core/experiment.hpp"

#include "parallel/parallel_for.hpp"
#include "util/contracts.hpp"

namespace proxcache {

namespace {

ExperimentResult aggregate(const std::vector<RunResult>& results) {
  ExperimentResult aggregate;
  aggregate.runs = results.size();
  std::uint64_t total_requests = 0;
  std::uint64_t total_fallbacks = 0;
  std::uint64_t total_resampled = 0;
  std::uint64_t total_dropped = 0;
  for (const RunResult& run : results) {
    aggregate.max_load.add(static_cast<double>(run.max_load));
    aggregate.comm_cost.add(run.comm_cost);
    aggregate.pooled_load_histogram.merge(run.load_histogram);
    total_requests += run.requests;
    total_fallbacks += run.fallbacks;
    total_resampled += run.resampled;
    total_dropped += run.dropped;
    if (!run.tier_loads.empty()) {
      if (aggregate.tiers.empty()) {
        aggregate.tiers.resize(run.tier_loads.size());
        for (std::size_t t = 0; t < run.tier_loads.size(); ++t) {
          aggregate.tiers[t].role = run.tier_loads[t].role;
        }
      }
      for (std::size_t t = 0; t < run.tier_loads.size(); ++t) {
        const TierLoadStats& tier = run.tier_loads[t];
        aggregate.tiers[t].served.add(static_cast<double>(tier.served));
        aggregate.tiers[t].max_load.add(static_cast<double>(tier.max_load));
        aggregate.tiers[t].tail_p99.add(static_cast<double>(tier.tail_p99));
      }
      aggregate.origin_offload.add(run.origin_offload());
    }
  }
  if (total_requests > 0) {
    const auto denom = static_cast<double>(total_requests);
    aggregate.fallback_rate = static_cast<double>(total_fallbacks) / denom;
    aggregate.resample_rate = static_cast<double>(total_resampled) / denom;
    aggregate.drop_rate = static_cast<double>(total_dropped) / denom;
  }
  return aggregate;
}

}  // namespace

ExperimentResult run_experiment(const SimulationContext& context,
                                std::size_t runs, ThreadPool* pool) {
  PROXCACHE_REQUIRE(runs >= 1, "need >= 1 replication");

  std::vector<RunResult> results;
  if (pool == nullptr || pool->size() == 1) {
    results.reserve(runs);
    for (std::size_t i = 0; i < runs; ++i) {
      results.push_back(context.run(i));
    }
  } else {
    results = parallel_map(*pool, runs, [&context](std::size_t i) {
      return context.run(i);
    });
  }
  return aggregate(results);
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                std::size_t runs, ThreadPool* pool) {
  PROXCACHE_REQUIRE(runs >= 1, "need >= 1 replication");
  return run_experiment(SimulationContext(config), runs, pool);
}

}  // namespace proxcache
