#pragma once
/// \file request.hpp
/// Request traces (paper §II-B): `m` sequential requests, each with an
/// origin server chosen uniformly at random and a file drawn from the
/// popularity law. Both `generate_trace` overloads delegate to the Static
/// `TraceSource` (scenario/generators.hpp) — the single implementation of
/// the paper-model draw sequence — and richer workloads stream from the
/// other sources in `src/scenario/`. `sanitize` closes the uncached-file
/// gap per the configured MissingFilePolicy.

#include <cstdint>
#include <vector>

#include "catalog/placement.hpp"
#include "catalog/popularity.hpp"
#include "core/config.hpp"
#include "random/rng.hpp"
#include "topology/topology.hpp"
#include "util/types.hpp"

namespace proxcache {

/// One content request.
struct Request {
  NodeId origin = 0;
  FileId file = 0;
};

/// Outcome of trace sanitization.
struct SanitizeStats {
  std::uint64_t resampled = 0;  ///< requests whose file was redrawn
  std::uint64_t dropped = 0;    ///< requests removed (Drop policy)
};

/// Generate `count` requests: origins uniform over `num_nodes`, files i.i.d.
/// from `popularity` (the paper's model).
std::vector<Request> generate_trace(std::size_t num_nodes,
                                    const Popularity& popularity,
                                    std::size_t count, Rng& rng);

/// Generate `count` requests with a configurable origin distribution (the
/// Hotspot extension places `hotspot_fraction` of origins uniformly inside
/// `B_radius(center)` around the topology's central node). Files i.i.d.
/// from `popularity`.
std::vector<Request> generate_trace(const Topology& topology,
                                    const OriginSpec& origins,
                                    const Popularity& popularity,
                                    std::size_t count, Rng& rng);

/// Enforce that every request's file has >= 1 replica under `placement`,
/// per `policy`. Resample redraws the file from `popularity` (rejection
/// sampling over the cached subset); Drop erases offending requests; Strict
/// throws std::runtime_error on the first offender. Throws if no file has
/// any replica while offenders exist. Compatibility shim over the
/// streaming `SanitizingTraceSource` decorator (scenario/trace_source.hpp),
/// which the simulation loop uses directly without materializing a trace.
SanitizeStats sanitize_trace(std::vector<Request>& trace,
                             const Placement& placement,
                             const Popularity& popularity,
                             MissingFilePolicy policy, Rng& rng);

}  // namespace proxcache
