#include "core/simulation.hpp"

#include <memory>

#include "core/request.hpp"
#include "core/run_harness.hpp"
#include "parallel/sharded_runner.hpp"
#include "tier/materialize.hpp"
#include "util/contracts.hpp"

namespace proxcache {

namespace {

const ExperimentConfig& validated(const ExperimentConfig& config) {
  config.validate();
  return config;
}

}  // namespace

std::uint64_t RunResult::origin_hits() const {
  for (const TierLoadStats& tier : tier_loads) {
    if (tier.role == "origin") return tier.served;
  }
  return 0;
}

double RunResult::origin_offload() const {
  if (requests == 0) return 1.0;
  return 1.0 - static_cast<double>(origin_hits()) /
                   static_cast<double>(requests);
}

SimulationContext::SimulationContext(const ExperimentConfig& config)
    : config_(validated(config)),
      topology_(materialize_topology(config_)),
      popularity_(config_.popularity.materialize(config_.num_files)) {
  // Synchronize the legacy node-count knob with the materialized topology
  // so placement, trackers and `effective_requests` all agree on `n` even
  // when the spec (not `num_nodes`) decided it.
  config_.num_nodes = topology_->size();
  horizon_ = config_.effective_requests();
}

SimulationContext::SimulationContext(const SimulationContext& base,
                                     StrategySpec strategy)
    : config_(base.config_),
      topology_(base.topology_),
      popularity_(base.popularity_),
      horizon_(base.horizon_) {
  config_.strategy_spec = std::move(strategy);
  config_.validate();
}

SimulationContext::SimulationContext(const ExperimentConfig& config,
                                     std::shared_ptr<const Topology> topology)
    : config_(validated(config)),
      topology_(std::move(topology)),
      popularity_(config_.popularity.materialize(config_.num_files)) {
  PROXCACHE_REQUIRE(topology_ != nullptr, "topology must not be null");
  PROXCACHE_REQUIRE(
      topology_->size() == config_.resolved_nodes(),
      "shared topology disagrees with the config's resolved node count");
  config_.num_nodes = topology_->size();
  horizon_ = config_.effective_requests();
}

RunResult SimulationContext::run(std::uint64_t run_index) const {
  // Engine dispatch: `threads >= 2` hands the run to the sharded
  // split-phase engine (its own deterministic seed contract; see
  // parallel/sharded_runner.hpp). `threads == 1` stays the historical
  // serial loop below, bit-identical to every result ever produced by it.
  if (config_.threads >= 2) {
    return ShardedRunner(*this,
                         {config_.threads, config_.shard_batch,
                          config_.shard_speculate, config_.shard_spec_window})
        .run(run_index);
  }

  RunHarness harness(*this, run_index);
  Request request;
  while (harness.sanitized.try_next(harness.trace_rng, request)) {
    harness.commit(harness.strategy->assign(request, *harness.load_view,
                                            harness.strategy_rng));
  }
  return harness.finalize();
}

RunResult run_simulation(const ExperimentConfig& config,
                         std::uint64_t run_index) {
  return SimulationContext(config).run(run_index);
}

}  // namespace proxcache
