#include "core/simulation.hpp"

#include <memory>

#include "core/metrics.hpp"
#include "core/nearest_replica.hpp"
#include "core/request.hpp"
#include "core/stale_view.hpp"
#include "core/two_choice.hpp"
#include "random/seeding.hpp"
#include "scenario/trace_source.hpp"
#include "spatial/replica_index.hpp"
#include "util/contracts.hpp"

namespace proxcache {

RunResult run_simulation(const ExperimentConfig& config,
                         std::uint64_t run_index) {
  config.validate();

  const Lattice lattice = Lattice::from_node_count(config.num_nodes,
                                                   config.wrap);
  const Popularity popularity =
      config.popularity.materialize(config.num_files);

  Rng placement_rng(
      derive_seed(config.seed, {run_index, seed_phase::kPlacement}));
  const Placement placement =
      Placement::generate(config.num_nodes, popularity, config.cache_size,
                          config.placement_mode, placement_rng);

  Rng trace_rng(derive_seed(config.seed, {run_index, seed_phase::kTrace}));
  const std::unique_ptr<TraceSource> source = make_trace_source(
      config, lattice, popularity, config.effective_requests());
  std::vector<Request> trace =
      materialize(*source, config.effective_requests(), trace_rng);
  const SanitizeStats sanitize =
      sanitize_trace(trace, placement, popularity, config.missing, trace_rng);

  const ReplicaIndex index(lattice, placement);
  std::unique_ptr<Strategy> strategy;
  if (config.strategy.kind == StrategyKind::NearestReplica) {
    strategy = std::make_unique<NearestReplicaStrategy>(index);
  } else {
    TwoChoiceOptions options;
    options.radius = config.strategy.radius;
    options.num_choices = config.strategy.num_choices;
    options.with_replacement = config.strategy.with_replacement;
    options.fallback = config.strategy.fallback;
    options.beta = config.strategy.beta;
    strategy = std::make_unique<TwoChoiceStrategy>(index, options);
  }

  Rng strategy_rng(
      derive_seed(config.seed, {run_index, seed_phase::kStrategy}));
  LoadTracker tracker(config.num_nodes);
  // Stale-information model (§VI): the strategy compares loads from a
  // periodically refreshed snapshot instead of the live tracker.
  std::unique_ptr<StaleLoadView> stale;
  if (config.strategy.stale_batch > 1) {
    stale = std::make_unique<StaleLoadView>(tracker,
                                            config.strategy.stale_batch);
  }
  const LoadView& load_view = stale ? static_cast<const LoadView&>(*stale)
                                    : static_cast<const LoadView&>(tracker);
  for (const Request& request : trace) {
    const Assignment assignment =
        strategy->assign(request, load_view, strategy_rng);
    if (assignment.fallback) tracker.note_fallback();
    if (assignment.server == kInvalidNode) {
      tracker.drop();
      continue;
    }
    tracker.assign(assignment.server, assignment.hops);
    if (stale) stale->on_assignment(tracker.assigned());
  }

  RunResult result;
  result.max_load = tracker.max_load();
  result.comm_cost = tracker.comm_cost();
  result.requests = tracker.assigned();
  result.fallbacks = tracker.fallbacks();
  result.resampled = sanitize.resampled;
  result.dropped = sanitize.dropped + tracker.dropped();
  result.load_histogram = tracker.load_histogram();
  result.placement_min_distinct = placement.distinct_count(0);
  for (NodeId u = 0; u < placement.num_nodes(); ++u) {
    result.placement_min_distinct =
        std::min(result.placement_min_distinct, placement.distinct_count(u));
  }
  result.files_with_replicas = placement.files_with_replicas();
  return result;
}

}  // namespace proxcache
