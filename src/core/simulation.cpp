#include "core/simulation.hpp"

#include <algorithm>
#include <memory>

#include "core/metrics.hpp"
#include "core/request.hpp"
#include "core/stale_view.hpp"
#include "random/seeding.hpp"
#include "scenario/trace_source.hpp"
#include "spatial/replica_index.hpp"
#include "strategy/registry.hpp"
#include "topology/registry.hpp"
#include "util/contracts.hpp"

namespace proxcache {

namespace {

const ExperimentConfig& validated(const ExperimentConfig& config) {
  config.validate();
  return config;
}

}  // namespace

SimulationContext::SimulationContext(const ExperimentConfig& config)
    : config_(validated(config)),
      topology_(TopologyRegistry::global().make(config_.resolved_topology())),
      popularity_(config_.popularity.materialize(config_.num_files)) {
  // Synchronize the legacy node-count knob with the materialized topology
  // so placement, trackers and `effective_requests` all agree on `n` even
  // when the spec (not `num_nodes`) decided it.
  config_.num_nodes = topology_->size();
  horizon_ = config_.effective_requests();
}

SimulationContext::SimulationContext(const SimulationContext& base,
                                     StrategySpec strategy)
    : config_(base.config_),
      topology_(base.topology_),
      popularity_(base.popularity_),
      horizon_(base.horizon_) {
  config_.strategy_spec = std::move(strategy);
  config_.validate();
}

SimulationContext::SimulationContext(const ExperimentConfig& config,
                                     std::shared_ptr<const Topology> topology)
    : config_(validated(config)),
      topology_(std::move(topology)),
      popularity_(config_.popularity.materialize(config_.num_files)) {
  PROXCACHE_REQUIRE(topology_ != nullptr, "topology must not be null");
  PROXCACHE_REQUIRE(
      topology_->size() == config_.resolved_nodes(),
      "shared topology disagrees with the config's resolved node count");
  config_.num_nodes = topology_->size();
  horizon_ = config_.effective_requests();
}

RunResult SimulationContext::run(std::uint64_t run_index) const {
  // Resolved once at construction (effective_requests() would re-resolve
  // the topology spec through the registry on every replication).
  const std::size_t horizon = horizon_;

  Rng placement_rng(
      derive_seed(config_.seed, {run_index, seed_phase::kPlacement}));
  const Placement placement =
      Placement::generate(config_.num_nodes, popularity_, config_.cache_size,
                          config_.placement_mode, placement_rng);

  Rng trace_rng(derive_seed(config_.seed, {run_index, seed_phase::kTrace}));
  const std::unique_ptr<TraceSource> source =
      make_trace_source(config_, *topology_, popularity_, horizon);

  // Repair-stream contract: the materialized pipeline drew all Resample
  // repairs *after* the full generation sequence, on the one trace-phase
  // stream. When the placement leaves files uncached, advance a scout copy
  // of that stream through the whole generation sequence to find the repair
  // start state (a second source instance replays the identical request
  // sequence — all generator state is deterministic in the rng). With full
  // coverage no repair draw ever happens, so the scout pass is skipped.
  Rng repair_rng = trace_rng;
  if (config_.missing == MissingFilePolicy::Resample &&
      placement.files_with_replicas() < config_.num_files) {
    const std::unique_ptr<TraceSource> scout =
        make_trace_source(config_, *topology_, popularity_, horizon);
    for (std::size_t i = 0; i < horizon; ++i) {
      (void)scout->next(repair_rng);
    }
  }
  SanitizingTraceSource sanitized(*source, horizon, placement, popularity_,
                                  config_.missing, repair_rng);

  // Every strategy — the paper pair and any extension registered on the
  // global catalog — is constructed by the open registry from the resolved
  // spec; there is no enum dispatch. `with_defaults` validates and fills
  // unset parameters from the registry rules (so the `stale` read below
  // sees the entry's declared default), after which the entry's factory is
  // invoked directly — replications pay for one validation pass, not two.
  const ReplicaIndex index(*topology_, placement);
  const StrategyRegistry& registry = StrategyRegistry::global();
  const StrategySpec spec =
      registry.with_defaults(config_.resolved_strategy());
  const std::unique_ptr<Strategy> strategy =
      registry.at(spec.name).factory(spec, index, *topology_, config_);

  Rng strategy_rng(
      derive_seed(config_.seed, {run_index, seed_phase::kStrategy}));
  LoadTracker tracker(config_.num_nodes);
  // Stale-information model (§VI): the strategy compares loads from a
  // periodically refreshed snapshot instead of the live tracker. `stale` is
  // a universal spec parameter because the snapshot wraps the LoadView
  // outside the strategy proper.
  const auto stale_batch =
      static_cast<std::uint32_t>(spec.get_or("stale", 1.0));
  std::unique_ptr<StaleLoadView> stale;
  if (stale_batch > 1) {
    stale = std::make_unique<StaleLoadView>(tracker, stale_batch);
  }
  const LoadView& load_view = stale ? static_cast<const LoadView&>(*stale)
                                    : static_cast<const LoadView&>(tracker);
  Request request;
  while (sanitized.try_next(trace_rng, request)) {
    const Assignment assignment =
        strategy->assign(request, load_view, strategy_rng);
    if (assignment.fallback) tracker.note_fallback();
    if (assignment.server == kInvalidNode) {
      tracker.drop();
      continue;
    }
    tracker.assign(assignment.server, assignment.hops);
    if (stale) stale->on_assignment(tracker.assigned());
  }
  const SanitizeStats& sanitize = sanitized.stats();

  RunResult result;
  result.max_load = tracker.max_load();
  result.comm_cost = tracker.comm_cost();
  result.requests = tracker.assigned();
  result.fallbacks = tracker.fallbacks();
  result.resampled = sanitize.resampled;
  result.dropped = sanitize.dropped + tracker.dropped();
  result.load_histogram = tracker.load_histogram();
  result.placement_min_distinct = placement.distinct_count(0);
  for (NodeId u = 0; u < placement.num_nodes(); ++u) {
    result.placement_min_distinct =
        std::min(result.placement_min_distinct, placement.distinct_count(u));
  }
  result.files_with_replicas = placement.files_with_replicas();
  return result;
}

RunResult run_simulation(const ExperimentConfig& config,
                         std::uint64_t run_index) {
  return SimulationContext(config).run(run_index);
}

}  // namespace proxcache
