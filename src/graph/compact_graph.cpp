#include "graph/compact_graph.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"

namespace proxcache {

CompactGraph CompactGraph::from_edges(
    std::uint32_t num_vertices,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges) {
  // Canonicalize: drop self loops, orient u < v, dedupe.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> canonical;
  canonical.reserve(edges.size());
  for (auto [a, b] : edges) {
    PROXCACHE_REQUIRE(a < num_vertices && b < num_vertices,
                      "edge endpoint out of range");
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    canonical.emplace_back(a, b);
  }
  std::sort(canonical.begin(), canonical.end());
  canonical.erase(std::unique(canonical.begin(), canonical.end()),
                  canonical.end());

  CompactGraph graph;
  graph.edges_ = std::move(canonical);
  std::vector<std::size_t> degree(num_vertices, 0);
  for (const auto& [a, b] : graph.edges_) {
    ++degree[a];
    ++degree[b];
  }
  graph.offsets_.assign(num_vertices + 1, 0);
  for (std::uint32_t u = 0; u < num_vertices; ++u) {
    graph.offsets_[u + 1] = graph.offsets_[u] + degree[u];
  }
  graph.adjacency_.resize(graph.offsets_.back());
  std::vector<std::size_t> cursor(graph.offsets_.begin(),
                                  graph.offsets_.end() - 1);
  for (const auto& [a, b] : graph.edges_) {
    graph.adjacency_[cursor[a]++] = b;
    graph.adjacency_[cursor[b]++] = a;
  }
  for (std::uint32_t u = 0; u < num_vertices; ++u) {
    std::sort(graph.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(graph.offsets_[u]),
              graph.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(graph.offsets_[u + 1]));
  }
  return graph;
}

bool CompactGraph::has_edge(std::uint32_t u, std::uint32_t v) const {
  const auto list = neighbors(u);
  return std::binary_search(list.begin(), list.end(), v);
}

DegreeStats CompactGraph::degree_stats() const {
  DegreeStats stats;
  const std::uint32_t n = num_vertices();
  if (n == 0) return stats;
  stats.min_degree = std::numeric_limits<std::size_t>::max();
  double total = 0.0;
  for (std::uint32_t u = 0; u < n; ++u) {
    const std::size_t d = degree(u);
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    total += static_cast<double>(d);
  }
  stats.mean_degree = total / static_cast<double>(n);
  stats.ratio = stats.min_degree == 0
                    ? std::numeric_limits<double>::infinity()
                    : static_cast<double>(stats.max_degree) /
                          static_cast<double>(stats.min_degree);
  return stats;
}

}  // namespace proxcache
