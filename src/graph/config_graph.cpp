#include "graph/config_graph.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace proxcache {

CompactGraph build_config_graph(const Lattice& lattice,
                                const Placement& placement, Hop r) {
  PROXCACHE_REQUIRE(lattice.size() == placement.num_nodes(),
                    "lattice and placement disagree on node count");
  const bool unbounded = r >= lattice.diameter();
  const Hop reach =
      unbounded ? lattice.diameter()
                : static_cast<Hop>(std::min<std::uint64_t>(
                      2ull * r, lattice.diameter()));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (FileId j = 0; j < placement.num_files(); ++j) {
    const auto list = placement.replicas(j);
    for (std::size_t a = 0; a < list.size(); ++a) {
      for (std::size_t b = a + 1; b < list.size(); ++b) {
        if (unbounded || lattice.distance(list[a], list[b]) <= reach) {
          edges.emplace_back(list[a], list[b]);
        }
      }
    }
  }
  return CompactGraph::from_edges(
      static_cast<std::uint32_t>(placement.num_nodes()), std::move(edges));
}

double predicted_config_degree(const Lattice& lattice, std::size_t cache_size,
                               std::size_t num_files, Hop r) {
  const double m = static_cast<double>(cache_size);
  const double k = static_cast<double>(num_files);
  const double reach = static_cast<double>(
      std::min<std::uint64_t>(2ull * r, lattice.diameter()));
  return m * m * reach * reach / k;
}

}  // namespace proxcache
